// Beyond-paper bench: the fast-path/slow-path queue vs the paper's variants.
//
// §3.3's closing suggestion — make the time complexity depend on actual
// contention rather than n — is implemented in core/wf_queue_fps.hpp using
// the methodology Kogan & Petrank published the following year. Expected
// shape: `WF fps` tracks the lock-free MS queue closely (its common path IS
// the MS queue plus one announce-array probe) while keeping the wait-free
// guarantee, and both KP'11 variants trail it; the gap between fps and LF is
// the true price of wait-freedom once the per-operation bookkeeping is
// off the common path.
//
// Flags: --threads N | --full, --iters N, --reps N, --pin, --csv.
#include <cstdint>

#include "baseline/ms_queue.hpp"
#include "bench_common.hpp"
#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"

int main(int argc, char** argv) {
  using namespace kpq;
  using namespace kpq::bench;

  bench_params p = parse_params(argc, argv, /*default_iters=*/20000);

  figure fig("Fast-path/slow-path vs the paper's variants (pairs)", p);
  fig.add_series("LF");
  fig.add_series("WF fps");
  fig.add_series("opt WF (1+2)");
  fig.add_series("base WF");

  for (std::uint32_t th : p.threads) {
    fig.add_cell(measure_pairs<ms_queue<std::uint64_t>>(th, p));
    fig.add_cell(measure_pairs<wf_queue_fps<std::uint64_t>>(th, p));
    fig.add_cell(measure_pairs<wf_queue_opt<std::uint64_t>>(th, p));
    fig.add_cell(measure_pairs<wf_queue_base<std::uint64_t>>(th, p));
  }
  fig.print(p.threads);
  return 0;
}
