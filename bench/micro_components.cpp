// Beyond-paper ablation: cost of the individual mechanisms the wait-free
// queue is built from, so the figure-level differences can be attributed:
//
//   * phase assignment: state-array scan (base) vs fetch-add vs CAS (§3.3
//     optimization 2 in isolation);
//   * hazard-pointer protect/clear vs plain atomic load (what §3.4's
//     prescription costs per read);
//   * descriptor cache on/off (§3.3 enhancement 1);
//   * §3.3 enhancement 2 (descriptor scrub on exit);
//   * thread-registry id lookup (the hidden cost of the tid-free API).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/wf_queue.hpp"
#include "harness/workload.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "sync/thread_registry.hpp"

namespace {

using namespace kpq;

// ---------------------------------------------------------- phase policies

template <typename Q>
void bm_queue_pairs_1thread(benchmark::State& state) {
  Q q(8);  // sized for 8 threads: the scan policy pays for all 8 slots
  std::uint64_t seq = 0;
  for (auto _ : state) {
    q.enqueue(encode_value(0, seq++), 0);
    benchmark::DoNotOptimize(q.dequeue(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * seq));
}

// ------------------------------------------------------------ hp primitives

void bm_hp_protect(benchmark::State& state) {
  hp_domain d(1, 4);
  std::atomic<int*> src{new int(7)};
  auto g = d.enter(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.protect(0, src));
    g.clear(0);
  }
  delete src.load();
}

void bm_plain_load(benchmark::State& state) {
  std::atomic<int*> src{new int(7)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.load(std::memory_order_acquire));
  }
  delete src.load();
}

void bm_hp_retire_scan(benchmark::State& state) {
  hp_domain d(1, 4, /*scan_threshold=*/64);
  for (auto _ : state) {
    d.retire(0, new int(1), [](void*, void* p) { delete static_cast<int*>(p); },
             nullptr);
  }
}

// -------------------------------------------------------------- registry

void bm_registry_lookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(this_thread_id());
  }
}

}  // namespace

BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_all, scan_max_phase>)
    ->Name("phase/scan_max_phase(n=8)");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_all, fetch_add_phase>)
    ->Name("phase/fetch_add");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_all, cas_phase>)
    ->Name("phase/cas");

BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_one, fetch_add_phase>)
    ->Name("help/help_one");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_chunk<2>, fetch_add_phase>)
    ->Name("help/help_chunk<2>");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_chunk<4>, fetch_add_phase>)
    ->Name("help/help_chunk<4>");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_random, fetch_add_phase>)
    ->Name("help/help_random");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_all, fetch_add_phase>)
    ->Name("help/help_all(n=8)");

BENCHMARK_TEMPLATE(
    bm_queue_pairs_1thread,
    wf_queue<std::uint64_t, help_one, fetch_add_phase, hp_domain, wf_options>)
    ->Name("desc_cache/on");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_one, fetch_add_phase, hp_domain,
                            wf_options_no_cache>)
    ->Name("desc_cache/off");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_one, fetch_add_phase, hp_domain,
                            wf_options_scrub>)
    ->Name("scrub_on_exit/on");
BENCHMARK_TEMPLATE(bm_queue_pairs_1thread,
                   wf_queue<std::uint64_t, help_one, fetch_add_phase, hp_domain,
                            wf_options_precheck>)
    ->Name("precheck_cas/on");

BENCHMARK(bm_hp_protect)->Name("hp/protect+clear");
BENCHMARK(bm_plain_load)->Name("hp/plain_acquire_load");
BENCHMARK(bm_hp_retire_scan)->Name("hp/retire(amortized_scan)");
BENCHMARK(bm_registry_lookup)->Name("registry/this_thread_id");

BENCHMARK_MAIN();
