// Figure 8 reproduction: "Performance results of the 50% enqueues benchmark"
// — total completion time vs number of threads for LF, base WF and
// opt WF (1+2); the queue starts with 1000 elements and every operation is
// an enqueue or dequeue with equal probability.
//
// Expected shape (paper): same ordering as Figure 7 with roughly half the
// absolute time, because this benchmark issues half as many operations per
// iteration count.
//
// Flags: --threads N | --full, --iters N, --reps N, --prefill N, --pin,
//        --csv, --json PATH (machine-readable series, schema kpq-bench-1).
#include <cstdint>

#include "baseline/ms_queue.hpp"
#include "bench_common.hpp"
#include "core/wf_queue.hpp"
#include "harness/cli.hpp"

int main(int argc, char** argv) {
  using namespace kpq;
  using namespace kpq::bench;

  bench_params p = parse_params(argc, argv, /*default_iters=*/20000);
  cli args(argc, argv);
  const std::uint64_t prefill = args.get_u64("prefill", 1000);

  figure fig("Figure 8: 50% enqueues, total completion time", p);
  fig.add_series("LF");
  fig.add_series("base WF");
  fig.add_series("opt WF (1+2)");

  for (std::uint32_t th : p.threads) {
    fig.add_cell(measure_fifty<ms_queue<std::uint64_t>>(th, p, prefill));
    fig.add_cell(measure_fifty<wf_queue_base<std::uint64_t>>(th, p, prefill));
    fig.add_cell(measure_fifty<wf_queue_opt<std::uint64_t>>(th, p, prefill));
  }
  fig.print(p.threads);
  return 0;
}
