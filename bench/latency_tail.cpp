// Beyond-paper bench: per-operation latency distribution.
//
// The paper motivates wait-freedom with bounded completion time (real-time
// systems, SLAs) but plots only total completion time. This bench measures
// what that guarantee buys: per-operation latency percentiles (p50 / p99 /
// p99.9 / max) for the lock-free queue vs the wait-free variants under an
// oversubscribed enqueue-dequeue pairs workload — the regime where lock-free
// dequeuers can starve behind winners and wait-free helping flattens the
// tail relative to the median.
//
// Flags: --threads N (default 8), --iters N, --pin, --csv.
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/locked_queues.hpp"
#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "harness/cli.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/timing.hpp"
#include "harness/workload.hpp"
#include "sync/cacheline.hpp"
#include "sync/spin_barrier.hpp"

namespace {

using namespace kpq;

struct tail_result {
  double p50, p99, p999, max;
};

template <typename Q>
tail_result measure_tail(std::uint32_t threads, std::uint64_t iters) {
  Q q(threads);
  std::vector<padded<std::vector<double>>> lat(threads);
  spin_barrier barrier(threads);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      auto& samples = lat[tid].get();
      samples.reserve(2 * iters);
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < iters; ++i) {
        std::uint64_t t0 = now_ns();
        q.enqueue(encode_value(tid, i), tid);
        std::uint64_t t1 = now_ns();
        (void)q.dequeue(tid);
        std::uint64_t t2 = now_ns();
        samples.push_back(static_cast<double>(t1 - t0));
        samples.push_back(static_cast<double>(t2 - t1));
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v->begin(), v->end());
  auto ps = sorted_percentiles(all, {0.50, 0.99, 0.999, 1.0});
  return {ps[0], ps[1], ps[2], ps[3]};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kpq;

  cli args(argc, argv);
  if (args.get_flag("help")) {
    std::printf("%s", "flags: --threads N (default 8)  --iters N (default 5000)  --csv\n");
    return 0;
  }
  const auto threads = static_cast<std::uint32_t>(args.get_u64("threads", 8));
  const std::uint64_t iters = args.get_u64("iters", 5000);
  const bool csv = args.get_flag("csv");

  std::printf("== Per-operation latency tail (enqueue-dequeue pairs, %u threads, %llu iters/thread) ==\n",
              threads, static_cast<unsigned long long>(iters));
  std::printf("(nanoseconds per operation; the wait-free guarantee targets the tail, not the median)\n\n");

  table t({"algorithm", "p50 [ns]", "p99 [ns]", "p99.9 [ns]", "max [ns]",
           "max/p50"});
  auto row = [&](const std::string& name, tail_result r) {
    t.add_row({name, fmt(r.p50, 0), fmt(r.p99, 0), fmt(r.p999, 0),
               fmt(r.max, 0), fmt(r.max / (r.p50 > 0 ? r.p50 : 1), 1)});
  };

  row("mutex", measure_tail<mutex_queue<std::uint64_t>>(threads, iters));
  row("two-lock MS", measure_tail<two_lock_queue<std::uint64_t>>(threads, iters));
  row("LF (MS)", measure_tail<ms_queue<std::uint64_t>>(threads, iters));
  row("base WF", measure_tail<wf_queue_base<std::uint64_t>>(threads, iters));
  row("opt WF (1+2)", measure_tail<wf_queue_opt<std::uint64_t>>(threads, iters));
  row("WF fps", measure_tail<wf_queue_fps<std::uint64_t>>(threads, iters));

  t.print();
  if (csv) {
    std::printf("\n-- csv --\n");
    t.print_csv(stdout);
  }
  return 0;
}
