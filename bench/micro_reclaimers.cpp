// Beyond-paper ablation: reclamation-scheme cost.
//
// Section 3.4 of the paper prescribes hazard pointers for the C++ port but
// does not measure their cost (the Java evaluation rode on the GC). This
// bench isolates it: the same queue algorithms under
//   * hazard pointers (wait-free reclamation, per-read announce+validate),
//   * epoch-based reclamation (plain reads, blocking memory bound),
//   * leaky (no reclamation — the algorithm-only floor).
//
// google-benchmark multi-threaded counters: items_per_second aggregates
// across threads.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/workload.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace {

using namespace kpq;

template <typename Q>
void bm_pairs(benchmark::State& state) {
  static std::unique_ptr<Q> q;
  if (state.thread_index() == 0) {
    q = std::make_unique<Q>(static_cast<std::uint32_t>(state.threads()));
  }
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  std::uint64_t seq = 0;
  for (auto _ : state) {
    q->enqueue(encode_value(tid, seq++), tid);
    benchmark::DoNotOptimize(q->dequeue(tid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * seq));
  if (state.thread_index() == 0) {
    // Teardown happens after all threads exited the loop (benchmark
    // library joins before re-invoking thread 0's epilogue).
  }
}

}  // namespace

BENCHMARK_TEMPLATE(bm_pairs, ms_queue<std::uint64_t, hp_domain>)
    ->Name("ms_queue/hazard")->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(bm_pairs, ms_queue<std::uint64_t, epoch_domain>)
    ->Name("ms_queue/epoch")->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(bm_pairs, ms_queue<std::uint64_t, leaky_domain>)
    ->Name("ms_queue/leaky")->Threads(1)->Threads(4)->UseRealTime();

BENCHMARK_TEMPLATE(bm_pairs, wf_queue_opt<std::uint64_t, hp_domain>)
    ->Name("wf_queue_opt/hazard")->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(bm_pairs, wf_queue_opt<std::uint64_t, epoch_domain>)
    ->Name("wf_queue_opt/epoch")->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(bm_pairs, wf_queue_opt<std::uint64_t, leaky_domain>)
    ->Name("wf_queue_opt/leaky")->Threads(1)->Threads(4)->UseRealTime();

BENCHMARK_TEMPLATE(bm_pairs, wf_queue_base<std::uint64_t, hp_domain>)
    ->Name("wf_queue_base/hazard")->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK_TEMPLATE(bm_pairs, wf_queue_base<std::uint64_t, leaky_domain>)
    ->Name("wf_queue_base/leaky")->Threads(1)->Threads(4)->UseRealTime();

BENCHMARK_MAIN();
