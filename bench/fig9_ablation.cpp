// Figure 9 reproduction: "The impact of optimizations in the enqueue-dequeue
// benchmark" — the four wait-free variants:
//
//   base WF       (help all + phase by state scan)
//   opt WF (1)    (help one, cyclic + phase by state scan)
//   opt WF (2)    (help all + atomic phase counter)
//   opt WF (1+2)  (both)
//
// Expected shape (paper): the gain comes mainly from optimization 1 — the
// modified helping rule prevents all threads from piling onto the same slow
// peer; optimization 2's impact is minor but grows with the thread count.
//
// Flags: --threads N | --full, --iters N, --reps N, --pin, --csv,
//        --json PATH (machine-readable series, schema kpq-bench-1).
#include <cstdint>

#include "bench_common.hpp"
#include "core/wf_queue.hpp"

int main(int argc, char** argv) {
  using namespace kpq;
  using namespace kpq::bench;

  bench_params p = parse_params(argc, argv, /*default_iters=*/20000);

  figure fig("Figure 9: optimization ablation, enqueue-dequeue pairs", p);
  fig.add_series("base WF");
  fig.add_series("opt WF (1)");
  fig.add_series("opt WF (2)");
  fig.add_series("opt WF (1+2)");

  for (std::uint32_t th : p.threads) {
    fig.add_cell(measure_pairs<wf_queue_base<std::uint64_t>>(th, p));
    fig.add_cell(measure_pairs<wf_queue_opt1<std::uint64_t>>(th, p));
    fig.add_cell(measure_pairs<wf_queue_opt2<std::uint64_t>>(th, p));
    fig.add_cell(measure_pairs<wf_queue_opt<std::uint64_t>>(th, p));
  }
  fig.print(p.threads);
  return 0;
}
