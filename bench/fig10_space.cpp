// Figure 10 reproduction: "Space overhead evaluation as a function of the
// initial queue size" — live heap attributable to the wait-free queues
// relative to the lock-free queue, for initial sizes 10^0 .. 10^7.
//
// The paper sampled JVM GC statistics (size of live objects, nine samples
// during an 8-thread enqueue-dequeue run) and plotted
// (base WF)/(LF) and (opt WF (1+2))/(LF). Its observations:
//   * small queues: ratio ~1, because the heap is dominated by objects that
//     are not part of the queues;
//   * large queues: ratio -> ~1.5, the per-node overhead of the enqTid and
//     deqTid fields.
//
// Our substitution (DESIGN.md §4): an exact allocation counter wired through
// every queue replaces GC sampling. It counts only queue-attributable bytes,
// so to reproduce the paper's *whole-heap* ratio we add a fixed application
// footprint (--footprint bytes, default 1 MiB) to numerator and denominator;
// the raw node-size ratio is also printed. Nine samples are taken during the
// run, exactly like the paper.
//
// The storage layer (src/storage/) adds two measurements on top:
//   * a "seg WF" series — the opt queue over segment_storage, whose live
//     bytes move in whole-segment steps and amortize reclamation;
//   * --verify-bound — an extended MPMC run against bounded_wf_queue with a
//     sampler thread continuously reading the exact live-byte counter
//     (which, after the construction-baseline fix in mem_tracker.hpp,
//     includes descriptors and construction-time allocations). ANY sample
//     above the configured ceiling is a hard failure: the process exits
//     non-zero. This is the acceptance check for the memory bound.
//
// Flags: --max-size N (default 1000000; paper reaches 10^7), --threads N
// (default 8), --iters N, --footprint BYTES, --csv, --json PATH
// (machine-readable series, schema kpq-bench-1, x = initial queue size),
// --verify-bound [--verify-ms N] [--max-bytes N] [--policy reject|overwrite].
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/cli.hpp"
#include "harness/mem_tracker.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "obs/export.hpp"
#include "storage/bounded_wf_queue.hpp"
#include "sync/spin_barrier.hpp"

namespace {

using namespace kpq;

/// Mean of nine live-byte samples taken while `threads` workers run the
/// enqueue-dequeue pairs workload on a queue prefilled with `size` elements.
template <typename Q>
double sampled_live_bytes(std::uint64_t size, std::uint32_t threads,
                          std::uint64_t iters) {
  mem_counters mc;
  Q q(threads, &mc);
  for (std::uint64_t i = 0; i < size; ++i) {
    q.enqueue(encode_value(threads - 1, (1ULL << 32) + i), threads - 1);
  }

  spin_barrier barrier(threads + 1);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < iters; ++i) {
        q.enqueue(encode_value(tid, i), tid);
        (void)q.dequeue(tid);
      }
    });
  }
  barrier.arrive_and_wait();

  running_stats samples;
  for (int s = 0; s < 9; ++s) {  // paper: nine GC samples per run
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    samples.add(static_cast<double>(mc.live_bytes()));
  }
  for (auto& w : workers) w.join();
  return samples.finish().mean;
}

/// --verify-bound: extended MPMC run on bounded_wf_queue with a continuous
/// live-byte sampler. Returns the process exit code: 0 iff no sample ever
/// exceeded the ceiling.
int verify_bound(std::uint32_t threads, std::uint64_t run_ms,
                 std::size_t max_bytes, full_policy policy) {
  using bq = bounded_wf_queue<std::uint64_t>;
  bounded_config cfg{.max_bytes = max_bytes, .policy = policy};
  bq q(threads, cfg);

  const std::uint32_t producers = threads > 1 ? threads / 2 : 1;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> attempts{0};
  spin_barrier barrier(threads + 1);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      std::uint64_t n = 0;
      if (tid < producers) {
        while (!stop.load(std::memory_order_relaxed)) {
          (void)q.try_enqueue(++n, tid);
          attempts.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        while (!stop.load(std::memory_order_relaxed)) (void)q.dequeue(tid);
      }
    });
  }
  barrier.arrive_and_wait();

  // The sampler IS the verifier: the counter is exact (not sampled from a
  // GC), so one reading above the ceiling proves a violation.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(run_ms);
  std::int64_t max_seen = 0;
  std::uint64_t samples = 0, violations = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::int64_t live = q.live_bytes();
    if (live > max_seen) max_seen = live;
    if (live > static_cast<std::int64_t>(max_bytes)) ++violations;
    ++samples;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  while (q.dequeue(0).has_value()) {
  }

  const auto st = q.stats();
  const auto pool = q.pool_stats();
  std::printf(
      "== bounded ceiling verification ==\n"
      "policy=%s threads=%u run_ms=%llu ceiling=%zu B\n"
      "samples=%llu max_live=%lld B (%.1f%% of ceiling) violations=%llu\n"
      "admitted=%llu rejected=%llu overwritten=%llu attempts=%llu\n"
      "segments: allocated=%llu recycled=%llu freed=%llu live=%lld\n",
      policy == full_policy::reject ? "reject" : "overwrite_oldest", threads,
      static_cast<unsigned long long>(run_ms), max_bytes,
      static_cast<unsigned long long>(samples),
      static_cast<long long>(max_seen),
      100.0 * static_cast<double>(max_seen) / static_cast<double>(max_bytes),
      static_cast<unsigned long long>(violations),
      static_cast<unsigned long long>(st.admitted),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.overwritten),
      static_cast<unsigned long long>(attempts.load()),
      static_cast<unsigned long long>(pool.segments_allocated),
      static_cast<unsigned long long>(pool.segments_recycled),
      static_cast<unsigned long long>(pool.segments_freed),
      static_cast<long long>(pool.segments_live));
  if (violations != 0) {
    std::fprintf(stderr, "FAIL: live bytes exceeded the ceiling\n");
    return 1;
  }
  std::printf("PASS: ceiling held for the whole run\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kpq;

  cli args(argc, argv);
  if (args.get_flag("help")) {
    std::printf("%s", "flags: --max-size N (default 1000000; paper: 10000000)\n       --threads N (default 8)  --iters N (default 2000)\n       --footprint BYTES (default 1 MiB)  --csv  --json PATH\n       --verify-bound  [--verify-ms N (default 2000)]\n       [--max-bytes N (default 1 MiB)]  [--policy reject|overwrite]\n");
    return 0;
  }
  if (args.get_flag("verify-bound")) {
    const auto vthreads =
        static_cast<std::uint32_t>(args.get_u64("threads", 4));
    const std::uint64_t verify_ms = args.get_u64("verify-ms", 2000);
    const auto max_bytes =
        static_cast<std::size_t>(args.get_u64("max-bytes", 1 << 20));
    const full_policy pol = args.get_str("policy", "reject") == "overwrite"
                                ? full_policy::overwrite_oldest
                                : full_policy::reject;
    return verify_bound(vthreads, verify_ms, max_bytes, pol);
  }
  const std::uint64_t max_size = args.get_u64("max-size", 1000000);
  const auto threads = static_cast<std::uint32_t>(args.get_u64("threads", 8));
  const std::uint64_t iters = args.get_u64("iters", 2000);
  const double footprint = args.get_double("footprint", 1024.0 * 1024.0);
  const bool csv = args.get_flag("csv");
  const std::string json_path = args.get_str("json", "");

  std::printf("== Figure 10: space overhead vs initial queue size ==\n");
  std::printf(
      "(mean of 9 live-byte samples during an %u-thread enqueue-dequeue "
      "run;\n ratios add a %.0f-byte application footprint to emulate the "
      "paper's whole-heap GC measurement)\n",
      threads, footprint);
  std::printf(
      "node sizes: LF %zu B, WF %zu B -> asymptotic raw ratio %.3f "
      "(paper: ~1.5)\n\n",
      sizeof(ms_queue<std::uint64_t>::node), sizeof(wf_node<std::uint64_t>),
      static_cast<double>(sizeof(wf_node<std::uint64_t>)) /
          static_cast<double>(sizeof(ms_queue<std::uint64_t>::node)));

  table t({"queue size", "LF [KiB]", "base WF [KiB]", "opt WF [KiB]",
           "seg WF [KiB]", "base WF/LF", "opt WF/LF", "seg WF/LF",
           "raw base/LF"});

  struct sample_row {
    std::uint64_t size;
    double lf, wf_base, wf_opt, wf_seg;
  };
  std::vector<sample_row> samples;

  for (std::uint64_t size = 1; size <= max_size; size *= 10) {
    const double lf =
        sampled_live_bytes<ms_queue<std::uint64_t>>(size, threads, iters);
    const double wf_base =
        sampled_live_bytes<wf_queue_base<std::uint64_t>>(size, threads, iters);
    const double wf_opt =
        sampled_live_bytes<wf_queue_opt<std::uint64_t>>(size, threads, iters);
    const double wf_seg = sampled_live_bytes<wf_queue_opt_seg<std::uint64_t>>(
        size, threads, iters);
    samples.push_back({size, lf, wf_base, wf_opt, wf_seg});

    t.add_row({std::to_string(size), fmt(lf / 1024.0, 1),
               fmt(wf_base / 1024.0, 1), fmt(wf_opt / 1024.0, 1),
               fmt(wf_seg / 1024.0, 1),
               fmt((wf_base + footprint) / (lf + footprint), 3),
               fmt((wf_opt + footprint) / (lf + footprint), 3),
               fmt((wf_seg + footprint) / (lf + footprint), 3),
               fmt(wf_base / lf, 3)});
  }
  t.print();
  if (csv) {
    std::printf("\n-- csv --\n");
    t.print_csv(stdout);
  }
  if (!json_path.empty()) {
    obs::json_writer w;
    w.begin_object();
    w.key("schema").value("kpq-bench-1");
    w.key("bench").value("Figure 10: space overhead vs initial queue size");
    w.key("params").begin_object();
    w.key("iters").value(iters);
    w.key("threads").value(static_cast<std::uint64_t>(threads));
    w.key("footprint").value(footprint);
    w.end_object();
    w.key("x_label").value("queue_size");
    w.key("series").begin_array();
    const char* names[] = {"LF live bytes", "base WF live bytes",
                           "opt WF live bytes", "seg WF live bytes"};
    for (int s = 0; s < 4; ++s) {
      w.begin_object();
      w.key("name").value(names[s]);
      w.key("points").begin_array();
      for (const sample_row& r : samples) {
        const double v = s == 0   ? r.lf
                         : s == 1 ? r.wf_base
                         : s == 2 ? r.wf_opt
                                  : r.wf_seg;
        w.begin_object();
        w.key("x").value(r.size);
        w.key("mean_bytes").value(obs::finite_or(v));
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputs("\n", f);
      std::fclose(f);
      std::printf("[json written to %s]\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "could not open --json path %s\n",
                   json_path.c_str());
    }
  }
  return 0;
}
