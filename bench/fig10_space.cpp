// Figure 10 reproduction: "Space overhead evaluation as a function of the
// initial queue size" — live heap attributable to the wait-free queues
// relative to the lock-free queue, for initial sizes 10^0 .. 10^7.
//
// The paper sampled JVM GC statistics (size of live objects, nine samples
// during an 8-thread enqueue-dequeue run) and plotted
// (base WF)/(LF) and (opt WF (1+2))/(LF). Its observations:
//   * small queues: ratio ~1, because the heap is dominated by objects that
//     are not part of the queues;
//   * large queues: ratio -> ~1.5, the per-node overhead of the enqTid and
//     deqTid fields.
//
// Our substitution (DESIGN.md §4): an exact allocation counter wired through
// every queue replaces GC sampling. It counts only queue-attributable bytes,
// so to reproduce the paper's *whole-heap* ratio we add a fixed application
// footprint (--footprint bytes, default 1 MiB) to numerator and denominator;
// the raw node-size ratio is also printed. Nine samples are taken during the
// run, exactly like the paper.
//
// Flags: --max-size N (default 1000000; paper reaches 10^7), --threads N
// (default 8), --iters N, --footprint BYTES, --csv, --json PATH
// (machine-readable series, schema kpq-bench-1, x = initial queue size).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/cli.hpp"
#include "harness/mem_tracker.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "obs/export.hpp"
#include "sync/spin_barrier.hpp"

namespace {

using namespace kpq;

/// Mean of nine live-byte samples taken while `threads` workers run the
/// enqueue-dequeue pairs workload on a queue prefilled with `size` elements.
template <typename Q>
double sampled_live_bytes(std::uint64_t size, std::uint32_t threads,
                          std::uint64_t iters) {
  mem_counters mc;
  Q q(threads, &mc);
  for (std::uint64_t i = 0; i < size; ++i) {
    q.enqueue(encode_value(threads - 1, (1ULL << 32) + i), threads - 1);
  }

  spin_barrier barrier(threads + 1);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < iters; ++i) {
        q.enqueue(encode_value(tid, i), tid);
        (void)q.dequeue(tid);
      }
    });
  }
  barrier.arrive_and_wait();

  running_stats samples;
  for (int s = 0; s < 9; ++s) {  // paper: nine GC samples per run
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    samples.add(static_cast<double>(mc.live_bytes()));
  }
  for (auto& w : workers) w.join();
  return samples.finish().mean;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kpq;

  cli args(argc, argv);
  if (args.get_flag("help")) {
    std::printf("%s", "flags: --max-size N (default 1000000; paper: 10000000)\n       --threads N (default 8)  --iters N (default 2000)\n       --footprint BYTES (default 1 MiB)  --csv  --json PATH\n");
    return 0;
  }
  const std::uint64_t max_size = args.get_u64("max-size", 1000000);
  const auto threads = static_cast<std::uint32_t>(args.get_u64("threads", 8));
  const std::uint64_t iters = args.get_u64("iters", 2000);
  const double footprint = args.get_double("footprint", 1024.0 * 1024.0);
  const bool csv = args.get_flag("csv");
  const std::string json_path = args.get_str("json", "");

  std::printf("== Figure 10: space overhead vs initial queue size ==\n");
  std::printf(
      "(mean of 9 live-byte samples during an %u-thread enqueue-dequeue "
      "run;\n ratios add a %.0f-byte application footprint to emulate the "
      "paper's whole-heap GC measurement)\n",
      threads, footprint);
  std::printf(
      "node sizes: LF %zu B, WF %zu B -> asymptotic raw ratio %.3f "
      "(paper: ~1.5)\n\n",
      sizeof(ms_queue<std::uint64_t>::node), sizeof(wf_node<std::uint64_t>),
      static_cast<double>(sizeof(wf_node<std::uint64_t>)) /
          static_cast<double>(sizeof(ms_queue<std::uint64_t>::node)));

  table t({"queue size", "LF [KiB]", "base WF [KiB]", "opt WF [KiB]",
           "base WF/LF", "opt WF/LF", "raw base/LF"});

  struct sample_row {
    std::uint64_t size;
    double lf, wf_base, wf_opt;
  };
  std::vector<sample_row> samples;

  for (std::uint64_t size = 1; size <= max_size; size *= 10) {
    const double lf =
        sampled_live_bytes<ms_queue<std::uint64_t>>(size, threads, iters);
    const double wf_base =
        sampled_live_bytes<wf_queue_base<std::uint64_t>>(size, threads, iters);
    const double wf_opt =
        sampled_live_bytes<wf_queue_opt<std::uint64_t>>(size, threads, iters);
    samples.push_back({size, lf, wf_base, wf_opt});

    t.add_row({std::to_string(size), fmt(lf / 1024.0, 1),
               fmt(wf_base / 1024.0, 1), fmt(wf_opt / 1024.0, 1),
               fmt((wf_base + footprint) / (lf + footprint), 3),
               fmt((wf_opt + footprint) / (lf + footprint), 3),
               fmt(wf_base / lf, 3)});
  }
  t.print();
  if (csv) {
    std::printf("\n-- csv --\n");
    t.print_csv(stdout);
  }
  if (!json_path.empty()) {
    obs::json_writer w;
    w.begin_object();
    w.key("schema").value("kpq-bench-1");
    w.key("bench").value("Figure 10: space overhead vs initial queue size");
    w.key("params").begin_object();
    w.key("iters").value(iters);
    w.key("threads").value(static_cast<std::uint64_t>(threads));
    w.key("footprint").value(footprint);
    w.end_object();
    w.key("x_label").value("queue_size");
    w.key("series").begin_array();
    const char* names[] = {"LF live bytes", "base WF live bytes",
                           "opt WF live bytes"};
    for (int s = 0; s < 3; ++s) {
      w.begin_object();
      w.key("name").value(names[s]);
      w.key("points").begin_array();
      for (const sample_row& r : samples) {
        const double v = s == 0 ? r.lf : (s == 1 ? r.wf_base : r.wf_opt);
        w.begin_object();
        w.key("x").value(r.size);
        w.key("mean_bytes").value(obs::finite_or(v));
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputs("\n", f);
      std::fclose(f);
      std::printf("[json written to %s]\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "could not open --json path %s\n",
                   json_path.c_str());
    }
  }
  return 0;
}
