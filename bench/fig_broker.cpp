// Beyond-paper bench: event-loop broker throughput and request latency
// tails as a function of concurrent coroutine sessions.
//
// The workload is examples/coro_broker.cpp reduced to its measurable core:
// x sessions each submit one echo request into key_hash-sharded wait-free
// queues and suspend; a few worker coroutines co_select every shard, echo,
// and resume the sessions — all on ONE event-loop thread. Measured per
// repetition (queue + loop reconstructed each time, bench_common
// methodology):
//
//   * "broker drain"        — wall seconds from first spawn to a drained
//                             loop (primary metric mean_s; throughput in
//                             req/s is derived and printed in the table).
//   * "broker p99 latency"  — log2-bucketed submit->response latency upper
//                             bound in ns, merged across reps ("mean" key
//                             so the comparator treats lower as better).
//   * "broker p50 latency"  — same, median.
//
// The suspension machinery (waiter_hub enlist/park, coro_resumer claims,
// token re-gifting in co_select) is all ON the measured path: this is the
// number docs/ASYNC.md quotes for front-end overhead per request.
//
// Flags: --sessions N (sweep max, default 10000; sweep = N/8,N/4,N/2,N),
//        --shards N (default 2), --workers N (default 2), --reps N
//        (default 3), --csv, --json PATH (schema kpq-bench-1,
//        x_label "sessions").
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "async/async_queue.hpp"
#include "async/event_loop.hpp"
#include "async/task.hpp"
#include "core/wf_queue.hpp"
#include "harness/cli.hpp"
#include "harness/histogram.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/timing.hpp"
#include "obs/export.hpp"
#include "scale/async_shards.hpp"
#include "scale/shard_policy.hpp"

namespace {

using namespace kpq;

struct request {
  std::uint64_t session = 0;
  std::uint64_t payload = 0;
  std::uint64_t response = 0;
  std::uint64_t submit_ns = 0;
  bool done = false;
  std::coroutine_handle<> h{};
};

struct session_key {
  std::uint64_t operator()(const request* r) const noexcept {
    return r->session;
  }
};

using broker_shards =
    async::async_sharded<wf_queue_opt<request*>, key_hash_shards<session_key>>;

struct echo_awaiter {
  request* r;
  bool await_ready() const noexcept { return r->done; }
  void await_suspend(std::coroutine_handle<> h) noexcept { r->h = h; }
  std::uint64_t await_resume() const noexcept { return r->response; }
};

struct rep_state {
  broker_shards* shards = nullptr;
  std::uint64_t sessions = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  log2_histogram* latency = nullptr;
};

async::task<void> session(rep_state& st, request& r) {
  r.submit_ns = now_ns();
  (void)co_await st.shards->co_enqueue(&r);
  const std::uint64_t echoed = co_await echo_awaiter{&r};
  st.latency->add(now_ns() - r.submit_ns);
  if (echoed != (r.payload ^ 0x5a5aULL)) ++st.errors;
  if (++st.completed == st.sessions) st.shards->close_all();
}

async::task<void> worker(async::event_loop& loop, rep_state& st) {
  for (std::uint64_t drained = 0;; ++drained) {
    auto got = co_await st.shards->co_dequeue_any();
    if (!got.value) co_return;
    request* r = *got.value;
    r->response = r->payload ^ 0x5a5aULL;
    r->done = true;
    loop.post(r->h);
    // Cooperative chunking (docs/ASYNC.md §3): unwind the symmetric-
    // transfer resume chain before it grows with the backlog.
    if ((drained & 0xff) == 0xff) co_await loop.yield();
  }
}

/// One full broker run; returns wall seconds, accumulates latencies.
double run_once(std::uint64_t sessions, std::uint32_t shard_count,
                std::uint32_t workers, log2_histogram& latency,
                std::uint64_t& errors) {
  async::event_loop loop;
  broker_shards shards(shard_count, /*max_threads=*/4);
  shards.set_executor(&loop);
  rep_state st;
  st.shards = &shards;
  st.sessions = sessions;
  st.latency = &latency;
  std::vector<request> requests(sessions);

  const std::uint64_t t0 = now_ns();
  for (std::uint64_t i = 0; i < sessions; ++i) {
    requests[i].session = i;
    requests[i].payload = i * 2654435761ULL + 17;
    loop.spawn(session(st, requests[i]));
  }
  for (std::uint32_t w = 0; w < workers; ++w) loop.spawn(worker(loop, st));
  loop.run();
  const double secs = static_cast<double>(now_ns() - t0) * 1e-9;

  if (st.completed != sessions) ++errors;
  errors += st.errors;
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  cli args(argc, argv);
  if (args.get_flag("help")) {
    std::printf(
        "flags: --sessions N   sweep max (default 10000; x = N/8,N/4,N/2,N)\n"
        "       --shards N     queue shards (default 2)\n"
        "       --workers N    worker coroutines (default 2)\n"
        "       --reps N       repetitions per point (default 3)\n"
        "       --csv          also print a CSV block\n"
        "       --json PATH    machine-readable series (kpq-bench-1)\n");
    return 0;
  }
  const std::uint64_t max_sessions = args.get_u64("sessions", 10000);
  const std::uint32_t shard_count =
      static_cast<std::uint32_t>(args.get_u64("shards", 2));
  const std::uint32_t workers =
      static_cast<std::uint32_t>(args.get_u64("workers", 2));
  const std::uint32_t reps =
      static_cast<std::uint32_t>(args.get_u64("reps", 3));
  const bool csv = args.get_flag("csv");
  const std::string json_path = args.get_str("json", "");

  std::vector<std::uint64_t> sweep;
  for (std::uint64_t d = 8; d >= 1; d /= 2) {
    const std::uint64_t x = max_sessions / d;
    if (x > 0 && (sweep.empty() || sweep.back() != x)) sweep.push_back(x);
  }

  struct row {
    std::uint64_t sessions;
    summary drain;
    std::uint64_t p50_ns, p99_ns;
  };
  std::vector<row> rows;
  std::uint64_t errors = 0;

  for (std::uint64_t sessions : sweep) {
    running_stats drain;
    log2_histogram latency;
    for (std::uint32_t r = 0; r < reps; ++r) {
      drain.add(run_once(sessions, shard_count, workers, latency, errors));
    }
    rows.push_back({sessions, drain.finish(),
                    latency.quantile_upper_bound(0.50),
                    latency.quantile_upper_bound(0.99)});
  }

  std::printf("== Broker: echo round trips over %u shard(s), %u worker "
              "coroutine(s), 1 loop thread ==\n",
              shard_count, workers);
  std::printf("(mean of %u reps; latency = submit->response, log2 buckets)\n",
              reps);
  table t({"sessions", "drain [s]", "sd", "req/s", "p50 [us]", "p99 [us]"});
  for (const row& r : rows) {
    t.add_row({std::to_string(r.sessions), fmt(r.drain.mean, 4),
               fmt(r.drain.stddev, 4),
               fmt(static_cast<double>(r.sessions) / r.drain.mean, 0),
               fmt(static_cast<double>(r.p50_ns) * 1e-3, 1),
               fmt(static_cast<double>(r.p99_ns) * 1e-3, 1)});
  }
  t.print();
  if (csv) {
    std::printf("\n-- csv --\n");
    t.print_csv(stdout);
  }
  if (errors != 0) {
    std::fprintf(stderr, "broker self-check failed: %llu error(s)\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }

  if (!json_path.empty()) {
    obs::json_writer w;
    w.begin_object();
    w.key("schema").value("kpq-bench-1");
    w.key("bench").value(
        "Broker: coroutine echo round trips, throughput and latency tails");
    w.key("params").begin_object();
    w.key("sessions").value(max_sessions);
    w.key("shards").value(static_cast<std::uint64_t>(shard_count));
    w.key("workers").value(static_cast<std::uint64_t>(workers));
    w.key("reps").value(static_cast<std::uint64_t>(reps));
    w.end_object();
    w.key("x_label").value("sessions");
    w.key("series").begin_array();
    w.begin_object();
    w.key("name").value("broker drain");
    w.key("points").begin_array();
    for (const row& r : rows) {
      w.begin_object();
      w.key("x").value(r.sessions);
      w.key("n").value(static_cast<std::uint64_t>(r.drain.n));
      w.key("mean_s").value(obs::finite_or(r.drain.mean));
      w.key("stddev_s").value(obs::finite_or(r.drain.stddev));
      w.key("min_s").value(obs::finite_or(r.drain.min));
      w.key("max_s").value(obs::finite_or(r.drain.max));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    const struct {
      const char* name;
      std::uint64_t row::*field;
    } lat_series[] = {{"broker p50 latency", &row::p50_ns},
                      {"broker p99 latency", &row::p99_ns}};
    for (const auto& s : lat_series) {
      w.begin_object();
      w.key("name").value(s.name);
      w.key("points").begin_array();
      for (const row& r : rows) {
        w.begin_object();
        w.key("x").value(r.sessions);
        w.key("mean").value(static_cast<double>(r.*(s.field)));
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputs("\n", f);
      std::fclose(f);
      std::printf("[json written to %s]\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "could not open --json path %s\n",
                   json_path.c_str());
      return 1;
    }
  }
  return 0;
}
