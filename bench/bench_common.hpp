// Shared drivers for the figure-reproduction benches.
//
// Methodology (paper §4): for each data point, spawn k threads released by a
// barrier, measure total completion time of the whole workload, repeat
// `reps` times and average. The queue is reconstructed for every repetition
// so no state leaks across trials.
//
// Scale note: the paper runs 1,000,000 iterations per thread on 8-core
// Xeons. Defaults here are scaled down so the whole bench suite completes on
// small CI machines; pass --iters/--reps/--threads to restore paper scale
// (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "obs/export.hpp"

namespace kpq::bench {

struct bench_params {
  std::vector<std::uint32_t> threads;
  std::uint64_t iters = 3000;
  std::uint32_t reps = 3;
  bool pin = false;
  bool csv = false;
  std::uint64_t seed = 0x5EED;
  /// When non-empty, the figure also writes its series to this path as JSON
  /// (schema: scripts/bench_schema.json, validated in CI).
  std::string json_path;
};

inline bench_params parse_params(int argc, char** argv,
                                 std::uint64_t default_iters) {
  cli args(argc, argv);
  if (args.get_flag("help")) {
    std::printf(
        "flags: --threads N | --full (sweep 1..16)   thread counts\n"
        "       --iters N      iterations per thread (default %llu;\n"
        "                      paper scale: 1000000)\n"
        "       --reps N       repetitions per data point (default 3)\n"
        "       --seed S       workload RNG seed\n"
        "       --pin          pin worker i to cpu i %% ncpu\n"
        "       --csv          also print a CSV block\n"
        "       --json PATH    write the series as machine-readable JSON\n",
        static_cast<unsigned long long>(default_iters));
    std::exit(0);
  }
  bench_params p;
  p.iters = args.get_u64("iters", default_iters);
  p.reps = static_cast<std::uint32_t>(args.get_u64("reps", 3));
  p.pin = args.get_flag("pin");
  p.csv = args.get_flag("csv");
  p.seed = args.get_u64("seed", 0x5EED);
  p.json_path = args.get_str("json", "");
  if (args.get_flag("full")) {
    for (std::uint32_t t = 1; t <= 16; ++t) p.threads.push_back(t);
  } else if (std::uint64_t t = args.get_u64("threads", 0); t != 0) {
    p.threads.push_back(static_cast<std::uint32_t>(t));
  } else {
    p.threads = {1, 2, 4, 8, 12, 16};  // paper sweeps 1..16
  }
  return p;
}

/// enqueue-dequeue pairs benchmark (paper Figures 7 and 9): queue starts
/// empty; every thread alternates enqueue and dequeue, `iters` pairs each.
template <typename Q>
summary measure_pairs(std::uint32_t threads, const bench_params& p) {
  std::unique_ptr<Q> q;
  run_config cfg;
  cfg.threads = threads;
  cfg.reps = p.reps;
  cfg.pin = p.pin;
  return run_trials(
      cfg, [&](std::uint32_t) { q = std::make_unique<Q>(threads); },
      [&](std::uint32_t tid) {
        for (std::uint64_t i = 0; i < p.iters; ++i) {
          q->enqueue(encode_value(tid, i), tid);
          (void)q->dequeue(tid);
        }
      });
}

/// 50% enqueues benchmark (paper Figure 8): queue prefilled with 1000
/// elements; every thread performs `iters` operations, each enqueue or
/// dequeue with equal probability.
template <typename Q>
summary measure_fifty(std::uint32_t threads, const bench_params& p,
                      std::uint64_t prefill = 1000) {
  std::unique_ptr<Q> q;
  run_config cfg;
  cfg.threads = threads;
  cfg.reps = p.reps;
  cfg.pin = p.pin;
  return run_trials(
      cfg,
      [&](std::uint32_t) {
        q = std::make_unique<Q>(threads);
        for (std::uint64_t i = 0; i < prefill; ++i) {
          q->enqueue(encode_value(threads - 1, (1ULL << 32) + i), threads - 1);
        }
      },
      [&](std::uint32_t tid) {
        fast_rng rng = thread_stream(p.seed, tid);
        std::uint64_t seq = 0;
        for (std::uint64_t i = 0; i < p.iters; ++i) {
          if (rng.coin()) {
            q->enqueue(encode_value(tid, seq++), tid);
          } else {
            (void)q->dequeue(tid);
          }
        }
      });
}

/// One figure = one table: rows are thread counts, columns are algorithm
/// series (mean seconds over reps, like the paper's y-axis).
class figure {
 public:
  figure(std::string title, const bench_params& p) : title_(std::move(title)), p_(p) {}

  void add_series(const std::string& name) { names_.push_back(name); }
  void add_cell(summary s) { cells_.push_back(s); }

  /// Call once per thread count after adding one cell per series.
  void print(const std::vector<std::uint32_t>& threads) const {
    std::printf("== %s ==\n", title_.c_str());
    std::printf("(mean total completion time over %u reps, %llu iters/thread%s)\n",
                p_.reps, static_cast<unsigned long long>(p_.iters),
                p_.pin ? ", pinned" : "");
    std::vector<std::string> headers{"threads"};
    for (const auto& n : names_) {
      headers.push_back(n + " [s]");
      headers.push_back(n + " sd");
    }
    table t(headers);
    std::size_t idx = 0;
    for (std::uint32_t th : threads) {
      std::vector<std::string> row{std::to_string(th)};
      for (std::size_t s = 0; s < names_.size(); ++s) {
        const summary& sm = cells_.at(idx++);
        row.push_back(fmt(sm.mean, 4));
        row.push_back(fmt(sm.stddev, 4));
      }
      t.add_row(std::move(row));
    }
    t.print();
    if (p_.csv) {
      std::printf("\n-- csv --\n");
      t.print_csv(stdout);
    }
    if (!p_.json_path.empty()) write_json(threads);
    std::printf("\n");
  }

  /// Machine-readable emission (--json): one document per figure, schema
  /// "kpq-bench-1" (scripts/bench_schema.json). Cells are laid out exactly
  /// as print() consumes them: per thread count, one summary per series.
  void write_json(const std::vector<std::uint32_t>& threads) const {
    obs::json_writer w;
    w.begin_object();
    w.key("schema").value("kpq-bench-1");
    w.key("bench").value(title_);
    w.key("params").begin_object();
    w.key("iters").value(static_cast<std::uint64_t>(p_.iters));
    w.key("reps").value(static_cast<std::uint64_t>(p_.reps));
    w.key("pin").value(p_.pin);
    w.key("seed").value(static_cast<std::uint64_t>(p_.seed));
    w.end_object();
    w.key("x_label").value("threads");
    w.key("series").begin_array();
    for (std::size_t s = 0; s < names_.size(); ++s) {
      w.begin_object();
      w.key("name").value(names_[s]);
      w.key("points").begin_array();
      for (std::size_t ti = 0; ti < threads.size(); ++ti) {
        const std::size_t idx = ti * names_.size() + s;
        if (idx >= cells_.size()) break;
        const summary& sm = cells_[idx];
        w.begin_object();
        w.key("x").value(static_cast<std::uint64_t>(threads[ti]));
        w.key("n").value(static_cast<std::uint64_t>(sm.n));
        w.key("mean_s").value(obs::finite_or(sm.mean));
        w.key("stddev_s").value(obs::finite_or(sm.stddev));
        w.key("min_s").value(obs::finite_or(sm.min));
        w.key("max_s").value(obs::finite_or(sm.max));
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (std::FILE* f = std::fopen(p_.json_path.c_str(), "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputs("\n", f);
      std::fclose(f);
      std::printf("[json written to %s]\n", p_.json_path.c_str());
    } else {
      std::fprintf(stderr, "could not open --json path %s\n",
                   p_.json_path.c_str());
    }
  }

 private:
  std::string title_;
  bench_params p_;
  std::vector<std::string> names_;
  std::vector<summary> cells_;
};

}  // namespace kpq::bench
