// Item-residency tracking: what it costs, and what it measures.
//
// Two questions, one binary (companion to fig_obs_overhead, which answers
// the same pair of questions for the trace rings):
//
//   1. What does the stamp cost? Each variant runs the enqueue-dequeue
//      pairs workload twice IN THE SAME BUILD: once with the default
//      options (no stamp field exists — the node keeps the paper's 24-byte
//      shape and every residency hook folds away under `if constexpr`) and
//      once with residency compiled in per-type (wf_options_residency /
//      fps_options_residency: 32-byte nodes, one rdtsc per enqueue, one per
//      dequeued hit plus a relaxed histogram add). The "overhead %" column
//      is the acceptance gate.
//
//   2. What does residency look like? The pairs workload keeps the queue
//      nearly empty (items dequeue immediately), so a second phase runs a
//      burst-drain: every thread enqueues its full quota, then the threads
//      drain the backlog. Items stamped early sit behind the whole burst —
//      a wide, honest residency distribution, reported in calibrated ns
//      (p50/p90/p99/max) per thread count and exported via the registry.
//
// Series: opt WF (1+2) and FPS opt WF, each res-off/res-on.
//
// Flags: --threads N | --full, --iters N, --reps N, --pin, --csv, --seed S,
//        --json PATH (kpq-bench-1 + a "derived" block of residency
//        quantiles and overhead).
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "obs/calibrate.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/residency.hpp"

namespace {

using namespace kpq;
using namespace kpq::bench;

using opt_wf = wf_queue_opt<std::uint64_t>;
using opt_wf_res = wf_queue_opt_residency<std::uint64_t>;
using fps_wf = wf_queue_fps<std::uint64_t>;
using fps_wf_res = wf_queue_fps<std::uint64_t, hp_domain, fps_options_residency>;

/// Burst-drain at one thread count: every thread enqueues `iters` items,
/// then the pool drains the backlog. Returns the queue so the caller can
/// read its residency histogram (covers the final repetition only — the
/// probe is reset in the per-rep setup, like the trace rings in
/// fig_obs_overhead).
template <typename Q>
summary measure_burst_drain(std::uint32_t threads, const bench_params& p,
                            std::unique_ptr<Q>& q_out) {
  run_config cfg;
  cfg.threads = threads;
  cfg.reps = p.reps;
  cfg.pin = p.pin;
  const summary s = run_trials(
      cfg, [&](std::uint32_t) { q_out = std::make_unique<Q>(threads); },
      [&](std::uint32_t tid) {
        for (std::uint64_t i = 0; i < p.iters; ++i) {
          q_out->enqueue(encode_value(tid, i), tid);
        }
        while (q_out->dequeue(tid).has_value()) {
        }
      });
  return s;
}

struct variant_result {
  summary off;
  summary on;
  double overhead_pct() const {
    return off.mean > 0.0 ? 100.0 * (on.mean - off.mean) / off.mean : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench_params p = parse_params(argc, argv, /*default_iters=*/20000);
  const std::string json_path = p.json_path;
  p.json_path.clear();

  const obs::tick_calibration cal = obs::calibrate_ticks();

  std::printf("== Item residency: stamped vs unstamped ==\n");
  std::printf("(tick rate ~%.2f GHz; unstamped node %zu B, stamped %zu B)\n\n",
              cal.tick_hz / 1e9, sizeof(wf_node<std::uint64_t>),
              sizeof(wf_node<std::uint64_t, true>));

  const char* names[] = {"opt WF (1+2)", "FPS opt WF"};
  table t({"threads", "series", "res-off [s]", "res-on [s]", "overhead %"});

  struct cell {
    std::uint32_t threads;
    int series;
    variant_result r;
  };
  std::vector<cell> cells;

  for (std::uint32_t th : p.threads) {
    for (int s = 0; s < 2; ++s) {
      variant_result r;
      if (s == 0) {
        r.off = measure_pairs<opt_wf>(th, p);
        r.on = measure_pairs<opt_wf_res>(th, p);
      } else {
        r.off = measure_pairs<fps_wf>(th, p);
        r.on = measure_pairs<fps_wf_res>(th, p);
      }
      cells.push_back({th, s, r});
      t.add_row({std::to_string(th), names[s], fmt(r.off.mean, 4),
                 fmt(r.on.mean, 4), fmt(r.overhead_pct(), 1)});
    }
  }
  t.print();

  // Burst-drain residency distribution per thread count (opt WF res-on).
  std::printf("\n-- burst-drain residency (each thread enqueues its full "
              "quota, then the pool drains; final repetition) --\n");
  table rt({"threads", "samples", "p50 [us]", "p90 [us]", "p99 [us]",
            "max [us]"});
  struct rcell {
    std::uint32_t threads;
    summary drain;
    obs::residency_report report;
  };
  std::vector<rcell> rcells;
  for (std::uint32_t th : p.threads) {
    std::unique_ptr<opt_wf_res> q;
    const summary s = measure_burst_drain<opt_wf_res>(th, p, q);
    const obs::residency_report rep =
        obs::make_residency_report(q->residency_histogram(), cal);
    rcells.push_back({th, s, rep});
    rt.add_row({std::to_string(th), std::to_string(rep.samples),
                fmt(rep.p50_ns() / 1e3, 1), fmt(rep.p90_ns() / 1e3, 1),
                fmt(rep.p99_ns() / 1e3, 1), fmt(rep.max_ns() / 1e3, 1)});
  }
  rt.print();
  std::printf("\n(quantiles are log2-bucket upper bounds in calibrated ns; "
              "the burst keeps every item queued behind the\n whole "
              "backlog, so residency here is workload-dominated — the "
              "pairs workload above is the overhead gate)\n");

  if (p.csv) {
    std::printf("-- csv --\n");
    t.print_csv(stdout);
    std::printf("\n");
  }

  if (!json_path.empty()) {
    obs::json_writer w;
    w.begin_object();
    w.key("schema").value("kpq-bench-1");
    w.key("bench").value("Item residency: stamped vs unstamped");
    w.key("params").begin_object();
    w.key("iters").value(static_cast<std::uint64_t>(p.iters));
    w.key("reps").value(static_cast<std::uint64_t>(p.reps));
    w.key("pin").value(p.pin);
    w.key("seed").value(static_cast<std::uint64_t>(p.seed));
    w.key("tick_hz").value(cal.tick_hz);
    w.end_object();
    w.key("x_label").value("threads");
    w.key("series").begin_array();
    for (int s = 0; s < 2; ++s) {
      for (int on = 0; on < 2; ++on) {
        w.begin_object();
        w.key("name").value(std::string(names[s]) +
                            (on ? " res-on" : " res-off"));
        w.key("points").begin_array();
        for (const cell& c : cells) {
          if (c.series != s) continue;
          const summary& sm = on ? c.r.on : c.r.off;
          w.begin_object();
          w.key("x").value(static_cast<std::uint64_t>(c.threads));
          w.key("n").value(static_cast<std::uint64_t>(sm.n));
          w.key("mean_s").value(obs::finite_or(sm.mean));
          w.key("stddev_s").value(obs::finite_or(sm.stddev));
          w.key("min_s").value(obs::finite_or(sm.min));
          w.key("max_s").value(obs::finite_or(sm.max));
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
    }
    w.end_array();
    // Derived block: per-thread-count overhead plus the burst-drain
    // residency quantiles, flattened through the registry exporter.
    w.key("derived").begin_array();
    for (const cell& c : cells) {
      w.begin_object();
      w.key("series").value(names[c.series]);
      w.key("threads").value(static_cast<std::uint64_t>(c.threads));
      w.key("overhead_pct").value(obs::finite_or(c.r.overhead_pct()));
      w.end_object();
    }
    for (const rcell& c : rcells) {
      obs::metrics_snapshot snap;
      obs::append_metrics(snap, "residency", c.report);
      w.begin_object();
      w.key("series").value("burst-drain residency");
      w.key("threads").value(static_cast<std::uint64_t>(c.threads));
      w.key("drain_mean_s").value(obs::finite_or(c.drain.mean));
      for (const obs::metric& m : snap) {
        w.key(m.name).value(m.value);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputs("\n", f);
      std::fclose(f);
      std::printf("[json written to %s]\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "could not open --json path %s\n",
                   json_path.c_str());
    }
  }
  return 0;
}
