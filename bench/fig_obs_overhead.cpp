// Observability overhead + derived wait-freedom metrics (beyond the paper).
//
// Two questions, one binary:
//
//   1. What does the tracing layer itself cost? Each wait-free variant runs
//      the enqueue-dequeue pairs workload twice IN THE SAME BUILD: once with
//      the default recorder (no_trace unless the build defines KPQ_TRACE —
//      every hook site removed by `if constexpr`, codegen identical to a
//      hook-free build) and once with tracing forced on per-type
//      (wf_options_traced). The "overhead%" column is the acceptance gate:
//      the untraced series must sit within noise of the seed, and the
//      traced series quantifies what you pay for per-operation evidence.
//
//   2. What do the traces show? After each traced run the global rings are
//      drained and analyzed (obs/wf_metrics.hpp): helping-latency
//      histogram, phase-lag distribution, ops-helped-per-op — the
//      per-operation shape of the wait-freedom claim, per variant, printed
//      and (with --json) exported via the metrics registry.
//
// Series: base WF (help_all + scan_max_phase), opt WF (1+2)
// (help_one + fetch_add_phase), and the 4-shard front-end over opt WF.
//
// Flags: --threads N | --full, --iters N, --reps N, --pin, --csv, --seed S,
//        --json PATH (overhead series per kpq-bench-1 + a "derived" block
//        with the per-variant trace metrics).
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/wf_queue.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace_ring.hpp"
#include "obs/wf_metrics.hpp"
#include "scale/sharded_queue.hpp"
#include "storage/bounded_wf_queue.hpp"

namespace {

using namespace kpq;
using namespace kpq::bench;

// Traced twins of the paper variants: identical policies, recorder forced on.
using base_wf = wf_queue_base<std::uint64_t>;
using base_wf_traced = wf_queue<std::uint64_t, help_all, scan_max_phase,
                               hp_domain, wf_options_traced>;
using opt_wf = wf_queue_opt<std::uint64_t>;
using opt_wf_traced = wf_queue<std::uint64_t, help_one, fetch_add_phase,
                              hp_domain, wf_options_traced>;
using sharded_opt = sharded_queue<opt_wf, affinity_shards>;
using sharded_opt_traced = sharded_queue<opt_wf_traced, affinity_shards>;

/// measure_pairs with two twists: optional 4-shard construction, and a
/// global-trace reset in the per-rep setup. The reset makes the drained
/// trace cover exactly the FINAL repetition — each rep reconstructs the
/// queue, so phase numbers restart, and mixing reps would corrupt the
/// phase-lag frontier.
template <typename Q, bool Sharded>
summary measure_pairs_obs(std::uint32_t threads, const bench_params& p) {
  std::unique_ptr<Q> q;
  run_config cfg;
  cfg.threads = threads;
  cfg.reps = p.reps;
  cfg.pin = p.pin;
  return run_trials(
      cfg,
      [&](std::uint32_t) {
        obs::global_trace().reset();
        if constexpr (Sharded) {
          q = std::make_unique<Q>(4, threads);
        } else {
          q = std::make_unique<Q>(threads);
        }
      },
      [&](std::uint32_t tid) {
        for (std::uint64_t i = 0; i < p.iters; ++i) {
          q->enqueue(encode_value(tid, i), tid);
          (void)q->dequeue(tid);
        }
      });
}

struct variant_result {
  summary untraced;
  summary traced;
  obs::wf_trace_report report;  // from the traced run's final repetition
  double overhead_pct() const {
    return untraced.mean > 0.0
               ? 100.0 * (traced.mean - untraced.mean) / untraced.mean
               : 0.0;
  }
};

void print_report(const char* name, const obs::wf_trace_report& r,
                  double ticks_per_ns) {
  std::printf("-- %s: derived wait-freedom metrics (traced run) --\n", name);
  std::printf(
      "ops=%llu (enq %llu, deq %llu, empty %llu)  help episodes=%llu "
      "(%.3f/op)  retires=%llu  reclaim scans=%llu  steals=%llu  "
      "dropped events=%llu\n",
      static_cast<unsigned long long>(r.ops()),
      static_cast<unsigned long long>(r.enq_ops),
      static_cast<unsigned long long>(r.deq_ops),
      static_cast<unsigned long long>(r.empty_deqs),
      static_cast<unsigned long long>(r.help_episodes), r.helped_per_op(),
      static_cast<unsigned long long>(r.retires),
      static_cast<unsigned long long>(r.reclaim_scans),
      static_cast<unsigned long long>(r.steals),
      static_cast<unsigned long long>(r.dropped_events));
  auto ns = [&](double q) {
    return static_cast<double>(r.help_latency.quantile_upper_bound(q)) /
           ticks_per_ns;
  };
  if (r.help_episodes > 0) {
    std::printf(
        "helping latency (<= ns): p50 %.0f  p90 %.0f  p99 %.0f  p100 %.0f\n",
        ns(0.5), ns(0.9), ns(0.99), ns(1.0));
  } else {
    std::printf("helping latency: no episodes recorded\n");
  }
  std::printf("phase lag (phases, <=): p50 %llu  p90 %llu  p99 %llu  "
              "p100 %llu\n\n",
              static_cast<unsigned long long>(
                  r.phase_lag.quantile_upper_bound(0.5)),
              static_cast<unsigned long long>(
                  r.phase_lag.quantile_upper_bound(0.9)),
              static_cast<unsigned long long>(
                  r.phase_lag.quantile_upper_bound(0.99)),
              static_cast<unsigned long long>(
                  r.phase_lag.quantile_upper_bound(1.0)));
}

}  // namespace

int main(int argc, char** argv) {
  bench_params p = parse_params(argc, argv, /*default_iters=*/20000);
  const std::string json_path = p.json_path;
  p.json_path.clear();  // the figure table is embedded in our own document

  const double tick_hz = obs::estimate_tick_hz();
  const double ticks_per_ns = tick_hz / 1e9;

  std::printf("== Observability overhead: traced vs untraced ==\n");
  std::printf("(tick rate ~%.2f GHz; default recorder is %s in this build)\n\n",
              tick_hz / 1e9,
              obs::default_trace::enabled ? "ring_trace (KPQ_TRACE on)"
                                          : "no_trace (compiled out)");

  const char* names[] = {"base WF", "opt WF (1+2)", "shard x4 (opt WF)"};
  table t({"threads", "series", "untraced [s]", "traced [s]", "overhead %",
           "help/op", "lag p99", "help p99 [ns]"});

  struct cell {
    std::uint32_t threads;
    int series;
    variant_result r;
  };
  std::vector<cell> cells;

  for (std::uint32_t th : p.threads) {
    for (int s = 0; s < 3; ++s) {
      variant_result r;
      if (s == 0) {
        r.untraced = measure_pairs<base_wf>(th, p);
        r.traced = measure_pairs_obs<base_wf_traced, false>(th, p);
      } else if (s == 1) {
        r.untraced = measure_pairs<opt_wf>(th, p);
        r.traced = measure_pairs_obs<opt_wf_traced, false>(th, p);
      } else {
        r.untraced = measure_pairs_obs<sharded_opt, true>(th, p);
        r.traced = measure_pairs_obs<sharded_opt_traced, true>(th, p);
      }
      std::uint64_t dropped = 0;
      const auto events = obs::global_trace().drain_all(&dropped);
      r.report = obs::analyze_trace(events, dropped, th);
      cells.push_back({th, s, r});
      t.add_row(
          {std::to_string(th), names[s], fmt(r.untraced.mean, 4),
           fmt(r.traced.mean, 4), fmt(r.overhead_pct(), 1),
           fmt(r.report.helped_per_op(), 3),
           std::to_string(r.report.phase_lag.quantile_upper_bound(0.99)),
           fmt(static_cast<double>(
                   r.report.help_latency.quantile_upper_bound(0.99)) /
                   ticks_per_ns,
               0)});
    }
  }
  t.print();
  std::printf("\n(trace analysis covers the final repetition's retained "
              "events — nonzero 'dropped events' means the rings wrapped "
              "and\n the distributions describe the rep's tail, which at "
              "steady state is representative)\n\n");

  // Full per-variant distributions for the LAST thread count (the most
  // contended point — the one EXPERIMENTS.md records).
  const std::uint32_t last_th = p.threads.back();
  for (const cell& c : cells) {
    if (c.threads == last_th) {
      print_report(names[c.series], c.r.report, ticks_per_ns);
    }
  }

  // Segment-pool occupancy through the metrics registry (the scrape path a
  // long-running process would expose): run the pairs workload on a bounded
  // segment-storage queue at the last thread count, register its pool,
  // admission, and memory counters, and print one registry snapshot in
  // Prometheus exposition format.
  bounded_wf_queue<std::uint64_t> bq(
      last_th, {.max_bytes = std::size_t{1} << 22});
  {
    std::vector<std::thread> ws;
    for (std::uint32_t tid = 0; tid < last_th; ++tid) {
      ws.emplace_back([&, tid] {
        for (std::uint64_t i = 0; i < p.iters; ++i) {
          bq.enqueue(encode_value(tid, i), tid);
          (void)bq.dequeue(tid);
        }
      });
    }
    for (auto& w : ws) w.join();
  }
  obs::registry reg;
  const auto pool = bq.pool_stats();
  const auto admissions = bq.stats();
  reg.add("kpq_segment_pool", pool);
  reg.add("kpq_bounded", admissions);
  reg.add("kpq_bounded_mem", bq.memory());
  const obs::metrics_snapshot pool_snap = reg.snapshot();
  std::printf("-- segment pool occupancy (registry snapshot, %u-thread "
              "bounded seg WF run) --\n%s\n",
              last_th, obs::to_prometheus(pool_snap).c_str());

  if (p.csv) {
    std::printf("-- csv --\n");
    t.print_csv(stdout);
    std::printf("\n");
  }

  if (!json_path.empty()) {
    obs::json_writer w;
    w.begin_object();
    w.key("schema").value("kpq-bench-1");
    w.key("bench").value("Observability overhead: traced vs untraced");
    w.key("params").begin_object();
    w.key("iters").value(static_cast<std::uint64_t>(p.iters));
    w.key("reps").value(static_cast<std::uint64_t>(p.reps));
    w.key("pin").value(p.pin);
    w.key("seed").value(static_cast<std::uint64_t>(p.seed));
    w.key("tick_hz").value(tick_hz);
    w.end_object();
    w.key("x_label").value("threads");
    w.key("series").begin_array();
    for (int s = 0; s < 3; ++s) {
      for (int traced = 0; traced < 2; ++traced) {
        w.begin_object();
        w.key("name").value(std::string(names[s]) +
                            (traced ? " traced" : " untraced"));
        w.key("points").begin_array();
        for (const cell& c : cells) {
          if (c.series != s) continue;
          const summary& sm = traced ? c.r.traced : c.r.untraced;
          w.begin_object();
          w.key("x").value(static_cast<std::uint64_t>(c.threads));
          w.key("n").value(static_cast<std::uint64_t>(sm.n));
          w.key("mean_s").value(obs::finite_or(sm.mean));
          w.key("stddev_s").value(obs::finite_or(sm.stddev));
          w.key("min_s").value(obs::finite_or(sm.min));
          w.key("max_s").value(obs::finite_or(sm.max));
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
    }
    w.end_array();
    // Derived trace metrics, flattened through the registry exporter: one
    // metrics object per (series, threads) pair.
    w.key("derived").begin_array();
    for (const cell& c : cells) {
      obs::metrics_snapshot snap;
      obs::append_metrics(snap, "trace", c.r.report);
      w.begin_object();
      w.key("series").value(names[c.series]);
      w.key("threads").value(static_cast<std::uint64_t>(c.threads));
      w.key("overhead_pct").value(obs::finite_or(c.r.overhead_pct()));
      for (const obs::metric& m : snap) {
        w.key(m.name).value(m.value);
      }
      w.end_object();
    }
    w.end_array();
    // The segment-pool registry snapshot, flattened (same names as the
    // Prometheus exposition above).
    w.key("segment_pool").begin_object();
    for (const obs::metric& m : pool_snap) {
      w.key(m.name).value(m.value);
    }
    w.end_object();
    w.end_object();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputs("\n", f);
      std::fclose(f);
      std::printf("[json written to %s]\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "could not open --json path %s\n",
                   json_path.c_str());
    }
  }
  return 0;
}
