// Beyond-paper bench: how much helping actually happens.
//
// The paper explains its Figure 9 result by helping dynamics — the base
// algorithm lets "all threads try to help the same (or a few) thread(s),
// wasting the total processing time", which optimization 1 suppresses. This
// bench measures those dynamics directly with the stats-instrumented queue:
// for each helping policy, the fraction of operations whose completion step
// was executed by a thread other than the owner, plus wasted CAS work.
//
// Expected shape: helped-op fraction and failed-CAS counts are highest with
// help_all (everyone piles on), drop sharply with help_one/help_chunk, and
// all policies help more as the thread count (and hence preemption inside
// operations) grows.
//
// Flags: --iters N (pairs/thread), --threads N | --full, --reps N, --csv.
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/wf_queue.hpp"
#include "sync/spin_barrier.hpp"

namespace {

using namespace kpq;
using namespace kpq::bench;

struct rate_row {
  double helped_pct;       // completions done for another thread / total ops
  double desc_cas_fail_per_kop;
  double link_cas_fail_per_kop;
};

template <typename HelpPolicy>
rate_row measure(std::uint32_t threads, std::uint64_t iters) {
  using Q = wf_queue<std::uint64_t, HelpPolicy, fetch_add_phase, hp_domain,
                     wf_options_stats>;
  Q q(threads);
  spin_barrier barrier(threads);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < iters; ++i) {
        q.enqueue(encode_value(tid, i), tid);
        (void)q.dequeue(tid);
      }
    });
  }
  for (auto& w : workers) w.join();

  const wf_counters c = q.aggregate_counters();
  const double ops = static_cast<double>(c.enq_ops + c.deq_ops);
  const double helped = static_cast<double>(c.helped_enq_completions +
                                            c.helped_deq_completions);
  return {100.0 * helped / ops,
          1000.0 * static_cast<double>(c.desc_cas_failures) / ops,
          1000.0 * static_cast<double>(c.link_cas_failures) / ops};
}

}  // namespace

int main(int argc, char** argv) {
  bench_params p = parse_params(argc, argv, /*default_iters=*/10000);

  std::printf("== Helping dynamics by policy (enqueue-dequeue pairs, %llu/thread) ==\n",
              static_cast<unsigned long long>(p.iters));
  std::printf("helped%% = operations whose completion CAS was won by a non-owner\n\n");

  table t({"threads", "help_all helped%", "help_one helped%",
           "help_chunk<4> helped%", "help_all descCASfail/kop",
           "help_one descCASfail/kop"});
  for (std::uint32_t th : p.threads) {
    const rate_row all = measure<help_all>(th, p.iters);
    const rate_row one = measure<help_one>(th, p.iters);
    const rate_row chunk = measure<help_chunk<4>>(th, p.iters);
    t.add_row({std::to_string(th), fmt(all.helped_pct, 2),
               fmt(one.helped_pct, 2), fmt(chunk.helped_pct, 2),
               fmt(all.desc_cas_fail_per_kop, 2),
               fmt(one.desc_cas_fail_per_kop, 2)});
  }
  t.print();
  if (p.csv) {
    std::printf("\n-- csv --\n");
    t.print_csv(stdout);
  }
  return 0;
}
