// Beyond-paper bench: the related-work landscape of §2, measured.
//
// The paper's positioning claims, as numbers:
//   * universal constructions are "hardly considered practical" — Herlihy's
//     wait-free universal queue vs the KP queue on the same MPMC workload
//     (expect orders of magnitude, growing with history length);
//   * restricted-concurrency wait-free queues are fast but narrow —
//     Lamport's SPSC queue vs the KP queue on a 1-producer/1-consumer
//     workload (the only shape Lamport supports).
//
// Flags: --ops N (universal workload size; replay is O(history), keep
// small), --iters N (SPSC transfer count), --csv.
#include <cstdint>
#include <optional>
#include <thread>

#include "baseline/spsc_queue.hpp"
#include "baseline/universal_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/cli.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/timing.hpp"
#include "harness/workload.hpp"
#include "sync/spin_barrier.hpp"

namespace {

using namespace kpq;

template <typename Q>
double mpmc_pairs_seconds(std::uint32_t threads, std::uint64_t ops) {
  Q q(threads);
  spin_barrier barrier(threads + 1);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < ops; ++i) {
        q.enqueue(encode_value(tid, i), tid);
        (void)q.dequeue(tid);
      }
    });
  }
  barrier.arrive_and_wait();
  stopwatch sw;
  for (auto& w : workers) w.join();
  return sw.elapsed_s();
}

double spsc_lamport_seconds(std::uint64_t items) {
  spsc_queue<std::uint64_t> q(1024);
  stopwatch sw;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < items;) {
      if (q.enqueue(i)) {
        ++i;
      } else {
        std::this_thread::yield();  // full: hand the core to the consumer
      }
    }
  });
  std::uint64_t got = 0;
  while (got < items) {
    if (q.dequeue()) {
      ++got;
    } else {
      std::this_thread::yield();  // empty: hand the core to the producer
    }
  }
  producer.join();
  return sw.elapsed_s();
}

double spsc_kp_seconds(std::uint64_t items) {
  wf_queue_opt<std::uint64_t> q(2);
  stopwatch sw;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < items; ++i) q.enqueue(i, 0);
  });
  std::uint64_t got = 0;
  while (got < items) {
    if (q.dequeue(1)) {
      ++got;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  return sw.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kpq;

  cli args(argc, argv);
  if (args.get_flag("help")) {
    std::printf("%s", "flags: --ops N (universal workload, default 2000)\n       --iters N (SPSC transfer count, default 200000)  --csv\n");
    return 0;
  }
  const std::uint64_t ops = args.get_u64("ops", 2000);
  const std::uint64_t items = args.get_u64("iters", 200000);
  const bool csv = args.get_flag("csv");

  std::printf("== Related-work landscape (paper section 2, measured) ==\n\n");

  {
    std::printf(
        "-- Universal construction vs KP queue: 4-thread MPMC pairs --\n"
        "(per-op cost of the universal construction grows with history "
        "length — the O(history)\n replay the paper's section 2 calls "
        "impractical; the KP queue's per-op cost is flat)\n");
    table t({"pairs/thread", "universal [s]", "univ per-op [us]", "KP [s]",
             "KP per-op [us]", "slowdown"});
    for (std::uint64_t k : {ops / 4, ops / 2, ops}) {
      if (k == 0) continue;
      const double uni =
          mpmc_pairs_seconds<universal_queue<std::uint64_t>>(4, k);
      const double kp =
          mpmc_pairs_seconds<wf_queue_opt<std::uint64_t>>(4, k);
      const double total_ops = 4.0 * 2.0 * static_cast<double>(k);
      t.add_row({std::to_string(k), fmt(uni, 4),
                 fmt(uni / total_ops * 1e6, 2), fmt(kp, 4),
                 fmt(kp / total_ops * 1e6, 2), fmt(uni / kp, 1)});
    }
    t.print();
    if (csv) t.print_csv(stdout);
    std::printf("\n");
  }

  {
    std::printf(
        "-- Lamport SPSC vs KP queue: 1 producer, 1 consumer, %llu items --\n",
        static_cast<unsigned long long>(items));
    table t({"algorithm", "time [s]", "Mitems/s", "concurrency supported"});
    const double lam = spsc_lamport_seconds(items);
    const double kp = spsc_kp_seconds(items);
    t.add_row({"Lamport SPSC (wait-free)", fmt(lam, 4),
               fmt(static_cast<double>(items) / lam / 1e6, 2),
               "1 enq, 1 deq, bounded"});
    t.add_row({"KP opt WF (1+2)", fmt(kp, 4),
               fmt(static_cast<double>(items) / kp / 1e6, 2),
               "N enq, N deq, unbounded"});
    t.print();
    if (csv) t.print_csv(stdout);
    std::printf(
        "(the KP queue pays for generality; Lamport's queue cannot run the "
        "other benches at all)\n");
  }
  return 0;
}
