// Beyond-paper bench: operation visibility under injected stalls — the
// wait-freedom guarantee made measurable on any machine.
//
// The paper motivates wait-freedom with heterogeneous/descheduled threads
// (§1). The total-completion-time benchmarks (Figures 7-9) only show the
// guarantee's *cost*; this bench shows its *payoff*, in a controlled way the
// paper's multi-OS comparison could only sample:
//
// A producer thread starts an enqueue and is then stalled for T
// milliseconds at the operation's most vulnerable point:
//   * KP queue:   right after publishing its operation descriptor;
//   * MS queue:   right after "logically starting" (node allocated, nothing
//                 published — the lock-free algorithm has no announce step,
//                 which is precisely the point).
// A consumer polls the queue and records when the value becomes dequeuable.
//
// Expected: for the wait-free queue the visibility latency is the
// consumer's reaction time, independent of T (the consumer helps the
// stalled enqueue to completion); for the lock-free queue it tracks T
// one-for-one. The stalled thread's own *return* is delayed by T in both —
// wait-freedom bounds steps, not wall-clock sleep.
//
// Flags: --max-stall-ms N (sweeps 1,2,4,... up to N), --reps N, --csv.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/cli.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/timing.hpp"

namespace {

using namespace kpq;

std::atomic<std::int64_t> stall_ms{0};
std::atomic<bool> stall_armed{false};

void maybe_stall(std::uint32_t tid) {
  if (tid == 0 && stall_armed.exchange(false, std::memory_order_acq_rel)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(stall_ms.load(std::memory_order_acquire)));
  }
}

struct stalling_wf_hooks {
  static void after_publish(std::uint32_t tid, bool /*is_enq*/) {
    maybe_stall(tid);
  }
};
struct stalling_wf_options : wf_options {
  using hooks = stalling_wf_hooks;
};
struct stalling_ms_hooks : ms_no_hooks {
  static void on_enqueue_start(std::uint32_t tid) { maybe_stall(tid); }
};

using stalling_wf = wf_queue<std::uint64_t, help_all, fetch_add_phase,
                             hp_domain, stalling_wf_options>;
using stalling_ms = ms_queue<std::uint64_t, hp_domain, stalling_ms_hooks>;

/// One trial: arm the stall, start the producer's enqueue, measure how long
/// until a polling consumer can dequeue the value. Returns milliseconds.
template <typename Q>
double visibility_ms(std::int64_t stall, std::uint32_t reps_inner = 1) {
  running_stats rs;
  for (std::uint32_t r = 0; r < reps_inner; ++r) {
    Q q(2);
    stall_ms.store(stall, std::memory_order_release);
    stall_armed.store(true, std::memory_order_release);

    stopwatch sw;
    std::thread producer([&] { q.enqueue(42, 0); });

    std::optional<std::uint64_t> got;
    while (!got.has_value()) {
      got = q.dequeue(1);  // the consumer's poll is also what helps
      if (!got.has_value()) std::this_thread::yield();
    }
    const double ms = sw.elapsed_s() * 1e3;
    producer.join();
    rs.add(ms);
  }
  return rs.finish().mean;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kpq;

  cli args(argc, argv);
  if (args.get_flag("help")) {
    std::printf("%s", "flags: --max-stall-ms N (default 50)  --reps N (default 3)  --csv\n");
    return 0;
  }
  const std::int64_t max_stall =
      static_cast<std::int64_t>(args.get_u64("max-stall-ms", 50));
  const auto reps = static_cast<std::uint32_t>(args.get_u64("reps", 3));
  const bool csv = args.get_flag("csv");

  std::printf("== Stall injection: value-visibility latency vs producer stall ==\n");
  std::printf("(producer stalls mid-enqueue; consumer measures when the value "
              "becomes dequeuable)\n\n");

  table t({"stall [ms]", "LF visibility [ms]", "WF visibility [ms]"});
  std::vector<std::int64_t> stalls;
  for (std::int64_t s = 1; s <= max_stall; s *= 2) stalls.push_back(s);

  for (std::int64_t s : stalls) {
    const double lf = visibility_ms<stalling_ms>(s, reps);
    const double wf = visibility_ms<stalling_wf>(s, reps);
    t.add_row({std::to_string(s), fmt(lf, 2), fmt(wf, 2)});
  }
  t.print();
  if (csv) {
    std::printf("\n-- csv --\n");
    t.print_csv(stdout);
  }
  std::printf(
      "\nLF visibility tracks the stall one-for-one (nothing announced, "
      "nothing to help);\nWF visibility stays flat: the consumer completes "
      "the stalled enqueue itself.\n");
  return 0;
}
