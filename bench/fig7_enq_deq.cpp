// Figure 7 reproduction: "Performance results of the enqueue-dequeue pairs
// benchmark" — total completion time vs number of threads (1..16) for the
// lock-free MS queue (LF), the base wait-free queue (base WF) and the fully
// optimized wait-free queue (opt WF (1+2)).
//
// The paper shows three panels (CentOS / RedHat / Ubuntu machines) because
// its headline finding is that the LF:WF ratio depends on the scheduling
// regime. This host is one regime; the --pin flag toggles the one placement
// knob we control (see DESIGN.md §4, substitutions).
//
// Expected shape (paper): LF fastest at low thread counts; base WF degrades
// super-linearly as threads grow (O(n) state scans + helping stampedes);
// opt WF (1+2) tracks LF within a small factor (~2-3x on RedHat/Ubuntu) and
// can cross over LF past core saturation on some configurations (CentOS).
//
// Flags: --threads N | --full, --iters N (per thread), --reps N, --pin,
//        --csv, --json PATH (machine-readable series, schema kpq-bench-1).
#include <cstdint>

#include "baseline/ms_queue.hpp"
#include "bench_common.hpp"
#include "core/wf_queue.hpp"

int main(int argc, char** argv) {
  using namespace kpq;
  using namespace kpq::bench;

  bench_params p = parse_params(argc, argv, /*default_iters=*/20000);

  figure fig("Figure 7: enqueue-dequeue pairs, total completion time", p);
  fig.add_series("LF");
  fig.add_series("base WF");
  fig.add_series("opt WF (1+2)");

  for (std::uint32_t th : p.threads) {
    fig.add_cell(measure_pairs<ms_queue<std::uint64_t>>(th, p));
    fig.add_cell(measure_pairs<wf_queue_base<std::uint64_t>>(th, p));
    fig.add_cell(measure_pairs<wf_queue_opt<std::uint64_t>>(th, p));
  }
  fig.print(p.threads);
  return 0;
}
