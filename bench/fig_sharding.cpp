// Sharding scaling curve (beyond the paper): the enqueue-dequeue pairs
// workload on one KP queue vs the sharded front-end at 1/2/4/8 shards
// (affinity policy, wf inner queues), with the lock-free MS queue as the
// usual LF reference.
//
// What to expect: a single KP queue's per-op cost grows with the number of
// threads coordinating on it (state scans, helping, head/tail CAS traffic).
// Sharding divides the threads that meet on any one queue by S, so
// completion time should drop roughly with S until shards outnumber
// producer/consumer pairs. The steal-rate column sanity-checks the routing:
// with affinity pairs it stays near zero (every consumer drains its own
// lane); forcing --steal-heavy (consumers' home shifted by one) shows the
// scan doing real work-stealing without losing items.
//
// A second table reports throughput (Mpairs/s), the speedup of 4 shards
// over the single queue — the PR's acceptance gate (>= 2x at 8 threads) —
// and the bulk-path variant (batch 16) whose batch-fill column shows how
// much of the amortization the fast path actually realized.
//
// A third comparison exercises the elastic layer: "shard x4" routes through
// the identity scan table with NO tuner attached (the tuner-off cost of
// elasticity — one acquire load per op — is this series' delta against the
// committed pre-elasticity baseline, and must stay inside the documented
// ~3% host noise), while "shard x4 adaptive" runs the same workload with a
// live shard_tuner ticking on a background thread, resharding while the
// bench runs. The adaptive table column counts the tuner's decisions.
//
// Flags: --threads N | --full, --iters N, --reps N, --pin, --csv, --seed S,
//        --batch K (bulk series batch size, default 16), --steal-heavy,
//        --tick-ms N (adaptive tuner period, default 1),
//        --json PATH (machine-readable series, schema kpq-bench-1).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "bench_common.hpp"
#include "core/wf_queue.hpp"
#include "scale/adaptive.hpp"
#include "scale/sharded_queue.hpp"
#include "scale/tuner.hpp"

namespace kpq::bench {

/// Home-shifted affinity: consumers scan from (tid+1) mod S so nearly every
/// pop is a steal — the adversarial placement for the scan.
struct shifted_affinity {
  explicit shifted_affinity(std::uint32_t s) : s_(s) {}
  template <typename T>
  std::uint32_t enqueue_shard(std::uint32_t tid, const T&) const noexcept {
    return tid % s_;
  }
  std::uint32_t home_shard(std::uint32_t tid) const noexcept {
    return (tid + 1) % s_;
  }
  static constexpr const char* name = "shifted_affinity";

 private:
  std::uint32_t s_;
};

struct sharded_point {
  summary time;
  double steal_rate = 0.0;
  double batch_fill = 0.0;
};

template <typename SQ>
sharded_point measure_sharded(std::uint32_t shards, std::uint32_t threads,
                              const bench_params& p, std::uint64_t batch) {
  std::unique_ptr<SQ> q;
  run_config cfg;
  cfg.threads = threads;
  cfg.reps = p.reps;
  cfg.pin = p.pin;
  sharded_point out;
  out.time = run_trials(
      cfg, [&](std::uint32_t) { q = std::make_unique<SQ>(shards, threads); },
      [&](std::uint32_t tid) {
        if (batch <= 1) {
          for (std::uint64_t i = 0; i < p.iters; ++i) {
            q->enqueue(encode_value(tid, i), tid);
            (void)q->dequeue(tid);
          }
        } else {
          std::vector<std::uint64_t> staging, popped;
          for (std::uint64_t i = 0; i < p.iters; i += batch) {
            const std::uint64_t k = std::min<std::uint64_t>(batch, p.iters - i);
            staging.clear();
            popped.clear();
            for (std::uint64_t j = 0; j < k; ++j) {
              staging.push_back(encode_value(tid, i + j));
            }
            q->enqueue_bulk(staging.begin(), staging.end(), tid);
            (void)q->dequeue_bulk(popped, k, tid);
          }
        }
      });
  const shard_stats agg = q->aggregate_counters();  // last rep's queue
  out.steal_rate = agg.steal_rate();
  out.batch_fill = agg.batch_fill();
  return out;
}

struct adaptive_point {
  summary time;
  double steal_rate = 0.0;
  std::uint64_t decisions = 0;  // grows+shrinks+reorders over all reps
};

/// Same pairs workload, but with a shard_tuner ticking on a background
/// thread for the whole measured region — the single-mutator control loop
/// resharding live under the bench. The tuner only reads counters and
/// publishes tables; it never performs queue operations, so it needs no
/// dense thread id.
template <typename SQ>
adaptive_point measure_adaptive(std::uint32_t shards, std::uint32_t threads,
                                const bench_params& p, std::uint64_t tick_ms) {
  std::unique_ptr<SQ> q;
  std::unique_ptr<shard_tuner<SQ>> tuner;
  std::unique_ptr<periodic_ticker> ticker;
  adaptive_point out;
  run_config cfg;
  cfg.threads = threads;
  cfg.reps = p.reps;
  cfg.pin = p.pin;
  out.time = run_trials(
      cfg,
      [&](std::uint32_t) {
        ticker.reset();  // stop the previous rep's mutator first
        if (tuner) {
          const tuner_stats& s = tuner->stats();
          out.decisions += s.grows + s.shrinks + s.reorders;
        }
        q = std::make_unique<SQ>(shards, threads);
        tuner_config tc;
        tc.hysteresis_ticks = 2;
        tc.grow_depth = 128;
        tc.shrink_depth = 4;
        tc.reorder_min_spread = 64;
        tuner = std::make_unique<shard_tuner<SQ>>(*q, tc);
        ticker = std::make_unique<periodic_ticker>(
            std::chrono::milliseconds(tick_ms), [&] { (void)tuner->tick(); });
      },
      [&](std::uint32_t tid) {
        for (std::uint64_t i = 0; i < p.iters; ++i) {
          q->enqueue(encode_value(tid, i), tid);
          (void)q->dequeue(tid);
        }
      });
  ticker.reset();
  if (tuner) {
    const tuner_stats& s = tuner->stats();
    out.decisions += s.grows + s.shrinks + s.reorders;
  }
  const shard_stats agg = q->aggregate_counters();
  out.steal_rate = agg.steal_rate();
  return out;
}

}  // namespace kpq::bench

int main(int argc, char** argv) {
  using namespace kpq;
  using namespace kpq::bench;

  cli pre(argc, argv);
  const std::uint64_t batch = pre.get_u64("batch", 16);
  const std::uint64_t tick_ms = pre.get_u64("tick-ms", 1);
  const bool steal_heavy = pre.get_flag("steal-heavy");
  bench_params p = parse_params(argc, argv, /*default_iters=*/20000);

  using wfq = wf_queue_opt<std::uint64_t>;
  using sharded_aff = sharded_queue<wfq, affinity_shards>;
  using sharded_shift = sharded_queue<wfq, shifted_affinity>;

  figure fig("Sharding scaling: enqueue-dequeue pairs, total completion time",
             p);
  fig.add_series("LF");
  fig.add_series("WF opt x1");
  fig.add_series("shard x2");
  fig.add_series("shard x4");
  fig.add_series("shard x8");
  fig.add_series("shard x4 adaptive");

  struct row {
    std::uint32_t threads;
    double single_s, s4_s;
    sharded_point s2, s4, s8, s4bulk;
    adaptive_point s4adapt;
  };
  std::vector<row> rows;

  for (std::uint32_t th : p.threads) {
    row r;
    r.threads = th;
    fig.add_cell(measure_pairs<ms_queue<std::uint64_t>>(th, p));
    const summary single = measure_pairs<wfq>(th, p);
    fig.add_cell(single);
    r.single_s = single.mean;
    auto measure = [&](std::uint32_t shards, std::uint64_t b) {
      return steal_heavy
                 ? measure_sharded<sharded_shift>(shards, th, p, b)
                 : measure_sharded<sharded_aff>(shards, th, p, b);
    };
    r.s2 = measure(2, 1);
    r.s4 = measure(4, 1);
    r.s8 = measure(8, 1);
    r.s4bulk = measure(4, batch);
    r.s4adapt = steal_heavy
                    ? measure_adaptive<sharded_shift>(4, th, p, tick_ms)
                    : measure_adaptive<sharded_aff>(4, th, p, tick_ms);
    r.s4_s = r.s4.time.mean;
    fig.add_cell(r.s2.time);
    fig.add_cell(r.s4.time);
    fig.add_cell(r.s8.time);
    fig.add_cell(r.s4adapt.time);
    rows.push_back(r);
  }
  fig.print(p.threads);

  std::printf("== Throughput, steal rate, and the bulk fast path ==\n");
  std::printf("(batch series: %llu items per bulk op%s)\n",
              static_cast<unsigned long long>(batch),
              steal_heavy ? ", steal-heavy placement" : "");
  table t({"threads", "x1 Mpairs/s", "x4 Mpairs/s", "x4 speedup",
           "x4 steal%", "x8 steal%", "x4 bulk Mpairs/s", "bulk fill",
           "x4 adapt Mpairs/s", "tuner acts"});
  for (const row& r : rows) {
    const double total_pairs =
        static_cast<double>(r.threads) * static_cast<double>(p.iters);
    auto mpairs = [&](double s) { return total_pairs / s / 1e6; };
    t.add_row({std::to_string(r.threads), fmt(mpairs(r.single_s), 3),
               fmt(mpairs(r.s4_s), 3), fmt(r.single_s / r.s4_s, 2),
               fmt(100.0 * r.s4.steal_rate, 1),
               fmt(100.0 * r.s8.steal_rate, 1),
               fmt(mpairs(r.s4bulk.time.mean), 3),
               fmt(r.s4bulk.batch_fill, 1),
               fmt(mpairs(r.s4adapt.time.mean), 3),
               std::to_string(r.s4adapt.decisions)});
  }
  t.print();
  if (p.csv) {
    std::printf("\n-- csv --\n");
    t.print_csv(stdout);
  }
  return 0;
}
