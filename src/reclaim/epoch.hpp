// Epoch-based reclamation (EBR).
//
// Alternative reclaimer policy: readers pin the global epoch on guard entry
// and unpin on exit; an object retired in epoch e is freed once every pinned
// thread has observed an epoch >= e+1 (two advances of a three-bucket
// scheme). protect() is then a plain acquire load — much cheaper than a
// hazard-pointer announce — at the cost of unbounded memory if a reader
// stalls inside a guard. That trade-off is exactly what
// bench/micro_reclaimers quantifies, and why EBR is NOT the default for a
// wait-free queue: a stalled thread blocks reclamation (memory bounds become
// blocking even though operations stay wait-free).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "reclaim/reclaimer_concepts.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

class epoch_domain {
 public:
  epoch_domain(std::uint32_t max_threads, std::uint32_t /*slots_per_thread*/,
               std::uint32_t flush_threshold = 64)
      : max_threads_(max_threads),
        flush_threshold_(flush_threshold),
        threads_(max_threads) {}

  epoch_domain(const epoch_domain&) = delete;
  epoch_domain& operator=(const epoch_domain&) = delete;

  ~epoch_domain() {
    for (auto& t : threads_) {
      for (auto& bucket : t->buckets) {
        for (auto& item : bucket) item.fn(item.ctx, item.p);
      }
    }
  }

  class guard {
   public:
    guard(epoch_domain& d, std::uint32_t tid) noexcept : d_(&d), tid_(tid) {
      auto& t = d_->threads_[tid_].get();
      if (t.nesting++ == 0) {
        // Pin: publish the epoch we are reading under. seq_cst store so
        // try_advance's scan cannot miss us.
        t.local_epoch.store(d_->global_epoch_.load(std::memory_order_seq_cst),
                            std::memory_order_seq_cst);
        t.active.store(true, std::memory_order_seq_cst);
      }
    }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;
    guard(guard&& o) noexcept : d_(o.d_), tid_(o.tid_) { o.d_ = nullptr; }

    ~guard() {
      if (!d_) return;
      auto& t = d_->threads_[tid_].get();
      if (--t.nesting == 0) {
        // kpq-order: release pairs-with try_advance's seq_cst active scan —
        // every read made under the guard happens-before an advance that no
        // longer counts us as pinned
        t.active.store(false, std::memory_order_release);
      }
    }

    template <typename T>
    T* protect(std::uint32_t /*slot*/, const std::atomic<T*>& src) noexcept {
      // kpq-order: acquire pairs-with the seq_cst CAS that published *p —
      // the pinned epoch (not this load) is what keeps p alive under EBR
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void protect_raw(std::uint32_t /*slot*/, T* /*p*/) noexcept {}
    void clear(std::uint32_t /*slot*/) noexcept {}

   private:
    epoch_domain* d_;
    std::uint32_t tid_;
  };

  guard enter(std::uint32_t tid) noexcept {
    assert(tid < max_threads_);
    return guard(*this, tid);
  }

  void retire(std::uint32_t tid, void* p, retire_fn fn, void* ctx) {
    auto& t = threads_[tid].get();
    // kpq-order: acquire pairs-with try_advance's seq_cst epoch CAS — the
    // bucket index must be from the current or an older epoch (an older one
    // only delays the free by one advance, never frees early)
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    t.buckets[e % 3].push_back({p, fn, ctx});
    // kpq-order: relaxed pairs-with none (statistics counter for tests)
    retired_count_.fetch_add(1, std::memory_order_relaxed);
    if (++t.since_flush >= flush_threshold_) {
      t.since_flush = 0;
      try_advance(tid);
    }
  }

  /// Range retirement: under EBR the guard protects EVERYTHING read inside
  /// it, so a range needs no special handling — it is freed two epoch
  /// advances after retirement like any object. Advance eagerly for the same
  /// segment-turnaround reason hp_domain scans eagerly (amortized: one call
  /// per segment of nodes).
  void retire_range(std::uint32_t tid, void* base, std::size_t /*bytes*/,
                    retire_fn fn, void* ctx) {
    retire(tid, base, fn, ctx);
    try_advance(tid);
  }

  /// Advance the global epoch if every pinned thread has caught up, then
  /// free `tid`'s bucket that is two epochs old.
  void try_advance(std::uint32_t tid) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    bool all_caught_up = true;
    for (auto& t : threads_) {
      if (t->active.load(std::memory_order_seq_cst) &&
          t->local_epoch.load(std::memory_order_seq_cst) != e) {
        all_caught_up = false;
        break;
      }
    }
    std::uint64_t cur = e;
    if (all_caught_up) {
      global_epoch_.compare_exchange_strong(cur, e + 1,
                                            std::memory_order_seq_cst);
      cur = global_epoch_.load(std::memory_order_seq_cst);
    }
    // Bucket (cur - 2) holds objects retired two epochs back: every guard
    // now active pinned an epoch >= cur - 1 > their retirement epoch, and
    // guards that predate the retirement have exited (else we could not have
    // advanced). Only the owner frees its own buckets.
    if (cur >= 2) {
      auto& bucket = threads_[tid]->buckets[(cur - 2) % 3];
      // Only safe if this bucket's contents were retired at epoch cur-2 (not
      // refilled at cur+1, which maps to the same index). Buckets are
      // emptied here each time the epoch reaches +2, so entries are always
      // from the oldest epoch mapping to the slot.
      for (auto& item : bucket) {
        item.fn(item.ctx, item.p);
        // kpq-order: relaxed pairs-with none (statistics counter for tests)
        freed_count_.fetch_add(1, std::memory_order_relaxed);
      }
      bucket.clear();
    }
  }

  std::uint64_t retired_count() const noexcept {
    // kpq-order: relaxed pairs-with none (statistics read; may lag)
    return retired_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const noexcept {
    // kpq-order: relaxed pairs-with none (statistics read; may lag)
    return freed_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t epoch() const noexcept {
    // kpq-order: acquire pairs-with try_advance's seq_cst epoch CAS
    // (observability read; tests compare epochs across threads)
    return global_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct retired_item {
    void* p;
    retire_fn fn;
    void* ctx;
  };
  struct thread_state {
    std::atomic<bool> active{false};
    std::atomic<std::uint64_t> local_epoch{0};
    std::uint32_t nesting = 0;      // owner-only
    std::uint32_t since_flush = 0;  // owner-only
    std::vector<retired_item> buckets[3];
  };

  std::uint32_t max_threads_;
  std::uint32_t flush_threshold_;
  alignas(destructive_interference) std::atomic<std::uint64_t> global_epoch_{0};
  std::vector<padded<thread_state>> threads_;
  std::atomic<std::uint64_t> retired_count_{0};
  std::atomic<std::uint64_t> freed_count_{0};
};

static_assert(reclaimer_domain<epoch_domain>);

}  // namespace kpq
