// "Leaky" reclaimer: every retired object is kept until the domain dies.
//
// Zero per-operation reclamation cost and trivially safe, at the price of
// memory growing with the total number of retirements. Two legitimate uses:
//   * benchmarking the pure algorithm with reclamation cost subtracted
//     (bench/micro_reclaimers uses it as the floor), and
//   * tests that want deterministic object lifetimes.
// It is NOT suitable for long-running production workloads.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "reclaim/reclaimer_concepts.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

class leaky_domain {
 public:
  leaky_domain(std::uint32_t max_threads, std::uint32_t /*slots_per_thread*/,
               std::uint32_t /*threshold*/ = 0)
      : max_threads_(max_threads), retired_(max_threads) {}

  leaky_domain(const leaky_domain&) = delete;
  leaky_domain& operator=(const leaky_domain&) = delete;

  ~leaky_domain() {
    for (auto& r : retired_) {
      for (auto& item : r->items) item.fn(item.ctx, item.p);
    }
  }

  class guard {
   public:
    guard() = default;
    template <typename T>
    T* protect(std::uint32_t /*slot*/, const std::atomic<T*>& src) noexcept {
      // kpq-order: acquire pairs-with the seq_cst CAS that published *p —
      // lifetime is trivially safe here (nothing is ever freed)
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void protect_raw(std::uint32_t /*slot*/, T* /*p*/) noexcept {}
    void clear(std::uint32_t /*slot*/) noexcept {}
  };

  guard enter(std::uint32_t tid) noexcept {
    assert(tid < max_threads_);
    (void)tid;
    return guard{};
  }

  void retire(std::uint32_t tid, void* p, retire_fn fn, void* ctx) {
    retired_[tid]->items.push_back({p, fn, ctx});
    // kpq-order: relaxed pairs-with none (statistics counter for tests)
    retired_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Range retirement: leaked like everything else until the domain dies.
  void retire_range(std::uint32_t tid, void* base, std::size_t /*bytes*/,
                    retire_fn fn, void* ctx) {
    retire(tid, base, fn, ctx);
  }

  std::uint64_t retired_count() const noexcept {
    // kpq-order: relaxed pairs-with none (statistics read; may lag)
    return retired_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const noexcept { return 0; }

 private:
  struct retired_item {
    void* p;
    retire_fn fn;
    void* ctx;
  };
  struct retired_list {
    std::vector<retired_item> items;
  };

  std::uint32_t max_threads_;
  std::vector<padded<retired_list>> retired_;
  std::atomic<std::uint64_t> retired_count_{0};
};

static_assert(reclaimer_domain<leaky_domain>);

}  // namespace kpq
