// Hazard pointers (Michael, IEEE TPDS 2004) — the wait-free reclamation
// scheme §3.4 of the paper prescribes for the C++ port of the KP queue.
//
// Layout: `max_threads * slots_per_thread` announcement slots, each on its
// own cache line, plus a per-thread retired list. retire() appends to the
// owner's list; when the list crosses the scan threshold the owner scans all
// announcement slots once and frees every retired object not announced.
//
// Progress: protect() is a validation loop, but each iteration corresponds
// to the *source* pointer changing, which in the queues only happens when
// some operation completes a step — so under the same argument the paper
// uses for its retry loops, the loop is bounded once the thread's own phase
// becomes the oldest. scan() is a bounded O(H + R) pass. retire() is O(1)
// amortised, O(H + R) worst case. No step blocks on another thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace_ring.hpp"
#include "reclaim/reclaimer_concepts.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

class hp_domain {
 public:
  hp_domain(std::uint32_t max_threads, std::uint32_t slots_per_thread,
            std::uint32_t scan_threshold = 0)
      : max_threads_(max_threads),
        slots_per_thread_(slots_per_thread),
        slots_(static_cast<std::size_t>(max_threads) * slots_per_thread),
        retired_(max_threads) {
    const std::uint32_t total = max_threads * slots_per_thread;
    // Michael's recommendation: R >= H * (1 + small constant). The +64
    // amortises the scan for tiny configurations.
    scan_threshold_ = scan_threshold ? scan_threshold : 2 * total + 64;
  }

  hp_domain(const hp_domain&) = delete;
  hp_domain& operator=(const hp_domain&) = delete;

  /// Frees everything still retired. Caller must guarantee quiescence (no
  /// live guards), which container destructors do by construction.
  ~hp_domain() {
    for (auto& r : retired_) {
      for (auto& item : r->items) item.fn(item.ctx, item.p);
    }
  }

  class guard {
   public:
    guard(hp_domain& d, std::uint32_t tid) noexcept : d_(&d), tid_(tid) {}
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;
    guard(guard&& o) noexcept : d_(o.d_), tid_(o.tid_) { o.d_ = nullptr; }

    ~guard() {
      if (d_) {
        for (std::uint32_t i = 0; i < d_->slots_per_thread_; ++i) clear(i);
      }
    }

    /// Protect the pointer currently stored in `src`: announce it, then
    /// validate that `src` still holds it (otherwise the owner might already
    /// have retired it before seeing our announcement). The seq_cst
    /// store/load pair provides the StoreLoad ordering the protocol needs.
    template <typename T>
    T* protect(std::uint32_t slot, const std::atomic<T*>& src) noexcept {
      std::atomic<void*>& h = d_->slot_ref(tid_, slot);
      // kpq-order: acquire pairs-with the seq_cst CAS that published *p —
      // only a first guess; the seq_cst announce/validate loop below is
      // what makes the protection sound
      T* p = src.load(std::memory_order_acquire);
      for (;;) {
        h.store(const_cast<std::remove_const_t<T>*>(p),
                std::memory_order_seq_cst);
        T* q = src.load(std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    /// Announce a pointer the caller obtained (and will validate) itself.
    template <typename T>
    void protect_raw(std::uint32_t slot, T* p) noexcept {
      d_->slot_ref(tid_, slot)
          .store(const_cast<std::remove_const_t<T>*>(p),
                 std::memory_order_seq_cst);
    }

    void clear(std::uint32_t slot) noexcept {
      // kpq-order: release pairs-with scan()'s seq_cst slot read — our
      // preceding reads of *p happen-before a reclaimer frees p; clearing
      // needs no StoreLoad (a late-seen announcement only delays a free)
      d_->slot_ref(tid_, slot).store(nullptr, std::memory_order_release);
    }

   private:
    hp_domain* d_;
    std::uint32_t tid_;
  };

  guard enter(std::uint32_t tid) noexcept {
    assert(tid < max_threads_);
    return guard(*this, tid);
  }

  /// Hand `p` to the domain; `fn(ctx, p)` runs once no announcement can
  /// still name it.
  void retire(std::uint32_t tid, void* p, retire_fn fn, void* ctx) {
    assert(tid < max_threads_);
    auto& r = retired_[tid].get();
    r.items.push_back({p, fn, ctx, 0});
    // kpq-order: relaxed pairs-with none (statistics counter for tests)
    retired_count_.fetch_add(1, std::memory_order_relaxed);
    if (r.items.size() >= scan_threshold_) scan(tid);
  }

  /// Range retirement (storage/segment_storage): `fn(ctx, base)` runs once
  /// no announcement names any address in [base, base+bytes). Scans
  /// eagerly — a range retirement happens once per SEGMENT of node
  /// retirements, so the O(H + R) pass here is amortized over the segment's
  /// cells and keeps segment turnaround (and therefore the bounded queue's
  /// live-byte floor) low instead of waiting for the count threshold.
  void retire_range(std::uint32_t tid, void* base, std::size_t bytes,
                    retire_fn fn, void* ctx) {
    assert(tid < max_threads_);
    assert(bytes > 0);
    auto& r = retired_[tid].get();
    r.items.push_back({base, fn, ctx, bytes});
    // kpq-order: relaxed pairs-with none (statistics counter for tests)
    retired_count_.fetch_add(1, std::memory_order_relaxed);
    scan(tid);
  }

  /// One reclamation pass for `tid`'s retired list: free everything not
  /// currently announced by any thread.
  void scan(std::uint32_t tid) {
    auto& r = retired_[tid].get();
    std::vector<void*>& announced = r.scratch;
    announced.clear();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (void* p = slots_[i]->load(std::memory_order_seq_cst)) {
        announced.push_back(p);
      }
    }
    std::sort(announced.begin(), announced.end());
    std::size_t kept = 0;
    std::uint64_t freed_this_pass = 0;
    for (auto& item : r.items) {
      // Exact retirements (bytes == 0) hit only their own address; range
      // retirements hit if any announced pointer falls inside
      // [p, p + bytes) — one lower_bound either way.
      const auto it =
          std::lower_bound(announced.begin(), announced.end(), item.p);
      const bool announced_hit =
          item.bytes == 0
              ? (it != announced.end() && *it == item.p)
              : (it != announced.end() &&
                 reinterpret_cast<std::uintptr_t>(*it) <
                     reinterpret_cast<std::uintptr_t>(item.p) + item.bytes);
      if (announced_hit) {
        r.items[kept++] = item;
      } else {
        item.fn(item.ctx, item.p);
        ++freed_this_pass;
      }
    }
    r.items.resize(kept);
    // kpq-order: relaxed pairs-with none (statistics counter for tests)
    freed_count_.fetch_add(freed_this_pass, std::memory_order_relaxed);
    // The scan is the reclaimer's only super-constant step (O(H + R)); the
    // trace makes its frequency and yield visible next to the queue events
    // it interleaves with. Compiled out unless KPQ_TRACE.
    if constexpr (obs::default_trace::enabled) {
      obs::default_trace::record(
          tid, obs::trace_kind::reclaim_scan, 0,
          static_cast<std::uint32_t>(freed_this_pass));
    }
  }

  // --- observability (tests assert reclamation actually happens) ---
  std::uint64_t retired_count() const noexcept {
    // kpq-order: relaxed pairs-with none (statistics read; may lag)
    return retired_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const noexcept {
    // kpq-order: relaxed pairs-with none (statistics read; may lag)
    return freed_count_.load(std::memory_order_relaxed);
  }
  std::size_t pending_count() const noexcept {
    std::size_t n = 0;
    for (const auto& r : retired_) n += r->items.size();
    return n;
  }
  std::uint32_t slots_per_thread() const noexcept { return slots_per_thread_; }
  std::uint32_t max_threads() const noexcept { return max_threads_; }
  std::uint32_t scan_threshold() const noexcept { return scan_threshold_; }

  /// Testing hook: what thread `tid` currently announces in `slot`.
  void* announced(std::uint32_t tid, std::uint32_t slot) const noexcept {
    return slots_[static_cast<std::size_t>(tid) * slots_per_thread_ + slot]
        ->load(std::memory_order_seq_cst);
  }

 private:
  struct retired_item {
    void* p;
    retire_fn fn;
    void* ctx;
    std::size_t bytes;  // 0 = exact-address item; else [p, p+bytes) range
  };
  struct retired_list {
    std::vector<retired_item> items;
    std::vector<void*> scratch;  // reused across scans
  };

  std::atomic<void*>& slot_ref(std::uint32_t tid, std::uint32_t slot) noexcept {
    assert(slot < slots_per_thread_);
    return slots_[static_cast<std::size_t>(tid) * slots_per_thread_ + slot]
        .get();
  }

  std::uint32_t max_threads_;
  std::uint32_t slots_per_thread_;
  std::uint32_t scan_threshold_;
  std::vector<padded<std::atomic<void*>>> slots_;
  std::vector<padded<retired_list>> retired_;
  std::atomic<std::uint64_t> retired_count_{0};
  std::atomic<std::uint64_t> freed_count_{0};
};

static_assert(reclaimer_domain<hp_domain>);

}  // namespace kpq
