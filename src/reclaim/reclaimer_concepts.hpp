// The reclaimer policy interface.
//
// The paper's Java implementation gets safe memory reclamation (and ABA
// freedom) from the garbage collector. Section 3.4 prescribes hazard
// pointers for unmanaged runtimes. This repository makes the reclamation
// scheme a policy so the same queue code runs under:
//
//   * hp_domain     — Michael's hazard pointers (wait-free; the paper's
//                     prescription, and the default),
//   * epoch_domain  — epoch-based reclamation (cheaper reads, only blocking
//                     reclamation, NOT wait-free for memory bounds; used to
//                     ablate reclamation cost),
//   * leaky_domain  — defers every retirement to domain destruction (zero
//                     per-op cost; isolates pure algorithm cost in benches
//                     and simplifies some tests).
//
// Contract
// --------
// A domain is created per container with (max_threads, slots_per_thread).
// Threads are identified by a dense id < max_threads (see thread_registry).
//
//   guard g = domain.enter(tid);      // RAII critical-section token
//   T* p  = g.protect(slot, src);     // loads src and makes *p safe to
//                                     // dereference until clear/guard exit.
//                                     // May internally re-load src (hazard
//                                     // pointer validation loop).
//   g.protect_raw(slot, p);           // announce an already-validated ptr
//   g.clear(slot);                    // release one slot early
//   domain.retire(tid, p, fn, ctx);   // fn(ctx, p) frees p once no guard
//                                     // can still reach it
//   domain.retire_range(tid, base, bytes, fn, ctx);
//                                     // like retire, but the object is the
//                                     // address range [base, base+bytes):
//                                     // fn(ctx, base) runs once no guard
//                                     // protects ANY pointer inside the
//                                     // range. The storage layer retires
//                                     // whole segments of node cells this
//                                     // way — one retirement (and one scan
//                                     // entry) per segment instead of one
//                                     // per node (storage/segment_storage).
//
// `slot` indexes a small per-thread set of protection slots; the container
// declares how many it needs. Epoch/leaky domains ignore slots entirely —
// protection is the guard's lifetime.
//
// ABA note: a pointer compared by CAS must be protected by the CASing thread
// from the moment it was read until the CAS retires. All three domains give
// this for free inside a guard (hazard pointers via the slot, epoch/leaky
// because nothing is unmapped while any guard is live).
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>

namespace kpq {

/// Type-erased deleter: fn(ctx, object).
using retire_fn = void (*)(void*, void*);

template <typename R>
concept reclaimer_domain = requires(R r, std::uint32_t tid, std::uint32_t slot,
                                    std::atomic<int*>& src, int* p, void* ctx,
                                    std::size_t bytes, retire_fn fn) {
  { r.enter(tid) };
  { r.retire(tid, p, fn, ctx) };
  { r.retire_range(tid, p, bytes, fn, ctx) };
  { r.enter(tid).protect(slot, src) } -> std::same_as<int*>;
  { r.enter(tid).protect_raw(slot, p) };
  { r.enter(tid).clear(slot) };
};

}  // namespace kpq
