// Whole-run FIFO consistency checker.
//
// Full linearizability checking is NP-hard in general and expensive even for
// queues, so stress tests use this checker: a set of *sound necessary
// conditions* for a history to be linearizable with respect to a FIFO queue.
// Every condition below is implied by linearizability, so any violation is a
// real bug; the (exponential) lin_checker covers small histories exactly.
//
// Checks, given the recorded history plus the multiset of values drained
// from the queue after the run:
//   C1 uniqueness     — no value dequeued twice.
//   C2 provenance     — every dequeued value was enqueued (and every drained
//                       value too).
//   C3 conservation   — enqueued = dequeued (disjoint) union drained.
//   C4 FIFO real-time — if enq(a) strictly precedes enq(b) (a.res < b.inv)
//                       then deq(b) must not strictly precede deq(a); if b
//                       was dequeued, a must not remain in the final drain.
//   C5 empty honesty  — a dequeue returning empty is illegal if some value
//                       was provably inside the queue for the dequeue's
//                       whole interval: enqueued before it began and not
//                       dequeued until after it returned (or never).
//
// Values must be unique across the run (use kpq::encode_value).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "verify/history.hpp"

namespace kpq {

struct check_result {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string msg) {
    ok = false;
    if (violations.size() < 32) violations.push_back(std::move(msg));
  }
  std::string to_string() const {
    std::string s;
    for (const auto& v : violations) {
      s += v;
      s += '\n';
    }
    return s;
  }
};

class fifo_checker {
 public:
  static check_result check(const std::vector<op_event>& history,
                            const std::vector<std::uint64_t>& drained) {
    check_result r;

    std::unordered_map<std::uint64_t, const op_event*> enq_of;
    std::unordered_map<std::uint64_t, const op_event*> deq_of;
    std::vector<const op_event*> empty_deqs;
    enq_of.reserve(history.size());
    deq_of.reserve(history.size());

    for (const auto& e : history) {
      if (e.kind == op_kind::enq) {
        if (!enq_of.emplace(e.value, &e).second) {
          r.fail("duplicate enqueue of value " + std::to_string(e.value) +
                 " (values must be unique for checking)");
        }
      } else if (e.ok) {
        if (!deq_of.emplace(e.value, &e).second) {
          r.fail("C1: value " + std::to_string(e.value) + " dequeued twice");
        }
      } else {
        empty_deqs.push_back(&e);
      }
    }

    // C2: provenance.
    for (const auto& [v, d] : deq_of) {
      (void)d;
      if (!enq_of.count(v)) {
        r.fail("C2: dequeued value " + std::to_string(v) +
               " was never enqueued");
      }
    }
    std::unordered_map<std::uint64_t, int> drain_count;
    for (std::uint64_t v : drained) {
      if (!enq_of.count(v)) {
        r.fail("C2: drained value " + std::to_string(v) +
               " was never enqueued");
      }
      if (deq_of.count(v)) {
        r.fail("C3: value " + std::to_string(v) +
               " both dequeued and left in the queue");
      }
      if (++drain_count[v] > 1) {
        r.fail("C1: value " + std::to_string(v) + " drained twice");
      }
    }

    // C3: conservation.
    if (deq_of.size() + drained.size() != enq_of.size()) {
      r.fail("C3: " + std::to_string(enq_of.size()) + " enqueued but " +
             std::to_string(deq_of.size()) + " dequeued + " +
             std::to_string(drained.size()) + " drained");
    }

    check_fifo_order(r, enq_of, deq_of, drain_count);
    check_empty_honesty(r, enq_of, deq_of, empty_deqs);
    return r;
  }

 private:
  using enq_map = std::unordered_map<std::uint64_t, const op_event*>;

  static void check_fifo_order(
      check_result& r, const enq_map& enq_of, const enq_map& deq_of,
      const std::unordered_map<std::uint64_t, int>& drain_count) {
    // Sort enqueues by response; for a pair (a, b) with enq(a).res <
    // enq(b).inv, FIFO requires a out before b. Checking all pairs is
    // O(n^2); instead sweep enqueues in response order and maintain the
    // maximum "a must leave by" constraint: for each enqueue b, every
    // earlier-completed enqueue a (res < b.inv) must satisfy
    // deq(a).inv < deq(b).res  (not: deq(b).res < deq(a).inv) and must not
    // be drained if b was dequeued. We verify the pairwise condition with a
    // sweep over (inv of b) using a running prefix.
    std::vector<const op_event*> enqs;
    enqs.reserve(enq_of.size());
    for (const auto& [v, e] : enq_of) {
      (void)v;
      enqs.push_back(e);
    }
    std::sort(enqs.begin(), enqs.end(),
              [](const op_event* x, const op_event* y) {
                return x->res < y->res;
              });

    // For the prefix of enqueues with res < b.inv, we need:
    //   max over a in prefix of (deq(a).inv, with "drained" = +inf)
    //   to be checked against deq(b).res: if some a has deq(a).inv >
    //   deq(b).res then deq(b) completed strictly before deq(a) began (or a
    //   was drained) — violation. So track the prefix maximum of
    //   effective_deq_inv(a) and compare with each b's deq response.
    struct entry {
      std::uint64_t enq_res;
      std::uint64_t eff_deq_inv;  // UINT64_MAX if drained / never dequeued
      std::uint64_t value;
    };
    std::vector<entry> prefix;
    prefix.reserve(enqs.size());
    for (const op_event* e : enqs) {
      std::uint64_t eff = UINT64_MAX;
      auto it = deq_of.find(e->value);
      if (it != deq_of.end()) eff = it->second->inv;
      prefix.push_back({e->res, eff, e->value});
    }
    // prefix maxima of eff_deq_inv in enq-res order
    std::vector<std::uint64_t> pmax(prefix.size());
    std::vector<std::uint64_t> pmax_val(prefix.size());
    std::uint64_t run = 0, run_val = 0;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      if (prefix[i].eff_deq_inv >= run) {
        run = prefix[i].eff_deq_inv;
        run_val = prefix[i].value;
      }
      pmax[i] = run;
      pmax_val[i] = run_val;
    }

    for (const auto& [v, b_enq] : enq_of) {
      auto it = deq_of.find(v);
      if (it == deq_of.end()) continue;  // b not dequeued: no constraint here
      const std::uint64_t b_deq_res = it->second->res;
      // Find the prefix of enqueues a with a.res < b_enq->inv.
      const auto hi = std::partition_point(
          prefix.begin(), prefix.end(), [&](const entry& a) {
            return a.enq_res < b_enq->inv;
          });
      if (hi == prefix.begin()) continue;
      const std::size_t k = static_cast<std::size_t>(hi - prefix.begin()) - 1;
      if (pmax[k] > b_deq_res && pmax_val[k] != v) {
        if (pmax[k] == UINT64_MAX) {
          r.fail("C4: value " + std::to_string(pmax_val[k]) +
                 " enqueued strictly before " + std::to_string(v) +
                 " but never dequeued while " + std::to_string(v) + " was");
        } else {
          r.fail("C4: FIFO inversion: enq(" + std::to_string(pmax_val[k]) +
                 ") strictly precedes enq(" + std::to_string(v) +
                 ") but deq(" + std::to_string(v) +
                 ") completed strictly before deq(" +
                 std::to_string(pmax_val[k]) + ") began");
        }
      }
    }
    (void)drain_count;
  }

  static void check_empty_honesty(check_result& r, const enq_map& enq_of,
                                  const enq_map& deq_of,
                                  const std::vector<const op_event*>& empties) {
    if (empties.empty()) return;
    // Witness structure: values whose presence interval [enq.res, deq.inv)
    // (deq.inv = +inf if never dequeued) covers an empty-deq's whole
    // [inv, res] make that empty return impossible.
    struct interval {
      std::uint64_t from;  // enq response
      std::uint64_t to;    // deq invocation or +inf
      std::uint64_t value;
    };
    std::vector<interval> present;
    present.reserve(enq_of.size());
    for (const auto& [v, e] : enq_of) {
      auto it = deq_of.find(v);
      present.push_back({e->res, it == deq_of.end() ? UINT64_MAX
                                                    : it->second->inv,
                         v});
    }
    std::sort(present.begin(), present.end(),
              [](const interval& x, const interval& y) {
                return x.from < y.from;
              });
    // Prefix maxima of `to` give, for any timestamp t, the interval starting
    // before t that extends furthest.
    std::vector<std::uint64_t> pmax(present.size());
    std::vector<std::uint64_t> pval(present.size());
    std::uint64_t run = 0, rv = 0;
    for (std::size_t i = 0; i < present.size(); ++i) {
      if (present[i].to >= run) {
        run = present[i].to;
        rv = present[i].value;
      }
      pmax[i] = run;
      pval[i] = rv;
    }
    for (const op_event* e : empties) {
      const auto hi = std::partition_point(
          present.begin(), present.end(),
          [&](const interval& iv) { return iv.from < e->inv; });
      if (hi == present.begin()) continue;
      const std::size_t k = static_cast<std::size_t>(hi - present.begin()) - 1;
      if (pmax[k] > e->res) {
        r.fail("C5: dequeue by thread " + std::to_string(e->tid) +
               " returned empty although value " + std::to_string(pval[k]) +
               " was inside the queue for its whole execution window");
      }
    }
  }
};

}  // namespace kpq
