// Exhaustive linearizability checker for small FIFO-queue histories
// (Wing & Gong style search).
//
// A history is linearizable iff there is a total order of its operations
// that (a) respects real-time precedence (op A before op B whenever
// A.res < B.inv) and (b) is a legal sequential FIFO execution: each
// successful dequeue returns the current front, each empty dequeue runs on
// an empty queue.
//
// The search linearizes one "minimal" operation at a time — an operation is
// eligible to go next iff no un-linearized operation completed strictly
// before it began — and memoizes on (set of linearized ops, queue content).
// Exponential in the worst case; intended for histories up to ~20 operations
// (tests feed it crafted scenarios and tiny concurrent runs to cross-check
// fifo_checker).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "verify/history.hpp"

namespace kpq {

class lin_checker {
 public:
  /// True iff `history` (completed operations only) is linearizable w.r.t. a
  /// FIFO queue that starts empty.
  static bool is_linearizable(std::vector<op_event> history) {
    if (history.size() > 63) return false;  // out of scope for brute force
    lin_checker c(std::move(history));
    return c.search(0, {});
  }

 private:
  explicit lin_checker(std::vector<op_event> h) : ops_(std::move(h)) {
    std::sort(ops_.begin(), ops_.end(),
              [](const op_event& a, const op_event& b) {
                return a.inv < b.inv;
              });
  }

  bool search(std::uint64_t done_mask, std::deque<std::uint64_t> queue) {
    if (done_mask == (std::uint64_t{1} << ops_.size()) - 1) return true;
    if (!memo_.insert(state_key(done_mask, queue)).second) return false;

    // Earliest response among un-linearized operations: only ops invoked
    // before it may linearize next.
    std::uint64_t min_res = UINT64_MAX;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((done_mask >> i) & 1) continue;
      min_res = std::min(min_res, ops_[i].res);
    }

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((done_mask >> i) & 1) continue;
      const op_event& op = ops_[i];
      if (op.inv > min_res) break;  // ops_ sorted by inv: none later qualifies

      if (op.kind == op_kind::enq) {
        auto next = queue;
        next.push_back(op.value);
        if (search(done_mask | (std::uint64_t{1} << i), std::move(next))) {
          return true;
        }
      } else if (!op.ok) {  // dequeue returned empty
        if (queue.empty() &&
            search(done_mask | (std::uint64_t{1} << i), queue)) {
          return true;
        }
      } else {  // successful dequeue must pop the current front
        if (!queue.empty() && queue.front() == op.value) {
          auto next = queue;
          next.pop_front();
          if (search(done_mask | (std::uint64_t{1} << i), std::move(next))) {
            return true;
          }
        }
      }
    }
    return false;
  }

  static std::string state_key(std::uint64_t mask,
                               const std::deque<std::uint64_t>& q) {
    std::string key(reinterpret_cast<const char*>(&mask), sizeof(mask));
    for (std::uint64_t v : q) {
      key.append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    return key;
  }

  std::vector<op_event> ops_;
  std::unordered_set<std::string> memo_;
};

}  // namespace kpq
