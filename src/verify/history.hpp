// Concurrent-history recording.
//
// The paper proves linearizability (§5.2); this library *tests* it. Worker
// threads record one event per operation with invocation and response
// timestamps drawn from a single atomic counter, which yields a total order
// of the timestamp draws consistent with real time: if operation A's
// response draw happens before B's invocation draw, then A really did
// complete before B began. That is exactly the precedence relation
// linearizability constrains, so the checkers can consume the log directly.
//
// Recording is per-thread (padded, unsynchronized vectors) and merged after
// the run; the only shared write is the timestamp counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sync/cacheline.hpp"

namespace kpq {

enum class op_kind : std::uint8_t { enq, deq };

struct op_event {
  op_kind kind;
  bool ok;              // deq only: false = returned empty
  std::uint32_t tid;
  std::uint64_t value;  // enq: value inserted; deq: value returned (if ok)
  std::uint64_t inv;    // invocation timestamp
  std::uint64_t res;    // response timestamp
};

class history_recorder {
 public:
  explicit history_recorder(std::uint32_t max_threads)
      : per_thread_(max_threads) {}

  std::uint64_t stamp() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel);
  }

  void record(std::uint32_t tid, op_event e) { per_thread_[tid]->push_back(e); }

  /// RAII helper: stamps invocation on construction; the caller fills in
  /// the outcome and commit()s, which stamps the response.
  class scope {
   public:
    scope(history_recorder& h, std::uint32_t tid, op_kind kind,
          std::uint64_t value = 0)
        : h_(h), e_{kind, true, tid, value, h.stamp(), 0} {}

    void set_value(std::uint64_t v) noexcept { e_.value = v; }
    void set_empty() noexcept { e_.ok = false; }

    void commit() {
      e_.res = h_.stamp();
      h_.record(e_.tid, e_);
    }

   private:
    history_recorder& h_;
    op_event e_;
  };

  scope begin(std::uint32_t tid, op_kind kind, std::uint64_t value = 0) {
    return scope(*this, tid, kind, value);
  }

  /// Merge per-thread logs (call after all workers joined).
  std::vector<op_event> collect() const {
    std::vector<op_event> all;
    std::size_t total = 0;
    for (const auto& v : per_thread_) total += v->size();
    all.reserve(total);
    for (const auto& v : per_thread_) {
      all.insert(all.end(), v->begin(), v->end());
    }
    return all;
  }

  void clear() {
    for (auto& v : per_thread_) v->clear();
  }

 private:
  std::atomic<std::uint64_t> clock_{1};
  std::vector<padded<std::vector<op_event>>> per_thread_;
};

}  // namespace kpq
