// Structural invariant auditor for the KP wait-free queue.
//
// The linearizability proof (paper §5.2) rests on structural invariants of
// the underlying list and state array. Under quiescence (no operation in
// flight) this auditor checks every one of them directly, so stress tests
// can interleave workload phases with full-structure audits:
//
//   I1  the list from head is acyclic and null-terminated;
//   I2  tail is reachable from head, and AT MOST ONE node dangles beyond
//       tail (the paper's "at most one node can be beyond the node
//       referenced by tail" invariant, §3.1) — at quiescence, exactly zero;
//   I3  every node except possibly the sentinel carries a valid enq_tid;
//   I4  the sentinel is the only node whose deq_tid MAY be set (a set
//       deq_tid on an interior node would mean a dequeue linearized but
//       never finished — impossible at quiescence);
//   I5  no descriptor in `state` is pending;
//   I6  every completed-enqueue descriptor's node is either null or not
//       reachable *ahead* of the sentinel in a way that would imply a
//       pending insertion (its node must already be linked, i.e. reachable
//       or retired, never "floating").
//
// The auditor is deliberately read-only and header-only; it uses only the
// queue's public quiescent surface plus the shared testing::whitebox
// declared by the queue (the test target defines it).
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

namespace kpq {

struct audit_result {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string msg) {
    ok = false;
    if (violations.size() < 16) violations.push_back(std::move(msg));
  }
  std::string to_string() const {
    std::string s;
    for (const auto& v : violations) {
      s += v;
      s += '\n';
    }
    return s;
  }
};

/// Whitebox-view inputs collected by the test (which has friend access);
/// keeping the auditor independent of the queue template avoids a second
/// friend declaration.
template <typename Node, typename Desc>
struct audit_view {
  Node* head = nullptr;
  Node* tail = nullptr;
  std::vector<Desc*> state;  // one per thread slot
  std::uint32_t max_threads = 0;
  /// wf_queue_fps marks fast-path nodes with enq_tid == -1; set this for
  /// fps audits so I3 accepts anonymous enqueuers.
  bool allow_anonymous_enqueuers = false;
};

template <typename Node, typename Desc>
audit_result audit_quiescent(const audit_view<Node, Desc>& v) {
  audit_result r;
  if (v.head == nullptr || v.tail == nullptr) {
    r.fail("I1: null head or tail");
    return r;
  }

  // I1: walk the list, detect cycles, find tail.
  std::unordered_set<const Node*> seen;
  bool tail_reachable = false;
  std::size_t beyond_tail = 0;
  for (const Node* p = v.head; p != nullptr;
       p = p->next.load(std::memory_order_acquire)) {
    if (!seen.insert(p).second) {
      r.fail("I1: cycle in the underlying list");
      return r;
    }
    if (p == v.tail) {
      tail_reachable = true;
    } else if (tail_reachable) {
      ++beyond_tail;
    }
    // I4: only the sentinel (head) may carry a deq_tid.
    if (p != v.head && p->deq_tid.load(std::memory_order_acquire) != -1) {
      r.fail("I4: interior node has deq_tid set (unfinished dequeue?)");
    }
    // I3: every non-sentinel node was enqueued by someone (fast-path nodes
    // are legitimately anonymous when the view says so).
    if (p != v.head) {
      const auto etid = p->enq_tid;
      const bool anonymous_ok = v.allow_anonymous_enqueuers && etid == -1;
      if (!anonymous_ok &&
          (etid < 0 || static_cast<std::uint32_t>(etid) >= v.max_threads)) {
        r.fail("I3: node with out-of-range enq_tid " + std::to_string(etid));
      }
    }
  }

  // I2: tail reachable; no dangling node at quiescence.
  if (!tail_reachable) r.fail("I2: tail not reachable from head");
  if (beyond_tail > 1) {
    r.fail("I2: " + std::to_string(beyond_tail) +
           " nodes beyond tail (invariant allows at most one)");
  }
  if (beyond_tail == 1) {
    r.fail("I2: dangling node present at quiescence (unfinished enqueue)");
  }

  // I5 + I6 over the state array.
  for (std::uint32_t i = 0; i < v.state.size(); ++i) {
    const Desc* d = v.state[i];
    if (d == nullptr) {
      r.fail("I5: null descriptor for thread " + std::to_string(i));
      continue;
    }
    if (d->pending) {
      r.fail("I5: thread " + std::to_string(i) +
             " still pending at quiescence");
    }
  }
  return r;
}

}  // namespace kpq
