// sharded_queue<Q, Policy> — the scaling front-end over S independent
// inner MPMC queues (default: the KP wait-free queue, untouched).
//
// Why: every operation on one KP queue is a rendezvous with every other
// thread — phase scans, the help() traversal, head/tail CAS contention all
// grow with the thread count on THAT queue. The literature's answer
// (No Cords Attached; wCQ; every production stream partitioner) is
// coordination REDUCTION: split traffic across independent lanes so the
// per-lane thread count, and with it the helping bound, shrinks by S. This
// class is that split, as a front-end satisfying the same mpmc_queue
// concept as the queues it wraps, so harness/bench/adapter code is reusable
// unchanged.
//
// Semantics (the "relaxed cross-shard ordering contract", documented in
// docs/ALGORITHM.md §6):
//   * Each shard is a linearizable FIFO (it IS an inner queue).
//   * Items that route to the same shard keep their FIFO order. With the
//     affinity policy that covers per-producer order; with key-hash,
//     per-key order. Round-robin promises no order at all.
//   * Cross-shard order is unspecified — the price of independence.
//   * dequeue() returning nullopt means: every shard, at the moment the
//     scan visited it, was observed empty by a linearizable inner dequeue.
//     There is no single instant at which the WHOLE structure was empty
//     (tested: per-shard empty honesty still holds, see
//     scale_random_schedule_test).
//
// Progress: enqueue is one policy call + one inner enqueue. dequeue is at
// most S inner dequeues (the cyclic scan visits each shard once) — a
// constant for a given configuration — so the front-end is wait-free
// whenever the inner queue is, with the helping bound divided by the number
// of shards traffic actually spreads over.
//
// Dequeue scan = work stealing: the scan starts at home_shard(tid) and
// continues over every pool slot. A consumer prefers its own lane (cheap,
// uncontended) and falls back to draining peers' lanes when its own runs
// dry, so no item is ever stranded behind an idle consumer. The
// stolen/dequeued ratio is exported per shard (scale_counters.hpp) — the
// fig_sharding bench prints it.
//
// Elasticity (scale/adaptive.hpp + scale/tuner.hpp, ALGORITHM.md §9): the
// constructed shard count is a fixed-capacity POOL. An epoch-stamped scan
// table — published by a single tuner thread, loaded once per operation —
// says which pool slots are ACTIVE (receive enqueues) and in what order the
// dequeue scan visits the pool. Growing/shrinking the active set and
// reordering the steal scan are one pointer publish each; shards are never
// constructed or destroyed after the pool is built, so in-flight operations
// keep their constant step bound, and deactivated shards keep being scanned
// until drained (no item is ever lost to a reshard). With the default
// identity table the routing degenerates to exactly the static behaviour.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/queue_concepts.hpp"
#include "harness/mem_tracker.hpp"
#include "obs/trace_ring.hpp"
#include "scale/adaptive.hpp"
#include "scale/batch.hpp"
#include "scale/scale_counters.hpp"
#include "scale/shard_policy.hpp"
#include "sync/cacheline.hpp"
#include "sync/thread_registry.hpp"

namespace kpq {

template <typename Q, typename Policy = affinity_shards>
  requires mpmc_queue<Q>
class sharded_queue : public mem_tracked {
 public:
  using value_type = typename Q::value_type;
  using inner_type = Q;
  using policy_type = Policy;

  /// `max_threads` has the inner queues' meaning (bound on distinct dense
  /// thread ids): every thread may steal from every shard, so each inner
  /// queue must be built for the full thread count. Pass `mc` to account
  /// inner allocations from construction, exactly like wf_queue.
  sharded_queue(std::uint32_t shard_count, std::uint32_t max_threads,
                mem_counters* mc = nullptr)
      : nshards_(shard_count),
        n_(max_threads),
        policy_(shard_count),
        elastic_(shard_count),
        counters_(shard_count) {
    assert(shard_count >= 1);
    set_memory_counters(mc);
    shards_.reserve(nshards_);
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      if constexpr (std::is_constructible_v<Q, std::uint32_t, mem_counters*>) {
        shards_.push_back(std::make_unique<Q>(max_threads, mc));
      } else {
        shards_.push_back(std::make_unique<Q>(max_threads));
      }
    }
  }

  /// Factory construction, for inner queues whose constructor needs more
  /// than (max_threads, mc) — the motivating case is bounded shards:
  ///
  ///   sharded_queue<bounded_wf_queue<T>> q(S, n,
  ///       [&](std::uint32_t s) {
  ///         return std::make_unique<bounded_wf_queue<T>>(n, cfg);
  ///       });
  ///
  /// Composing the front-end over bounded shards gives a sharded structure
  /// whose TOTAL memory is capped at S * cfg.max_bytes, with per-shard
  /// admission (a shard at its ceiling rejects/blocks independently; the
  /// work-stealing dequeue scan is unaffected).
  template <typename Factory>
    requires std::is_invocable_r_v<std::unique_ptr<Q>, Factory, std::uint32_t>
  sharded_queue(std::uint32_t shard_count, std::uint32_t max_threads,
                Factory&& make_shard)
      : nshards_(shard_count),
        n_(max_threads),
        policy_(shard_count),
        elastic_(shard_count),
        counters_(shard_count) {
    assert(shard_count >= 1);
    shards_.reserve(nshards_);
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      shards_.push_back(make_shard(s));
      assert(shards_.back() != nullptr);
    }
  }

  sharded_queue(const sharded_queue&) = delete;
  sharded_queue& operator=(const sharded_queue&) = delete;

  // ------------------------------------------------------------------ single

  void enqueue(value_type v, std::uint32_t tid) {
    assert(tid < n_);
    const scan_table* t = elastic_.table();
    const std::uint32_t s = route_enqueue(t, policy_.enqueue_shard(tid, v));
    shards_[s]->enqueue(std::move(v), tid);
    counters_[s]->on_enqueue();
  }
  void enqueue(value_type v) { enqueue(std::move(v), this_thread_id()); }

  /// Work-stealing scan: the caller's home shard first, then every pool
  /// slot in the published scan order (active shards best-first, then the
  /// deactivated tail so a reshard never strands items). At most one inner
  /// dequeue per pool slot per call, hence wait-free (see file comment).
  std::optional<value_type> dequeue(std::uint32_t tid) {
    assert(tid < n_);
    const scan_table* t = elastic_.table();
    const std::uint32_t home = route_home(t, tid);
    for (std::uint32_t k = 0; k <= nshards_; ++k) {
      const std::uint32_t s = k == 0 ? home : t->order[k - 1];
      if (k != 0 && s == home) continue;  // already visited first
      if (auto v = shards_[s]->dequeue(tid)) {
        counters_[s]->on_dequeue(/*stolen=*/s != home);
        if constexpr (obs::default_trace::enabled) {
          if (s != home) {
            obs::default_trace::record(tid, obs::trace_kind::shard_steal, 0,
                                       s);
          }
        }
        return v;
      }
    }
    counters_[home]->on_empty_scan();
    if constexpr (obs::default_trace::enabled) {
      obs::default_trace::record(tid, obs::trace_kind::shard_empty, 0, home);
    }
    return std::nullopt;
  }
  std::optional<value_type> dequeue() { return dequeue(this_thread_id()); }

  // ------------------------------------------------------------------- bulk

  /// A batch routes as one unit (shard chosen from its first item), so a
  /// producer's batch stays contiguous — and FIFO — inside one shard, and
  /// the inner queue's batched-descriptor fast path (wf_queue::enqueue_bulk:
  /// one reclamation guard + one phase draw for the whole batch) amortizes
  /// across all of it. Falls back to per-item inner ops automatically when
  /// the inner queue has no native bulk hook (kpq::enqueue_bulk dispatch).
  template <typename It>
  void enqueue_bulk(It first, It last, std::uint32_t tid) {
    if (first == last) return;
    assert(tid < n_);
    const scan_table* t = elastic_.table();
    const std::uint32_t s =
        route_enqueue(t, policy_.enqueue_shard(tid, *first));
    const auto n = static_cast<std::uint64_t>(std::distance(first, last));
    kpq::enqueue_bulk(*shards_[s], first, last, tid);
    counters_[s]->on_enqueue(n);
    counters_[s]->on_batch(n);
  }

  /// Work-stealing bulk pop: drains up to `max` items, preferring the home
  /// shard and continuing across the published scan order until `max` is
  /// met or every pool slot reported empty. Appends to `out`, returns items
  /// moved.
  std::size_t dequeue_bulk(std::vector<value_type>& out, std::size_t max,
                           std::uint32_t tid) {
    assert(tid < n_);
    const scan_table* t = elastic_.table();
    const std::uint32_t home = route_home(t, tid);
    std::size_t got = 0;
    for (std::uint32_t k = 0; k <= nshards_ && got < max; ++k) {
      const std::uint32_t s = k == 0 ? home : t->order[k - 1];
      if (k != 0 && s == home) continue;  // already visited first
      const std::size_t from_shard =
          kpq::dequeue_bulk(*shards_[s], out, max - got, tid);
      if (from_shard > 0) {
        counters_[s]->on_dequeue(/*stolen=*/s != home, from_shard);
        counters_[s]->on_batch(from_shard);
        got += from_shard;
        if constexpr (obs::default_trace::enabled) {
          if (s != home) {
            obs::default_trace::record(tid, obs::trace_kind::shard_steal, 0,
                                       s);
          }
        }
      }
    }
    if (got == 0) {
      counters_[home]->on_empty_scan();
      if constexpr (obs::default_trace::enabled) {
        obs::default_trace::record(tid, obs::trace_kind::shard_empty, 0,
                                   home);
      }
    }
    return got;
  }

  // -------------------------------------------------------------- elasticity
  // Single-mutator contract (the tuner thread); see adaptive.hpp.

  /// The fixed pool size ops are bounded by; == shard_count().
  std::uint32_t shard_capacity() const noexcept { return nshards_; }
  /// Shards currently receiving enqueues.
  std::uint32_t active_shards() const noexcept {
    return elastic_.table()->active_count;
  }
  /// Monotone table version; bumps on every grow/shrink/reorder.
  std::uint64_t scan_epoch() const noexcept {
    return elastic_.table()->epoch;
  }
  /// Bit s set iff pool slot s is active (slots >= 64 not represented).
  std::uint64_t active_mask() const noexcept {
    return elastic_.table()->active_mask();
  }
  const scan_table& current_table() const noexcept {
    return *elastic_.table();
  }
  /// Install a new active set / scan order (tuner thread only).
  std::uint64_t publish_table(std::uint32_t active_count,
                              std::vector<std::uint32_t> order) {
    return elastic_.publish(active_count, std::move(order));
  }
  /// Grow/shrink keeping the current scan order (tuner thread only).
  std::uint64_t set_active_shards(std::uint32_t active_count) {
    return elastic_.set_active_count(active_count);
  }

  // ---------------------------------------------------------- observability

  std::uint32_t shard_count() const noexcept { return nshards_; }
  std::uint32_t max_threads() const noexcept { return n_; }
  Q& shard(std::uint32_t s) noexcept { return *shards_[s]; }
  const Q& shard(std::uint32_t s) const noexcept { return *shards_[s]; }
  policy_type& policy() noexcept { return policy_; }

  shard_stats shard_counters_snapshot(std::uint32_t s) const {
    return counters_[s]->snapshot();
  }
  shard_stats aggregate_counters() const { return aggregate(counters_); }

  /// True if every shard looked empty at some point during the call (the
  /// relaxed emptiness the dequeue scan acts on; see file comment).
  bool empty_hint(std::uint32_t tid) {
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      if (!shards_[s]->empty_hint(tid)) return false;
    }
    return true;
  }
  bool empty_hint() { return empty_hint(this_thread_id()); }

  /// Test-only, requires quiescence (inner contract).
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    for (std::uint32_t s = 0; s < nshards_; ++s) n += shards_[s]->unsafe_size();
    return n;
  }

 private:
  /// Map a policy verdict (in [0, capacity)) onto the active set of the
  /// loaded table. Identity when all shards are active, so the static
  /// configuration routes exactly as before elasticity existed.
  static std::uint32_t route_enqueue(const scan_table* t,
                                     std::uint32_t policy_shard) noexcept {
    return t->order[policy_shard % t->active_count];
  }
  /// A consumer's scan starts where the matching producer enqueues, so the
  /// affinity pairing (and its near-zero steal rate) survives resharding.
  std::uint32_t route_home(const scan_table* t,
                           std::uint32_t tid) const noexcept {
    return t->order[policy_.home_shard(tid) % t->active_count];
  }

  const std::uint32_t nshards_;
  const std::uint32_t n_;
  Policy policy_;
  elastic_control elastic_;
  std::vector<std::unique_ptr<Q>> shards_;
  std::vector<padded<shard_counters>> counters_;
};

}  // namespace kpq
