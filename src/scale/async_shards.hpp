// async_sharded<Q, Policy>: the coroutine front-end over a set of shards —
// the scale layer's answer to "tens of thousands of suspended consumers
// over a handful of queues".
//
// Unlike sharded_queue (one queue object, internal steal scan), this is a
// composition of N independent async_mpmc shards: enqueues route by the
// same pluggable shard policies (scale/shard_policy.hpp — key_hash keeps
// per-key FIFO system-wide, the session-lane guarantee the broker example
// relies on), and consumers multiplex all shards with co_select, which IS
// the steal scan in coroutine form (scan starts at the shard whose token
// woke us; see async/select.hpp on token re-gifting).
#pragma once

#if !defined(__cpp_impl_coroutine)
#error "kpq/async requires C++20 coroutines (gate targets on KPQ_HAS_COROUTINES)"
#endif

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <stop_token>
#include <utility>
#include <vector>

#include "async/async_queue.hpp"
#include "async/select.hpp"
#include "async/task.hpp"
#include "scale/shard_policy.hpp"
#include "sync/thread_registry.hpp"

namespace kpq::async {

template <typename Q, typename Policy = kpq::affinity_shards>
class async_sharded {
 public:
  using value_type = typename Q::value_type;
  using shard_type = async_mpmc<Q>;
  using policy_type = Policy;

  /// Each shard's inner queue is constructed from the same `args` (they are
  /// reused, not forwarded — pass copyable configuration).
  template <typename... Args>
  explicit async_sharded(std::uint32_t shard_count, Args&&... args)
      : policy_(shard_count) {
    assert(shard_count > 0);
    shards_.reserve(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<shard_type>(args...));
    }
    ptrs_.reserve(shard_count);
    for (auto& s : shards_) ptrs_.push_back(s.get());
  }

  void set_executor(event_loop* loop) noexcept {
    for (auto& s : shards_) s->set_executor(loop);
  }

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  shard_type& shard(std::size_t i) noexcept { return *shards_[i]; }
  const std::vector<shard_type*>& shard_ptrs() const noexcept {
    return ptrs_;
  }

  /// Route by policy and enqueue synchronously (wait-free per shard).
  void enqueue(value_type v, std::uint32_t tid) {
    const std::uint32_t s = policy_.enqueue_shard(tid, v) % shard_count();
    shards_[s]->enqueue(std::move(v), tid);
  }
  void enqueue(value_type v) { enqueue(std::move(v), this_thread_id()); }

  /// Route by policy and await admission (bounded shards backpressure).
  task<bool> co_enqueue(value_type v) {
    const std::uint32_t s =
        policy_.enqueue_shard(this_thread_id(), v) % shard_count();
    co_return co_await shards_[s]->co_enqueue(std::move(v));
  }

  /// Await an element from ANY shard (co_select multiplex). index in the
  /// result names the serving shard.
  task<select_result<value_type>> co_dequeue_any(std::stop_token st = {}) {
    co_return co_await co_select<Q>(ptrs_, st);
  }

  std::optional<value_type> try_dequeue(std::uint32_t tid) {
    const std::uint32_t home = policy_.home_shard(tid) % shard_count();
    for (std::uint32_t k = 0; k < shard_count(); ++k) {
      if (auto v = shards_[(home + k) % shard_count()]->try_dequeue(tid)) {
        return v;
      }
    }
    return std::nullopt;
  }

  /// Close every shard: parked consumers drain, then complete empty.
  void close_all() {
    for (auto& s : shards_) s->close();
  }

 private:
  Policy policy_;
  std::vector<std::unique_ptr<shard_type>> shards_;
  std::vector<shard_type*> ptrs_;
};

}  // namespace kpq::async
