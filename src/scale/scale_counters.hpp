// Per-shard observability counters for the scaling layer.
//
// Mirrors the core's wf_counters split: cheap always-on atomics (one
// relaxed RMW per event, each shard's block padded against false sharing),
// read at sampling points that are already synchronized by join/barrier —
// same contract as mem_counters. The derived quantities the fig_sharding
// bench and EXPERIMENTS.md report:
//
//   * depth      — enqueued − dequeued: live items attributed to the shard
//                  (exact under quiescence, a momentary estimate during a
//                  run).
//   * steal rate — fraction of successful dequeues served by a shard other
//                  than the caller's home shard. High steal rate means the
//                  routing policy is feeding shards the consumers don't
//                  drain, i.e. the sharding is buying less than it could.
//   * batch fill — items per bulk operation actually amortized on the fast
//                  path; 1.0 means batching degenerated to per-item ops.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sync/cacheline.hpp"

namespace kpq {

/// Plain snapshot (safe to copy around, feed to tables).
struct shard_stats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;   // successful pops served by this shard
  std::uint64_t stolen = 0;     // subset of dequeued: caller's home differed
  std::uint64_t empty_scans = 0;  // full scans that started here and failed
  std::uint64_t batch_ops = 0;    // bulk calls that touched this shard
  std::uint64_t batch_items = 0;  // items moved by those calls

  std::int64_t depth() const noexcept {
    return static_cast<std::int64_t>(enqueued) -
           static_cast<std::int64_t>(dequeued);
  }
  double steal_rate() const noexcept {
    return dequeued == 0 ? 0.0
                         : static_cast<double>(stolen) /
                               static_cast<double>(dequeued);
  }
  double batch_fill() const noexcept {
    return batch_ops == 0 ? 0.0
                          : static_cast<double>(batch_items) /
                                static_cast<double>(batch_ops);
  }

  shard_stats& operator+=(const shard_stats& o) noexcept {
    enqueued += o.enqueued;
    dequeued += o.dequeued;
    stolen += o.stolen;
    empty_scans += o.empty_scans;
    batch_ops += o.batch_ops;
    batch_items += o.batch_items;
    return *this;
  }
};

/// One shard's live counters. Relaxed: counts, not synchronization.
class shard_counters {
 public:
  void on_enqueue(std::uint64_t n = 1) noexcept {
    enqueued_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_dequeue(bool stolen, std::uint64_t n = 1) noexcept {
    dequeued_.fetch_add(n, std::memory_order_relaxed);
    if (stolen) stolen_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_empty_scan() noexcept {
    empty_scans_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_batch(std::uint64_t items) noexcept {
    batch_ops_.fetch_add(1, std::memory_order_relaxed);
    batch_items_.fetch_add(items, std::memory_order_relaxed);
  }

  shard_stats snapshot() const noexcept {
    shard_stats s;
    s.enqueued = enqueued_.load(std::memory_order_relaxed);
    s.dequeued = dequeued_.load(std::memory_order_relaxed);
    s.stolen = stolen_.load(std::memory_order_relaxed);
    s.empty_scans = empty_scans_.load(std::memory_order_relaxed);
    s.batch_ops = batch_ops_.load(std::memory_order_relaxed);
    s.batch_items = batch_items_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    enqueued_.store(0, std::memory_order_relaxed);
    dequeued_.store(0, std::memory_order_relaxed);
    stolen_.store(0, std::memory_order_relaxed);
    empty_scans_.store(0, std::memory_order_relaxed);
    batch_ops_.store(0, std::memory_order_relaxed);
    batch_items_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> dequeued_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> empty_scans_{0};
  std::atomic<std::uint64_t> batch_ops_{0};
  std::atomic<std::uint64_t> batch_items_{0};
};

/// Sum of per-shard snapshots (quiescence for exactness, as everywhere).
inline shard_stats aggregate(const std::vector<padded<shard_counters>>& cs) {
  shard_stats total;
  for (const auto& c : cs) total += c->snapshot();
  return total;
}

}  // namespace kpq
