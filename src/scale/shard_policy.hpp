// Shard-routing policies for sharded_queue (the scaling layer's one
// degree of freedom).
//
// A policy answers two questions:
//
//   * enqueue_shard(tid, value) — which shard receives this insert. Called
//     once per enqueue (or once per batch: a batch routes as a unit so a
//     producer's batch stays FIFO inside one shard).
//   * home_shard(tid)           — where this thread's dequeue scan STARTS.
//     The scan then walks all shards cyclically, so the choice affects
//     locality and steal rate, never correctness or progress.
//
// Policies provided:
//
//   * affinity_shards    — shard = tid mod S for both questions. A producer
//     always feeds the same shard and a consumer with the same residue
//     drains it first, so a matched producer/consumer pair almost never
//     contends with the rest of the system. Per-producer FIFO is trivially
//     per-shard FIFO. The default, and the one the fig_sharding bench
//     sweeps.
//   * round_robin_shards — enqueues spread by a shared fetch-add counter.
//     Best depth balance, worst locality (every producer touches every
//     shard), and per-producer FIFO is NOT preserved (two consecutive
//     enqueues by one thread land on different shards and may be observed
//     out of order). Use for work-pool workloads where per-item ordering is
//     irrelevant.
//   * key_hash_shards    — shard = hash64(key(value)) mod S. All items with
//     equal key share a shard, so per-KEY FIFO holds system-wide — the
//     contract stream-processing partitioners (Kafka-style) give. The key
//     extractor is a stateless functor template parameter.
//
// All policies are wait-free: a constant number of thread-local or
// fetch-add steps per call.
#pragma once

#include <atomic>
#include <cstdint>

#include "harness/workload.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

struct affinity_shards {
  explicit affinity_shards(std::uint32_t shard_count) : s_(shard_count) {}

  template <typename T>
  std::uint32_t enqueue_shard(std::uint32_t tid, const T&) const noexcept {
    return tid % s_;
  }
  std::uint32_t home_shard(std::uint32_t tid) const noexcept {
    return tid % s_;
  }
  /// Per-producer FIFO maps to per-shard FIFO (used by the checkers).
  static constexpr bool per_producer_fifo = true;
  static constexpr const char* name = "affinity";

 private:
  std::uint32_t s_;
};

struct round_robin_shards {
  explicit round_robin_shards(std::uint32_t shard_count) : s_(shard_count) {}

  template <typename T>
  std::uint32_t enqueue_shard(std::uint32_t, const T&) noexcept {
    return static_cast<std::uint32_t>(
               next_.value.fetch_add(1, std::memory_order_relaxed)) %
           s_;
  }
  std::uint32_t home_shard(std::uint32_t tid) const noexcept {
    return tid % s_;
  }
  static constexpr bool per_producer_fifo = false;
  static constexpr const char* name = "round_robin";

 private:
  std::uint32_t s_;
  padded<std::atomic<std::uint64_t>> next_{std::uint64_t{0}};
};

/// Key extractor for the common encode_value payload: the producer field,
/// so every producer's stream stays whole (same guarantee as affinity but
/// chosen by data, not by the enqueuing thread).
struct value_tid_key {
  std::uint64_t operator()(std::uint64_t v) const noexcept {
    return value_tid(v);
  }
};

template <typename KeyFn = value_tid_key>
struct key_hash_shards {
  explicit key_hash_shards(std::uint32_t shard_count) : s_(shard_count) {}

  template <typename T>
  std::uint32_t enqueue_shard(std::uint32_t, const T& v) const noexcept {
    return static_cast<std::uint32_t>(hash64(KeyFn{}(v)) % s_);
  }
  std::uint32_t home_shard(std::uint32_t tid) const noexcept {
    return tid % s_;
  }
  static constexpr bool per_producer_fifo = false;  // per-key instead
  static constexpr const char* name = "key_hash";

 private:
  std::uint32_t s_;
};

}  // namespace kpq
