// Bulk-operation layer: amortize per-operation overhead across a batch.
//
// Two pieces:
//
//   * `bulk_mpmc_queue` — concept for queues exposing NATIVE bulk hooks
//     (wf_queue's enqueue_bulk/dequeue_bulk amortize one reclamation-guard
//     entry and one phase draw over the whole batch; sharded_queue routes
//     and counts whole batches). The native signatures are pinned here the
//     same way queue_concepts.hpp pins the scalar ones.
//
//   * kpq::enqueue_bulk / kpq::dequeue_bulk — free-function entry points
//     that dispatch to the native hook when present and otherwise fall back
//     to per-item operations. Generic code (harness, examples, the sharded
//     front-end) calls these and works over every queue in the library,
//     including the baselines that will never grow a native fast path.
//
// The fallback IS the contention story: a native batch is not transactional
// — items become visible one by one, exactly as the per-item loop's would,
// and each item's operation keeps its own wait-free completion (helpers can
// finish any prefix of the batch for a stalled owner). Batching therefore
// changes cost, never semantics, and "fall back to per-item ops" is the
// no-op it should be.
#pragma once

#include <concepts>
#include <cstdint>
#include <iterator>
#include <vector>

#include "core/queue_concepts.hpp"

namespace kpq {

/// Queues with native bulk hooks. Insert from an iterator range; pop up to
/// `max` items appended to a vector, returning how many arrived.
template <typename Q>
concept bulk_mpmc_queue =
    mpmc_queue<Q> &&
    requires(Q q, typename Q::value_type* p, std::size_t n,
             std::vector<typename Q::value_type>& out, std::uint32_t tid) {
      { q.enqueue_bulk(p, p + n, tid) };
      { q.dequeue_bulk(out, n, tid) } -> std::same_as<std::size_t>;
    };

/// Enqueue [first, last): native batch when the queue has one, per-item
/// loop otherwise. Values are copied from the range (producers typically
/// reuse their staging buffer).
template <typename Q, typename It>
  requires mpmc_queue<Q>
void enqueue_bulk(Q& q, It first, It last, std::uint32_t tid) {
  if constexpr (bulk_mpmc_queue<Q>) {
    q.enqueue_bulk(first, last, tid);
  } else {
    for (; first != last; ++first) q.enqueue(*first, tid);
  }
}

/// Pop up to `max` items into `out` (appended); returns the number moved.
/// Stops early the first time the queue reports empty — a bulk pop is a
/// best-effort drain, not a wait-for-fill.
template <typename Q>
  requires mpmc_queue<Q>
std::size_t dequeue_bulk(Q& q, std::vector<typename Q::value_type>& out,
                         std::size_t max, std::uint32_t tid) {
  if constexpr (bulk_mpmc_queue<Q>) {
    return q.dequeue_bulk(out, max, tid);
  } else {
    std::size_t got = 0;
    while (got < max) {
      auto v = q.dequeue(tid);
      if (!v.has_value()) break;
      out.push_back(std::move(*v));
      ++got;
    }
    return got;
  }
}

}  // namespace kpq
