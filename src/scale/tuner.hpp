// shard_tuner — the policy half of self-tuning elastic sharding.
//
// adaptive.hpp supplies the safe mechanism (epoch-stamped scan tables over a
// fixed shard pool, a clamped runtime patience knob on wf_queue_fps); this
// header supplies the controller that decides WHEN to use it. It closes the
// feedback loop left open by ROADMAP item 2: the obs counters (per-shard
// depth, steal/empty-scan rates, fast/slow path split, helping latency and
// phase lag from the trace) feed a low-frequency tick that emits at most a
// handful of single-pointer publishes.
//
// Control loop, one tick:
//
//   1. SAMPLE  — snapshot every shard's counters; form deltas against the
//                previous tick (rates), keep cumulative depth (backlog).
//   2. DECIDE  — with hysteresis (`hysteresis_ticks` consecutive ticks of
//                evidence before acting; one action resets all pressure):
//        grow    : mean active-shard depth >= grow_depth and the pool has
//                  room — spread enqueues over one more lane.
//        shrink  : mean active depth <= shrink_depth AND the empty-scan
//                  rate says consumers are starving — concentrate traffic
//                  so the survivors stay warm. Deactivated shards keep
//                  being scanned and simply drain (adaptive.hpp).
//        reorder : depth spread across the pool >= reorder_min_spread —
//                  republish the scan order deepest-first so stealers hit
//                  backlog before empty lanes.
//        patience: slow-path share of FPS shards >= raise threshold (or
//                  trace phase lag blew past phase_lag_raise) — raise the
//                  fast-path budget toward the compile-time ceiling;
//                  share <= lower threshold — decay it back down. The
//                  loop is self-stabilizing: more patience => fewer slow
//                  entries => the raise signal clears.
//   3. ACT     — grow/shrink/reorder are each one publish_table() (a
//                store-release of a fresh immutable table); patience is a
//                relaxed store per shard. Nothing here ever blocks an
//                operation or changes any step bound: every knob is
//                clamped inside a compile-time box (docs/ALGORITHM.md §9).
//
// Threading contract: single mutator. Call tick() from ONE control thread
// (or inline at deterministic points — every test does this; the
// periodic_ticker in adaptive.hpp is the production driver). The sampled
// counters are the usual relaxed estimates; a tick acting on a slightly
// stale estimate produces a suboptimal-but-safe table, never a wrong one.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <vector>

#include "obs/trace_ring.hpp"
#include "scale/adaptive.hpp"
#include "scale/scale_counters.hpp"

namespace kpq {

/// What a tick decided; also the `aux` code of the tuner_decision trace
/// event (phase carries the resulting scan epoch).
enum class tuner_action : std::uint32_t {
  none = 0,
  grow = 1,
  shrink = 2,
  reorder = 3,
  patience_raise = 4,
  patience_drop = 5,
};

inline constexpr const char* tuner_action_name(tuner_action a) noexcept {
  switch (a) {
    case tuner_action::none: return "none";
    case tuner_action::grow: return "grow";
    case tuner_action::shrink: return "shrink";
    case tuner_action::reorder: return "reorder";
    case tuner_action::patience_raise: return "patience_raise";
    case tuner_action::patience_drop: return "patience_drop";
  }
  return "unknown";
}

struct tuner_config {
  // Active-set sizing.
  std::uint32_t min_active = 1;
  std::uint32_t max_active = 0;  ///< 0 = the pool capacity
  /// Mean depth per active shard at/above which the set grows.
  std::int64_t grow_depth = 256;
  /// Mean depth per active shard at/below which shrinking is considered.
  std::int64_t shrink_depth = 8;
  /// ... but only when consumers are also starving: empty scans per dequeue
  /// attempt (this tick) at/above this rate.
  double shrink_empty_rate = 0.25;

  // Scan reorder.
  /// Depth gap between deepest and shallowest pool slot that justifies
  /// republishing the scan order (small spreads are noise).
  std::int64_t reorder_min_spread = 64;

  // FPS patience (only used when the inner queue exposes set_patience).
  double patience_raise_slow_rate = 0.20;
  double patience_lower_slow_rate = 0.02;
  std::uint32_t patience_step = 8;
  std::uint32_t min_patience = 2;
  /// Trace-derived escalation: phase-lag p99 above this also argues for
  /// more fast-path patience (ops are queueing up behind the phase
  /// frontier). Fed via tick(signals); ignored when signals are absent.
  double phase_lag_raise = 64.0;

  /// Consecutive ticks a signal must persist before the tuner acts; any
  /// action resets all pressure (one adaptation at a time, no thrash).
  std::uint32_t hysteresis_ticks = 2;
  /// Ticks with fewer ops than this are ignored entirely (idle system —
  /// rates would be noise).
  std::uint64_t min_ops_per_tick = 32;

  /// Dense thread id to record tuner_decision trace events under, or
  /// UINT32_MAX for no tracing. Must be a tid the control thread OWNS
  /// (trace rings are single-writer) — tests pass their injector tid.
  std::uint32_t trace_tid = UINT32_MAX;
};

/// Registry-exportable snapshot (obs::tuner_stats_like): cumulative
/// decision counters plus the current gauges.
struct tuner_stats {
  std::uint64_t ticks = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t reorders = 0;
  std::uint64_t patience_raises = 0;
  std::uint64_t patience_drops = 0;
  std::uint32_t active_shards = 0;
  std::uint32_t patience = 0;
  std::uint64_t scan_epoch = 0;
};

/// Trace-derived escalation inputs (obs/wf_metrics.hpp quantiles), for
/// deployments that drain the trace anyway. Entirely optional.
struct tuner_signals {
  double help_latency_p99 = 0.0;  ///< ticks (tick_now units)
  double phase_lag_p99 = 0.0;     ///< phases
};

template <typename SQ>
class shard_tuner {
 public:
  explicit shard_tuner(SQ& q, tuner_config cfg = {})
      : q_(q), cfg_(cfg), prev_(q.shard_capacity()) {
    if (cfg_.max_active == 0 || cfg_.max_active > q.shard_capacity()) {
      cfg_.max_active = q.shard_capacity();
    }
    if (cfg_.min_active < 1) cfg_.min_active = 1;
    if (cfg_.min_active > cfg_.max_active) cfg_.min_active = cfg_.max_active;
    for (std::uint32_t s = 0; s < q_.shard_capacity(); ++s) {
      prev_[s] = q_.shard_counters_snapshot(s);
    }
    stats_.active_shards = q_.active_shards();
    stats_.patience = current_patience();
    stats_.scan_epoch = q_.scan_epoch();
  }

  shard_tuner(const shard_tuner&) = delete;
  shard_tuner& operator=(const shard_tuner&) = delete;

  const tuner_config& config() const noexcept { return cfg_; }
  const tuner_stats& stats() const noexcept { return stats_; }

  /// One control-loop iteration; returns the action taken (at most one
  /// table publish per tick, plus at most one patience nudge).
  tuner_action tick() { return tick(tuner_signals{}); }

  tuner_action tick(const tuner_signals& sig) {
    ++stats_.ticks;

    // -------- sample: per-shard depth (cumulative) + this tick's deltas.
    const std::uint32_t cap = q_.shard_capacity();
    std::vector<shard_stats> now(cap);
    std::uint64_t d_deq = 0, d_empty = 0, d_ops = 0;
    std::vector<std::int64_t> depth(cap);
    for (std::uint32_t s = 0; s < cap; ++s) {
      now[s] = q_.shard_counters_snapshot(s);
      depth[s] = now[s].depth();
      d_deq += now[s].dequeued - prev_[s].dequeued;
      d_empty += now[s].empty_scans - prev_[s].empty_scans;
      d_ops += (now[s].enqueued - prev_[s].enqueued) +
               (now[s].dequeued - prev_[s].dequeued);
    }
    const fps_delta fps = sample_fps_delta();
    prev_ = std::move(now);

    refresh_gauges();
    if (d_ops + d_empty < cfg_.min_ops_per_tick) {
      clear_pressure();
      return tuner_action::none;
    }

    // -------- derived signals.
    const scan_table& table = q_.current_table();
    const std::uint32_t active = table.active_count;
    std::int64_t active_depth_sum = 0;
    for (std::uint32_t k = 0; k < active; ++k) {
      active_depth_sum += depth[table.order[k]];
    }
    const std::int64_t mean_active_depth =
        active_depth_sum / static_cast<std::int64_t>(active);
    const double empty_rate =
        static_cast<double>(d_empty) /
        static_cast<double>(d_deq + d_empty == 0 ? 1 : d_deq + d_empty);
    const auto [dmin, dmax] = std::minmax_element(depth.begin(), depth.end());
    const std::int64_t spread = *dmax - *dmin;

    // -------- decide with hysteresis; at most one structural action.
    const bool wants_grow =
        active < cfg_.max_active && mean_active_depth >= cfg_.grow_depth;
    const bool wants_shrink = active > cfg_.min_active &&
                              mean_active_depth <= cfg_.shrink_depth &&
                              empty_rate >= cfg_.shrink_empty_rate;
    const bool wants_reorder =
        spread >= cfg_.reorder_min_spread && !sorted_deepest_first(depth, table);

    grow_pressure_ = wants_grow ? grow_pressure_ + 1 : 0;
    shrink_pressure_ = wants_shrink ? shrink_pressure_ + 1 : 0;
    reorder_pressure_ = wants_reorder ? reorder_pressure_ + 1 : 0;

    tuner_action structural = tuner_action::none;
    if (grow_pressure_ >= cfg_.hysteresis_ticks) {
      structural = tuner_action::grow;
      publish_resized(depth, active + 1);
      ++stats_.grows;
    } else if (shrink_pressure_ >= cfg_.hysteresis_ticks) {
      structural = tuner_action::shrink;
      publish_resized(depth, active - 1);
      ++stats_.shrinks;
    } else if (reorder_pressure_ >= cfg_.hysteresis_ticks) {
      structural = tuner_action::reorder;
      publish_resized(depth, active);
      ++stats_.reorders;
    }
    if (structural != tuner_action::none) {
      clear_pressure();
      refresh_gauges();
      trace_decision(structural);
      return structural;
    }

    // -------- patience (independent of the structural decision; only when
    // the inner queue has the knob and this tick saw real FPS traffic).
    if constexpr (has_patience) {
      if (fps.ops >= cfg_.min_ops_per_tick) {
        const bool wants_raise = fps.slow_rate >= cfg_.patience_raise_slow_rate ||
                                 sig.phase_lag_p99 >= cfg_.phase_lag_raise;
        const bool wants_drop = !wants_raise &&
                                fps.slow_rate <= cfg_.patience_lower_slow_rate &&
                                current_patience() > cfg_.min_patience;
        raise_pressure_ = wants_raise ? raise_pressure_ + 1 : 0;
        drop_pressure_ = wants_drop ? drop_pressure_ + 1 : 0;
        if (raise_pressure_ >= cfg_.hysteresis_ticks) {
          set_patience_all(current_patience() + cfg_.patience_step);
          ++stats_.patience_raises;
          clear_pressure();
          refresh_gauges();
          trace_decision(tuner_action::patience_raise);
          return tuner_action::patience_raise;
        }
        if (drop_pressure_ >= cfg_.hysteresis_ticks) {
          const std::uint32_t cur = current_patience();
          set_patience_all(cur - cfg_.patience_step < cfg_.min_patience ||
                                   cur < cfg_.patience_step
                               ? cfg_.min_patience
                               : cur - cfg_.patience_step);
          ++stats_.patience_drops;
          clear_pressure();
          refresh_gauges();
          trace_decision(tuner_action::patience_drop);
          return tuner_action::patience_drop;
        }
      }
    }
    return tuner_action::none;
  }

 private:
  static constexpr bool has_patience = requires(SQ& q) {
    q.shard(0u).set_patience(1u);
    { q.shard(0u).patience() } -> std::convertible_to<std::uint32_t>;
    q.shard(0u).aggregate_path_counters();
  };

  struct fps_delta {
    std::uint64_t ops = 0;
    double slow_rate = 0.0;
  };

  fps_delta sample_fps_delta() {
    fps_delta d;
    if constexpr (has_patience) {
      std::uint64_t fast = 0, slow = 0;
      for (std::uint32_t s = 0; s < q_.shard_capacity(); ++s) {
        const auto ps = q_.shard(s).aggregate_path_counters();
        fast += ps.fast_enqs + ps.fast_deqs;
        slow += ps.slow_enqs + ps.slow_deqs;
      }
      const std::uint64_t d_fast = fast - prev_fast_;
      const std::uint64_t d_slow = slow - prev_slow_;
      prev_fast_ = fast;
      prev_slow_ = slow;
      d.ops = d_fast + d_slow;
      d.slow_rate = d.ops == 0 ? 0.0
                               : static_cast<double>(d_slow) /
                                     static_cast<double>(d.ops);
    }
    return d;
  }

  std::uint32_t current_patience() const noexcept {
    if constexpr (has_patience) {
      return q_.shard(0u).patience();
    } else {
      return 0;
    }
  }

  void set_patience_all(std::uint32_t p) noexcept {
    if constexpr (has_patience) {
      // Each shard clamps against its own compile-time ceiling.
      for (std::uint32_t s = 0; s < q_.shard_capacity(); ++s) {
        q_.shard(s).set_patience(p);
      }
    } else {
      (void)p;
    }
  }

  /// Is the current table already deepest-first over the whole pool?
  static bool sorted_deepest_first(const std::vector<std::int64_t>& depth,
                                   const scan_table& t) {
    for (std::size_t k = 1; k < t.order.size(); ++k) {
      if (depth[t.order[k - 1]] < depth[t.order[k]]) return false;
    }
    return true;
  }

  /// Publish a table with `new_active` active shards, scan order
  /// deepest-first. Membership changes one shard at a time:
  ///   grow   — activate the SHALLOWEST inactive slot (fresh lane for new
  ///            enqueues, not one with leftover backlog);
  ///   shrink — deactivate the SHALLOWEST active slot (fastest to drain,
  ///            least traffic disturbed).
  /// Both halves of the published order are sorted deepest-first so the
  /// steal scan always walks backlog before empty lanes.
  void publish_resized(const std::vector<std::int64_t>& depth,
                       std::uint32_t new_active) {
    const scan_table& t = q_.current_table();
    std::vector<std::uint32_t> act(t.order.begin(),
                                   t.order.begin() + t.active_count);
    std::vector<std::uint32_t> inact(t.order.begin() + t.active_count,
                                     t.order.end());
    const auto shallowest = [&](std::vector<std::uint32_t>& v) {
      auto it = std::min_element(
          v.begin(), v.end(),
          [&](std::uint32_t a, std::uint32_t b) { return depth[a] < depth[b]; });
      const std::uint32_t s = *it;
      v.erase(it);
      return s;
    };
    if (new_active > t.active_count && !inact.empty()) {
      act.push_back(shallowest(inact));
    } else if (new_active < t.active_count && act.size() > 1) {
      inact.push_back(shallowest(act));
    }
    const auto deepest_first = [&](std::vector<std::uint32_t>& v) {
      std::stable_sort(v.begin(), v.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return depth[a] > depth[b];
                       });
    };
    deepest_first(act);
    deepest_first(inact);
    std::vector<std::uint32_t> order = act;
    order.insert(order.end(), inact.begin(), inact.end());
    q_.publish_table(static_cast<std::uint32_t>(act.size()),
                     std::move(order));
  }

  void clear_pressure() noexcept {
    grow_pressure_ = shrink_pressure_ = reorder_pressure_ = 0;
    raise_pressure_ = drop_pressure_ = 0;
  }

  void refresh_gauges() noexcept {
    stats_.active_shards = q_.active_shards();
    stats_.patience = current_patience();
    stats_.scan_epoch = q_.scan_epoch();
  }

  void trace_decision(tuner_action a) noexcept {
    if constexpr (obs::default_trace::enabled) {
      if (cfg_.trace_tid != UINT32_MAX) {
        obs::default_trace::record(
            cfg_.trace_tid, obs::trace_kind::tuner_decision,
            static_cast<std::int64_t>(q_.scan_epoch()),
            static_cast<std::uint32_t>(a));
      }
    }
  }

  SQ& q_;
  tuner_config cfg_;
  tuner_stats stats_;
  std::vector<shard_stats> prev_;
  std::uint64_t prev_fast_ = 0;
  std::uint64_t prev_slow_ = 0;
  std::uint32_t grow_pressure_ = 0;
  std::uint32_t shrink_pressure_ = 0;
  std::uint32_t reorder_pressure_ = 0;
  std::uint32_t raise_pressure_ = 0;
  std::uint32_t drop_pressure_ = 0;
};

}  // namespace kpq
