// Elastic shard control: the mechanism half of self-tuning sharding.
//
// PR 1's sharded_queue split traffic across S independent lanes; PR 5's
// obs layer measures what each lane is doing (depth, steal rate, empty
// scans, helping latency). This header supplies the piece that lets a
// controller (scale/tuner.hpp) ACT on those signals without ever breaking
// the wait-free step bound:
//
//   * scan_table — an immutable, epoch-stamped snapshot of the routing
//     decision: which shards are ACTIVE (receive enqueues) and in what
//     ORDER the dequeue scan should visit the pool. The first
//     `active_count` entries of `order` are the active set, best-first;
//     the tail lists the deactivated shards so in-flight items there are
//     still drained.
//
//   * elastic_control — the publication protocol. Shards live in a
//     FIXED-CAPACITY pool that is never reallocated; adaptation only flips
//     which pool slots the table marks active. Publishing is one
//     store-release of a pointer to a fresh immutable table; an operation
//     loads the pointer once (acquire) and uses that snapshot for its whole
//     scan. No locks, no RCU grace periods, no per-op fences beyond the one
//     acquire load.
//
// Why this preserves wait-freedom (docs/ALGORITHM.md §9 has the full
// argument):
//
//   1. Per-op step bound: an operation's scan visits at most `capacity`
//      shards — a compile-/construction-time constant — whatever the table
//      says, and each visit is one inner wait-free op. Table swaps change
//      WHICH constant-bounded scan runs, never its length.
//   2. No lost items: deactivation removes a shard from the enqueue set
//      only; every dequeue scan still visits all `capacity` slots, so a
//      deactivated shard drains at exactly the rate it is scanned.
//   3. No torn routing: tables are immutable after publish, so an op that
//      loaded table T routes and scans consistently under T even if the
//      tuner publishes T+1 mid-scan. Mixed-table executions interleave two
//      correct scans — the random-schedule replay in
//      tests/scale_adaptive_test.cpp exercises exactly these interleavings.
//
// Memory: retired tables are retained for the queue's lifetime (history_).
// A table is O(capacity) bytes and the tuner publishes at most one per
// low-frequency tick, so retention is a few dozen bytes per tick — the
// price of keeping readers entirely wait-free instead of dragging hazard
// pointers into the routing path. A single mutator thread is the contract
// (same "register at startup / sample at sampling points" discipline as
// every other control surface in this repo).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "sync/cacheline.hpp"

namespace kpq {

/// Immutable routing snapshot. `order` is a permutation of [0, capacity);
/// entries [0, active_count) are the shards that accept enqueues, in scan
/// priority order (the tuner sorts them deepest-first). Entries
/// [active_count, capacity) are deactivated but still scanned by dequeues.
struct scan_table {
  std::uint64_t epoch = 0;
  std::uint32_t active_count = 0;
  std::vector<std::uint32_t> order;

  bool is_active(std::uint32_t shard) const noexcept {
    for (std::uint32_t k = 0; k < active_count; ++k) {
      if (order[k] == shard) return true;
    }
    return false;
  }
  std::uint64_t active_mask() const noexcept {
    std::uint64_t m = 0;
    for (std::uint32_t k = 0; k < active_count && order[k] < 64; ++k) {
      m |= std::uint64_t{1} << order[k];
    }
    return m;
  }
};

/// Publication protocol: one atomic pointer to the current table plus the
/// retained history. Readers: table() — one acquire load, then treat the
/// result as immutable. Writer (single tuner thread): publish().
class elastic_control {
 public:
  explicit elastic_control(std::uint32_t capacity) : capacity_(capacity) {
    assert(capacity >= 1);
    auto identity = std::make_unique<scan_table>();
    identity->epoch = 0;
    identity->active_count = capacity;
    identity->order.resize(capacity);
    std::iota(identity->order.begin(), identity->order.end(), 0u);
    current_.store(identity.get(), std::memory_order_release);
    history_.push_back(std::move(identity));
  }

  elastic_control(const elastic_control&) = delete;
  elastic_control& operator=(const elastic_control&) = delete;

  std::uint32_t capacity() const noexcept { return capacity_; }

  /// The snapshot an operation routes and scans under. One acquire load;
  /// hold the pointer for the duration of the op only (it stays valid for
  /// the queue's lifetime, but a fresh op should see a fresh table).
  const scan_table* table() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Single-mutator: install a new active set / scan order. `order` must be
  /// a permutation of [0, capacity); `active_count` in [1, capacity].
  /// Returns the new epoch.
  std::uint64_t publish(std::uint32_t active_count,
                        std::vector<std::uint32_t> order) {
    assert(active_count >= 1 && active_count <= capacity_);
    assert(order.size() == capacity_);
#ifndef NDEBUG
    {
      std::vector<bool> seen(capacity_, false);
      for (std::uint32_t s : order) {
        assert(s < capacity_ && !seen[s] && "order must be a permutation");
        seen[s] = true;
      }
    }
#endif
    auto next = std::make_unique<scan_table>();
    next->epoch = table()->epoch + 1;
    next->active_count = active_count;
    next->order = std::move(order);
    const std::uint64_t epoch = next->epoch;
    current_.store(next.get(), std::memory_order_release);
    history_.push_back(std::move(next));
    return epoch;
  }

  /// Convenience single-mutator edits over the current table.
  std::uint64_t set_active_count(std::uint32_t active_count) {
    return publish(active_count, table()->order);
  }

  std::size_t tables_published() const noexcept { return history_.size(); }

 private:
  const std::uint32_t capacity_;
  alignas(destructive_interference) std::atomic<const scan_table*> current_{
      nullptr};
  std::vector<std::unique_ptr<scan_table>> history_;  // tuner-thread-only
};

/// Background tick driver for long-running services: calls `fn` every
/// `period` until stopped. Benches and tests prefer calling tick() inline
/// at deterministic points; this is the convenience wrapper for everything
/// else. Destruction stops and joins.
class periodic_ticker {
 public:
  periodic_ticker(std::chrono::milliseconds period, std::function<void()> fn)
      : fn_(std::move(fn)), period_(period), thread_([this] { loop(); }) {}

  ~periodic_ticker() { stop(); }

  void stop() {
    if (!stopped_.exchange(true, std::memory_order_acq_rel)) {
      thread_.join();
    }
  }

 private:
  void loop() {
    // Sleep in small slices so stop() is responsive without a condvar.
    const auto slice = std::chrono::milliseconds(1);
    auto next = std::chrono::steady_clock::now() + period_;
    while (!stopped_.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= next) {
        fn_();
        next = std::chrono::steady_clock::now() + period_;
      }
      // kpq-block: dedicated tuner thread, never a queue operator — sleeping
      // here cannot impede any queue operation's progress bound
      std::this_thread::sleep_for(slice);
    }
  }

  std::function<void()> fn_;
  std::chrono::milliseconds period_;
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

}  // namespace kpq
