// Flight-recorder implementation. The crash path is the whole point of this
// file: everything reachable from on_fatal_signal() must stay on the
// async-signal-safe list (POSIX.1: write, open, close, sigaction, raise,
// _exit, atomic loads) — no allocation, no stdio, no locking. The
// pre-rendering half (refresh_registry) runs on normal threads and may use
// anything it likes.

#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>

#include "obs/calibrate.hpp"
#include "obs/export.hpp"

namespace kpq::obs {

namespace {

constexpr int fatal_signals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};
constexpr std::size_t n_fatal = sizeof(fatal_signals) / sizeof(fatal_signals[0]);
struct sigaction previous_actions[n_fatal];

// ---------------------------------------------------- signal-safe formatting
// A line is assembled in a stack buffer and flushed with one write(); every
// helper is branch-and-store only.

struct line_buf {
  char data[512];
  std::size_t len = 0;

  void put(char c) noexcept {
    if (len < sizeof(data)) data[len++] = c;
  }
  void str(const char* s) noexcept {
    while (*s != '\0') put(*s++);
  }
  void u64(std::uint64_t v) noexcept {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(tmp[--n]);
  }
  void i64(std::int64_t v) noexcept {
    if (v < 0) {
      put('-');
      // Negate via unsigned to survive INT64_MIN.
      u64(~static_cast<std::uint64_t>(v) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
  void flush(int fd) noexcept {
    std::size_t off = 0;
    while (off < len) {
      // kpq-block: write(2) may block on a full pipe/slow disk — acceptable,
      // the process is crashing and this is the post-mortem path.
      const ssize_t w = ::write(fd, data + off, len - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    len = 0;
  }
};

}  // namespace

flight_recorder& flight_recorder::instance() noexcept {
  static flight_recorder inst;
  return inst;
}

void flight_recorder::arm(const flight_recorder_config& cfg, trace_domain* dom,
                          const registry* reg) {
  dom_ = dom;
  reg_ = reg;
  last_n_ = cfg.last_n_per_thread;
  std::strncpy(path_, cfg.path, sizeof(path_) - 1);
  path_[sizeof(path_) - 1] = '\0';
  tick_hz_u64_ = static_cast<std::uint64_t>(calibrate_ticks().tick_hz);
  if (reg_ != nullptr) refresh_registry();

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &flight_recorder::on_fatal_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  for (std::size_t i = 0; i < n_fatal; ++i) {
    sigaction(fatal_signals[i], &sa, &previous_actions[i]);
  }
  // kpq-order: release pairs-with the acquire in armed() — publishing the
  // armed flag after every config field above is written
  armed_.store(true, std::memory_order_release);
}

void flight_recorder::disarm() noexcept {
  // kpq-order: release pairs-with the acquire in armed()
  armed_.store(false, std::memory_order_release);
  for (std::size_t i = 0; i < n_fatal; ++i) {
    sigaction(fatal_signals[i], &previous_actions[i], nullptr);
  }
}

void flight_recorder::refresh_registry() {
  if (reg_ == nullptr) return;
  // kpq-order: relaxed pairs-with none (single renderer at a time by
  // contract — the pump thread; the publish below is the synchronizing edge)
  const int active = reg_active_.load(std::memory_order_relaxed);
  const int next = active == 0 ? 1 : 0;
  rendered_registry& rb = regbuf_[next];
  rb.len = 0;
  const metrics_snapshot snap = reg_->snapshot();
  for (const metric& m : snap) {
    const std::string line = "{\"metric\":\"" + json_escape(m.name) +
                             "\",\"value\":" + format_number(m.value) + "}\n";
    if (rb.len + line.size() > registry_buf_bytes) break;
    std::memcpy(rb.data + rb.len, line.data(), line.size());
    rb.len += line.size();
  }
  // kpq-order: release pairs-with the acquire load in write_dump() — the
  // handler must see the buffer contents written above
  reg_active_.store(next, std::memory_order_release);
}

bool flight_recorder::dump_now(const char* reason) noexcept {
  if (!armed()) return false;
  return write_dump(reason);
}

void flight_recorder::on_fatal_signal(int sig) noexcept {
  flight_recorder& self = instance();
  // kpq-order: acq_rel pairs-with itself across threads/reentry — exactly
  // one dump attempt even if several threads crash at once
  if (!self.dumping_.exchange(true, std::memory_order_acq_rel)) {
    const char* reason = "signal";
    switch (sig) {
      case SIGABRT: reason = "SIGABRT"; break;
      case SIGSEGV: reason = "SIGSEGV"; break;
      case SIGBUS: reason = "SIGBUS"; break;
      case SIGFPE: reason = "SIGFPE"; break;
      case SIGILL: reason = "SIGILL"; break;
      default: break;
    }
    self.write_dump(reason);
  }
  // Re-deliver with the default disposition so the exit status / core dump
  // behave as if the recorder were never installed.
  signal(sig, SIG_DFL);
  raise(sig);
}

bool flight_recorder::write_dump(const char* reason) noexcept {
  // kpq-block: open(2) on the crash path — blocking is acceptable here, the
  // alternative is losing the post-mortem entirely.
  const int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  line_buf lb;

  // Header (raw dump form, obs/timeline.hpp): tick rate + total drop count.
  std::uint64_t dropped = 0;
  const std::uint32_t n = dom_ != nullptr ? dom_->max_threads() : 0;
  for (std::uint32_t t = 0; t < n; ++t) {
    if (const trace_ring* r = dom_->ring_ptr(t)) dropped += r->dropped();
  }
  lb.str("{\"kpq_trace_raw\":1,\"tick_hz\":");
  lb.u64(tick_hz_u64_);
  lb.str(",\"dropped\":");
  lb.u64(dropped);
  lb.str(",\"reason\":\"");
  lb.str(reason);
  lb.str("\"}\n");
  lb.flush(fd);

  // Last-N events per thread. Rings of other threads may still be written
  // concurrently — torn tail events are acceptable in a post-mortem.
  for (std::uint32_t t = 0; t < n; ++t) {
    const trace_ring* r = dom_->ring_ptr(t);
    if (r == nullptr) continue;
    const std::uint64_t w = r->written();
    std::uint64_t keep = last_n_ < r->capacity() ? last_n_ : r->capacity();
    if (keep > w) keep = w;
    for (std::uint64_t seq = w - keep; seq < w; ++seq) {
      const trace_event& e = r->peek(seq);
      lb.str("{\"ts\":");
      lb.u64(e.ts);
      lb.str(",\"tid\":");
      lb.u64(e.tid);
      lb.str(",\"kind\":");
      lb.u64(static_cast<std::uint64_t>(e.kind));
      lb.str(",\"kind_name\":\"");
      lb.str(trace_kind_name(e.kind));
      lb.str("\",\"phase\":");
      lb.i64(e.phase);
      lb.str(",\"aux\":");
      lb.u64(e.aux);
      lb.str("}\n");
      lb.flush(fd);
    }
  }

  // Pre-rendered registry snapshot (whole-buffer write; the renderer
  // published it with release, we acquire here).
  // kpq-order: acquire pairs-with the release store in refresh_registry()
  const int active = reg_active_.load(std::memory_order_acquire);
  if (active >= 0) {
    const rendered_registry& rb = regbuf_[active];
    std::size_t off = 0;
    while (off < rb.len) {
      // kpq-block: write(2), see line_buf::flush.
      const ssize_t w = ::write(fd, rb.data + off, rb.len - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
  }

  ::close(fd);
  return true;
}

}  // namespace kpq::obs
