// TSC→wall-clock calibration for the observability pipeline.
//
// Trace events and residency stamps are recorded in "ticks" (tick_now():
// raw TSC on x86-64, steady-clock ns elsewhere) because a TSC read is the
// only timestamp cheap enough for the queues' hot paths. Everything that
// leaves the process — timeline JSON, residency percentiles, flight-recorder
// dumps — needs those ticks mapped back to nanoseconds. A calibration is a
// (tick, ns) base pair plus a measured frequency, taken once at a
// convenient moment (startup, or right before converting), good to a few
// percent over bench-length runs.
#pragma once

#include <cstdint>

#include "harness/timing.hpp"
#include "obs/trace_ring.hpp"

namespace kpq::obs {

/// A fixed (tick, ns) correspondence plus the tick rate. Value type: copy
/// freely, embed in reports, pass to converters.
struct tick_calibration {
  double tick_hz = 1e9;         // measured tick frequency
  std::uint64_t base_ticks = 0; // tick_now() at the calibration instant
  std::uint64_t base_ns = 0;    // now_ns() at (approximately) the same instant

  double ticks_per_ns() const noexcept { return tick_hz / 1e9; }

  /// A tick *duration* in nanoseconds.
  double delta_ns(std::uint64_t ticks) const noexcept {
    return static_cast<double>(ticks) * 1e9 / tick_hz;
  }

  /// An absolute tick_now() reading mapped onto the now_ns() timeline.
  double to_ns(std::uint64_t ticks) const noexcept {
    const double rel =
        (static_cast<double>(ticks) - static_cast<double>(base_ticks)) * 1e9 /
        tick_hz;
    return static_cast<double>(base_ns) + rel;
  }

  /// Microseconds relative to the calibration base — the unit Chrome/Perfetto
  /// trace-event JSON expects in its `ts` field.
  double to_us(std::uint64_t ticks) const noexcept {
    return (static_cast<double>(ticks) - static_cast<double>(base_ticks)) *
           1e6 / tick_hz;
  }
};

/// Measure the tick rate against the steady clock over `window_ns` (default
/// ~10 ms, the same window estimate_tick_hz() uses) and capture the base
/// pair. Blocks for the window; call from setup code, not hot paths.
inline tick_calibration calibrate_ticks(std::uint64_t window_ns = 10'000'000) {
  tick_calibration c;
  c.base_ticks = tick_now();
  c.base_ns = now_ns();
#if defined(__x86_64__) || defined(_M_X64)
  std::uint64_t n1 = c.base_ns;
  while (n1 - c.base_ns < window_ns) n1 = now_ns();
  const std::uint64_t t1 = tick_now();
  c.tick_hz = static_cast<double>(t1 - c.base_ticks) * 1e9 /
              static_cast<double>(n1 - c.base_ns);
#else
  (void)window_ns;
  c.tick_hz = 1e9;  // ticks are nanoseconds already
#endif
  return c;
}

}  // namespace kpq::obs
