// Live telemetry pump: a background sampler for long-running services.
//
// The registry (obs/registry.hpp) is scrape-on-demand; benches scrape once
// at the end. A service needs a *pump*: a thread that scrapes every
// `interval`, keeps a bounded in-memory ring of recent snapshots (the
// "what did the last minute look like" buffer), and optionally appends each
// snapshot as a JSONL line / rewrites a Prometheus textfile for node-
// exporter-style collection. The pump also refreshes the flight recorder's
// pre-rendered registry buffer, so a crash dump carries metrics at most one
// interval stale.
//
// Scrape safety contract (tested under TSan in obs_telemetry_test): the
// pump calls registry collectors from ITS thread while workers mutate the
// underlying counters. That is only race-free for counter surfaces that are
// atomic (shard_counters, fps path_counters, waiter_hub stats, bounded
// admission counters, log2_histogram/residency probes, loop_stats snapshots
// taken under the loop's own lock). Plain-field owner-written counters
// (wf_counters with collect_stats) keep their read-at-quiescence contract —
// do not register those with a live pump.
//
// Concurrency: the pump is OBSERVABILITY code, not queue code — kpq-lint's
// wait-free purity rule (R2) does not apply outside core/scale/storage, and
// a mutex + condition variable is the right tool for a sampler thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/timing.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"

namespace kpq::obs {

struct telemetry_options {
  /// Scrape period. The first scrape happens one interval after start().
  std::uint64_t interval_ms = 100;
  /// Bounded snapshot ring: oldest snapshots are evicted beyond this.
  std::size_t ring_capacity = 128;
  /// Append one flat-JSON line per scrape ({"ts_ns":...,"metric":...}).
  /// Empty = off.
  std::string jsonl_path{};
  /// Rewrite a Prometheus textfile per scrape (write-then-rename, so a
  /// concurrent textfile collector never reads a torn file). Empty = off.
  std::string prom_path{};
  /// Refresh the flight recorder's pre-rendered registry buffer per scrape
  /// (no-op unless the recorder is armed).
  bool refresh_flight_recorder = true;
};

class telemetry_pump {
 public:
  struct sample {
    std::uint64_t ts_ns = 0;
    metrics_snapshot snap;
  };

  explicit telemetry_pump(const registry& reg, telemetry_options opts = {})
      : reg_(reg), opts_(std::move(opts)) {}

  telemetry_pump(const telemetry_pump&) = delete;
  telemetry_pump& operator=(const telemetry_pump&) = delete;

  ~telemetry_pump() { stop(); }

  void start() {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_) return;
    stop_ = false;
    running_ = true;
    thr_ = std::thread([this] { run(); });
  }

  /// Idempotent; joins the sampler thread. One final scrape is taken on the
  /// way out so short-lived runs still record something.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!running_) return;
      stop_ = true;
    }
    cv_.notify_all();
    thr_.join();
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_ = false;
    }
  }

  /// One synchronous scrape (also what the pump thread runs per interval).
  /// Snapshotting happens OUTSIDE the ring lock — collectors may be slow.
  void scrape_once() {
    sample s;
    s.snap = reg_.snapshot();
    s.ts_ns = now_ns();
    const std::string json = to_json_line(s);
    const std::string prom =
        opts_.prom_path.empty() ? std::string{} : to_prometheus(s.snap);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ring_.push_back(std::move(s));
      while (ring_.size() > opts_.ring_capacity) ring_.pop_front();
      ++scrapes_;
    }
    if (!opts_.jsonl_path.empty()) append_jsonl(json);
    if (!opts_.prom_path.empty()) rewrite_prom(prom);
    if (opts_.refresh_flight_recorder &&
        flight_recorder::instance().armed()) {
      flight_recorder::instance().refresh_registry();
    }
  }

  /// Copy of the retained snapshots, oldest first.
  std::vector<sample> recent() const {
    std::lock_guard<std::mutex> lk(mu_);
    return {ring_.begin(), ring_.end()};
  }

  std::uint64_t scrapes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return scrapes_;
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      // kpq-block: sampler thread parks between scrapes by design.
      cv_.wait_for(lk, std::chrono::milliseconds(opts_.interval_ms),
                   [this] { return stop_; });
      const bool last = stop_;
      lk.unlock();
      scrape_once();
      lk.lock();
      if (last) return;
    }
  }

  std::string to_json_line(const sample& s) const {
    // ts_ns leads so `grep | sort` style tooling stays trivial.
    std::string out = "{\"ts_ns\":" + std::to_string(s.ts_ns);
    for (const metric& m : s.snap) {
      out += ",\"" + json_escape(m.name) + "\":" + format_number(m.value);
    }
    out += "}";
    return out;
  }

  void append_jsonl(const std::string& line) {
    // kpq-block: telemetry file I/O on the sampler thread, never a worker.
    std::FILE* f = std::fopen(opts_.jsonl_path.c_str(), "a");
    if (f == nullptr) return;
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  void rewrite_prom(const std::string& text) {
    const std::string tmp = opts_.prom_path + ".tmp";
    // kpq-block: telemetry file I/O on the sampler thread, never a worker.
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return;
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::rename(tmp.c_str(), opts_.prom_path.c_str());
  }

  const registry& reg_;
  telemetry_options opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::deque<sample> ring_;
  std::uint64_t scrapes_ = 0;
  std::thread thr_;
};

}  // namespace kpq::obs
