// Derived wait-freedom metrics, computed from a drained trace.
//
// The paper's progress claims are per-operation; these are the three
// distributions that make them visible (docs/OBSERVABILITY.md defines each
// precisely):
//
//   * helping latency — duration of each helping episode (help_start ..
//     help_finish on the helping thread). Bounded helping episodes are the
//     mechanism behind the step bound; a heavy tail here is a helping
//     stampede (the paper's Figure 9 pathology) made directly visible.
//
//   * phase lag — at an operation's completion event, (max phase published
//     so far) − (the operation's phase). The doorway argument (paper §5.3)
//     bounds how many operations can linearize before phase p; the lag
//     distribution is that bound measured: how far the queue's phase
//     frontier ran ahead while the operation was in flight.
//
//   * ops-helped-per-op — helping episodes per completed operation, the
//     trace-level twin of wf_counters' helped_*_completions rate (that one
//     counts only *won* completion CASes; this one counts every episode).
//
// All computation is post-hoc over the drained, time-sorted event vector —
// nothing here touches the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace_ring.hpp"

namespace kpq::obs {

struct wf_trace_report {
  // Durations in ticks (tick_now() units); scale by estimate_tick_hz() when
  // labeling. Phase lag is in phases (dimensionless).
  log2_histogram help_latency;
  log2_histogram phase_lag;

  std::uint64_t enq_ops = 0;
  std::uint64_t deq_ops = 0;
  std::uint64_t empty_deqs = 0;
  std::uint64_t help_episodes = 0;    // matched start/finish pairs
  std::uint64_t unmatched_helps = 0;  // start with no finish (ring wrap)
  std::uint64_t retires = 0;
  std::uint64_t reclaim_scans = 0;
  std::uint64_t steals = 0;
  std::uint64_t shard_empty_scans = 0;
  std::uint64_t tuner_decisions = 0;  // elastic tuner actions in the trace
  std::uint64_t waiter_parks = 0;     // continuations suspended on a hub
  std::uint64_t waiter_resumes = 0;   // accepted continuations running again
  std::uint64_t dropped_events = 0;   // ring overwrites: report is a suffix
  std::int64_t max_phase_seen = 0;

  std::uint64_t ops() const noexcept { return enq_ops + deq_ops; }
  double helped_per_op() const noexcept {
    return ops() == 0 ? 0.0
                      : static_cast<double>(help_episodes) /
                            static_cast<double>(ops());
  }
};

/// `events` must be time-sorted (trace_domain::drain_all output).
inline wf_trace_report analyze_trace(const std::vector<trace_event>& events,
                                     std::uint64_t dropped = 0,
                                     std::uint32_t max_threads = 0) {
  wf_trace_report r;
  r.dropped_events = dropped;
  // Per-thread start timestamp of the helping episode in flight. Helping
  // never nests on one thread (help_enq/help_deq run to completion), so one
  // slot per tid suffices.
  std::uint32_t nt = max_threads;
  for (const trace_event& e : events) {
    if (e.tid >= nt) nt = e.tid + 1;
  }
  std::vector<std::uint64_t> help_open(nt, 0);  // 0 = no episode in flight
  std::int64_t frontier = 0;  // max phase published so far

  for (const trace_event& e : events) {
    switch (e.kind) {
      case trace_kind::enq_publish:
      case trace_kind::deq_publish:
        if (e.phase > frontier) frontier = e.phase;
        break;
      case trace_kind::enq_complete:
        ++r.enq_ops;
        r.phase_lag.add(static_cast<std::uint64_t>(
            frontier > e.phase ? frontier - e.phase : 0));
        break;
      case trace_kind::deq_complete:
        ++r.deq_ops;
        if (e.aux == 0) ++r.empty_deqs;
        r.phase_lag.add(static_cast<std::uint64_t>(
            frontier > e.phase ? frontier - e.phase : 0));
        break;
      case trace_kind::help_start:
        if (help_open[e.tid] != 0) ++r.unmatched_helps;
        help_open[e.tid] = e.ts ? e.ts : 1;
        break;
      case trace_kind::help_finish:
        if (help_open[e.tid] != 0) {
          ++r.help_episodes;
          r.help_latency.add(e.ts - help_open[e.tid]);
          help_open[e.tid] = 0;
        } else {
          ++r.unmatched_helps;
        }
        break;
      case trace_kind::help_scan:
        break;  // scan volume is visible via wf_counters; nothing derived yet
      case trace_kind::retire:
        ++r.retires;
        break;
      case trace_kind::reclaim_scan:
        ++r.reclaim_scans;
        break;
      case trace_kind::shard_steal:
        ++r.steals;
        break;
      case trace_kind::shard_empty:
        ++r.shard_empty_scans;
        break;
      case trace_kind::tuner_decision:
        ++r.tuner_decisions;
        break;
      case trace_kind::waiter_park:
        ++r.waiter_parks;
        break;
      case trace_kind::waiter_resume:
        ++r.waiter_resumes;
        break;
    }
    if (e.phase > r.max_phase_seen) r.max_phase_seen = e.phase;
  }
  for (std::uint64_t open : help_open) {
    if (open != 0) ++r.unmatched_helps;
  }
  return r;
}

/// Registry bridge: the derived metrics as exportable gauges. Histogram
/// quantiles are conservative upper bounds (log2_histogram semantics).
inline void append_metrics(metrics_snapshot& out, const std::string& prefix,
                           const wf_trace_report& r) {
  append_value(out, prefix + ".enq_ops", static_cast<double>(r.enq_ops));
  append_value(out, prefix + ".deq_ops", static_cast<double>(r.deq_ops));
  append_value(out, prefix + ".empty_deqs",
               static_cast<double>(r.empty_deqs));
  append_value(out, prefix + ".help_episodes",
               static_cast<double>(r.help_episodes));
  append_value(out, prefix + ".helped_per_op", r.helped_per_op());
  append_value(out, prefix + ".retires", static_cast<double>(r.retires));
  append_value(out, prefix + ".reclaim_scans",
               static_cast<double>(r.reclaim_scans));
  append_value(out, prefix + ".steals", static_cast<double>(r.steals));
  append_value(out, prefix + ".tuner_decisions",
               static_cast<double>(r.tuner_decisions));
  append_value(out, prefix + ".waiter_parks",
               static_cast<double>(r.waiter_parks));
  append_value(out, prefix + ".waiter_resumes",
               static_cast<double>(r.waiter_resumes));
  append_value(out, prefix + ".dropped_events",
               static_cast<double>(r.dropped_events));
  append_value(out, prefix + ".max_phase",
               static_cast<double>(r.max_phase_seen));
  for (double q : {0.5, 0.9, 0.99}) {
    const int pct = static_cast<int>(q * 100.0);
    append_value(out,
                 prefix + ".help_latency_ticks.p" + std::to_string(pct),
                 static_cast<double>(r.help_latency.quantile_upper_bound(q)));
    append_value(out, prefix + ".phase_lag.p" + std::to_string(pct),
                 static_cast<double>(r.phase_lag.quantile_upper_bound(q)));
  }
}

}  // namespace kpq::obs
