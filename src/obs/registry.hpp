// Metrics registry: one snapshot interface over every counter surface the
// repo already has (wf_counters, shard_stats, mem_counters, reclaimer
// counters, bench summaries), feeding the JSON / Prometheus exporters in
// obs/export.hpp.
//
// Shape: a snapshot is a flat ordered list of {name, value} gauges. Sources
// are structural — append_* overloads match any type with the right members
// (concepts below), so this header does not drag in the queue headers and
// new counter structs join the registry by shape, not by registration
// ceremony. A `registry` instance additionally holds named collector
// callbacks for the long-running-process use case (scrape-on-demand).
//
// Values are doubles, sanitized at append time: a metric that never fired
// must export 0, never NaN/inf (the n==0 guard the exporters rely on).
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace kpq::obs {

struct metric {
  std::string name;
  double value = 0.0;
};

using metrics_snapshot = std::vector<metric>;

/// NaN/inf -> fallback (default 0): exported metrics are always finite.
inline double finite_or(double v, double fallback = 0.0) noexcept {
  return std::isfinite(v) ? v : fallback;
}

inline void append_value(metrics_snapshot& out, std::string name, double v) {
  out.push_back({std::move(name), finite_or(v)});
}

// ------------------------------------------------------- structural sources

/// wf_queue's per-thread operation counters (core/wf_queue.hpp).
template <typename C>
concept wf_counter_like = requires(const C& c) {
  { c.enq_ops } -> std::convertible_to<std::uint64_t>;
  { c.deq_ops } -> std::convertible_to<std::uint64_t>;
  { c.empty_deqs } -> std::convertible_to<std::uint64_t>;
  { c.helped_enq_completions } -> std::convertible_to<std::uint64_t>;
  { c.helped_deq_completions } -> std::convertible_to<std::uint64_t>;
  { c.link_cas_failures } -> std::convertible_to<std::uint64_t>;
  { c.desc_cas_failures } -> std::convertible_to<std::uint64_t>;
};

template <wf_counter_like C>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const C& c) {
  append_value(out, prefix + ".enq_ops", static_cast<double>(c.enq_ops));
  append_value(out, prefix + ".deq_ops", static_cast<double>(c.deq_ops));
  append_value(out, prefix + ".empty_deqs",
               static_cast<double>(c.empty_deqs));
  append_value(out, prefix + ".helped_enq_completions",
               static_cast<double>(c.helped_enq_completions));
  append_value(out, prefix + ".helped_deq_completions",
               static_cast<double>(c.helped_deq_completions));
  append_value(out, prefix + ".link_cas_failures",
               static_cast<double>(c.link_cas_failures));
  append_value(out, prefix + ".desc_cas_failures",
               static_cast<double>(c.desc_cas_failures));
  const double ops = static_cast<double>(c.enq_ops + c.deq_ops);
  const double helped = static_cast<double>(c.helped_enq_completions +
                                            c.helped_deq_completions);
  append_value(out, prefix + ".helped_per_op", ops > 0 ? helped / ops : 0.0);
}

/// The sharded front-end's per-shard counters (scale/scale_counters.hpp).
template <typename S>
concept shard_stats_like = requires(const S& s) {
  { s.enqueued } -> std::convertible_to<std::uint64_t>;
  { s.dequeued } -> std::convertible_to<std::uint64_t>;
  { s.stolen } -> std::convertible_to<std::uint64_t>;
  { s.empty_scans } -> std::convertible_to<std::uint64_t>;
  { s.steal_rate() } -> std::convertible_to<double>;
  { s.batch_fill() } -> std::convertible_to<double>;
};

template <shard_stats_like S>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const S& s) {
  append_value(out, prefix + ".enqueued", static_cast<double>(s.enqueued));
  append_value(out, prefix + ".dequeued", static_cast<double>(s.dequeued));
  append_value(out, prefix + ".stolen", static_cast<double>(s.stolen));
  append_value(out, prefix + ".empty_scans",
               static_cast<double>(s.empty_scans));
  append_value(out, prefix + ".depth", static_cast<double>(s.depth()));
  append_value(out, prefix + ".steal_rate", s.steal_rate());
  append_value(out, prefix + ".batch_fill", s.batch_fill());
}

/// Live-heap accounting (harness/mem_tracker.hpp).
template <typename M>
concept mem_counters_like = requires(const M& m) {
  { m.live_bytes() } -> std::convertible_to<std::int64_t>;
  { m.live_objects() } -> std::convertible_to<std::int64_t>;
  { m.total_allocs() } -> std::convertible_to<std::uint64_t>;
};

template <mem_counters_like M>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const M& m) {
  append_value(out, prefix + ".live_bytes",
               static_cast<double>(m.live_bytes()));
  append_value(out, prefix + ".live_objects",
               static_cast<double>(m.live_objects()));
  append_value(out, prefix + ".total_allocs",
               static_cast<double>(m.total_allocs()));
}

/// Reclamation domains (reclaim/hazard_pointers.hpp, reclaim/epoch.hpp).
template <typename R>
concept reclaimer_counters_like = requires(const R& r) {
  { r.retired_count() } -> std::convertible_to<std::uint64_t>;
  { r.freed_count() } -> std::convertible_to<std::uint64_t>;
  { r.pending_count() } -> std::convertible_to<std::size_t>;
};

template <reclaimer_counters_like R>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const R& r) {
  append_value(out, prefix + ".retired",
               static_cast<double>(r.retired_count()));
  append_value(out, prefix + ".freed", static_cast<double>(r.freed_count()));
  append_value(out, prefix + ".pending",
               static_cast<double>(r.pending_count()));
}

/// Segment-pool occupancy (storage/segment_storage.hpp pool_stats()).
template <typename P>
concept segment_pool_like = requires(const P& p) {
  { p.segments_allocated } -> std::convertible_to<std::uint64_t>;
  { p.segments_freed } -> std::convertible_to<std::uint64_t>;
  { p.segments_recycled } -> std::convertible_to<std::uint64_t>;
  { p.segments_live } -> std::convertible_to<std::int64_t>;
  { p.segments_spare } -> std::convertible_to<std::int64_t>;
  { p.segments_retired } -> std::convertible_to<std::int64_t>;
  { p.segment_bytes } -> std::convertible_to<std::uint64_t>;
  { p.cells_per_segment } -> std::convertible_to<std::uint64_t>;
};

template <segment_pool_like P>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const P& p) {
  append_value(out, prefix + ".segments_allocated",
               static_cast<double>(p.segments_allocated));
  append_value(out, prefix + ".segments_freed",
               static_cast<double>(p.segments_freed));
  append_value(out, prefix + ".segments_recycled",
               static_cast<double>(p.segments_recycled));
  append_value(out, prefix + ".segments_live",
               static_cast<double>(p.segments_live));
  append_value(out, prefix + ".segments_spare",
               static_cast<double>(p.segments_spare));
  append_value(out, prefix + ".segments_retired",
               static_cast<double>(p.segments_retired));
  append_value(out, prefix + ".segment_bytes",
               static_cast<double>(p.segment_bytes));
  append_value(out, prefix + ".cells_per_segment",
               static_cast<double>(p.cells_per_segment));
  const double alloc = static_cast<double>(p.segments_allocated);
  const double recyc = static_cast<double>(p.segments_recycled);
  // Fraction of segment openings served without a heap allocation — the
  // steady-state figure of merit for the spare-slot cache.
  append_value(out, prefix + ".recycle_rate",
               alloc + recyc > 0 ? recyc / (alloc + recyc) : 0.0);
}

/// bounded_wf_queue admission outcomes (storage/bounded_wf_queue.hpp).
template <typename B>
concept bounded_counters_like = requires(const B& b) {
  { b.admitted } -> std::convertible_to<std::uint64_t>;
  { b.rejected } -> std::convertible_to<std::uint64_t>;
  { b.overwritten } -> std::convertible_to<std::uint64_t>;
  { b.block_waits } -> std::convertible_to<std::uint64_t>;
};

template <bounded_counters_like B>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const B& b) {
  append_value(out, prefix + ".admitted", static_cast<double>(b.admitted));
  append_value(out, prefix + ".rejected", static_cast<double>(b.rejected));
  append_value(out, prefix + ".overwritten",
               static_cast<double>(b.overwritten));
  append_value(out, prefix + ".block_waits",
               static_cast<double>(b.block_waits));
}

/// The continuation layer's park/notify counters (sync/waiter_hub.hpp).
template <typename W>
concept waiter_hub_stats_like = requires(const W& w) {
  { w.parks } -> std::convertible_to<std::uint64_t>;
  { w.notifies } -> std::convertible_to<std::uint64_t>;
  { w.resumes } -> std::convertible_to<std::uint64_t>;
  { w.resume_ns_total } -> std::convertible_to<std::uint64_t>;
  { w.resume_ns_max } -> std::convertible_to<std::uint64_t>;
  { w.mean_resume_ns() } -> std::convertible_to<double>;
};

template <waiter_hub_stats_like W>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const W& w) {
  append_value(out, prefix + ".parks", static_cast<double>(w.parks));
  append_value(out, prefix + ".notifies", static_cast<double>(w.notifies));
  append_value(out, prefix + ".resumes", static_cast<double>(w.resumes));
  append_value(out, prefix + ".resume_ns_mean", w.mean_resume_ns());
  append_value(out, prefix + ".resume_ns_max",
               static_cast<double>(w.resume_ns_max));
}

/// The elastic tuner's decision counters + live gauges (scale/tuner.hpp).
template <typename T>
concept tuner_stats_like = requires(const T& t) {
  { t.ticks } -> std::convertible_to<std::uint64_t>;
  { t.grows } -> std::convertible_to<std::uint64_t>;
  { t.shrinks } -> std::convertible_to<std::uint64_t>;
  { t.reorders } -> std::convertible_to<std::uint64_t>;
  { t.patience_raises } -> std::convertible_to<std::uint64_t>;
  { t.patience_drops } -> std::convertible_to<std::uint64_t>;
  { t.active_shards } -> std::convertible_to<std::uint32_t>;
  { t.patience } -> std::convertible_to<std::uint32_t>;
  { t.scan_epoch } -> std::convertible_to<std::uint64_t>;
};

template <tuner_stats_like T>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const T& t) {
  append_value(out, prefix + ".ticks", static_cast<double>(t.ticks));
  append_value(out, prefix + ".grows", static_cast<double>(t.grows));
  append_value(out, prefix + ".shrinks", static_cast<double>(t.shrinks));
  append_value(out, prefix + ".reorders", static_cast<double>(t.reorders));
  append_value(out, prefix + ".patience_raises",
               static_cast<double>(t.patience_raises));
  append_value(out, prefix + ".patience_drops",
               static_cast<double>(t.patience_drops));
  append_value(out, prefix + ".active_shards",
               static_cast<double>(t.active_shards));
  append_value(out, prefix + ".patience", static_cast<double>(t.patience));
  append_value(out, prefix + ".scan_epoch",
               static_cast<double>(t.scan_epoch));
}

/// wf_queue_fps fast/slow path split (core/wf_queue_fps.hpp) — the tuner's
/// contention signal, exported so patience decisions can be audited.
template <typename F>
concept fps_path_like = requires(const F& f) {
  { f.fast_enqs } -> std::convertible_to<std::uint64_t>;
  { f.slow_enqs } -> std::convertible_to<std::uint64_t>;
  { f.fast_deqs } -> std::convertible_to<std::uint64_t>;
  { f.slow_deqs } -> std::convertible_to<std::uint64_t>;
  { f.slow_rate() } -> std::convertible_to<double>;
};

template <fps_path_like F>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const F& f) {
  append_value(out, prefix + ".fast_enqs", static_cast<double>(f.fast_enqs));
  append_value(out, prefix + ".slow_enqs", static_cast<double>(f.slow_enqs));
  append_value(out, prefix + ".fast_deqs", static_cast<double>(f.fast_deqs));
  append_value(out, prefix + ".slow_deqs", static_cast<double>(f.slow_deqs));
  append_value(out, prefix + ".slow_rate", f.slow_rate());
}

/// Event-loop health (async/event_loop.hpp loop_stats): throughput counters
/// plus the latency gauges — ready-queue lag (post -> pickup), timer-wheel
/// slack (deadline -> fire) and the ready-queue high-water mark. Register a
/// lambda that returns loop.stats() so the copy is taken under the loop's
/// own lock (scrape-safe by construction).
template <typename L>
concept event_loop_stats_like = requires(const L& l) {
  { l.resumes } -> std::convertible_to<std::uint64_t>;
  { l.timer_fires } -> std::convertible_to<std::uint64_t>;
  { l.idle_parks } -> std::convertible_to<std::uint64_t>;
  { l.spawned } -> std::convertible_to<std::uint64_t>;
  { l.completed } -> std::convertible_to<std::uint64_t>;
  { l.ready_lag_ns_max } -> std::convertible_to<std::uint64_t>;
  { l.timer_slack_ns_max } -> std::convertible_to<std::uint64_t>;
  { l.max_ready_depth } -> std::convertible_to<std::uint64_t>;
  { l.mean_ready_lag_ns() } -> std::convertible_to<double>;
  { l.mean_timer_slack_ns() } -> std::convertible_to<double>;
};

template <event_loop_stats_like L>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const L& l) {
  append_value(out, prefix + ".resumes", static_cast<double>(l.resumes));
  append_value(out, prefix + ".timer_fires",
               static_cast<double>(l.timer_fires));
  append_value(out, prefix + ".idle_parks",
               static_cast<double>(l.idle_parks));
  append_value(out, prefix + ".spawned", static_cast<double>(l.spawned));
  append_value(out, prefix + ".completed",
               static_cast<double>(l.completed));
  append_value(out, prefix + ".ready_lag_ns_mean", l.mean_ready_lag_ns());
  append_value(out, prefix + ".ready_lag_ns_max",
               static_cast<double>(l.ready_lag_ns_max));
  append_value(out, prefix + ".timer_slack_ns_mean",
               l.mean_timer_slack_ns());
  append_value(out, prefix + ".timer_slack_ns_max",
               static_cast<double>(l.timer_slack_ns_max));
  append_value(out, prefix + ".max_ready_depth",
               static_cast<double>(l.max_ready_depth));
}

/// Bench summaries (harness/stats.hpp): exported with the n==0 guard —
/// a summary that never saw a sample exports all-zero, not NaN.
template <typename S>
concept summary_like = requires(const S& s) {
  { s.n } -> std::convertible_to<std::size_t>;
  { s.mean } -> std::convertible_to<double>;
  { s.stddev } -> std::convertible_to<double>;
  { s.min } -> std::convertible_to<double>;
  { s.max } -> std::convertible_to<double>;
};

template <summary_like S>
void append_metrics(metrics_snapshot& out, const std::string& prefix,
                    const S& s) {
  append_value(out, prefix + ".n", static_cast<double>(s.n));
  append_value(out, prefix + ".mean", s.n > 0 ? s.mean : 0.0);
  append_value(out, prefix + ".stddev", s.n > 0 ? s.stddev : 0.0);
  append_value(out, prefix + ".min", s.n > 0 ? s.min : 0.0);
  append_value(out, prefix + ".max", s.n > 0 ? s.max : 0.0);
}

// ----------------------------------------------------------------- registry

/// Named collectors for scrape-on-demand: a long-running process registers
/// its counter surfaces once, then snapshot() walks them in registration
/// order. Not thread-safe by itself — register at startup, snapshot at
/// sampling points, same contract as reading any counter in this repo.
class registry {
 public:
  using collector = std::function<void(metrics_snapshot&)>;

  void add_source(std::string name, collector fn) {
    sources_.push_back({std::move(name), std::move(fn)});
  }

  /// Convenience: register anything append_metrics() accepts, by reference.
  /// The referee must outlive the registry (true of the queue/domain
  /// singletons this is built for).
  template <typename T>
  void add(std::string prefix, const T& subject) {
    add_source(prefix, [prefix, &subject](metrics_snapshot& out) {
      append_metrics(out, prefix, subject);
    });
  }

  std::size_t source_count() const noexcept { return sources_.size(); }

  metrics_snapshot snapshot() const {
    metrics_snapshot out;
    for (const auto& s : sources_) s.fn(out);
    return out;
  }

 private:
  struct source {
    std::string name;
    collector fn;
  };
  std::vector<source> sources_;
};

}  // namespace kpq::obs
