// Timeline export: drained trace rings -> Chrome/Perfetto trace-event JSON.
//
// The trace rings record *points* (publish, complete, help_start, ...); a
// human debugging a tail-latency spike wants *intervals* and *causality*.
// This converter pairs the points back into:
//
//   * "X" complete slices per thread — one per enqueue/dequeue (publish ->
//     complete) and one per helping episode (help_start -> help_finish,
//     with the victim tid/phase in args).
//   * "s"/"f" flow arrows from a helper's finished episode to the victim
//     operation's completion slice — the helper->helped causality the KP
//     helping scheme creates (help episodes record the victim phase, which
//     is how the arrow finds its target).
//   * "i" instant events for the point-like kinds (waiter_park/resume,
//     tuner_decision, retire, scans, shard routing).
//
// Output is the Trace Event Format JSON object form: `ts`/`dur` are
// MICROSECONDS (doubles), mapped from ticks with a tick_calibration. The
// document carries "kpqTraceSchema":"kpq-trace-1" and is validated in CI by
// scripts/validate_trace_json.py against scripts/trace_schema.json.
// scripts/trace_view.py performs the same conversion from the raw JSONL
// dump format (below) for offline use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/calibrate.hpp"
#include "obs/export.hpp"
#include "obs/trace_ring.hpp"

namespace kpq::obs {

/// The timeline document's schema tag (checked by the CI validator).
inline constexpr const char* timeline_schema = "kpq-trace-1";

namespace detail {

struct pending_span {
  bool open = false;
  std::uint64_t start_ticks = 0;
  std::int64_t phase = 0;
  std::uint32_t aux = 0;
};

struct help_episode {
  std::uint32_t helper = 0;
  std::uint32_t victim = 0;
  std::int64_t victim_phase = 0;
  std::uint64_t start_ticks = 0;
  std::uint64_t finish_ticks = 0;
};

struct op_completion {
  std::uint32_t tid = 0;
  std::int64_t phase = 0;
  std::uint64_t ts_ticks = 0;
};

inline bool is_op_complete(trace_kind k) noexcept {
  return k == trace_kind::enq_complete || k == trace_kind::deq_complete;
}
inline bool is_op_publish(trace_kind k) noexcept {
  return k == trace_kind::enq_publish || k == trace_kind::deq_publish;
}

}  // namespace detail

/// Render `events` (drained, ts-sorted — trace_domain::drain_all's output)
/// as a Chrome/Perfetto trace-event JSON document. `dropped` is the ring
/// overwrite count from drain_all, surfaced in otherData so a viewer knows
/// it is looking at a suffix of the run.
inline std::string trace_to_timeline(const std::vector<trace_event>& events,
                                     const tick_calibration& cal,
                                     std::uint64_t dropped = 0) {
  using namespace detail;

  // Base the timeline at the first event so ts values stay small.
  tick_calibration base = cal;
  if (!events.empty()) base.base_ticks = events.front().ts;

  // Pass 1: collect op completions (flow-arrow targets) and help episodes.
  // Per-tid ops are sequential, so one pending slot per (tid, kind family)
  // pairs publishes with completes; same for help episodes (not nested).
  std::vector<op_completion> completions;
  std::vector<help_episode> episodes;
  std::uint32_t max_tid = 0;
  for (const trace_event& e : events) max_tid = std::max(max_tid, e.tid);
  std::vector<pending_span> pending_enq(max_tid + 1), pending_deq(max_tid + 1),
      pending_help(max_tid + 1);
  for (const trace_event& e : events) {
    switch (e.kind) {
      case trace_kind::help_start:
        pending_help[e.tid] = {true, e.ts, e.phase, e.aux};
        break;
      case trace_kind::help_finish:
        if (pending_help[e.tid].open) {
          episodes.push_back({e.tid, e.aux, e.phase,
                              pending_help[e.tid].start_ticks, e.ts});
          pending_help[e.tid].open = false;
        }
        break;
      case trace_kind::enq_complete:
      case trace_kind::deq_complete:
        completions.push_back({e.tid, e.phase, e.ts});
        break;
      default:
        break;
    }
  }

  // Pass 2: emit.
  json_writer w;
  w.begin_object();
  w.key("kpqTraceSchema").value(timeline_schema);
  w.key("displayTimeUnit").value("ns");
  w.key("otherData").begin_object();
  w.key("tick_hz").value(cal.tick_hz);
  w.key("dropped_events").value(static_cast<std::uint64_t>(dropped));
  w.key("event_count").value(static_cast<std::uint64_t>(events.size()));
  w.end_object();
  w.key("traceEvents").begin_array();

  auto emit_common = [&](const char* name, const char* ph, std::uint32_t tid,
                         double ts_us) -> json_writer& {
    w.begin_object();
    w.key("name").value(name);
    w.key("ph").value(ph);
    w.key("pid").value(0);
    w.key("tid").value(static_cast<std::uint64_t>(tid));
    w.key("ts").value(ts_us);
    return w;
  };

  // Process/thread metadata so viewers label the rows.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(0);
  w.key("tid").value(0);
  w.key("args").begin_object().key("name").value("kpq").end_object();
  w.end_object();
  std::vector<bool> tid_seen(max_tid + 1, false);
  for (const trace_event& e : events) tid_seen[e.tid] = true;
  for (std::uint32_t t = 0; t <= max_tid; ++t) {
    if (!tid_seen[t]) continue;
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(0);
    w.key("tid").value(static_cast<std::uint64_t>(t));
    w.key("args")
        .begin_object()
        .key("name")
        .value("worker " + std::to_string(t))
        .end_object();
    w.end_object();
  }

  for (std::uint32_t t = 0; t <= max_tid; ++t) {
    pending_enq[t].open = pending_deq[t].open = pending_help[t].open = false;
  }
  for (const trace_event& e : events) {
    switch (e.kind) {
      case trace_kind::enq_publish:
        pending_enq[e.tid] = {true, e.ts, e.phase, e.aux};
        break;
      case trace_kind::deq_publish:
        pending_deq[e.tid] = {true, e.ts, e.phase, e.aux};
        break;
      case trace_kind::enq_complete:
      case trace_kind::deq_complete: {
        const bool is_enq = e.kind == trace_kind::enq_complete;
        pending_span& p = is_enq ? pending_enq[e.tid] : pending_deq[e.tid];
        if (!p.open) break;
        p.open = false;
        const double t0 = base.to_us(p.start_ticks);
        const double t1 = base.to_us(e.ts);
        emit_common(is_enq ? "enqueue" : "dequeue", "X", e.tid, t0);
        w.key("dur").value(t1 > t0 ? t1 - t0 : 0.0);
        w.key("cat").value("op");
        w.key("args").begin_object();
        w.key("phase").value(static_cast<std::int64_t>(e.phase));
        if (!is_enq) w.key("hit").value(e.aux != 0);
        w.end_object();
        w.end_object();
        break;
      }
      case trace_kind::help_start:
        pending_help[e.tid] = {true, e.ts, e.phase, e.aux};
        break;
      case trace_kind::help_finish: {
        pending_span& p = pending_help[e.tid];
        if (!p.open) break;
        p.open = false;
        const double t0 = base.to_us(p.start_ticks);
        const double t1 = base.to_us(e.ts);
        emit_common("help", "X", e.tid, t0);
        w.key("dur").value(t1 > t0 ? t1 - t0 : 0.0);
        w.key("cat").value("help");
        w.key("args").begin_object();
        w.key("victim").value(static_cast<std::uint64_t>(e.aux));
        w.key("victim_phase").value(static_cast<std::int64_t>(e.phase));
        w.end_object();
        w.end_object();
        break;
      }
      default: {
        // Point-like kinds become thread-scoped instants.
        emit_common(trace_kind_name(e.kind), "i", e.tid, base.to_us(e.ts));
        w.key("s").value("t");
        w.key("cat").value("event");
        w.key("args").begin_object();
        w.key("phase").value(static_cast<std::int64_t>(e.phase));
        w.key("aux").value(static_cast<std::uint64_t>(e.aux));
        w.end_object();
        w.end_object();
        break;
      }
    }
  }

  // Flow arrows: helper's finished episode -> the victim operation's
  // completion (first completion by the victim with the episode's phase at
  // or after the help began). Emitted last so both endpoints exist.
  std::uint64_t flow_id = 1;
  for (const help_episode& ep : episodes) {
    const op_completion* target = nullptr;
    for (const op_completion& c : completions) {
      if (c.tid == ep.victim && c.phase == ep.victim_phase &&
          c.ts_ticks >= ep.start_ticks) {
        target = &c;
        break;
      }
    }
    if (target == nullptr) continue;
    emit_common("helped", "s", ep.helper, base.to_us(ep.finish_ticks));
    w.key("cat").value("help_flow");
    w.key("id").value(flow_id);
    w.end_object();
    emit_common("helped", "f", target->tid, base.to_us(target->ts_ticks));
    w.key("cat").value("help_flow");
    w.key("id").value(flow_id);
    w.key("bp").value("e");
    w.end_object();
    ++flow_id;
  }

  w.end_array();
  w.end_object();
  return std::move(w).take();
}

// ------------------------------------------------------------ raw dump form
// Line-oriented intermediate format shared by the flight recorder (which
// writes it with async-signal-safe primitives, flight_recorder.cpp) and
// scripts/trace_view.py (which converts it to the timeline JSON above):
//
//   {"kpq_trace_raw":1,"tick_hz":<hz>,"dropped":<n>,"reason":"<why>"}
//   {"ts":<ticks>,"tid":<t>,"kind":<k>,"kind_name":"<name>","phase":<p>,"aux":<a>}
//   ...
//   {"metric":"<name>","value":<v>}          (registry lines, optional)

inline std::string dump_trace_jsonl(const std::vector<trace_event>& events,
                                    double tick_hz, std::uint64_t dropped,
                                    const std::string& reason = "drain") {
  json_writer hdr;
  hdr.begin_object();
  hdr.key("kpq_trace_raw").value(1);
  hdr.key("tick_hz").value(tick_hz);
  hdr.key("dropped").value(static_cast<std::uint64_t>(dropped));
  hdr.key("reason").value(reason);
  hdr.end_object();
  std::string out = std::move(hdr).take();
  out += '\n';
  for (const trace_event& e : events) {
    json_writer w;
    w.begin_object();
    w.key("ts").value(static_cast<std::uint64_t>(e.ts));
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.key("kind").value(static_cast<std::uint64_t>(e.kind));
    w.key("kind_name").value(trace_kind_name(e.kind));
    w.key("phase").value(static_cast<std::int64_t>(e.phase));
    w.key("aux").value(static_cast<std::uint64_t>(e.aux));
    w.end_object();
    out += std::move(w).take();
    out += '\n';
  }
  return out;
}

}  // namespace kpq::obs
