#include "obs/trace_ring.hpp"

#include "sync/thread_registry.hpp"

namespace kpq::obs {

// Sized for the whole dense-id namespace (rings allocate lazily, so idle
// slots cost one pointer). Function-local static: constructed on first use,
// after main() has started, and never torn down before the last recorder.
trace_domain& global_trace() {
  static trace_domain domain(max_registered_threads);
  return domain;
}

}  // namespace kpq::obs
