// Per-thread lock-free event tracing for the observability layer.
//
// Motivation (docs/OBSERVABILITY.md): wait-freedom is a *per-operation*
// claim — bounded steps, helping under contention — but aggregate counters
// (wf_counters, shard_stats) read at join can only show totals. The trace
// ring records one fixed-size event per interesting hot-path step (publish,
// linearize/complete, help-start/finish, retire, reclamation scan, shard
// steal) so helping latency and phase lag become measurable distributions,
// the same style of per-operation evidence wCQ (Nikolaev & Ravindran 2022)
// uses to substantiate its step bounds.
//
// Design constraints, in order:
//   1. Zero cost when compiled out. Every hook site is guarded by
//      `if constexpr (Trace::enabled)` on a recorder *policy*; with the
//      default `no_trace` policy (KPQ_TRACE undefined) the hooks vanish at
//      compile time — identical codegen to a hook-free build.
//   2. No synchronization on the hot path when compiled in. Each thread owns
//      one ring; only the owner writes it (single-writer invariant), with
//      relaxed stores and a release publish of the head index. Recording is
//      a TSC read, one array store and one index store — no RMW, no fence.
//   3. Bounded memory. Rings are fixed-size and wrap; old events are
//      overwritten, and the drop count is reported so an analysis knows when
//      it is looking at a suffix of the run.
//
// Drain contract: drain() requires quiescence (all recording threads joined
// or otherwise synchronized-with the drainer), exactly like every other
// read-at-sampling-point surface in this repo (mem_counters, wf_counters).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "harness/timing.hpp"
#include "sync/cacheline.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace kpq::obs {

/// Cycle-granularity timestamp: TSC where available (x86-64 invariant TSC —
/// constant-rate, globally monotonic on every post-Nehalem part), steady
/// clock nanoseconds elsewhere. Units are "ticks"; estimate_tick_hz()
/// calibrates the conversion at analysis time.
inline std::uint64_t tick_now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return now_ns();
#endif
}

/// Rough tick frequency (Hz), measured against the steady clock over a short
/// spin. Good to a few percent — enough to label histogram buckets in ns.
inline double estimate_tick_hz() {
#if defined(__x86_64__) || defined(_M_X64)
  const std::uint64_t t0 = tick_now();
  const std::uint64_t n0 = now_ns();
  std::uint64_t n1 = n0;
  while (n1 - n0 < 10'000'000) n1 = now_ns();  // ~10 ms window
  const std::uint64_t t1 = tick_now();
  return static_cast<double>(t1 - t0) * 1e9 / static_cast<double>(n1 - n0);
#else
  return 1e9;  // ticks are nanoseconds already
#endif
}

/// What happened. Kept to one byte; the event's meaning for `phase`/`aux` is
/// listed per kind (docs/OBSERVABILITY.md has the full schema table).
enum class trace_kind : std::uint8_t {
  enq_publish = 0,   // descriptor published; phase = op phase
  enq_complete = 1,  // enqueue returned;     phase = op phase
  deq_publish = 2,   // descriptor published; phase = op phase
  deq_complete = 3,  // dequeue returned;     phase = op phase, aux = 1 if hit
  help_start = 4,    // tid begins helping;   phase = victim phase, aux = victim
  help_finish = 5,   // helping returned;     phase = victim phase, aux = victim
  help_scan = 6,     // help-policy pass;     aux = slots examined
  retire = 7,        // node handed to the reclaimer
  reclaim_scan = 8,  // reclaimer scan pass;  aux = objects freed
  shard_steal = 9,   // dequeue served off-home; aux = serving shard
  shard_empty = 10,  // full shard scan found nothing; aux = home shard
  tuner_decision = 11,  // elastic tuner acted; phase = new scan epoch,
                        // aux = decision code (scale/tuner.hpp)
  waiter_park = 12,     // continuation suspended on a waiter_hub;
                        // aux = continuation kind (0 thread, 1 coroutine)
  waiter_resume = 13,   // accepted continuation running again;
                        // phase = accept->running latency (ns), aux = kind
};

inline constexpr const char* trace_kind_name(trace_kind k) noexcept {
  switch (k) {
    case trace_kind::enq_publish: return "enq_publish";
    case trace_kind::enq_complete: return "enq_complete";
    case trace_kind::deq_publish: return "deq_publish";
    case trace_kind::deq_complete: return "deq_complete";
    case trace_kind::help_start: return "help_start";
    case trace_kind::help_finish: return "help_finish";
    case trace_kind::help_scan: return "help_scan";
    case trace_kind::retire: return "retire";
    case trace_kind::reclaim_scan: return "reclaim_scan";
    case trace_kind::shard_steal: return "shard_steal";
    case trace_kind::shard_empty: return "shard_empty";
    case trace_kind::tuner_decision: return "tuner_decision";
    case trace_kind::waiter_park: return "waiter_park";
    case trace_kind::waiter_resume: return "waiter_resume";
  }
  return "unknown";
}

struct trace_event {
  std::uint64_t ts = 0;     // tick_now() at the hook site
  std::int64_t phase = 0;   // operation phase, or 0 where not applicable
  std::uint32_t tid = 0;    // recording (owner) thread
  std::uint32_t aux = 0;    // kind-specific (victim tid, shard, freed count)
  trace_kind kind = trace_kind::enq_publish;
};
static_assert(sizeof(trace_event) <= 32, "one event per half cache line");

/// Fixed-size single-writer ring. The owner thread records; anyone may read
/// AFTER synchronizing with the owner (join/barrier). Capacity is rounded up
/// to a power of two so the index wraps with a mask.
class trace_ring {
 public:
  explicit trace_ring(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        buf_(mask_ + 1) {}

  void record(trace_kind kind, std::uint32_t tid, std::int64_t phase,
              std::uint32_t aux) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    trace_event& e = buf_[h & mask_];
    e.ts = tick_now();
    e.phase = phase;
    e.tid = tid;
    e.aux = aux;
    e.kind = kind;
    // Release-publish the slot so a drainer that acquires `head_` (after
    // quiescence this is belt-and-braces; join already synchronizes) sees
    // the completed event.
    head_.store(h + 1, std::memory_order_release);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }
  /// Events ever recorded (monotone; may exceed capacity).
  std::uint64_t written() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Events overwritten by wrap-around and lost to drain().
  std::uint64_t dropped() const noexcept {
    const std::uint64_t w = written();
    return w > capacity() ? w - capacity() : 0;
  }

  /// Append the retained events, oldest first, to `out`. Quiescence
  /// required (see file comment).
  void drain(std::vector<trace_event>& out) const {
    const std::uint64_t w = written();
    const std::uint64_t lo = w > capacity() ? w - capacity() : 0;
    out.reserve(out.size() + static_cast<std::size_t>(w - lo));
    for (std::uint64_t i = lo; i < w; ++i) {
      out.push_back(buf_[i & mask_]);
    }
  }

  /// Raw slot access by sequence number (caller derives valid sequences from
  /// written()/capacity()). No allocation, no locks — usable from a signal
  /// handler (flight_recorder.cpp); outside a crash the usual quiescence
  /// caveat applies, a racing owner may be mid-overwrite of the slot.
  const trace_event& peek(std::uint64_t seq) const noexcept {
    return buf_[seq & mask_];
  }

  void reset() noexcept { head_.store(0, std::memory_order_release); }

 private:
  std::size_t mask_;
  std::vector<trace_event> buf_;
  std::atomic<std::uint64_t> head_{0};
};

/// One ring per dense thread id, allocated lazily on the owner's first
/// record so a 256-slot namespace does not cost 256 rings of memory.
class trace_domain {
 public:
  explicit trace_domain(std::uint32_t max_threads,
                        std::size_t capacity_per_thread = 1u << 14)
      : capacity_(capacity_per_thread), rings_(max_threads) {}

  ~trace_domain() {
    for (auto& r : rings_) {
      delete r.value.load(std::memory_order_acquire);
    }
  }

  trace_domain(const trace_domain&) = delete;
  trace_domain& operator=(const trace_domain&) = delete;

  std::uint32_t max_threads() const noexcept {
    return static_cast<std::uint32_t>(rings_.size());
  }
  std::size_t capacity_per_thread() const noexcept { return capacity_; }

  void record(std::uint32_t tid, trace_kind kind, std::int64_t phase,
              std::uint32_t aux) noexcept {
    ring_for(tid).record(kind, tid, phase, aux);
  }

  /// The calling thread's ring (lazy init is race-free because only the
  /// owner thread ever *stores* to its slot; the store is release so that
  /// observers taking ring_ptr() from another thread — the flight recorder's
  /// signal handler — see a fully constructed ring).
  trace_ring& ring_for(std::uint32_t tid) noexcept {
    trace_ring* r = rings_[tid].value.load(std::memory_order_relaxed);
    if (r == nullptr) {
      r = new trace_ring(capacity_);
      rings_[tid].value.store(r, std::memory_order_release);
    }
    return *r;
  }

  /// Read-only slot access from any thread; null until the owner's first
  /// record. Allocation-free and lock-free — async-signal-safe.
  const trace_ring* ring_ptr(std::uint32_t tid) const noexcept {
    return rings_[tid].value.load(std::memory_order_acquire);
  }

  /// All retained events across threads, sorted by timestamp. Quiescence
  /// required. `dropped_out`, if given, receives the total overwrite count —
  /// nonzero means the analysis sees only a suffix of the run.
  std::vector<trace_event> drain_all(std::uint64_t* dropped_out = nullptr) {
    std::vector<trace_event> out;
    std::uint64_t dropped = 0;
    for (auto& r : rings_) {
      if (const trace_ring* p = r.value.load(std::memory_order_acquire)) {
        p->drain(out);
        dropped += p->dropped();
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const trace_event& a, const trace_event& b) {
                       return a.ts < b.ts;
                     });
    if (dropped_out) *dropped_out = dropped;
    return out;
  }

  void reset() noexcept {
    for (auto& r : rings_) {
      if (trace_ring* p = r.value.load(std::memory_order_acquire)) p->reset();
    }
  }

 private:
  std::size_t capacity_;
  std::vector<padded<std::atomic<trace_ring*>>> rings_;
};

/// Process-global domain the static recorder policy below writes into —
/// sized for the whole dense-id namespace, like the thread registry itself.
trace_domain& global_trace();

// ----------------------------------------------------------------- policies
// The recorder policy is a compile-time switch threaded through the queues'
// Options (wf_options::trace) and used directly by the non-templated layers
// (hazard pointers, sharded front-end) as `default_trace`.

/// Tracing compiled out: `enabled` is false, every hook site is removed by
/// `if constexpr`, and this build's codegen is byte-identical to a build
/// with no hooks at all.
struct no_trace {
  static constexpr bool enabled = false;
  static void record(std::uint32_t /*tid*/, trace_kind /*kind*/,
                     std::int64_t /*phase*/, std::uint32_t /*aux*/) noexcept {}
};

/// Tracing compiled in: record into the calling thread's global ring.
struct ring_trace {
  static constexpr bool enabled = true;
  static void record(std::uint32_t tid, trace_kind kind, std::int64_t phase,
                     std::uint32_t aux) noexcept {
    global_trace().record(tid, kind, phase, aux);
  }
};

#if defined(KPQ_TRACE)
using default_trace = ring_trace;
#else
using default_trace = no_trace;
#endif

}  // namespace kpq::obs
