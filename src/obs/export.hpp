// Exposition formats for metrics snapshots (obs/registry.hpp) and a small
// JSON writer the benches reuse for their --json output.
//
//   * to_json        — flat {"name": value, ...} object, stable key order.
//   * to_prometheus  — text exposition format: one `# TYPE` line + one
//                      sample line per metric, names sanitized to
//                      [a-zA-Z0-9_:] as the format requires.
//   * parse_flat_json — minimal reader for the inverse direction, used by
//                      the round-trip tests and by tooling that wants to
//                      diff two snapshots without a JSON dependency.
//
// Number formatting: non-finite values are clamped to 0 (registry already
// sanitizes; the writer guards again so hand-built snapshots cannot emit
// invalid JSON), integral values print without a fractional part, and
// doubles use %.17g so a round-trip is exact.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"

namespace kpq::obs {

inline std::string format_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Escape for a JSON string literal (metric names are plain identifiers,
/// but bench titles pass through here too).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string to_json(const metrics_snapshot& snap) {
  std::string out = "{";
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(snap[i].name) + "\":" +
           format_number(snap[i].value);
  }
  out += "}";
  return out;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes '_'.
inline std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

inline std::string to_prometheus(const metrics_snapshot& snap) {
  std::string out;
  for (const metric& m : snap) {
    const std::string name = prometheus_name(m.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_number(m.value) + "\n";
  }
  return out;
}

/// Minimal parser for the flat objects to_json() emits (string keys, number
/// values, no nesting). Returns pairs in document order; on malformed input
/// returns what it parsed up to the error. Test/tooling surface, not a
/// general JSON library.
inline std::vector<std::pair<std::string, double>> parse_flat_json(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return out;
  ++i;
  for (;;) {
    skip_ws();
    if (i >= text.size() || text[i] == '}') break;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] != '"') break;
    ++i;
    std::string key;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        // Decode the escapes json_escape() emits (plus the remaining JSON
        // single-char ones), so escape -> parse round-trips losslessly.
        const char e = text[i + 1];
        i += 2;
        switch (e) {
          case '"': key += '"'; break;
          case '\\': key += '\\'; break;
          case '/': key += '/'; break;
          case 'n': key += '\n'; break;
          case 't': key += '\t'; break;
          case 'r': key += '\r'; break;
          case 'b': key += '\b'; break;
          case 'f': key += '\f'; break;
          case 'u': {
            if (i + 4 > text.size()) { i = text.size(); break; }
            unsigned code = 0;
            bool ok = true;
            for (std::size_t k = 0; k < 4; ++k) {
              const char h = text[i + k];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else { ok = false; break; }
            }
            if (!ok) break;  // malformed escape: drop it, keep parsing
            i += 4;
            // UTF-8-encode the code point (json_escape only emits < 0x20,
            // but accept the full BMP for robustness).
            if (code < 0x80) {
              key += static_cast<char>(code);
            } else if (code < 0x800) {
              key += static_cast<char>(0xC0 | (code >> 6));
              key += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              key += static_cast<char>(0xE0 | (code >> 12));
              key += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              key += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: key += e;  // unknown escape: keep the char literally
        }
      } else {
        key += text[i++];
      }
    }
    if (i >= text.size()) break;
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') break;
    ++i;
    skip_ws();
    char* end = nullptr;
    const double v = std::strtod(text.c_str() + i, &end);
    if (end == text.c_str() + i) break;
    i = static_cast<std::size_t>(end - text.c_str());
    out.emplace_back(std::move(key), v);
  }
  return out;
}

// -------------------------------------------------------------- json writer

/// Streaming writer for the nested documents the benches emit (metrics
/// snapshots stay flat and use to_json above). Caller drives the nesting;
/// commas are managed automatically.
class json_writer {
 public:
  std::string take() && { return std::move(out_); }
  const std::string& str() const noexcept { return out_; }

  json_writer& begin_object() { return open('{'); }
  json_writer& end_object() { return close('}'); }
  json_writer& begin_array() { return open('['); }
  json_writer& end_array() { return close(']'); }

  json_writer& key(const std::string& k) {
    comma();
    out_ += "\"" + json_escape(k) + "\":";
    just_keyed_ = true;
    return *this;
  }

  json_writer& value(double v) { return raw(format_number(v)); }
  json_writer& value(std::uint64_t v) {
    return raw(std::to_string(v));
  }
  json_writer& value(std::int64_t v) { return raw(std::to_string(v)); }
  json_writer& value(int v) { return raw(std::to_string(v)); }
  json_writer& value(bool v) { return raw(v ? "true" : "false"); }
  json_writer& value(const std::string& v) {
    return raw("\"" + json_escape(v) + "\"");
  }
  json_writer& value(const char* v) { return value(std::string(v)); }

 private:
  json_writer& open(char c) {
    comma();
    out_ += c;
    just_opened_ = true;
    just_keyed_ = false;
    return *this;
  }
  json_writer& close(char c) {
    out_ += c;
    just_opened_ = false;
    just_keyed_ = false;
    return *this;
  }
  json_writer& raw(const std::string& s) {
    comma();
    out_ += s;
    just_keyed_ = false;
    return *this;
  }
  void comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!out_.empty() && !just_opened_) out_ += ',';
    just_opened_ = false;
  }

  std::string out_;
  bool just_opened_ = false;
  bool just_keyed_ = false;
};

}  // namespace kpq::obs
