// Crash flight recorder: when the process dies on a fatal signal, dump the
// last-N trace events of every thread plus a registry snapshot to a
// post-mortem file — the "what happened in the last millisecond" answer a
// drain-at-quiescence pipeline cannot give, because a crashed process never
// reaches quiescence.
//
// Signal-safety contract (docs/OBSERVABILITY.md "Pipeline"):
//
//   * The handler uses ONLY async-signal-safe primitives: open/write/close
//     plus hand-rolled integer formatting. No malloc, no stdio, no locks,
//     no std::string.
//   * Trace rings are readable from the handler by construction: ring slots
//     are atomic pointers (trace_domain::ring_ptr), ring buffers are
//     preallocated, and peek()/written() are lock-free loads. Events from
//     OTHER threads may be mid-overwrite — a torn event is possible and
//     acceptable in a post-mortem (the dump is best-effort by nature).
//   * The registry cannot be walked in a handler (collectors allocate), so
//     refresh_registry() pre-renders the snapshot into a double buffer from
//     a NORMAL thread — the telemetry pump does this every scrape — and the
//     handler just writes whichever buffer was last published.
//
// Dump format: the raw JSONL form of obs/timeline.hpp (header line, one
// event line per retained event, one {"metric":...} line per registry
// gauge). scripts/trace_view.py converts it to a Perfetto timeline.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/registry.hpp"
#include "obs/trace_ring.hpp"

namespace kpq::obs {

struct flight_recorder_config {
  /// Post-mortem file path; truncated and rewritten on each dump.
  const char* path = "kpq_flight.dump";
  /// Events retained per thread (clamped to the ring capacity).
  std::size_t last_n_per_thread = 256;
};

/// Process-wide singleton (signal dispositions are process-wide state).
/// arm() from startup code; thread-safe to query, NOT to arm concurrently.
class flight_recorder {
 public:
  static flight_recorder& instance() noexcept;

  /// Install handlers for SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL and remember
  /// the trace domain + registry to dump. Calibrates the tick rate (blocks
  /// ~10 ms) and pre-renders an initial registry snapshot.
  void arm(const flight_recorder_config& cfg, trace_domain* dom,
           const registry* reg = nullptr);

  /// Restore the previous signal dispositions.
  void disarm() noexcept;

  bool armed() const noexcept {
    // kpq-order: acquire pairs-with the release store in arm() — an armed
    // observer must see the config writes that precede it
    return armed_.load(std::memory_order_acquire);
  }

  /// Re-render the registry snapshot into the inactive half of the double
  /// buffer, then publish it. NOT async-signal-safe (collectors allocate);
  /// call from normal threads — the telemetry pump calls it every scrape so
  /// a crash dump carries metrics at most one scrape interval stale.
  void refresh_registry();

  /// Write a dump right now, outside any signal (test/operational hook).
  /// Uses the same signal-safe writer the handler uses. Returns false if
  /// not armed or the file could not be opened.
  bool dump_now(const char* reason) noexcept;

 private:
  flight_recorder() = default;

  static void on_fatal_signal(int sig) noexcept;
  bool write_dump(const char* reason) noexcept;

  static constexpr std::size_t registry_buf_bytes = 64 * 1024;
  struct rendered_registry {
    char data[registry_buf_bytes];
    std::size_t len = 0;
  };

  std::atomic<bool> armed_{false};
  trace_domain* dom_ = nullptr;
  const registry* reg_ = nullptr;
  char path_[512] = {};
  std::size_t last_n_ = 256;
  std::uint64_t tick_hz_u64_ = 1'000'000'000;

  /// Double buffer + atomic index: refresh_registry() renders into the
  /// inactive half and publishes; the handler reads whichever half was
  /// last published. -1 until the first render.
  rendered_registry regbuf_[2];
  std::atomic<int> reg_active_{-1};
  std::atomic<bool> dumping_{false};  // reentrancy/once guard
};

}  // namespace kpq::obs
