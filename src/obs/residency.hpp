// Item residency tracking: how long does a value sit in the queue,
// enqueue-publish to dequeue-completion?
//
// Why a dedicated surface: the paper's helping mechanism (KP §3/§5.3) makes
// per-*operation* cost non-local — a slow dequeue's steps may be paid by its
// helpers — so operation latency histograms cannot answer the operator
// question "how stale is the work my consumers pull". Residency is a
// property of the ITEM, not the op: the enqueuer stamps the node once,
// before publication, and whichever thread's dequeue ultimately returns the
// value measures now - stamp. Helping does not distort it: no matter how
// many helpers touched the descriptor in between, the stamp rode along
// unchanged (help_finish_deq copies it into the completing descriptor while
// the node is still hazard-protected, exactly like `value`).
//
// Threading: a compile-time policy on the queue Options (`using residency =
// obs::tick_residency;`), detected structurally like the trace policy. When
// absent/disabled the stamp field does not exist (op_desc.hpp keeps the
// paper's 24-byte node, pinned by shape_regression_test) and every hook site
// folds away under `if constexpr` — zero cost, verified by fig_residency
// against the fig7 baseline. When enabled, recording is one tick_now() per
// enqueue + one per successful dequeue and a relaxed histogram increment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/histogram.hpp"
#include "obs/calibrate.hpp"
#include "obs/registry.hpp"
#include "obs/trace_ring.hpp"
#include "sync/cacheline.hpp"

namespace kpq::obs {

// ----------------------------------------------------------------- policies

/// Residency compiled out (the default): no stamp field in nodes or
/// descriptors, no hook code — codegen identical to a residency-free build.
struct no_residency {
  static constexpr bool enabled = false;
  static std::uint64_t now() noexcept { return 0; }
};

/// Residency compiled in: stamps are tick_now() readings, converted to ns at
/// export time with a tick_calibration.
struct tick_residency {
  static constexpr bool enabled = true;
  static std::uint64_t now() noexcept { return tick_now(); }
};

/// Structural detection, mirroring how the queues pick up Options::trace:
/// options structs that predate (or don't care about) residency simply lack
/// the member and get no_residency.
template <typename O>
concept options_with_residency = requires { typename O::residency; };

template <typename O>
struct residency_of {
  using type = no_residency;
};
template <options_with_residency O>
struct residency_of<O> {
  using type = typename O::residency;
};

template <typename O>
using residency_policy_t = typename residency_of<O>::type;

// -------------------------------------------------------------------- probe

/// Per-thread residency recorder a queue owns when its policy is enabled:
/// one padded log2_histogram per dense tid, so recording never contends.
/// Buckets are relaxed atomics (harness/histogram.hpp), which makes merged()
/// safe to call from a telemetry scrape while workers are still recording —
/// the snapshot is some interleaving of their increments, never a race.
class residency_probe {
 public:
  explicit residency_probe(std::uint32_t max_threads) : hists_(max_threads) {}

  void add(std::uint32_t tid, std::uint64_t ticks) noexcept {
    hists_[tid].value.add(ticks);
  }

  /// All threads' samples merged into one histogram (in ticks).
  log2_histogram merged() const {
    log2_histogram out;
    for (const auto& h : hists_) out.merge(h.value);
    return out;
  }

  std::uint64_t samples() const noexcept {
    std::uint64_t n = 0;
    for (const auto& h : hists_) n += h.value.total();
    return n;
  }

  void reset() noexcept {
    for (auto& h : hists_) h.value.reset();
  }

 private:
  std::vector<padded<log2_histogram>> hists_;
};

// ------------------------------------------------------------------- report

/// A residency distribution with its tick→ns conversion baked in, ready for
/// the registry / JSON exporters. Quantiles are conservative upper bounds
/// (log2 buckets), reported in nanoseconds.
struct residency_report {
  log2_histogram hist;  // in ticks
  std::uint64_t samples = 0;
  double tick_hz = 1e9;

  double quantile_ns(double q) const noexcept {
    return static_cast<double>(hist.quantile_upper_bound(q)) * 1e9 / tick_hz;
  }
  double p50_ns() const noexcept { return quantile_ns(0.50); }
  double p90_ns() const noexcept { return quantile_ns(0.90); }
  double p99_ns() const noexcept { return quantile_ns(0.99); }
  double max_ns() const noexcept { return quantile_ns(1.0); }
};

inline residency_report make_residency_report(const log2_histogram& ticks,
                                              const tick_calibration& cal) {
  residency_report r;
  r.hist = ticks;
  r.samples = r.hist.total();
  r.tick_hz = cal.tick_hz;
  return r;
}

/// Registry export (obs/registry.hpp convention: overload append_metrics by
/// concrete type — residency_report is not structural because the ns
/// conversion is part of its meaning).
inline void append_metrics(metrics_snapshot& out, const std::string& prefix,
                           const residency_report& r) {
  append_value(out, prefix + ".samples", static_cast<double>(r.samples));
  append_value(out, prefix + ".p50_ns", r.samples > 0 ? r.p50_ns() : 0.0);
  append_value(out, prefix + ".p90_ns", r.samples > 0 ? r.p90_ns() : 0.0);
  append_value(out, prefix + ".p99_ns", r.samples > 0 ? r.p99_ns() : 0.0);
  append_value(out, prefix + ".max_ns", r.samples > 0 ? r.max_ns() : 0.0);
}

}  // namespace kpq::obs
