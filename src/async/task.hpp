// task<T>: the minimal lazy coroutine type the async front-end returns.
//
// Scope deliberately small — this is a queue library, not a coroutine
// framework. What the front-end needs:
//
//   * lazy start (initial_suspend = suspend_always): a task composes into a
//     parent with `co_await`, or is handed to event_loop::spawn; it never
//     runs before someone asks.
//   * symmetric transfer on completion: final_suspend resumes the awaiting
//     continuation directly (no stack growth, no executor round-trip).
//   * RAII frame ownership: destroying a task destroys the frame, INCLUDING
//     a frame suspended mid-await — awaiter destructors run and delist any
//     waiter_hub registration (the destroy-while-suspended contract
//     docs/ASYNC.md §5 spells out, exercised by tests/async_cancel_test).
//
// Exceptions propagate: unhandled exceptions are captured and rethrown from
// await_resume in the awaiting coroutine.
#pragma once

#if !defined(__cpp_impl_coroutine)
#error "kpq/async requires C++20 coroutines (gate targets on KPQ_HAS_COROUTINES)"
#endif

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace kpq::async {

namespace detail {

struct promise_base {
  std::coroutine_handle<> continuation;  // resumed on completion (if any)
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct final_awaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  final_awaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] task;

template <typename T>
class [[nodiscard]] task {
 public:
  struct promise_type : detail::promise_base {
    std::optional<T> value;
    task get_return_object() {
      return task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };
  using handle_type = std::coroutine_handle<promise_type>;

  task() = default;
  explicit task(handle_type h) noexcept : h_(h) {}
  task(task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  task& operator=(task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return h_ && h_.done(); }

  /// Manual driving (tests, spawn wrappers): run until the first suspension.
  void start() {
    assert(h_ && !h_.done());
    h_.resume();
  }

  /// Completed value; valid once done(). Rethrows the task's exception.
  T take() {
    assert(done());
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(*h_.promise().value);
  }

  auto operator co_await() && noexcept {
    struct awaiter {
      handle_type h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
        return std::move(*h.promise().value);
      }
    };
    return awaiter{h_};
  }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_{};
};

template <>
class [[nodiscard]] task<void> {
 public:
  struct promise_type : detail::promise_base {
    task get_return_object() {
      return task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };
  using handle_type = std::coroutine_handle<promise_type>;

  task() = default;
  explicit task(handle_type h) noexcept : h_(h) {}
  task(task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  task& operator=(task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;
  ~task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return h_ && h_.done(); }

  void start() {
    assert(h_ && !h_.done());
    h_.resume();
  }

  void take() {
    assert(done());
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

  /// Release frame ownership (spawn wrappers that tie the frame's lifetime
  /// to its own completion take over).
  handle_type release() noexcept { return std::exchange(h_, {}); }

  auto operator co_await() && noexcept {
    struct awaiter {
      handle_type h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
      }
    };
    return awaiter{h_};
  }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_{};
};

}  // namespace kpq::async
