// async_mpmc<Q>: the coroutine front-end over any mpmc_queue.
//
// Layering (docs/ASYNC.md): the inner queue's operations stay wait-free —
// a co_dequeue FIRST tries the plain wait-free dequeue and only suspends
// when it returns empty, exactly as blocking_adapter only sleeps on empty.
// Suspension is therefore outside the core's step bound (ALGORITHM.md §10),
// and plain threads interoperate freely with coroutines on the same queue:
// enqueue() here is the synchronous producer path, and its notify can
// resume a parked coroutine just as it wakes a parked thread.
//
// The awaitables follow the waiter_hub discipline (enlist → re-check →
// commit_park) with a coro_resumer continuation, plus three claim rivals:
// stop_token cancellation, deadline timers on the executor's wheel, and
// frame teardown. co_dequeue is a retry LOOP over a one-shot awaiter — a
// woken coroutine that loses the item to a faster consumer re-parks, same
// as dequeue_blocking's loop.
//
// Bounded backpressure: when Q is bounded-with-admission
// (bounded_admission_queue below — bounded_wf_queue qualifies), co_enqueue
// polls try_enqueue_nowait and parks on the queue's room_hub with a timer
// recheck at room_recheck_interval(), mirroring the sync block policy's
// liveness backstop for room freed by reclamation without a notify.
#pragma once

#if !defined(__cpp_impl_coroutine)
#error "kpq/async requires C++20 coroutines (gate targets on KPQ_HAS_COROUTINES)"
#endif

#include <atomic>
#include <cassert>
#include <chrono>
#include <concepts>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <optional>
#include <stop_token>
#include <utility>

#include "async/coro_waiter.hpp"
#include "async/event_loop.hpp"
#include "async/task.hpp"
#include "core/queue_concepts.hpp"
#include "harness/timing.hpp"
#include "sync/thread_registry.hpp"
#include "sync/waiter_hub.hpp"

namespace kpq::async {

/// A bounded queue whose admission the async layer can drive: one-shot
/// room poll, a hub its room waiters park on, and the recheck interval
/// bounding staleness when space appears without a notify.
template <typename Q>
concept bounded_admission_queue =
    requires(Q& q, typename Q::value_type v, std::uint32_t tid) {
      { q.try_enqueue_nowait(std::move(v), tid) } -> std::same_as<bool>;
      { q.room_hub() } -> std::same_as<waiter_hub&>;
      { std::as_const(q).has_room_hint() } -> std::same_as<bool>;
      { std::as_const(q).closed() } -> std::same_as<bool>;
      {
        std::as_const(q).room_recheck_interval()
      } -> std::convertible_to<std::chrono::nanoseconds>;
    };

template <typename Q>
  requires mpmc_queue<Q>
class async_mpmc;

namespace detail {

/// One parked wait for "an item or a state change" on the queue's
/// not-empty hub. await_resume reports {value, open}; the co_dequeue loop
/// retries while open and empty (steal races re-park).
template <typename Q>
struct dequeue_step {
  using value_type = typename Q::value_type;
  struct outcome {
    std::optional<value_type> value;
    bool open = true;
  };

  async_mpmc<Q>& aq;
  std::stop_token st;
  std::uint64_t deadline_ns;  // 0 = none; needs an executor for the timer

  std::optional<value_type> value{};
  bool open = true;
  bool parked = false;
  std::shared_ptr<coro_resumer> node{};

  struct canceller {
    std::shared_ptr<coro_resumer> n;
    waiter_hub* hub;
    void operator()() const noexcept { (void)n->claim_cancel(*hub); }
  };
  std::optional<std::stop_callback<canceller>> stop_cb{};

  dequeue_step(async_mpmc<Q>& q, std::stop_token token,
               std::uint64_t deadline) noexcept
      : aq(q), st(std::move(token)), deadline_ns(deadline) {}
  dequeue_step(const dequeue_step&) = delete;
  dequeue_step& operator=(const dequeue_step&) = delete;

  ~dequeue_step() {
    // Destroy-while-suspended: the frame is torn down with the node still
    // enlisted — claim it quietly so no notifier resumes a dead frame.
    // Contract (docs/ASYNC.md §5): only legal when no notify/cancel can be
    // concurrently in flight.
    stop_cb.reset();
    if (parked && node) (void)node->claim_silent(aq.hub());
  }

  bool await_ready() {
    if (st.stop_requested()) {
      open = false;
      return true;
    }
    if ((value = aq.try_dequeue(this_thread_id()))) return true;
    return false;
  }

  bool await_suspend(std::coroutine_handle<> h) {
    node = std::make_shared<coro_resumer>();
    waiter_hub& hub = aq.hub();
    auto lk = hub.lock();
    node->arm(h, aq.executor());
    hub.enlist(*node, lk);
    // Re-check under registration (Dekker): no enqueue slips past unseen.
    if ((value = aq.try_dequeue(this_thread_id()))) {
      hub.delist(*node, lk);
      node->disarm();
      return false;
    }
    if (aq.closed() || st.stop_requested()) {
      open = false;
      hub.delist(*node, lk);
      node->disarm();
      return false;
    }
    hub.commit_park(*node, lk);
    parked = true;
    lk.unlock();
    // Rivals armed only after the park is committed; the shared_ptr keeps
    // the node alive for a late timer even after this awaiter is gone (a
    // fired node never re-arms, so the late claim is a no-op).
    if (deadline_ns != 0) {
      assert(aq.executor() && "dequeue deadlines need an executor");
      aq.executor()->call_at(deadline_ns, [n = node, hp = &hub]() noexcept {
        (void)n->claim_cancel(*hp);
      });
    }
    if (st.stop_possible()) stop_cb.emplace(st, canceller{node, &hub});
    return true;
  }

  outcome await_resume() {
    // Deregister the stop callback BEFORE touching shared state; its dtor
    // waits out an in-flight invocation.
    stop_cb.reset();
    if (parked) {
      aq.hub().on_resumed(*node);
      // Resumption context may differ from the suspending thread — re-read
      // the dense id, never reuse one captured before the suspension.
      if (!value) value = aq.try_dequeue(this_thread_id());
      if (!value && (aq.closed() || st.stop_requested())) open = false;
    }
    return outcome{std::move(value), open};
  }
};

/// One parked wait for bounded-queue room (co_enqueue backpressure). The
/// timer recheck is mandatory: reclamation can return space with no
/// dequeue — and hence no notify — attached (bounded_wf_queue.hpp).
template <typename Q>
struct room_step {
  async_mpmc<Q>& aq;
  bool open = true;
  bool parked = false;
  std::shared_ptr<coro_resumer> node{};

  explicit room_step(async_mpmc<Q>& q) noexcept : aq(q) {}
  room_step(const room_step&) = delete;
  room_step& operator=(const room_step&) = delete;

  ~room_step() {
    if (parked && node) (void)node->claim_silent(aq.queue().room_hub());
  }

  bool await_ready() {
    if (aq.queue().has_room_hint()) return true;
    if (aq.queue().closed()) {
      open = false;
      return true;
    }
    return false;
  }

  bool await_suspend(std::coroutine_handle<> h) {
    assert(aq.executor() && "bounded co_enqueue needs an executor (timer)");
    node = std::make_shared<coro_resumer>();
    waiter_hub& hub = aq.queue().room_hub();
    auto lk = hub.lock();
    node->arm(h, aq.executor());
    hub.enlist(*node, lk);
    if (aq.queue().has_room_hint() || aq.queue().closed()) {
      open = !aq.queue().closed();
      hub.delist(*node, lk);
      node->disarm();
      return false;
    }
    hub.commit_park(*node, lk);
    parked = true;
    lk.unlock();
    const auto recheck = std::chrono::duration_cast<std::chrono::nanoseconds>(
        aq.queue().room_recheck_interval());
    aq.executor()->call_at(
        now_ns() + static_cast<std::uint64_t>(recheck.count()),
        [n = node, hp = &hub]() noexcept { (void)n->claim_cancel(*hp); });
    return true;
  }

  /// True while the queue is open (room may or may not exist — the
  /// co_enqueue loop re-polls); false once closed.
  bool await_resume() {
    if (parked) aq.queue().room_hub().on_resumed(*node);
    return open && !aq.queue().closed();
  }
};

}  // namespace detail

template <typename Q>
  requires mpmc_queue<Q>
class async_mpmc {
 public:
  using value_type = typename Q::value_type;
  using inner_type = Q;

  template <typename... Args>
  explicit async_mpmc(Args&&... args) : q_(std::forward<Args>(args)...) {}
  async_mpmc(const async_mpmc&) = delete;
  async_mpmc& operator=(const async_mpmc&) = delete;

  /// Attach the event loop notified coroutines resume on. Without one,
  /// notifiers resume coroutines INLINE on their own thread (fine for
  /// tests; services want the loop). Set before any waiter parks.
  void set_executor(event_loop* loop) noexcept { exec_ = loop; }
  event_loop* executor() const noexcept { return exec_; }

  // ---------------------------------------------------- synchronous side

  /// Wait-free (as the inner queue); wakes one parked consumer — thread or
  /// coroutine alike — via the shared hub.
  void enqueue(value_type v, std::uint32_t tid) {
    q_.enqueue(std::move(v), tid);
    if (hub_.maybe_waiters()) hub_.notify_one();
  }
  void enqueue(value_type v) { enqueue(std::move(v), this_thread_id()); }

  std::optional<value_type> try_dequeue(std::uint32_t tid) {
    return q_.dequeue(tid);
  }
  std::optional<value_type> try_dequeue() {
    return try_dequeue(this_thread_id());
  }

  /// Close: parked consumers drain what is left, then complete with
  /// nullopt; room waiters of a bounded inner queue are released too.
  void close() {
    if constexpr (bounded_admission_queue<Q>) q_.close();
    auto lk = hub_.lock();
    closed_.store(true, std::memory_order_seq_cst);
    hub_.notify_all(std::move(lk));
  }
  bool closed() const noexcept {
    return closed_.load(std::memory_order_seq_cst);
  }

  // ------------------------------------------------------ coroutine side

  /// Await one element. Completes with nullopt only when the queue is
  /// closed-and-drained or `st` was stopped.
  task<std::optional<value_type>> co_dequeue(std::stop_token st = {}) {
    for (;;) {
      detail::dequeue_step<Q> step(*this, st, 0);
      auto r = co_await step;
      if (r.value) co_return std::move(r.value);
      if (!r.open) co_return std::nullopt;
    }
  }

  /// co_dequeue with a deadline (needs an executor for the timer wheel).
  template <typename Rep, typename Period>
  task<std::optional<value_type>> co_dequeue_for(
      std::chrono::duration<Rep, Period> timeout, std::stop_token st = {}) {
    const std::uint64_t deadline =
        now_ns() + static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           timeout)
                           .count());
    for (;;) {
      detail::dequeue_step<Q> step(*this, st, deadline);
      auto r = co_await step;
      if (r.value) co_return std::move(r.value);
      if (!r.open || now_ns() >= deadline) co_return std::nullopt;
    }
  }

  /// Await admission + insert. Unbounded inner queues complete
  /// synchronously (uniform shape); bounded ones suspend on backpressure.
  /// Returns false only when the queue was closed before admission.
  task<bool> co_enqueue(value_type v) {
    if constexpr (bounded_admission_queue<Q>) {
      for (;;) {
        if (q_.closed()) co_return false;
        // Fresh tid each attempt: post-suspension context may differ.
        if (q_.try_enqueue_nowait(value_type(v), this_thread_id())) {
          if (hub_.maybe_waiters()) hub_.notify_one();
          co_return true;
        }
        detail::room_step<Q> step(*this);
        if (!co_await step) co_return false;  // closed while waiting
      }
    } else {
      if (closed()) co_return false;
      enqueue(std::move(v), this_thread_id());
      co_return true;
    }
  }

  // --------------------------------------------------------------- access

  Q& queue() noexcept { return q_; }
  const Q& queue() const noexcept { return q_; }

  /// The not-empty hub (park/resume stats; select_step enlists here).
  waiter_hub& hub() noexcept { return hub_; }
  const waiter_hub& hub() const noexcept { return hub_; }

 private:
  Q q_;
  waiter_hub hub_;  // not-empty waiters (coroutines and threads)
  std::atomic<bool> closed_{false};  // written under the hub lock
  event_loop* exec_ = nullptr;
};

}  // namespace kpq::async
