// A minimal single-threaded executor/event loop for the coroutine
// front-end, dogfooding the same waiter_hub primitive the queues park on.
//
// Model (docs/ASYNC.md §3):
//   * One thread calls run(); every coroutine posted to the loop executes
//     on that thread. post() is thread-safe — queue notifiers running on
//     producer threads hand resumptions over instead of executing awaiter
//     code on queue hot paths.
//   * A hashed timer wheel supplies deadlines: sleep_until/sleep_for
//     awaitables, and callback timers (call_at) used by the queue layer for
//     bounded-admission rechecks and dequeue deadlines.
//   * run() returns when it is DRAINED: no ready handles, no pending
//     timers, and every spawn()ed task has completed — the graceful-
//     shutdown shape (close the queues, then run() until the last consumer
//     finishes). stop() requests an early return without draining.
//
// The loop's idle parking is a thread_parker on its own waiter_hub, so the
// hub mutex doubles as the ready-queue/timer/stats lock and cross-thread
// post() wakeups use exactly the enlist→re-check→park discipline every
// other waiter in the repo uses.
#pragma once

#if !defined(__cpp_impl_coroutine)
#error "kpq/async requires C++20 coroutines (gate targets on KPQ_HAS_COROUTINES)"
#endif

#include <cassert>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "async/task.hpp"
#include "harness/timing.hpp"
#include "sync/waiter_hub.hpp"

namespace kpq::async {

/// Hashed timer wheel: 256 slots of `tick_ns` each (default 1 ms). Entries
/// carry absolute now_ns() deadlines; a slot holds every deadline congruent
/// to it, so advance() filters by `deadline <= now` and future revolutions
/// stay put. Deadlines already in the past fire on the next advance().
/// External synchronization required (event_loop guards it with its hub
/// lock).
class timer_wheel {
 public:
  static constexpr std::uint64_t no_deadline = ~std::uint64_t{0};

  struct entry {
    std::uint64_t deadline_ns = 0;
    std::coroutine_handle<> h{};     // resumed at fire time...
    std::function<void()> cb{};      // ...or cb() invoked instead, if set
  };

  explicit timer_wheel(std::uint64_t tick_ns = 1'000'000,
                       std::size_t slot_count = 256)
      : tick_ns_(tick_ns ? tick_ns : 1),
        slots_(slot_count ? slot_count : 1) {}

  void schedule(entry e) {
    std::uint64_t tick = e.deadline_ns / tick_ns_;
    // A deadline already behind the cursor goes into the cursor's slot, so
    // it fires on the next advance instead of a revolution later.
    if (started_ && tick < last_tick_) tick = last_tick_;
    slots_[tick % slots_.size()].push_back(std::move(e));
    ++pending_;
  }

  std::size_t pending() const noexcept { return pending_; }

  /// Earliest pending deadline, or no_deadline. Full scan — the wheel is
  /// small and this only runs when the loop is about to park.
  std::uint64_t next_deadline_ns() const noexcept {
    std::uint64_t best = no_deadline;
    for (const auto& bucket : slots_) {
      for (const auto& e : bucket) {
        if (e.deadline_ns < best) best = e.deadline_ns;
      }
    }
    return best;
  }

  /// Move every entry due at `now` into `out`. Sweeps the slots the cursor
  /// passed since the previous call (at most one full revolution); the
  /// current tick's slot is re-swept next time for entries due later inside
  /// the same tick.
  void advance(std::uint64_t now, std::vector<entry>& out) {
    const std::uint64_t now_tick = now / tick_ns_;
    const std::uint64_t span = slots_.size();
    std::uint64_t from;
    if (!started_) {
      // First sweep covers a full revolution: pre-start schedules may sit
      // in any slot.
      from = now_tick >= span - 1 ? now_tick - span + 1 : 0;
      started_ = true;
    } else {
      from = last_tick_;
      if (now_tick - from >= span) from = now_tick - span + 1;
    }
    for (std::uint64_t t = from; t <= now_tick; ++t) {
      auto& bucket = slots_[t % span];
      for (std::size_t i = 0; i < bucket.size();) {
        if (bucket[i].deadline_ns <= now) {
          out.push_back(std::move(bucket[i]));
          bucket[i] = std::move(bucket.back());
          bucket.pop_back();
          --pending_;
        } else {
          ++i;
        }
      }
    }
    last_tick_ = now_tick;
  }

 private:
  std::uint64_t tick_ns_;
  std::vector<std::vector<entry>> slots_;
  std::uint64_t pending_ = 0;
  std::uint64_t last_tick_ = 0;
  bool started_ = false;
};

struct loop_stats {
  std::uint64_t resumes = 0;      // handles run off the ready queue
  std::uint64_t timer_fires = 0;  // wheel entries fired (handles + cbs)
  std::uint64_t idle_parks = 0;   // times run() actually slept
  std::uint64_t spawned = 0;
  std::uint64_t completed = 0;

  // Loop-health gauges (obs/registry.hpp event_loop_stats_like): how long
  // ready work waited before the loop got to it, how late timers fired
  // versus their deadline, and the deepest the ready queue ever got.
  std::uint64_t ready_lag_ns_total = 0;   // post() -> batch pickup, summed
  std::uint64_t ready_lag_ns_max = 0;
  std::uint64_t timer_slack_ns_total = 0;  // deadline -> fire, summed
  std::uint64_t timer_slack_ns_max = 0;
  std::uint64_t max_ready_depth = 0;       // high-water ready-queue length

  double mean_ready_lag_ns() const noexcept {
    return resumes == 0 ? 0.0
                        : static_cast<double>(ready_lag_ns_total) /
                              static_cast<double>(resumes);
  }
  double mean_timer_slack_ns() const noexcept {
    return timer_fires == 0 ? 0.0
                            : static_cast<double>(timer_slack_ns_total) /
                                  static_cast<double>(timer_fires);
  }
};

class event_loop {
 public:
  explicit event_loop(std::uint64_t timer_tick_ns = 1'000'000)
      : wheel_(timer_tick_ns) {}
  event_loop(const event_loop&) = delete;
  event_loop& operator=(const event_loop&) = delete;

  // ------------------------------------------------------------- scheduling

  /// Thread-safe: queue `h` to run on the loop thread; wakes the loop if
  /// parked. This is how queue notifiers on producer threads hand a
  /// coroutine resumption over (coro_waiter.hpp).
  void post(std::coroutine_handle<> h) {
    auto lk = hub_.lock();
    ready_.push_back({h, now_ns()});
    if (ready_.size() > stats_.max_ready_depth) {
      stats_.max_ready_depth = ready_.size();
    }
    hub_.notify_one(std::move(lk));
  }

  /// Thread-safe: resume `h` at absolute now_ns() deadline.
  void schedule_at(std::uint64_t deadline_ns, std::coroutine_handle<> h) {
    auto lk = hub_.lock();
    wheel_.schedule({deadline_ns, h, {}});
    hub_.notify_one(std::move(lk));  // re-evaluate the park deadline
  }

  /// Thread-safe: invoke `cb` on the loop thread at the deadline. The queue
  /// layer's cancellation-style timers (bounded-admission recheck, dequeue
  /// deadlines) use this — the callback claims a parked continuation.
  void call_at(std::uint64_t deadline_ns, std::function<void()> cb) {
    auto lk = hub_.lock();
    wheel_.schedule({deadline_ns, {}, std::move(cb)});
    hub_.notify_one(std::move(lk));
  }

  // ------------------------------------------------------------- awaitables

  /// Reschedule behind everything currently ready (cooperative yield).
  auto yield() noexcept {
    struct awaiter {
      event_loop* loop;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { loop->post(h); }
      void await_resume() const noexcept {}
    };
    return awaiter{this};
  }

  auto sleep_until(std::uint64_t deadline_ns) noexcept {
    struct awaiter {
      event_loop* loop;
      std::uint64_t deadline;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        loop->schedule_at(deadline, h);
      }
      void await_resume() const noexcept {}
    };
    return awaiter{this, deadline_ns};
  }

  template <typename Rep, typename Period>
  auto sleep_for(std::chrono::duration<Rep, Period> d) noexcept {
    return sleep_until(
        now_ns() + static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                           .count()));
  }

  // ---------------------------------------------------------------- tasks

  /// Take ownership of a task and run it to completion on the loop. The
  /// frame self-destroys when done; run() counts it toward the drain.
  /// Spawned tasks must not leak exceptions (std::terminate if they do).
  void spawn(task<void> t) {
    assert(t.valid());
    {
      auto lk = hub_.lock();
      ++active_;
      ++stats_.spawned;
    }
    drive(this, std::move(t));
  }

  /// Spawned-but-not-finished count (the drain gauge).
  std::size_t active() const {
    auto lk = hub_.lock();
    return active_;
  }

  // ------------------------------------------------------------------ run

  /// Run until drained: ready queue empty, no pending timer, and every
  /// spawned task completed. A stop() request returns earlier, leaving any
  /// remaining work queued.
  void run() {
    std::vector<std::coroutine_handle<>> batch;
    std::vector<timer_wheel::entry> due;
    for (;;) {
      batch.clear();
      {
        auto lk = hub_.lock();
        if (stop_) {
          stop_ = false;
          return;
        }
        if (!ready_.empty()) {
          // Ready-queue lag: how long each handle sat between post() and
          // this pickup (one clock read per batch, not per handle).
          const std::uint64_t pick = now_ns();
          for (const ready_item& r : ready_) {
            const std::uint64_t lag =
                pick > r.posted_ns ? pick - r.posted_ns : 0;
            stats_.ready_lag_ns_total += lag;
            if (lag > stats_.ready_lag_ns_max) stats_.ready_lag_ns_max = lag;
          }
        }
        batch.reserve(ready_.size());
        for (const ready_item& r : ready_) batch.push_back(r.h);
        ready_.clear();
        stats_.resumes += batch.size();
      }
      for (auto h : batch) h.resume();

      due.clear();
      {
        auto lk = hub_.lock();
        const std::uint64_t now = now_ns();
        wheel_.advance(now, due);
        stats_.timer_fires += due.size();
        // Timer-wheel slack: how late past its deadline each entry fired
        // (advance only hands back entries with deadline <= now).
        for (const auto& e : due) {
          const std::uint64_t slack = now - e.deadline_ns;
          stats_.timer_slack_ns_total += slack;
          if (slack > stats_.timer_slack_ns_max) {
            stats_.timer_slack_ns_max = slack;
          }
        }
      }
      for (auto& e : due) {
        if (e.cb) {
          e.cb();
        } else if (e.h) {
          e.h.resume();
        }
      }

      auto lk = hub_.lock();
      if (stop_) {
        stop_ = false;
        return;
      }
      if (!ready_.empty()) continue;
      if (active_ == 0 && wheel_.pending() == 0) return;  // drained
      const std::uint64_t next = wheel_.next_deadline_ns();
      if (next != timer_wheel::no_deadline && next <= now_ns()) continue;
      thread_parker p;
      hub_.enlist(p, lk);
      if (!ready_.empty() || stop_) {  // re-check under registration
        hub_.delist(p, lk);
        continue;
      }
      ++stats_.idle_parks;
      if (next != timer_wheel::no_deadline) {
        (void)p.park_until(
            hub_, lk,
            monotonic_clock::time_point(std::chrono::nanoseconds(next)));
      } else {
        p.park(hub_, lk);
      }
      hub_.delist(p, lk);
    }
  }

  /// Thread-safe: make run() return at the next iteration boundary.
  void stop() {
    auto lk = hub_.lock();
    stop_ = true;
    hub_.notify_all(std::move(lk));
  }

  loop_stats stats() const {
    auto lk = hub_.lock();
    return stats_;
  }

  /// The loop's own park/notify hub (stats/registry export; the idle-park
  /// discipline shares it with cross-thread post()).
  waiter_hub& hub() noexcept { return hub_; }
  const waiter_hub& hub() const noexcept { return hub_; }

 private:
  // Fire-and-forget wrapper tying the spawned frame's lifetime to its own
  // completion (the wrapper frame self-destroys at final_suspend).
  struct detached {
    struct promise_type {
      detached get_return_object() noexcept { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
  };
  static detached drive(event_loop* loop, task<void> t) {
    co_await std::move(t);
    loop->task_done();
  }
  void task_done() {
    auto lk = hub_.lock();
    assert(active_ > 0);
    --active_;
    ++stats_.completed;
    hub_.notify_one(std::move(lk));  // wake run() to re-evaluate the drain
  }

  struct ready_item {
    std::coroutine_handle<> h;
    std::uint64_t posted_ns;  // for the ready-lag gauge
  };

  waiter_hub hub_;  // guards ready_/wheel_/active_/stop_/stats_; idle park
  std::deque<ready_item> ready_;
  timer_wheel wheel_;
  std::size_t active_ = 0;
  bool stop_ = false;
  loop_stats stats_;
};

}  // namespace kpq::async
