// co_select: await "an element from ANY of N async queues" (boson-style
// select), the multiplex an event-loop service uses to serve several shards
// or priority lanes from one coroutine.
//
// Mechanics: one waiter node per queue hub, all sharing a single atomic
// claim. A notify on any hub runs try_accept on that queue's node, which
// races the claim — exactly one rival (one of N notifies, a stop_token
// cancellation) wins and resumes the coroutine; losers pass their token to
// the next waiter on their own hub (waiter_hub's pop_accepted skip), so a
// multi-parked select never eats a wakeup it does not use.
//
// Token re-gifting: the winner's token came from hub j, but the post-resume
// scan (which starts AT j) may end up consuming from queue k != j — e.g.
// queue j's item was stolen while the resume was in flight. In that case
// the token j delivered is returned via notify_one on hub j, so a
// co-parked consumer wakes for whatever j still holds. Without this, a
// select that stashes a re-check hit from one queue while a second queue's
// producer fires its token would strand that producer's item.
#pragma once

#if !defined(__cpp_impl_coroutine)
#error "kpq/async requires C++20 coroutines (gate targets on KPQ_HAS_COROUTINES)"
#endif

#include <atomic>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stop_token>
#include <utility>
#include <vector>

#include "async/async_queue.hpp"
#include "async/coro_waiter.hpp"
#include "async/task.hpp"
#include "sync/thread_registry.hpp"
#include "sync/waiter_hub.hpp"

namespace kpq::async {

inline constexpr std::size_t select_npos = ~std::size_t{0};

template <typename V>
struct select_result {
  std::optional<V> value{};
  std::size_t index = select_npos;  // which queue served the value
  bool open = true;  // false: stopped, or every queue closed-and-drained
};

namespace detail {

template <typename Q>
struct select_step {
  using value_type = typename Q::value_type;

  struct node final : waiter_hub::waiter {
    select_step* step = nullptr;
    std::size_t idx = 0;
    node(select_step* s, std::size_t i) noexcept
        : waiter(waiter_hub::waiter_kind::coroutine), step(s), idx(i) {}

    waiter_hub::accept_result try_accept() noexcept override {
      // kpq-order: acq_rel pairs-with the rival claimed_ exchanges
      // (canceller, await_suspend re-checks, ~select_step) — the winner's
      // release publishes fired_index_/stash_ to whichever rival acquires
      if (step->claimed_.exchange(true, std::memory_order_acq_rel)) {
        // Another rival owns the resume; pass the token on.
        return waiter_hub::accept_result::refused;
      }
      step->fired_index_ = idx;
      return waiter_hub::accept_result::needs_resume;
    }
    void resume() noexcept override { step->dispatch(); }
  };

  const std::vector<async_mpmc<Q>*>& qs;
  std::stop_token st;
  event_loop* exec;

  std::vector<std::unique_ptr<node>> nodes_{};
  std::atomic<bool> claimed_{false};
  std::size_t fired_index_ = select_npos;  // written by the claim winner
  std::coroutine_handle<> h_{};
  std::optional<value_type> value_{};
  std::size_t index_ = select_npos;
  bool open_ = true;
  bool parked_ = false;

  struct canceller {
    select_step* s;
    void operator()() const noexcept {
      // kpq-order: acq_rel pairs-with the rival claimed_ exchanges
      // (node::try_accept, await_suspend re-checks, ~select_step)
      if (!s->claimed_.exchange(true, std::memory_order_acq_rel)) {
        s->dispatch();
      }
    }
  };
  std::optional<std::stop_callback<canceller>> stop_cb{};

  select_step(const std::vector<async_mpmc<Q>*>& queues, std::stop_token token,
              event_loop* loop) noexcept
      : qs(queues), st(std::move(token)), exec(loop) {}
  select_step(const select_step&) = delete;
  select_step& operator=(const select_step&) = delete;

  ~select_step() {
    // Destroy-while-suspended: take the claim so no notifier resumes the
    // dead frame, then unhook every node (same contract as dequeue_step).
    stop_cb.reset();
    if (parked_) {
      // kpq-order: acq_rel pairs-with the rival claimed_ exchanges
      // (node::try_accept, canceller) — taking the claim fences off any
      // notifier from resuming the frame we are about to destroy
      claimed_.exchange(true, std::memory_order_acq_rel);
      delist_all();
    }
  }

  void dispatch() noexcept {
    if (exec) {
      exec->post(h_);
    } else {
      h_.resume();
    }
  }

  void delist_all() noexcept {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      auto lk = qs[i]->hub().lock();
      qs[i]->hub().delist(*nodes_[i], lk);
    }
  }

  bool all_closed() const noexcept {
    for (auto* q : qs) {
      if (!q->closed()) return false;
    }
    return true;
  }

  bool await_ready() {
    if (st.stop_requested()) {
      open_ = false;
      return true;
    }
    const std::uint32_t tid = this_thread_id();
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if ((value_ = qs[i]->try_dequeue(tid))) {
        index_ = i;
        return true;
      }
    }
    return false;
  }

  bool await_suspend(std::coroutine_handle<> h) {
    h_ = h;
    nodes_.reserve(qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      nodes_.push_back(std::make_unique<node>(this, i));
    }
    // Phase 1: enlist on every hub (the seq_cst count bumps happen here).
    for (std::size_t i = 0; i < qs.size(); ++i) {
      auto lk = qs[i]->hub().lock();
      qs[i]->hub().enlist(*nodes_[i], lk);
      qs[i]->hub().commit_park(*nodes_[i], lk);
    }
    parked_ = true;
    // Phase 2: re-check every queue under registration (Dekker across all).
    const std::uint32_t tid = this_thread_id();
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (auto v = qs[i]->try_dequeue(tid)) {
        // kpq-order: acq_rel pairs-with the rival claimed_ exchanges
        // (node::try_accept, canceller) — losing acquires the winner's
        // fired_index_ write before we stash the item for await_resume
        if (!claimed_.exchange(true, std::memory_order_acq_rel)) {
          value_ = std::move(v);
          index_ = i;
          parked_ = false;
          delist_all();
          return false;
        }
        // A notify claimed the resume first; it WILL run us. Keep the item
        // (await_resume prefers the stash and re-gifts the fired token).
        stash_ = std::move(v);
        stash_idx_ = i;
        return true;
      }
    }
    if (st.stop_requested() || all_closed()) {
      // kpq-order: acq_rel pairs-with the rival claimed_ exchanges
      // (node::try_accept, canceller) — same claim race as the re-check
      if (!claimed_.exchange(true, std::memory_order_acq_rel)) {
        open_ = false;
        parked_ = false;
        delist_all();
        return false;
      }
      return true;  // a notify won the claim; resolve in await_resume
    }
    if (st.stop_possible()) stop_cb.emplace(st, canceller{this});
    return true;
  }

  select_result<value_type> await_resume() {
    stop_cb.reset();
    if (parked_) {
      delist_all();  // serializes with any in-flight pop on each hub
      parked_ = false;
      const std::size_t fired = fired_index_;
      if (fired != select_npos) qs[fired]->hub().on_resumed(*nodes_[fired]);
      if (stash_) {
        // We consumed a token from `fired` without taking its item.
        if (fired != select_npos && fired != stash_idx_) {
          qs[fired]->hub().notify_one();
        }
        return {std::move(stash_), stash_idx_, true};
      }
      if (st.stop_requested()) return {std::nullopt, select_npos, false};
      // Scan starting at the fired queue (its token means it had an item).
      const std::uint32_t tid = this_thread_id();
      const std::size_t n = qs.size();
      const std::size_t start = fired != select_npos ? fired : 0;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = (start + k) % n;
        if (auto v = qs[i]->try_dequeue(tid)) {
          if (fired != select_npos && i != fired) {
            qs[fired]->hub().notify_one();  // re-gift the unused token
          }
          return {std::move(v), i, true};
        }
      }
      // Nothing anywhere (stolen): stay open unless every queue is closed.
      return {std::nullopt, select_npos, !all_closed()};
    }
    return {std::move(value_), index_, open_};
  }

 private:
  std::optional<value_type> stash_{};
  std::size_t stash_idx_ = select_npos;
};

}  // namespace detail

/// Await one element from any of `queues`. Retries internally on spurious
/// wakeups (stolen items); completes with open=false when stopped or when
/// every queue is closed-and-drained. The executor for posted resumptions
/// is taken from the first queue (set_executor) — attach the same loop to
/// all queues multiplexed together.
template <typename Q>
task<select_result<typename Q::value_type>> co_select(
    std::vector<async_mpmc<Q>*> queues, std::stop_token st = {}) {
  event_loop* exec = queues.empty() ? nullptr : queues[0]->executor();
  for (;;) {
    detail::select_step<Q> step(queues, st, exec);
    auto r = co_await step;
    if (r.value || !r.open) co_return r;
  }
}

}  // namespace kpq::async
