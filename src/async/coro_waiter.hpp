// coro_resumer: the coroutine-shaped continuation for waiter_hub.
//
// Where thread_parker stores a sleeping thread, coro_resumer stores a
// suspended std::coroutine_handle<>. On an accepted notify the handle is
// either resumed inline on the notifier's thread or posted to an event_loop
// executor (set via arm()) — the resumption-context rule in docs/ASYNC.md:
// code after a co_await may run on a different thread than before it, so
// dense thread ids must be re-read via this_thread_id() after every
// suspension point.
//
// Claim protocol: a parked coroutine can be woken by (a) a hub notify,
// (b) a timer recheck, (c) a stop_token cancellation, or torn down by
// (d) frame destruction. Exactly one may act. All transitions of `state_`
// happen under the hub lock — try_accept() is called by the hub with the
// lock held, and claim_cancel()/claim_silent() take it — so the race is
// arbitrated by a plain compare under the mutex, and a loser never touches
// the continuation again.
#pragma once

#if !defined(__cpp_impl_coroutine)
#error "kpq/async requires C++20 coroutines (gate targets on KPQ_HAS_COROUTINES)"
#endif

#include <coroutine>
#include <cstdint>

#include "async/event_loop.hpp"
#include "harness/timing.hpp"
#include "sync/waiter_hub.hpp"

namespace kpq::async {

class coro_resumer final : public waiter_hub::waiter {
 public:
  enum class phase : std::uint8_t { idle, armed, fired };

  coro_resumer() noexcept : waiter(waiter_hub::waiter_kind::coroutine) {}

  /// Store the continuation. Call under the hub lock, before enlist().
  /// With `exec` null the notifier resumes the coroutine inline; otherwise
  /// the handle is posted to the executor's ready queue.
  void arm(std::coroutine_handle<> h, event_loop* exec) noexcept {
    h_ = h;
    exec_ = exec;
    state_ = phase::armed;
  }

  /// Un-claimed and still parked? Callers must hold the hub lock.
  bool armed() const noexcept { return state_ == phase::armed; }

  /// Revert an arm that never parked (the awaiter's re-check succeeded).
  /// Call under the hub lock.
  void disarm() noexcept { state_ = phase::idle; }

  /// Cancellation/timer path: claim the continuation and resume it (posted
  /// to the executor if one was armed). Returns false when a notify or an
  /// earlier cancel already owns it — the loser does nothing.
  bool claim_cancel(waiter_hub& hub) noexcept {
    {
      auto lk = hub.lock();
      if (state_ != phase::armed) return false;
      state_ = phase::fired;
      accept_ts_ = now_ns();
      hub.delist(*this, lk);
    }
    dispatch();
    return true;
  }

  /// Frame-teardown path (awaiter destructor on destroy-while-suspended):
  /// claim and delist but resume NOTHING — the frame is going away.
  bool claim_silent(waiter_hub& hub) noexcept {
    auto lk = hub.lock();
    if (state_ != phase::armed) return false;
    state_ = phase::fired;
    hub.delist(*this, lk);
    return true;
  }

 private:
  waiter_hub::accept_result try_accept() noexcept override {
    if (state_ != phase::armed) {
      return waiter_hub::accept_result::refused;  // cancel won; pass it on
    }
    state_ = phase::fired;
    return waiter_hub::accept_result::needs_resume;
  }

  // After the notifier released the hub lock. The frame is guaranteed alive:
  // only the accept winner may resume it, and teardown of a parked frame
  // requires winning the claim first (claim_silent).
  void resume() noexcept override { dispatch(); }

  void dispatch() noexcept {
    if (exec_) {
      exec_->post(h_);
    } else {
      h_.resume();
    }
  }

  std::coroutine_handle<> h_{};
  event_loop* exec_ = nullptr;
  phase state_ = phase::idle;  // guarded by the hub lock
};

}  // namespace kpq::async
