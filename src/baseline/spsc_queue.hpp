// Lamport's single-producer/single-consumer wait-free queue (1983).
//
// Related work (paper §2): "The first such [wait-free queue] implementation
// was introduced by Lamport; it allows only one concurrent enqueuer and
// dequeuer. Also, the queue ... is based on a statically allocated array,
// which essentially bounds the number of elements". Both restrictions are
// kept faithfully: this is the historical baseline showing what the KP
// queue generalizes away from, and the concurrency-restriction end of the
// related-work bench.
//
// Mechanics: a ring buffer where `tail_` is written only by the producer
// and `head_` only by the consumer; each operation is a handful of
// straight-line instructions — trivially wait-free, but only under the
// SPSC contract (enforced with assertions in debug builds).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "sync/cacheline.hpp"

namespace kpq {

template <typename T>
class spsc_queue {
 public:
  using value_type = T;

  /// `capacity` usable slots (one ring slot is sacrificed internally).
  explicit spsc_queue(std::size_t capacity)
      : buf_(capacity + 1) {}

  spsc_queue(const spsc_queue&) = delete;
  spsc_queue& operator=(const spsc_queue&) = delete;

  /// Producer only. Returns false when full (bounded array, as in Lamport).
  bool enqueue(T value) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t next = succ(t);
    if (next == head_.load(std::memory_order_acquire)) return false;  // full
    buf_[t] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer only.
  std::optional<T> dequeue() {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> v{std::move(buf_[h])};
    head_.store(succ(h), std::memory_order_release);
    return v;
  }

  bool empty_hint() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  bool full_hint() const {
    return succ(tail_.load(std::memory_order_acquire)) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return buf_.size() - 1; }

  /// Test-only, requires quiescence.
  std::size_t unsafe_size() const {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    return t >= h ? t - h : t + buf_.size() - h;
  }

 private:
  std::size_t succ(std::size_t i) const noexcept {
    return i + 1 == buf_.size() ? 0 : i + 1;
  }

  std::vector<T> buf_;
  alignas(destructive_interference) std::atomic<std::size_t> head_{0};
  alignas(destructive_interference) std::atomic<std::size_t> tail_{0};
};

}  // namespace kpq
