// Lock-based baselines.
//
// Not part of the paper's figures (it compares only against the lock-free MS
// queue), but a production library — and the extra context benches — want a
// blocking reference point:
//
//   * two_lock_queue — Michael & Scott's two-lock queue from the same PODC'96
//     paper: head lock and tail lock, so one enqueuer and one dequeuer can
//     proceed in parallel. A sentinel decouples the two ends.
//   * mutex_queue — the naive single-mutex ring; the simplest correct MPMC
//     queue, and the floor any non-blocking design must beat.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "harness/mem_tracker.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

template <typename T>
class two_lock_queue : public mem_tracked {
 public:
  using value_type = T;

  explicit two_lock_queue(std::uint32_t /*max_threads*/ = 0) {
    node* sentinel = alloc_node(T{});
    head_ = sentinel;
    tail_ = sentinel;
  }

  two_lock_queue(const two_lock_queue&) = delete;
  two_lock_queue& operator=(const two_lock_queue&) = delete;

  ~two_lock_queue() {
    node* p = head_;
    while (p != nullptr) {
      node* next = p->next.load(std::memory_order_relaxed);
      free_node(p);
      p = next;
    }
  }

  void enqueue(T value) {
    node* fresh = alloc_node(std::move(value));
    std::lock_guard<std::mutex> lk(tail_lock_.get());
    // `next` must be atomic: with an empty queue, head_ and tail_ alias the
    // same sentinel, so this store races with the dequeuer's read under the
    // OTHER lock. Release pairs with the dequeuer's acquire, publishing the
    // fresh node's contents.
    tail_->next.store(fresh, std::memory_order_release);
    tail_ = fresh;
  }
  void enqueue(T value, std::uint32_t /*tid*/) { enqueue(std::move(value)); }

  std::optional<T> dequeue() {
    node* old_sentinel = nullptr;
    std::optional<T> result;
    {
      std::lock_guard<std::mutex> lk(head_lock_.get());
      node* first = head_->next.load(std::memory_order_acquire);
      if (first == nullptr) return std::nullopt;
      result = std::move(first->value);
      old_sentinel = head_;
      head_ = first;
    }
    free_node(old_sentinel);  // exclusive owner once unlinked
    return result;
  }
  std::optional<T> dequeue(std::uint32_t /*tid*/) { return dequeue(); }

  bool empty_hint() {
    std::lock_guard<std::mutex> lk(head_lock_.get());
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

  std::size_t unsafe_size() const {
    std::size_t n = 0;
    for (const node* p = head_->next.load(std::memory_order_relaxed);
         p != nullptr; p = p->next.load(std::memory_order_relaxed)) {
      ++n;
    }
    return n;
  }

 private:
  struct node {
    T value;
    std::atomic<node*> next{nullptr};
    explicit node(T v) : value(std::move(v)) {}
  };

  node* alloc_node(T v) {
    account_alloc(sizeof(node));
    return new node(std::move(v));
  }
  void free_node(node* n) noexcept {
    account_free(sizeof(node));
    delete n;
  }

  padded<std::mutex> head_lock_;
  padded<std::mutex> tail_lock_;
  node* head_;  // guarded by head_lock_
  node* tail_;  // guarded by tail_lock_
};

template <typename T>
class mutex_queue : public mem_tracked {
 public:
  using value_type = T;

  explicit mutex_queue(std::uint32_t /*max_threads*/ = 0) {}

  void enqueue(T value) {
    std::lock_guard<std::mutex> lk(lock_.get());
    items_.push_back(std::move(value));
  }
  void enqueue(T value, std::uint32_t /*tid*/) { enqueue(std::move(value)); }

  std::optional<T> dequeue() {
    std::lock_guard<std::mutex> lk(lock_.get());
    if (items_.empty()) return std::nullopt;
    std::optional<T> v{std::move(items_.front())};
    items_.pop_front();
    return v;
  }
  std::optional<T> dequeue(std::uint32_t /*tid*/) { return dequeue(); }

  bool empty_hint() {
    std::lock_guard<std::mutex> lk(lock_.get());
    return items_.empty();
  }

  std::size_t unsafe_size() const { return items_.size(); }

 private:
  padded<std::mutex> lock_;
  std::deque<T> items_;
};

}  // namespace kpq
