// The Michael–Scott lock-free MPMC FIFO queue (PODC 1996) — the `LF`
// baseline in every figure of the paper, with hazard-pointer reclamation
// exactly as in Michael's TPDS 2004 paper (the KP paper cites both).
//
// The implementation follows the classic listing (also in Herlihy & Shavit,
// which is the variant the paper benchmarked against): a singly-linked list
// with a sentinel; enqueue appends lazily (CAS next, then CAS tail), dequeue
// swings head and returns the new sentinel's value.
//
// Progress: lock-free, not wait-free — a dequeuer can starve if other
// threads keep winning the head CAS. That gap is precisely what the KP queue
// closes, and what bench/latency_tail quantifies.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "harness/mem_tracker.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "sync/backoff.hpp"
#include "sync/cacheline.hpp"
#include "sync/thread_registry.hpp"

namespace kpq {

/// Test/simulation hook points for ms_queue (no-ops by default; the
/// stall-injection bench and fault tests swap these to stall a thread at an
/// operation's most vulnerable points).
struct ms_no_hooks {
  /// After the node is allocated, before the first link attempt — the point
  /// where the operation has "logically started" but published nothing.
  static void on_enqueue_start(std::uint32_t /*tid*/) {}
  /// After winning the link CAS, before swinging tail — the lock-free
  /// algorithm's own helped window.
  static void after_link(std::uint32_t /*tid*/) {}
};

template <typename T, typename Reclaimer = hp_domain,
          typename Hooks = ms_no_hooks>
class ms_queue : public mem_tracked {
  static_assert(std::is_copy_constructible_v<T>);

 public:
  using value_type = T;

  struct node {
    T value;
    std::atomic<node*> next{nullptr};
    explicit node(T v) : value(std::move(v)) {}
  };

  static constexpr std::uint32_t hp_slots = 2;
  enum slot : std::uint32_t { s_first = 0, s_next = 1 };

  explicit ms_queue(std::uint32_t max_threads, mem_counters* mc = nullptr)
      : n_(max_threads), reclaim_(max_threads, hp_slots) {
    set_memory_counters(mc);
    node* sentinel = alloc_node(T{});
    head_.store(sentinel, std::memory_order_relaxed);
    tail_.store(sentinel, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  ms_queue(const ms_queue&) = delete;
  ms_queue& operator=(const ms_queue&) = delete;

  ~ms_queue() {
    node* p = head_.load(std::memory_order_relaxed);
    while (p != nullptr) {
      node* next = p->next.load(std::memory_order_relaxed);
      free_node(p);
      p = next;
    }
  }

  void enqueue(T value) { enqueue(std::move(value), this_thread_id()); }

  void enqueue(T value, std::uint32_t tid) {
    assert(tid < n_);
    auto g = reclaim_.enter(tid);
    node* const fresh = alloc_node(std::move(value));
    Hooks::on_enqueue_start(tid);
    backoff bo;
    for (;;) {
      node* last = g.protect(s_first, tail_);
      node* next = last->next.load(std::memory_order_seq_cst);
      if (last != tail_.load(std::memory_order_seq_cst)) continue;
      if (next == nullptr) {
        node* expected = nullptr;
        if (last->next.compare_exchange_strong(expected, fresh,
                                               std::memory_order_seq_cst)) {
          Hooks::after_link(tid);
          tail_.compare_exchange_strong(last, fresh,
                                        std::memory_order_seq_cst);
          return;
        }
        bo();
      } else {
        // Lazy tail: help the in-progress enqueue before retrying.
        tail_.compare_exchange_strong(last, next, std::memory_order_seq_cst);
      }
    }
  }

  std::optional<T> dequeue() { return dequeue(this_thread_id()); }

  std::optional<T> dequeue(std::uint32_t tid) {
    assert(tid < n_);
    auto g = reclaim_.enter(tid);
    backoff bo;
    for (;;) {
      node* first = g.protect(s_first, head_);
      node* last = tail_.load(std::memory_order_seq_cst);
      node* next = g.protect(s_next, first->next);
      if (first != head_.load(std::memory_order_seq_cst)) continue;
      if (first == last) {
        if (next == nullptr) return std::nullopt;  // empty
        // Enqueue in progress: help swing tail, retry.
        tail_.compare_exchange_strong(last, next, std::memory_order_seq_cst);
      } else {
        assert(next != nullptr);
        // Copy before the CAS: after winning, `next` is the sentinel and a
        // later dequeuer may retire it while we are still here; the hazard
        // slot covers the copy either way, but copying first matches the
        // canonical listing.
        T value = next->value;
        if (head_.compare_exchange_strong(first, next,
                                          std::memory_order_seq_cst)) {
          retire_node(tid, first);
          return value;
        }
        bo();
      }
    }
  }

  bool empty_hint(std::uint32_t tid) {
    auto g = reclaim_.enter(tid);
    node* first = g.protect(s_first, head_);
    node* last = tail_.load(std::memory_order_seq_cst);
    node* next = g.protect(s_next, first->next);
    return first == last && next == nullptr;
  }
  bool empty_hint() { return empty_hint(this_thread_id()); }

  std::uint32_t max_threads() const noexcept { return n_; }
  Reclaimer& reclaimer() noexcept { return reclaim_; }

  /// Test-only, requires quiescence.
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    const node* p = head_.load(std::memory_order_acquire);
    for (p = p->next.load(std::memory_order_acquire); p != nullptr;
         p = p->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  node* alloc_node(T v) {
    account_alloc(sizeof(node));
    return new node(std::move(v));
  }
  void free_node(node* n) noexcept {
    account_free(sizeof(node));
    delete n;
  }
  static void retire_node_fn(void* ctx, void* p) {
    if (ctx != nullptr) {
      static_cast<mem_counters*>(ctx)->on_free(sizeof(node));
    }
    delete static_cast<node*>(p);
  }
  void retire_node(std::uint32_t tid, node* n) {
    reclaim_.retire(tid, n, &retire_node_fn, memory_counters());
  }

  const std::uint32_t n_;
  Reclaimer reclaim_;
  alignas(destructive_interference) std::atomic<node*> head_{nullptr};
  alignas(destructive_interference) std::atomic<node*> tail_{nullptr};
};

}  // namespace kpq
