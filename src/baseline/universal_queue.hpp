// Herlihy's wait-free universal construction, instantiated for a FIFO queue.
//
// Related work the paper positions against (§2): "universal constructions
// are generic methods to transform any sequential object into [a] wait-free
// linearizable concurrent object ... [they] are hardly considered practical"
// because of (a) copying/replay cost and (b) no disjoint-access parallelism
// (every operation contends on one consensus point). This module implements
// the classic construction (Herlihy 1993; the formulation in Herlihy &
// Shavit ch. 6) so the claim is measurable: bench/related_work pits it
// against the KP queue.
//
// Mechanics: operations are threaded into a single immutable log by solving
// consensus (one CAS per log slot) on each node's successor. Wait-freedom
// comes from the announce array plus turn-based helping: the thread whose
// index equals (seq+1) mod n gets priority for slot seq+1, so an announced
// operation is threaded after at most n slots. A response is computed by
// replaying the log over a private sequential queue — O(history) per
// operation, the construction's famous Achilles heel (deliberately
// preserved; this is a faithful baseline, not a competitive queue).
//
// Memory: log nodes are never reclaimed while the object lives (every
// thread may still replay from the anchor). This, too, is inherent to the
// classic construction and part of what the paper's §2 criticizes.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sync/cacheline.hpp"
#include "sync/thread_registry.hpp"

namespace kpq {

template <typename T>
class universal_queue {
 public:
  using value_type = T;

  explicit universal_queue(std::uint32_t max_threads)
      : n_(max_threads), announce_(max_threads), head_(max_threads) {
    anchor_ = new node(invocation{op_code::nop, T{}});
    anchor_->seq.store(1, std::memory_order_relaxed);  // threaded by fiat
    for (std::uint32_t i = 0; i < n_; ++i) {
      announce_[i]->store(anchor_, std::memory_order_relaxed);
      head_[i]->store(anchor_, std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  universal_queue(const universal_queue&) = delete;
  universal_queue& operator=(const universal_queue&) = delete;

  ~universal_queue() {
    // The log is a simple chain from the anchor; nodes unreferenced by the
    // chain cannot exist (losing consensus proposals are re-proposed or
    // abandoned by their owner after being threaded elsewhere... losing
    // proposals that never thread are still owned by announce_, handled
    // below).
    std::vector<node*> to_free;
    for (node* p = anchor_; p != nullptr;
         p = p->decide_next.load(std::memory_order_relaxed)) {
      to_free.push_back(p);
    }
    // Announced-but-never-threaded nodes (possible only if a thread died
    // mid-operation; under the quiescence contract there are none, but be
    // tolerant): collect distinct pointers not already in the chain.
    for (auto& a : announce_) {
      node* p = a->load(std::memory_order_relaxed);
      if (p != nullptr && p->seq.load(std::memory_order_relaxed) == 0) {
        to_free.push_back(p);
      }
    }
    for (node* p : to_free) delete p;
  }

  void enqueue(T value) { enqueue(std::move(value), this_thread_id()); }
  void enqueue(T value, std::uint32_t tid) {
    apply(invocation{op_code::enq, std::move(value)}, tid);
  }

  std::optional<T> dequeue() { return dequeue(this_thread_id()); }
  std::optional<T> dequeue(std::uint32_t tid) {
    return apply(invocation{op_code::deq, T{}}, tid);
  }

  std::uint32_t max_threads() const noexcept { return n_; }

  /// Test-only, requires quiescence: replay the whole log.
  std::size_t unsafe_size() const {
    std::deque<T> q;
    replay_upto(nullptr, q);
    return q.size();
  }

  /// Length of the operation log (observability; grows forever).
  std::uint64_t log_length() const {
    std::uint64_t len = 0;
    for (node* p = anchor_; p != nullptr;
         p = p->decide_next.load(std::memory_order_acquire)) {
      ++len;
    }
    return len;
  }

 private:
  enum class op_code : std::uint8_t { nop, enq, deq };

  struct invocation {
    op_code code;
    T arg;
  };

  struct node {
    invocation invoc;
    std::atomic<node*> decide_next{nullptr};  // consensus object for slot+1
    std::atomic<std::uint64_t> seq{0};        // 0 = not yet threaded

    explicit node(invocation i) : invoc(std::move(i)) {}
  };

  /// Herlihy's wait-free apply().
  std::optional<T> apply(invocation invoc, std::uint32_t tid) {
    assert(tid < n_);
    node* prefer = new node(std::move(invoc));
    announce_[tid]->store(prefer, std::memory_order_seq_cst);
    head_[tid]->store(max_node(), std::memory_order_seq_cst);

    while (prefer->seq.load(std::memory_order_seq_cst) == 0) {
      node* before = head_[tid]->load(std::memory_order_seq_cst);
      // Turn-based helping: the thread whose index matches the next slot
      // gets its announced operation threaded first.
      const std::uint64_t next_seq =
          before->seq.load(std::memory_order_seq_cst) + 1;
      node* help =
          announce_[next_seq % n_]->load(std::memory_order_seq_cst);
      node* pref = (help->seq.load(std::memory_order_seq_cst) == 0)
                       ? help
                       : prefer;
      // Consensus on before's successor: one CAS; losers adopt the winner.
      node* expected = nullptr;
      before->decide_next.compare_exchange_strong(
          expected, pref, std::memory_order_seq_cst);
      node* after = before->decide_next.load(std::memory_order_seq_cst);
      // Benign same-value races: every helper writes the same seq.
      after->seq.store(before->seq.load(std::memory_order_seq_cst) + 1,
                       std::memory_order_seq_cst);
      head_[tid]->store(after, std::memory_order_seq_cst);
    }

    // Compute the response by replaying the log up to (and including) our
    // node over a private sequential queue — the construction's O(history)
    // copying cost, kept deliberately.
    std::deque<T> q;
    return replay_upto(prefer, q);
  }

  /// Replays the log; returns the response of `target` (nullptr = replay
  /// everything, return nullopt).
  std::optional<T> replay_upto(node* target, std::deque<T>& q) const {
    for (node* p = anchor_; p != nullptr;
         p = p->decide_next.load(std::memory_order_acquire)) {
      std::optional<T> response;
      switch (p->invoc.code) {
        case op_code::nop:
          break;
        case op_code::enq:
          q.push_back(p->invoc.arg);
          break;
        case op_code::deq:
          if (!q.empty()) {
            response = std::move(q.front());
            q.pop_front();
          }
          break;
      }
      if (p == target) return response;
    }
    return std::nullopt;
  }

  /// The threaded node with the largest sequence number any head_ knows of.
  node* max_node() const {
    node* best = anchor_;
    for (std::uint32_t i = 0; i < n_; ++i) {
      node* p = head_[i]->load(std::memory_order_seq_cst);
      if (p->seq.load(std::memory_order_seq_cst) >
          best->seq.load(std::memory_order_seq_cst)) {
        best = p;
      }
    }
    return best;
  }

  const std::uint32_t n_;
  node* anchor_;
  std::vector<padded<std::atomic<node*>>> announce_;
  std::vector<padded<std::atomic<node*>>> head_;
};

}  // namespace kpq
