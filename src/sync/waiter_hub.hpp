// waiter_hub: the one park/notify primitive behind every "wait until another
// thread produces a condition" path in the library.
//
// Before this layer existed the repo had two hand-rolled condition_variable
// parking loops (blocking_adapter's empty-queue wait and bounded_wf_queue's
// block-admission wait). Adding coroutine resumption as a third copy would
// have tripled the lost-wakeup surface; instead all of them now share this
// hub, whose waiters are pluggable CONTINUATIONS:
//
//   * thread_parker (below)          — a cv-based sleeping thread; exactly
//     the eventcount-lite behaviour the old code had.
//   * coro_resumer (async/coro_waiter.hpp) — a suspended
//     std::coroutine_handle<>, resumed inline by the notifier or posted to
//     an event_loop executor.
//
// Protocol (the Dekker pairing the old adapters relied on, made explicit):
//
//   waiter:   lock() → enlist() → RE-CHECK the predicate → commit_park() →
//             suspend (sleep on a cv, or return control to the coroutine
//             caller). The enlist bumps a seq_cst waiter count BEFORE the
//             re-check.
//   notifier: make the predicate true → maybe_waiters() (seq_cst load). A
//             read of 0 proves any future waiter's re-check happens after
//             the notifier's write, so skipping the lock is safe. Otherwise
//             notify_one()/notify_all().
//
// Two-phase notification: under the hub lock the notifier pops a waiter and
// calls its try_accept(), which answers one of three ways:
//
//   * refused — the continuation was already claimed by a timeout or
//     cancellation; the notifier passes the token to the NEXT waiter
//     instead of dropping it, so a cancelled waiter can never eat a wakeup.
//   * accepted_inline — the wakeup is fully delivered under the lock
//     (thread_parker cv-notifies right there). The hub must never touch
//     the waiter again: the moment the lock drops, the woken thread can
//     return from park() and destroy the stack-allocated parker.
//   * needs_resume — the notifier calls resume() AFTER unlocking
//     (coro_resumer). A coroutine must never be resumed while the notifier
//     holds the hub lock (the resumed frame may immediately re-enter the
//     hub); the frame is guaranteed alive post-unlock because teardown of
//     a parked frame must win the claim first (see coro_waiter.hpp).
//
// The hub also owns the park/resume observability: waiter_park /
// waiter_resume trace events and a stats() block the obs registry exports
// structurally (obs/registry.hpp, waiter_hub_stats_like).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "harness/timing.hpp"
#include "obs/trace_ring.hpp"
#include "sync/thread_registry.hpp"

namespace kpq {

/// Aggregate park/notify counters (read at sampling points; the mutex-
/// guarded fields are snapshotted under the hub lock).
struct waiter_hub_stats {
  std::uint64_t parks = 0;     // continuations that actually suspended
  std::uint64_t notifies = 0;  // tokens delivered to a live continuation
  std::uint64_t resumes = 0;   // accepted continuations that ran again
  std::uint64_t resume_ns_total = 0;  // accept -> running latency, summed
  std::uint64_t resume_ns_max = 0;
  double mean_resume_ns() const noexcept {
    return resumes > 0 ? static_cast<double>(resume_ns_total) /
                             static_cast<double>(resumes)
                       : 0.0;
  }
};

class waiter_hub {
 public:
  enum class waiter_kind : std::uint8_t { thread = 0, coroutine = 1 };

  /// try_accept() verdicts — see the two-phase-notification comment above.
  enum class accept_result : std::uint8_t {
    refused,          // already claimed; pass the token to the next waiter
    accepted_inline,  // wakeup delivered under the lock; never touch again
    needs_resume,     // call resume() after the hub lock is released
  };

  /// Intrusive list node + continuation interface. Lifetime contract: a
  /// waiter must be delisted (or popped by a notify) before destruction;
  /// call sites keep the waiter on the waiting frame's stack and delist on
  /// every exit path.
  class waiter {
    friend class waiter_hub;

   public:
    waiter(const waiter&) = delete;
    waiter& operator=(const waiter&) = delete;

    /// Still on the hub's list? Callers must hold the hub lock.
    bool linked() const noexcept { return linked_; }

    /// Trace events from the hub (waiter_park/waiter_resume) normally record
    /// under the recording thread's auto-registered dense id. Call sites
    /// whose surrounding queue ops use a caller-supplied tid must route the
    /// hub's events to the SAME ring — the rings are single-writer per tid,
    /// and mixing the two id namespaces lets two OS threads collide on one.
    static constexpr std::uint32_t no_trace_tid = 0xffffffffu;
    void set_trace_tid(std::uint32_t tid) noexcept { trace_tid_ = tid; }

   protected:
    explicit waiter(waiter_kind kind) noexcept : kind_(kind) {}
    ~waiter() { assert(!linked_ && "waiter destroyed while enlisted"); }

    /// Called by the notifier UNDER the hub lock after popping this waiter.
    /// Claim the continuation — see accept_result for the three verdicts.
    virtual accept_result try_accept() noexcept = 0;

    /// Called by the notifier AFTER releasing the hub lock, only when
    /// try_accept() returned needs_resume: actually run the continuation.
    /// Inline-accepting waiters (thread_parker) never receive this call.
    virtual void resume() noexcept { assert(false && "inline-accepted"); }

    std::uint64_t accept_ts_ = 0;  // set under the hub lock at accept time
    waiter_kind kind_;

   private:
    waiter* prev_ = nullptr;
    waiter* next_ = nullptr;
    bool linked_ = false;
    std::uint32_t trace_tid_ = no_trace_tid;
  };

  waiter_hub() = default;
  waiter_hub(const waiter_hub&) = delete;
  waiter_hub& operator=(const waiter_hub&) = delete;

  /// The hub mutex doubles as the caller's predicate lock (closed flags,
  /// ready queues). Take it once, do enlist + re-check + commit under it.
  std::unique_lock<std::mutex> lock() const {
    return std::unique_lock<std::mutex>(m_);
  }

  /// Producer-side fast path: seq_cst, pairs with enlist()'s seq_cst
  /// increment. Reading 0 licenses skipping notify entirely.
  bool maybe_waiters() const noexcept {
    return count_.load(std::memory_order_seq_cst) > 0;
  }

  /// FIFO-append `w`. The seq_cst count bump happens here, BEFORE the
  /// caller's predicate re-check (the waiter half of the Dekker pairing).
  void enlist(waiter& w, const std::unique_lock<std::mutex>& lk) {
    assert(lk.owns_lock() && lk.mutex() == &m_);
    (void)lk;
    assert(!w.linked_);
    w.prev_ = tail_;
    w.next_ = nullptr;
    if (tail_) {
      tail_->next_ = &w;
    } else {
      head_ = &w;
    }
    tail_ = &w;
    w.linked_ = true;
    count_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Unlink `w` if still enlisted; no-op (returns false) when a notify
  /// already popped it. Every waiter exit path calls this.
  bool delist(waiter& w, const std::unique_lock<std::mutex>& lk) {
    assert(lk.owns_lock() && lk.mutex() == &m_);
    (void)lk;
    if (!w.linked_) return false;
    unlink(w);
    return true;
  }

  /// The waiter is about to actually suspend (predicate re-checked false).
  /// Counts the park and emits the waiter_park trace event.
  void commit_park(const waiter& w, const std::unique_lock<std::mutex>& lk) {
    assert(lk.owns_lock() && lk.mutex() == &m_);
    (void)lk;
    ++parks_;
    if constexpr (obs::default_trace::enabled) {
      obs::default_trace::record(trace_tid_of(w),
                                 obs::trace_kind::waiter_park, 0,
                                 static_cast<std::uint32_t>(w.kind_));
    }
  }

  /// Deliver one token: pop waiters until one accepts; if the acceptor asked
  /// for a post-unlock resume, run it after releasing the lock. The overload
  /// taking a lock consumes it (callers that flip a predicate under the hub
  /// lock hand the same lock over).
  void notify_one() { notify_one(lock()); }
  void notify_one(std::unique_lock<std::mutex> lk) {
    token t = pop_one(lk);
    lk.unlock();
    if (t.to_resume) t.to_resume->resume();
  }

  /// Deliver a token to every current waiter (close/shutdown paths). Only
  /// needs_resume waiters reach the post-unlock fire list — inline acceptors
  /// (thread parkers) may be destroyed the instant the lock drops.
  void notify_all() { notify_all(lock()); }
  void notify_all(std::unique_lock<std::mutex> lk) {
    waiter* fire = nullptr;  // reuse next_ as the unlocked fire-list link
    for (;;) {
      token t = pop_one(lk);
      if (!t.delivered) break;
      if (t.to_resume) {
        t.to_resume->next_ = fire;
        fire = t.to_resume;
      }
    }
    lk.unlock();
    while (fire) {
      waiter* w = fire;
      fire = w->next_;  // read before resume(): resume may free the waiter
      w->next_ = nullptr;
      w->resume();
    }
  }

  /// Called by the continuation itself once it is running again after an
  /// accepted notify: closes the accept→running latency measurement and
  /// emits the waiter_resume trace event (phase = latency in ns).
  void on_resumed(const waiter& w) noexcept {
    const std::uint64_t dt = now_ns() - w.accept_ts_;
    // kpq-order: relaxed pairs-with none (latency statistics; read only by
    // the relaxed snapshot in stats(), orders no other data)
    resumes_.fetch_add(1, std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with none (statistics, see above)
    resume_ns_total_.fetch_add(dt, std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with none (statistics max; the CAS loop only
    // needs the cell's own modification order)
    std::uint64_t prev = resume_ns_max_.load(std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with none (statistics, see above)
    while (prev < dt && !resume_ns_max_.compare_exchange_weak(
                            prev, dt, std::memory_order_relaxed)) {
    }
    if constexpr (obs::default_trace::enabled) {
      obs::default_trace::record(trace_tid_of(w),
                                 obs::trace_kind::waiter_resume,
                                 static_cast<std::int64_t>(dt),
                                 static_cast<std::uint32_t>(w.kind_));
    }
  }

  waiter_hub_stats stats() const {
    waiter_hub_stats s;
    {
      auto lk = lock();
      s.parks = parks_;
      s.notifies = notifies_;
    }
    // kpq-order: relaxed pairs-with none (statistics snapshot; may lag the
    // resuming threads — same contract as every counter surface here)
    s.resumes = resumes_.load(std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with none (statistics, see above)
    s.resume_ns_total = resume_ns_total_.load(std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with none (statistics, see above)
    s.resume_ns_max = resume_ns_max_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static std::uint32_t trace_tid_of(const waiter& w) noexcept {
    return w.trace_tid_ != waiter::no_trace_tid ? w.trace_tid_
                                                : this_thread_id();
  }

  void unlink(waiter& w) noexcept {
    if (w.prev_) {
      w.prev_->next_ = w.next_;
    } else {
      head_ = w.next_;
    }
    if (w.next_) {
      w.next_->prev_ = w.prev_;
    } else {
      tail_ = w.prev_;
    }
    w.prev_ = w.next_ = nullptr;
    w.linked_ = false;
    count_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// One token delivery attempt, under the hub lock. `delivered` says a
  /// waiter consumed the token; `to_resume` is non-null only when that
  /// waiter wants its resume() after unlock. A null `to_resume` with
  /// `delivered` set means the wakeup completed inline (thread_parker) —
  /// the waiter may be destroyed the moment the lock drops, so the hub
  /// returns no pointer to it.
  struct token {
    bool delivered = false;
    waiter* to_resume = nullptr;
  };

  /// Pop head waiters until one claims the token. A waiter whose
  /// continuation was already claimed (cancelled/timed out between unlink
  /// and accept) does NOT consume the notification.
  token pop_one(const std::unique_lock<std::mutex>& lk) {
    assert(lk.owns_lock() && lk.mutex() == &m_);
    (void)lk;
    while (head_) {
      waiter* w = head_;
      unlink(*w);
      w->accept_ts_ = now_ns();
      switch (w->try_accept()) {
        case accept_result::refused:
          continue;
        case accept_result::accepted_inline:
          ++notifies_;
          return {true, nullptr};
        case accept_result::needs_resume:
          ++notifies_;
          return {true, w};
      }
    }
    return {};
  }

  mutable std::mutex m_;
  waiter* head_ = nullptr;  // guarded by m_
  waiter* tail_ = nullptr;  // guarded by m_
  std::atomic<std::uint64_t> count_{0};  // enlisted waiters (Dekker side)
  std::uint64_t parks_ = 0;              // guarded by m_
  std::uint64_t notifies_ = 0;           // guarded by m_
  std::atomic<std::uint64_t> resumes_{0};
  std::atomic<std::uint64_t> resume_ns_total_{0};
  std::atomic<std::uint64_t> resume_ns_max_{0};
};

/// The thread-shaped continuation: a cv the owning thread sleeps on.
///
/// Unlike coroutine continuations, the parker's accept must wake the thread
/// WHILE the hub lock is held: any hub touch after unlock would race the
/// woken (or timed-out) thread returning from park() and destroying the
/// stack-allocated parker. try_accept therefore does the cv notify itself
/// (notifying under the mutex is safe — the sleeper cannot pass wait()
/// until the notifier releases it) and answers accepted_inline, so the hub
/// drops its pointer before releasing the lock.
class thread_parker final : public waiter_hub::waiter {
 public:
  thread_parker() noexcept : waiter(waiter_hub::waiter_kind::thread) {}

  /// Notification already consumed? Callers must hold the hub lock.
  bool notified() const noexcept { return notified_; }

  /// Sleep until a notify accepts this parker. The parker must already be
  /// enlisted and the predicate re-checked (the caller owns that ordering);
  /// a parker whose previous park was notified is re-armed automatically.
  void park(waiter_hub& hub, std::unique_lock<std::mutex>& lk) {
    arm(hub, lk);
    while (!notified_) cv_.wait(lk);
    hub.on_resumed(*this);
  }

  /// Sleep until notified or `timeout` elapses. Returns false on timeout —
  /// the parker STAYS enlisted; re-check the predicate and park again or
  /// delist on the way out.
  template <typename Rep, typename Period>
  bool park_for(waiter_hub& hub, std::unique_lock<std::mutex>& lk,
                std::chrono::duration<Rep, Period> timeout) {
    return park_until(hub, lk, std::chrono::steady_clock::now() + timeout);
  }

  template <typename Clock, typename Dur>
  bool park_until(waiter_hub& hub, std::unique_lock<std::mutex>& lk,
                  std::chrono::time_point<Clock, Dur> deadline) {
    arm(hub, lk);
    while (!notified_) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
          !notified_) {
        return false;
      }
    }
    hub.on_resumed(*this);
    return true;
  }

 private:
  void arm(waiter_hub& hub, const std::unique_lock<std::mutex>& lk) {
    notified_ = false;
    if (!linked()) hub.enlist(*this, lk);
    hub.commit_park(*this, lk);
  }

  waiter_hub::accept_result try_accept() noexcept override {
    notified_ = true;
    cv_.notify_one();  // under the hub lock — see class comment
    return waiter_hub::accept_result::accepted_inline;
  }

  std::condition_variable cv_;
  bool notified_ = false;  // guarded by the hub mutex
};

}  // namespace kpq
