#include "sync/thread_registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace kpq {
namespace {

struct tid_holder {
  std::uint32_t tid;
  bool owned = false;

  tid_holder() {
    tid = thread_registry::instance().acquire();
    owned = true;
  }
  ~tid_holder() {
    if (owned) thread_registry::instance().release(tid);
  }
};

}  // namespace

thread_registry& thread_registry::instance() noexcept {
  static thread_registry reg;
  return reg;
}

std::uint32_t thread_registry::current_tid() noexcept {
  thread_local tid_holder holder;
  return holder.tid;
}

std::uint32_t thread_registry::acquire() noexcept {
  for (std::uint32_t i = 0; i < max_registered_threads; ++i) {
    bool expected = false;
    // kpq-order: relaxed pairs-with none (contention-avoidance pre-check;
    // the CAS below is the authoritative claim)
    if (!claimed_[i]->load(std::memory_order_relaxed) &&
        // kpq-order: acq_rel pairs-with release(tid)'s release store — a
        // reclaimed slot's acquire sees everything the releasing thread did
        // under this tid (per-tid queue slots, trace rings)
        claimed_[i]->compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      return i;
    }
  }
  std::fprintf(stderr,
               "kpq::thread_registry: more than %u concurrent threads\n",
               max_registered_threads);
  std::abort();
}

void thread_registry::release(std::uint32_t tid) noexcept {
  // kpq-order: release pairs-with the acq_rel claim CAS in acquire() — the
  // next owner of this tid observes all of our tid-indexed writes
  claimed_[tid]->store(false, std::memory_order_release);
}

std::uint32_t thread_registry::high_water() const noexcept {
  std::uint32_t hw = 0;
  for (std::uint32_t i = 0; i < max_registered_threads; ++i) {
    // kpq-order: acquire pairs-with the claim CAS in acquire() (diagnostic
    // snapshot; inherently racy against concurrent claims)
    if (claimed_[i]->load(std::memory_order_acquire)) hw = i + 1;
  }
  return hw;
}

bool thread_registry::is_claimed(std::uint32_t tid) const noexcept {
  return tid < max_registered_threads &&
         // kpq-order: acquire pairs-with the claim CAS in acquire()
         // (diagnostic snapshot; inherently racy against concurrent claims)
         claimed_[tid]->load(std::memory_order_acquire);
}

}  // namespace kpq
