#include "sync/thread_registry.hpp"

#include <cstdio>
#include <cstdlib>

namespace kpq {
namespace {

struct tid_holder {
  std::uint32_t tid;
  bool owned = false;

  tid_holder() {
    tid = thread_registry::instance().acquire();
    owned = true;
  }
  ~tid_holder() {
    if (owned) thread_registry::instance().release(tid);
  }
};

}  // namespace

thread_registry& thread_registry::instance() noexcept {
  static thread_registry reg;
  return reg;
}

std::uint32_t thread_registry::current_tid() noexcept {
  thread_local tid_holder holder;
  return holder.tid;
}

std::uint32_t thread_registry::acquire() noexcept {
  for (std::uint32_t i = 0; i < max_registered_threads; ++i) {
    bool expected = false;
    if (!claimed_[i]->load(std::memory_order_relaxed) &&
        claimed_[i]->compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      return i;
    }
  }
  std::fprintf(stderr,
               "kpq::thread_registry: more than %u concurrent threads\n",
               max_registered_threads);
  std::abort();
}

void thread_registry::release(std::uint32_t tid) noexcept {
  claimed_[tid]->store(false, std::memory_order_release);
}

std::uint32_t thread_registry::high_water() const noexcept {
  std::uint32_t hw = 0;
  for (std::uint32_t i = 0; i < max_registered_threads; ++i) {
    if (claimed_[i]->load(std::memory_order_acquire)) hw = i + 1;
  }
  return hw;
}

bool thread_registry::is_claimed(std::uint32_t tid) const noexcept {
  return tid < max_registered_threads &&
         claimed_[tid]->load(std::memory_order_acquire);
}

}  // namespace kpq
