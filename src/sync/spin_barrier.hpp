// Sense-reversing spin barrier.
//
// The benchmark harness releases all worker threads simultaneously so that
// per-run wall time measures steady-state contention, not thread start skew.
// std::barrier exists, but a sense-reversing barrier lets us couple the last
// arrival with starting the timer and keeps the hot path to one atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "sync/backoff.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

class spin_barrier {
 public:
  explicit spin_barrier(std::uint32_t parties) noexcept : parties_(parties) {}

  spin_barrier(const spin_barrier&) = delete;
  spin_barrier& operator=(const spin_barrier&) = delete;

  /// Blocks until `parties` threads have arrived. Returns true for exactly
  /// one caller per generation (the last arrival), which benchmarks use to
  /// start the clock.
  bool arrive_and_wait() noexcept {
    // kpq-order: relaxed pairs-with none (sense_ only flips in the release
    // store below, which cannot run concurrently with arrivals of the same
    // generation — the value is stable until the last arrival)
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    // kpq-order: acq_rel pairs-with the other arrivals' fetch_adds — the
    // last arrival's acquire sees all work preceding every arrival
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // kpq-order: relaxed pairs-with none (ordered before the next
      // generation by the sense_ release/acquire edge below)
      count_.store(0, std::memory_order_relaxed);
      // kpq-order: release pairs-with the acquire spin below — publishes
      // the count_ reset and everything before the barrier to all waiters
      sense_.store(my_sense, std::memory_order_release);
      return true;
    }
    backoff bo(64);
    // kpq-order: acquire pairs-with the release sense_ store above
    while (sense_.load(std::memory_order_acquire) != my_sense) bo();
    return false;
  }

  std::uint32_t parties() const noexcept { return parties_; }

 private:
  const std::uint32_t parties_;
  alignas(destructive_interference) std::atomic<std::uint32_t> count_{0};
  alignas(destructive_interference) std::atomic<bool> sense_{false};
};

}  // namespace kpq
