// Cache-line sizing and padding utilities.
//
// Concurrent arrays indexed by thread id (the KP queue's `state` array, the
// hazard-pointer slot table, per-thread retire lists, ...) suffer badly from
// false sharing if neighbouring entries land on one cache line. Everything
// per-thread in this library is wrapped in `padded<T>`.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace kpq {

// std::hardware_destructive_interference_size is 64 on the x86-64 targets we
// care about but is not always defined; 128 covers adjacent-line prefetchers.
inline constexpr std::size_t cacheline_size = 64;
inline constexpr std::size_t destructive_interference = 128;

/// A T that owns (at least) one full cache line, eliminating false sharing
/// between adjacent array elements. Transparent access via get()/operators.
template <typename T>
struct alignas(destructive_interference) padded {
  T value;

  padded() = default;

  template <typename... Args>
    requires std::is_constructible_v<T, Args...>
  explicit padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& get() noexcept { return value; }
  const T& get() const noexcept { return value; }

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

static_assert(alignof(padded<int>) >= cacheline_size);
static_assert(sizeof(padded<int>) >= destructive_interference);

}  // namespace kpq
