// Bounded exponential backoff for CAS retry loops.
//
// Used by the lock-free baselines under contention. The KP wait-free queue
// deliberately does NOT back off on its helping path (backing off there would
// stretch the bounded-step guarantee); it may back off only on retry loops
// whose exit is guaranteed by another thread's progress.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace kpq {

/// One CPU-relax hint (PAUSE on x86, plain fence elsewhere).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Truncated exponential backoff: spins 2^k relax-hints, doubling up to
/// `max_spins`, then yields the OS slice. On a single-core host (the CI box
/// this repo is validated on) yielding early is essential: the thread we are
/// waiting on cannot run until we give up the core.
class backoff {
 public:
  explicit backoff(std::uint32_t max_spins = 1024) noexcept
      : max_spins_(max_spins) {}

  void operator()() noexcept {
    if (spins_ <= max_spins_) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 1; }

 private:
  std::uint32_t spins_ = 1;
  std::uint32_t max_spins_;
};

}  // namespace kpq
