// Wait-free one-shot renaming via a Moir–Anderson splitter grid.
//
// Paper §3.3: "To support applications in which threads are created and
// deleted dynamically and may have arbitrary IDs, threads can get and
// release (virtual) IDs from a small name space through one of the known
// long-lived wait-free renaming algorithms [1, 6]." Two substrates cover
// this in kpq:
//
//   * kpq::thread_registry (sync/thread_registry.hpp) — the *long-lived*
//     mechanism the queue actually uses: acquire/release of dense ids via a
//     claim table; bounded (<= capacity CAS probes, each failure implying
//     another thread's success), hence wait-free for a bounded namespace.
//   * this file — the classic *one-shot* splitter-grid renaming (Moir &
//     Anderson 1995; splitters after Lamport's fast mutex): k threads with
//     arbitrary ids acquire distinct names in [0, k(k+1)/2), each in O(k)
//     steps, with no release needed. Included as the literature algorithm
//     the paper points to, with the grid walk observable for tests.
//
// Splitter: each visitor stores its id in `door`, then checks `closed`; if
// closed it is diverted RIGHT; otherwise it closes the splitter and re-reads
// `door` — if unchanged it STOPs (it was alone in the race window), else it
// goes DOWN. Guarantees: at most one STOP per splitter; if m >= 1 threads
// enter, at most m-1 leave right and at most m-1 leave down. Hence on the
// grid with rows+cols < k every thread stops within k-1 moves.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sync/cacheline.hpp"

namespace kpq {

class splitter {
 public:
  enum class outcome { stop, right, down };

  outcome visit(std::uint64_t id) noexcept {
    door_.store(static_cast<std::int64_t>(id), std::memory_order_seq_cst);
    if (closed_.load(std::memory_order_seq_cst)) return outcome::right;
    closed_.store(true, std::memory_order_seq_cst);
    if (door_.load(std::memory_order_seq_cst) ==
        static_cast<std::int64_t>(id)) {
      return outcome::stop;
    }
    return outcome::down;
  }

  bool closed() const noexcept {
    // kpq-order: acquire pairs-with the seq_cst closed_ store in visit()
    // (observability read; the racing protocol itself is all seq_cst)
    return closed_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> door_{-1};
  std::atomic<bool> closed_{false};
};

/// One-shot renaming for up to `k` concurrent participants with arbitrary
/// distinct ids; names are in [0, k(k+1)/2).
class splitter_grid_renaming {
 public:
  explicit splitter_grid_renaming(std::uint32_t k)
      : k_(k), grid_(static_cast<std::size_t>(k) * k) {}

  splitter_grid_renaming(const splitter_grid_renaming&) = delete;
  splitter_grid_renaming& operator=(const splitter_grid_renaming&) = delete;

  std::uint32_t name_space() const noexcept { return k_ * (k_ + 1) / 2; }
  std::uint32_t max_participants() const noexcept { return k_; }

  struct acquired {
    std::uint32_t name;
    std::uint32_t row;
    std::uint32_t col;
    std::uint32_t moves;  // grid steps taken (adaptivity observability)
  };

  /// `id` must be distinct among concurrent participants (e.g. a pointer
  /// value or OS thread id). Wait-free: at most k-1 splitter visits.
  acquired acquire(std::uint64_t id) noexcept {
    std::uint32_t r = 0, c = 0, moves = 0;
    for (;;) {
      assert(r + c < k_ && "more than k participants in a k-grid");
      switch (at(r, c).visit(id)) {
        case splitter::outcome::stop:
          return {name_of(r, c), r, c, moves};
        case splitter::outcome::right:
          ++c;
          break;
        case splitter::outcome::down:
          ++r;
          break;
      }
      ++moves;
      if (r + c >= k_) {
        // Unreachable if the precondition holds (splitter counting
        // argument); fail closed rather than hand out a colliding name.
        assert(false && "splitter grid overflow");
        return {name_space() - 1, r, c, moves};
      }
    }
  }

 private:
  splitter& at(std::uint32_t r, std::uint32_t c) noexcept {
    return grid_[static_cast<std::size_t>(r) * k_ + c].get();
  }

  /// Dense index of the triangular grid position (r, c), r + c < k:
  /// diagonal d = r + c holds d+1 cells; cells of earlier diagonals come
  /// first.
  std::uint32_t name_of(std::uint32_t r, std::uint32_t c) const noexcept {
    const std::uint32_t d = r + c;
    return d * (d + 1) / 2 + r;
  }

  std::uint32_t k_;
  std::vector<padded<splitter>> grid_;
};

}  // namespace kpq
