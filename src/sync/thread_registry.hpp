// Dense thread-id assignment (long-lived renaming).
//
// The KP queue (paper §3.2) assumes every thread owns a unique id in
// [0, NUM_THRDS). Section 3.3 relaxes this: "threads can get and release
// (virtual) IDs from a small name space through one of the known long-lived
// wait-free renaming algorithms". This registry is that substrate: a
// fixed-size claim table where a thread acquires the lowest free slot with a
// single CAS per probe (lock-free, at most `capacity` probes — bounded, hence
// wait-free for a bounded namespace) and releases it when the thread exits.
//
// Ids are process-wide. A thread's id is cached in a thread_local RAII
// holder, so the common case is one relaxed load.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/cacheline.hpp"

namespace kpq {

/// Upper bound on simultaneously registered threads. Queues may be built for
/// fewer threads; ids handed out are dense from 0 so a queue sized for k
/// threads works as long as no more than k threads touch it concurrently.
inline constexpr std::uint32_t max_registered_threads = 256;

class thread_registry {
 public:
  static thread_registry& instance() noexcept;

  /// Id of the calling thread, acquiring one on first use. Terminates the
  /// process (via assert-like fatal error) if the namespace is exhausted —
  /// a misconfiguration, not a runtime condition to handle.
  static std::uint32_t current_tid() noexcept;

  /// Number of slots ever claimed simultaneously is not tracked; this is the
  /// high-water mark of the dense namespace: one past the largest id in use.
  std::uint32_t high_water() const noexcept;

  /// True if `tid` is currently claimed by a live thread.
  bool is_claimed(std::uint32_t tid) const noexcept;

  /// Testing hook: acquire/release explicitly (the thread_local path uses
  /// these internally).
  std::uint32_t acquire() noexcept;
  void release(std::uint32_t tid) noexcept;

 private:
  thread_registry() = default;
  padded<std::atomic<bool>> claimed_[max_registered_threads]{};
};

/// Convenience free function: dense id of this thread.
inline std::uint32_t this_thread_id() noexcept {
  return thread_registry::current_tid();
}

}  // namespace kpq
