// Helping policies (paper §3.2 help(), and §3.3 optimization 1).
//
//   * help_all — the paper's base help() (lines 36–47): on every operation,
//     traverse the whole `state` array and help every thread whose pending
//     operation has phase <= ours. O(n) per operation.
//
//   * help_one — optimization 1: help at most one *other* thread per
//     operation, choosing candidates in cyclic order over the state array,
//     then complete our own operation. Wait-freedom is preserved because a
//     thread can pass over a given stalled operation at most n-1 times
//     before its cyclic cursor reaches it (paper §3.3). This optimization
//     was the dominant win in the paper's Figure 9: it prevents stampedes
//     where every thread piles onto the same slow peer.
//
// Both policies rely on queue::help_if_needed(i, phase, guard) which applies
// the pending-and-phase<= filter (paper line 39) before dispatching to
// help_enq/help_deq.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/trace_ring.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

/// Trace hook shared by the policies: one help_scan event per run(), with
/// the number of state slots this pass examined (the policy's per-op scan
/// cost — n for help_all, K+1 for help_chunk, 2 for help_one/random).
/// Compiles out with the queue's recorder policy; queues without a
/// trace_type (the policies are generic) are simply not traced.
template <typename Queue>
inline void trace_help_scan(std::uint32_t my_tid, std::uint32_t examined) {
  if constexpr (requires { typename Queue::trace_type; }) {
    if constexpr (Queue::trace_type::enabled) {
      Queue::trace_type::record(my_tid, obs::trace_kind::help_scan, 0,
                                examined);
    }
  }
}

struct help_all {
  explicit help_all(std::uint32_t /*max_threads*/) {}

  template <typename Queue, typename Guard>
  void run(Queue& q, std::uint32_t my_tid, std::int64_t phase, Guard& g) {
    // The loop includes our own entry (paper line 37).
    trace_help_scan<Queue>(my_tid, q.max_threads());
    for (std::uint32_t i = 0; i < q.max_threads(); ++i) {
      q.help_if_needed(i, phase, g, my_tid);
    }
  }
  static constexpr const char* name = "help_all";
};

/// §3.3 generalization: "a thread may traverse only a chunk of the state
/// array in a cyclic manner in the help() method ... indexes 0 through k-1
/// mod n (in addition to its own index), in the second invocation indexes
/// k mod n through 2k-1 mod n, and so on." help_one is the K=1 special
/// case. Wait-freedom is preserved: a stalled operation is reached after at
/// most ceil(n/K) invocations of each active peer.
template <std::uint32_t K>
struct help_chunk {
  static_assert(K >= 1);
  explicit help_chunk(std::uint32_t max_threads) : cursor_(max_threads) {}

  template <typename Queue, typename Guard>
  void run(Queue& q, std::uint32_t my_tid, std::int64_t phase, Guard& g) {
    const std::uint32_t n = q.max_threads();
    std::uint32_t& k = cursor_[my_tid].value;  // owner-only cursor
    trace_help_scan<Queue>(my_tid, K + 1);
    for (std::uint32_t step = 0; step < K; ++step) {
      const std::uint32_t candidate = k;
      k = (k + 1 == n) ? 0 : k + 1;
      if (candidate != my_tid) q.help_if_needed(candidate, phase, g, my_tid);
    }
    q.help_if_needed(my_tid, phase, g, my_tid);
  }
  static constexpr const char* name = "help_chunk";

  std::vector<padded<std::uint32_t>> cursor_;
};

/// Runtime-adaptive chunk width: help_chunk with the chunk size K turned
/// into an atomic knob a tuner can adjust between [1, Ceiling] while
/// operations are in flight. Each run() reads the knob ONCE and clamps it
/// against the compile-time Ceiling, so the per-operation helping cost is
/// always <= Ceiling+1 slots and wait-freedom keeps its deterministic bound
/// (a stalled operation is reached after at most ceil(n/1) = n invocations
/// of each peer even at the minimum width). This mirrors the runtime
/// patience knob on wf_queue_fps — both adapt WITHIN a compile-time box,
/// never the box itself.
template <std::uint32_t Ceiling = 8>
struct help_chunk_rt {
  static_assert(Ceiling >= 1);
  static constexpr std::uint32_t chunk_ceiling = Ceiling;

  explicit help_chunk_rt(std::uint32_t max_threads) : cursor_(max_threads) {}

  /// Tuner-facing knob; clamped to [1, Ceiling]. Relaxed is enough: the
  /// value only sizes the next helping pass, it orders nothing.
  void set_chunk(std::uint32_t k) noexcept {
    k = k < 1 ? 1 : (k > Ceiling ? Ceiling : k);
    // kpq-order: relaxed pairs-with none (tuning knob; any recent value is
    // valid — the reader re-clamps before use, no data is published through it)
    chunk_.value.store(k, std::memory_order_relaxed);
  }
  std::uint32_t chunk() const noexcept {
    // kpq-order: relaxed pairs-with none (tuning knob read; may lag)
    return chunk_.value.load(std::memory_order_relaxed);
  }

  template <typename Queue, typename Guard>
  void run(Queue& q, std::uint32_t my_tid, std::int64_t phase, Guard& g) {
    const std::uint32_t n = q.max_threads();
    // kpq-order: relaxed pairs-with none (tuning knob; sizes this helping
    // pass only — wait-freedom holds for any value in [1, Ceiling])
    const std::uint32_t raw = chunk_.value.load(std::memory_order_relaxed);
    const std::uint32_t width = raw > Ceiling ? Ceiling : (raw < 1 ? 1 : raw);
    std::uint32_t& k = cursor_[my_tid].value;  // owner-only cursor
    trace_help_scan<Queue>(my_tid, width + 1);
    for (std::uint32_t step = 0; step < width; ++step) {
      const std::uint32_t candidate = k;
      k = (k + 1 == n) ? 0 : k + 1;
      if (candidate != my_tid) q.help_if_needed(candidate, phase, g, my_tid);
    }
    q.help_if_needed(my_tid, phase, g, my_tid);
  }
  static constexpr const char* name = "help_chunk_rt";

  std::vector<padded<std::uint32_t>> cursor_;
  padded<std::atomic<std::uint32_t>> chunk_{1u};
};

/// §3.3 alternative: "each thread might traverse a random chunk of the
/// array, achieving probabilistic wait-freedom." One random candidate per
/// operation; a stalled operation is helped with probability 1 but without
/// a deterministic step bound — hence *probabilistic* wait-freedom only.
struct help_random {
  explicit help_random(std::uint32_t max_threads) : rng_state_(max_threads) {
    for (std::uint32_t i = 0; i < max_threads; ++i) {
      rng_state_[i].value = 0x9E3779B97F4A7C15ULL * (i + 1) + 1;
    }
  }

  template <typename Queue, typename Guard>
  void run(Queue& q, std::uint32_t my_tid, std::int64_t phase, Guard& g) {
    std::uint64_t& s = rng_state_[my_tid].value;  // owner-only xorshift64
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const auto candidate =
        static_cast<std::uint32_t>(s % q.max_threads());
    trace_help_scan<Queue>(my_tid, 2);
    if (candidate != my_tid) q.help_if_needed(candidate, phase, g, my_tid);
    q.help_if_needed(my_tid, phase, g, my_tid);
  }
  static constexpr const char* name = "help_random";

  std::vector<padded<std::uint64_t>> rng_state_;
};

struct help_one {
  explicit help_one(std::uint32_t max_threads) : cursor_(max_threads) {}

  template <typename Queue, typename Guard>
  void run(Queue& q, std::uint32_t my_tid, std::int64_t phase, Guard& g) {
    const std::uint32_t n = q.max_threads();
    std::uint32_t& k = cursor_[my_tid].value;  // owner-only cursor
    trace_help_scan<Queue>(my_tid, 2);
    const std::uint32_t candidate = k;
    k = (k + 1 == n) ? 0 : k + 1;
    if (candidate != my_tid) q.help_if_needed(candidate, phase, g, my_tid);
    // Our own operation must always complete before run() returns.
    q.help_if_needed(my_tid, phase, g, my_tid);
  }
  static constexpr const char* name = "help_one";

  std::vector<padded<std::uint32_t>> cursor_;
};

}  // namespace kpq
