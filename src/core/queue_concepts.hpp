// C++20 concept pinning the MPMC queue interface every queue in this
// library satisfies. Generic code (the blocking adapter, the bench drivers,
// the examples) can constrain on this instead of duck typing.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>

namespace kpq {

template <typename Q>
concept mpmc_queue =
    requires(Q q, typename Q::value_type v, std::uint32_t tid) {
      typename Q::value_type;
      { q.enqueue(std::move(v), tid) };
      { q.dequeue(tid) } -> std::same_as<std::optional<typename Q::value_type>>;
    };

/// Queues that also expose the implicit-tid convenience overloads.
template <typename Q>
concept mpmc_queue_autotid =
    mpmc_queue<Q> && requires(Q q, typename Q::value_type v) {
      { q.enqueue(std::move(v)) };
      { q.dequeue() } -> std::same_as<std::optional<typename Q::value_type>>;
    };

}  // namespace kpq
