// The Kogan–Petrank wait-free MPMC FIFO queue (PPoPP 2011), ported from the
// paper's Java listing (Figures 1, 2, 4, 6) to unmanaged C++20.
//
// Scheme (paper §3.1): every operation picks a monotonically growing *phase*,
// publishes an operation descriptor in the per-thread `state` array, and then
// helps every pending operation whose phase is <= its own. Each operation is
// split into three atomic steps so helpers can share the work without
// applying anything twice:
//
//   enqueue: (1) append node at list end      [linearization, line 74]
//            (2) flip owner's pending->false  [line 93]
//            (3) swing tail                   [line 94]
//   dequeue: (0) point owner's state at the current sentinel   [line 131]
//            (1) write owner's tid into sentinel's deqTid      [lin., 135]
//            (2) flip owner's pending->false                   [line 149]
//            (3) swing head                                    [line 150]
//
// C++ port (paper §3.4 prescribes exactly this):
//   * Hazard pointers protect every dereference and, crucially, every value
//     a CAS compares against or installs: an expected/desired pointer pinned
//     by the CASing thread cannot be freed, hence cannot be reallocated,
//     hence the CAS cannot succeed spuriously (no ABA).
//   * A completed dequeue's payload is copied into the descriptor
//     (op_desc::value) by help_finish_deq while the successor node is still
//     pinned, so deq() never touches a node that may have been retired.
//   * Descriptors are immutable after publication and flow through the same
//     reclamation domain as nodes. Replacing a descriptor in `state`
//     (exchange by the owner, CAS by helpers) retires the old one exactly
//     once, on the replacing thread. Descriptors whose installing CAS failed
//     were never published and are recycled through a per-thread cache
//     (paper §3.3, enhancement 1).
//   * The owner installs its new descriptor with an atomic exchange, not a
//     plain store, because helpers may legitimately replace a *completed*
//     descriptor with an equivalent copy (the paper notes the finish CASes
//     "may succeed more than once"); exchange makes the retire exactly-once.
//
// Progress: enqueue/dequeue complete in O(n) steps plus helping (bounded by
// the doorway argument, paper §5.3) — wait-free when the reclaimer is
// wait-free (hazard pointers are; epoch reclamation bounds only memory, not
// steps, see reclaim/epoch.hpp).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/desc_pool.hpp"
#include "core/help_policy.hpp"
#include "core/op_desc.hpp"
#include "core/phase_policy.hpp"
#include "harness/mem_tracker.hpp"
#include "obs/residency.hpp"
#include "obs/trace_ring.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "reclaim/reclaimer_concepts.hpp"
#include "storage/heap_node_storage.hpp"
#include "storage/storage_concepts.hpp"
#include "sync/cacheline.hpp"
#include "sync/thread_registry.hpp"

namespace kpq {

namespace testing {
/// White-box access for the deterministic scenario tests that replay the
/// paper's Figures 3 and 5 step by step (defined in the test target only).
struct whitebox;
}  // namespace testing

/// Default (no-op) test hooks; see wf_options::hooks.
struct no_hooks {
  /// Called right after an operation descriptor is published in `state` and
  /// before helping starts — the exact point where a thread can stall with
  /// a pending operation that peers must complete for it.
  static void after_publish(std::uint32_t /*tid*/, bool /*is_enqueue*/) {}
};

/// Compile-time switches for the paper's §3.3 enhancements.
struct wf_options {
  /// Test instrumentation (zero-cost by default). The progress tests swap
  /// in hooks that block a chosen thread mid-operation to prove helping.
  using hooks = no_hooks;
  /// Event-trace recorder policy (obs/trace_ring.hpp). `obs::default_trace`
  /// is `no_trace` unless the build defines KPQ_TRACE, so every record site
  /// below compiles out via `if constexpr` — identical codegen to a
  /// hook-free build. The fig_obs_overhead bench overrides this per-type
  /// (wf_options_traced) to compare traced vs untraced in one binary.
  using trace = obs::default_trace;
  /// Item-residency policy (obs/residency.hpp). With the default
  /// `no_residency` the node/descriptor stamp field does not exist and every
  /// residency hook folds away — the node keeps the paper's 24-byte shape.
  /// `wf_options_residency` flips it to tick_residency: the enqueuer stamps
  /// the node pre-publication and the completing dequeue records
  /// now - stamp into a per-thread log2 histogram (residency_histogram()).
  using residency = obs::no_residency;
  /// Per-thread operation counters (wf_counters); zero-cost when off.
  static constexpr bool collect_stats = false;
  /// Enhancement 1: cache descriptors whose installing CAS failed.
  static constexpr bool descriptor_cache = true;
  /// Enhancement 2: replace the descriptor with a node-free dummy when an
  /// operation returns, so a finished descriptor does not keep naming a
  /// node. (In Java this unpins memory from the GC; here it is provided for
  /// fidelity/ablation — C++ descriptors do not own their node.)
  static constexpr bool scrub_on_exit = false;
  /// Enhancement 3: "check whether the pending flag is already switched off
  /// before applying CAS in Lines 93 or 149" — skips the descriptor
  /// allocation and the CAS when another helper already completed step (2).
  static constexpr bool precheck_cas = false;
};

struct wf_options_no_cache : wf_options {
  static constexpr bool descriptor_cache = false;
};
struct wf_options_scrub : wf_options {
  static constexpr bool scrub_on_exit = true;
};
struct wf_options_precheck : wf_options {
  static constexpr bool precheck_cas = true;
};
struct wf_options_stats : wf_options {
  static constexpr bool collect_stats = true;
};
/// Tracing forced on regardless of KPQ_TRACE (for overhead comparisons).
struct wf_options_traced : wf_options {
  using trace = obs::ring_trace;
};
/// Item-residency tracking on (stamped nodes/descriptors + histograms).
struct wf_options_residency : wf_options {
  using residency = obs::tick_residency;
};

/// Per-thread operation counters (collected when Options::collect_stats).
/// Owner-thread-only updates: no atomics needed, padded against false
/// sharing. The interesting derived quantity is the *helping rate*: how many
/// operations were completed by a thread other than their owner — the
/// dynamic behind the paper's Figure 9 discussion of helping stampedes.
struct wf_counters {
  std::uint64_t enq_ops = 0;
  std::uint64_t deq_ops = 0;
  std::uint64_t empty_deqs = 0;
  /// Completion-step CASes this thread won for ANOTHER thread's operation.
  std::uint64_t helped_enq_completions = 0;
  std::uint64_t helped_deq_completions = 0;
  /// Link/claim CASes lost to a concurrent helper (wasted attempts).
  std::uint64_t link_cas_failures = 0;
  /// Descriptor installs that lost their CAS (recycled via the pool).
  std::uint64_t desc_cas_failures = 0;

  wf_counters& operator+=(const wf_counters& o) {
    enq_ops += o.enq_ops;
    deq_ops += o.deq_ops;
    empty_deqs += o.empty_deqs;
    helped_enq_completions += o.helped_enq_completions;
    helped_deq_completions += o.helped_deq_completions;
    link_cas_failures += o.link_cas_failures;
    desc_cas_failures += o.desc_cas_failures;
    return *this;
  }
};

template <typename T, typename HelpPolicy = help_all,
          typename PhasePolicy = scan_max_phase, typename Reclaimer = hp_domain,
          typename Options = wf_options,
          typename Storage = heap_node_storage<
              T, wf_node<T, obs::residency_policy_t<Options>::enabled>>>
class wf_queue : public mem_tracked {
  static_assert(std::is_default_constructible_v<T>,
                "op_desc carries a T payload slot");
  static_assert(std::is_copy_constructible_v<T>,
                "helpers copy the dequeued payload concurrently");
  static_assert(node_storage_for<Storage, Reclaimer>,
                "Storage must satisfy the node-storage contract "
                "(storage/storage_concepts.hpp)");

 public:
  /// Residency policy from the Options (structural: absent member means
  /// no_residency, so pre-existing options structs keep compiling).
  using residency_type = obs::residency_policy_t<Options>;
  static constexpr bool track_residency = residency_type::enabled;

  using value_type = T;
  using node_type = wf_node<T, track_residency>;
  using desc_type = op_desc<T, track_residency>;
  using reclaimer_type = Reclaimer;
  using storage_type = Storage;
  using help_policy_type = HelpPolicy;
  static_assert(std::is_same_v<typename Storage::node_type, node_type>,
                "Storage must be instantiated with the queue's node type — "
                "when residency is enabled the node carries the stamp, e.g. "
                "heap_node_storage<T, wf_node<T, true>>");
  /// The recorder policy, re-exported so the help policies (templated on
  /// the queue, not the options) can hit the same sink.
  using trace_type = typename Options::trace;

  /// Hazard slots used per thread: head/first, tail/last, next, descriptor,
  /// and the node named by a pending descriptor.
  static constexpr std::uint32_t hp_slots = 5;
  enum slot : std::uint32_t {
    s_first = 0,
    s_last = 1,
    s_next = 2,
    s_desc = 3,
    s_node = 4
  };

  /// `max_threads` bounds the number of distinct thread ids (dense, from
  /// kpq::this_thread_id() or passed explicitly) that may ever operate on
  /// this queue (paper: NUM_THRDS). Pass `mc` to account every node and
  /// descriptor allocation from the first one (the Figure 10 bench does).
  /// Attaching later via set_memory_counters() is also exact: construction-
  /// time allocations accumulate into a baseline that the attach replays
  /// (mem_tracker.hpp).
  explicit wf_queue(std::uint32_t max_threads, mem_counters* mc = nullptr)
      : n_(max_threads),
        storage_(max_threads, this),
        reclaim_(max_threads, hp_slots),
        pool_(max_threads, Options::descriptor_cache, this),
        help_(max_threads),
        phase_(max_threads),
        state_(max_threads),
        stats_(Options::collect_stats ? max_threads : 0),
        resi_(track_residency ? max_threads : 0) {
    set_memory_counters(mc);
    node_type* sentinel = alloc_node(0, T{}, no_tid);  // paper line 28
    // kpq-order: relaxed pairs-with the ctor-exit seq_cst fence below —
    // no thread can access the queue before construction returns.
    head_.store(sentinel, std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with the ctor-exit seq_cst fence below
    tail_.store(sentinel, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n_; ++i) {  // paper lines 32-34
      // kpq-order: relaxed pairs-with the ctor-exit seq_cst fence below
      state_[i]->store(pool_.make(i, no_phase, false, true, nullptr),
                       std::memory_order_relaxed);
    }
    seal_baseline();
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  wf_queue(const wf_queue&) = delete;
  wf_queue& operator=(const wf_queue&) = delete;

  /// Requires quiescence (no operation in flight), like all concurrent
  /// container destructors.
  ~wf_queue() {
    // kpq-order: relaxed pairs-with none (destructor requires quiescence;
    // callers synchronize via thread join before destroying the queue)
    node_type* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      // kpq-hazard: quiescent — no concurrent retirement during destruction
      // kpq-order: relaxed pairs-with none (quiescent, see above)
      node_type* next = n->next.load(std::memory_order_relaxed);
      storage_.release(n);
      n = next;
    }
    for (std::uint32_t i = 0; i < n_; ++i) {
      // kpq-order: relaxed pairs-with none (quiescent, see above)
      desc_type* d = state_[i]->load(std::memory_order_relaxed);
      assert(!d->pending && "destroying a queue with an operation in flight");
      free_desc(d);
    }
    // reclaim_ and pool_ drain their retired/cached objects on destruction;
    // reclaim_ is declared after storage_ so segment reclamation callbacks
    // still have a live storage to recycle into (storage_concepts.hpp).
  }

  // ---------------------------------------------------------------- enqueue

  /// paper lines 61-66
  void enqueue(T value) { enqueue(std::move(value), this_thread_id()); }

  void enqueue(T value, std::uint32_t tid) {
    assert(tid < n_);
    auto g = reclaim_.enter(tid);
    const std::int64_t phase = phase_.next_phase(*this, g, tid);  // line 62
    node_type* node =
        alloc_node(tid, std::move(value), static_cast<std::int32_t>(tid));
    // Residency stamp: written once pre-publication, like value/enq_tid.
    if constexpr (track_residency) node->enq_ts = residency_type::now();
    publish(tid, pool_.make(tid, phase, true, true, node));  // line 63
    if constexpr (Options::collect_stats) ++stats_[tid]->enq_ops;
    if constexpr (trace_type::enabled) {
      trace_type::record(tid, obs::trace_kind::enq_publish, phase, 0);
    }
    Options::hooks::after_publish(tid, /*is_enqueue=*/true);
    help_.run(*this, tid, phase, g);                         // line 64
    help_finish_enq(tid, g);                                 // line 65
    if constexpr (trace_type::enabled) {
      trace_type::record(tid, obs::trace_kind::enq_complete, phase, 0);
    }
    if constexpr (Options::scrub_on_exit) scrub(tid, g, /*enq=*/true);
  }

  // ---------------------------------------------------------------- dequeue

  /// paper lines 98-108; empty queue yields nullopt instead of an exception.
  std::optional<T> dequeue() { return dequeue(this_thread_id()); }

  std::optional<T> dequeue(std::uint32_t tid) {
    assert(tid < n_);
    auto g = reclaim_.enter(tid);
    const std::int64_t phase = phase_.next_phase(*this, g, tid);   // line 99
    publish(tid, pool_.make(tid, phase, true, false, nullptr));    // line 100
    if constexpr (Options::collect_stats) ++stats_[tid]->deq_ops;
    if constexpr (trace_type::enabled) {
      trace_type::record(tid, obs::trace_kind::deq_publish, phase, 0);
    }
    Options::hooks::after_publish(tid, /*is_enqueue=*/false);
    help_.run(*this, tid, phase, g);                               // line 101
    help_finish_deq(tid, g);                                       // line 102
    // Our completed descriptor may still be replaced by an equivalent copy
    // by a helper finishing stage 2/3 late, so protect before reading.
    desc_type* d = g.protect(s_desc, state_[tid].get());           // line 103
    std::optional<T> result;
    if (d->node != nullptr) {
      result = d->value;  // §3.4: payload lives in d
      record_residency(tid, *d);
    }
    if constexpr (Options::collect_stats) {
      if (!result.has_value()) ++stats_[tid]->empty_deqs;
    }
    if constexpr (trace_type::enabled) {
      trace_type::record(tid, obs::trace_kind::deq_complete, phase,
                         result.has_value() ? 1 : 0);
    }
    g.clear(s_desc);
    if constexpr (Options::scrub_on_exit) scrub(tid, g, /*enq=*/false);
    return result;  // d->node == nullptr: linearized on an empty queue
  }

  // ---------------------------------------------------------------- batched
  // Native hooks for the scale layer (scale/batch.hpp dispatches to these).
  //
  // A batch amortizes the two per-operation costs that do not depend on the
  // operation itself: the reclamation-guard entry and the phase draw. One
  // phase is registered for the WHOLE batch and reused by every item:
  //
  //   * Legal: helping uses `phase <= mine`, so equal phases are already
  //     tolerated (cas_phase takes duplicate phases by design, paper
  //     footnote 3), and descriptor identity — never the phase — is what
  //     the completion CASes compare. A batch item publishing an "old"
  //     phase can only make itself MORE helpable.
  //   * Wait-free: the doorway bound (paper §5.3) counts operations with
  //     phase <= p that can linearize before an operation with phase p; a
  //     batch adds at most its own length to that count, so the step bound
  //     grows by the maximum batch size — still a constant.
  //
  // Items become visible one at a time, exactly as the per-item loop's
  // would (helpers can complete any prefix for a stalled owner); batching
  // changes cost, never semantics. With scan_max_phase the saving is an
  // O(max_threads) state scan per item; with fetch_add_phase it is the
  // shared-counter RMW — the cross-thread rendezvous either way.

  /// Enqueue [first, last) under one guard and one phase.
  template <typename It>
  void enqueue_bulk(It first, It last, std::uint32_t tid) {
    assert(tid < n_);
    if (first == last) return;
    auto g = reclaim_.enter(tid);
    const std::int64_t phase = phase_.next_phase(*this, g, tid);
    for (; first != last; ++first) {
      node_type* node = alloc_node(tid, *first, static_cast<std::int32_t>(tid));
      if constexpr (track_residency) node->enq_ts = residency_type::now();
      publish(tid, pool_.make(tid, phase, true, true, node));
      if constexpr (Options::collect_stats) ++stats_[tid]->enq_ops;
      if constexpr (trace_type::enabled) {
        trace_type::record(tid, obs::trace_kind::enq_publish, phase, 0);
      }
      Options::hooks::after_publish(tid, /*is_enqueue=*/true);
      help_.run(*this, tid, phase, g);
      help_finish_enq(tid, g);
      if constexpr (trace_type::enabled) {
        trace_type::record(tid, obs::trace_kind::enq_complete, phase, 0);
      }
    }
    if constexpr (Options::scrub_on_exit) scrub(tid, g, /*enq=*/true);
  }

  /// Pop up to `max` items (appended to `out`) under one guard and one
  /// phase; stops at the first empty-linearized dequeue. Returns the count.
  std::size_t dequeue_bulk(std::vector<T>& out, std::size_t max,
                           std::uint32_t tid) {
    assert(tid < n_);
    if (max == 0) return 0;
    auto g = reclaim_.enter(tid);
    const std::int64_t phase = phase_.next_phase(*this, g, tid);
    std::size_t got = 0;
    while (got < max) {
      publish(tid, pool_.make(tid, phase, true, false, nullptr));
      if constexpr (Options::collect_stats) ++stats_[tid]->deq_ops;
      if constexpr (trace_type::enabled) {
        trace_type::record(tid, obs::trace_kind::deq_publish, phase, 0);
      }
      Options::hooks::after_publish(tid, /*is_enqueue=*/false);
      help_.run(*this, tid, phase, g);
      help_finish_deq(tid, g);
      desc_type* d = g.protect(s_desc, state_[tid].get());
      const bool hit = d->node != nullptr;
      if (hit) {
        out.push_back(d->value);
        record_residency(tid, *d);
      }
      if constexpr (trace_type::enabled) {
        trace_type::record(tid, obs::trace_kind::deq_complete, phase,
                           hit ? 1 : 0);
      }
      g.clear(s_desc);
      if (!hit) {
        if constexpr (Options::collect_stats) ++stats_[tid]->empty_deqs;
        break;
      }
      ++got;
    }
    if constexpr (Options::scrub_on_exit) scrub(tid, g, /*enq=*/false);
    return got;
  }

  // ----------------------------------------------------------- observability

  std::uint32_t max_threads() const noexcept { return n_; }

  /// The helping-policy instance, exposed so runtime-adaptive policies
  /// (help_chunk_rt) can be tuned in place: a controller calls
  /// `q.help_policy().set_chunk(k)` between sampling ticks. For the static
  /// policies this is a harmless read-only handle.
  HelpPolicy& help_policy() noexcept { return help_; }
  const HelpPolicy& help_policy() const noexcept { return help_; }

  /// True if the queue looked empty at some point during the call.
  bool empty_hint(std::uint32_t tid) {
    auto g = reclaim_.enter(tid);
    node_type* first = g.protect(s_first, head_);
    node_type* last = tail_.load(std::memory_order_seq_cst);
    node_type* next = g.protect(s_next, first->next);
    return first == last && next == nullptr;
  }
  bool empty_hint() { return empty_hint(this_thread_id()); }

  reclaimer_type& reclaimer() noexcept { return reclaim_; }
  storage_type& storage() noexcept { return storage_; }
  const storage_type& storage() const noexcept { return storage_; }
  const desc_pool<T, track_residency>& descriptor_pool() const noexcept {
    return pool_;
  }

  /// Merged item-residency histogram in TICKS (obs/calibrate.hpp converts to
  /// ns). Meaningful only when `track_residency`; scrape-safe while workers
  /// run — buckets are relaxed atomics, the snapshot is some interleaving.
  log2_histogram residency_histogram() const { return resi_.merged(); }
  std::uint64_t residency_samples() const noexcept { return resi_.samples(); }
  void reset_residency() noexcept { resi_.reset(); }

  /// Per-thread counters (meaningful only with Options::collect_stats;
  /// read under quiescence or accept torn snapshots).
  const wf_counters& counters(std::uint32_t tid) const {
    return stats_[tid].get();
  }
  wf_counters aggregate_counters() const {
    wf_counters total;
    for (const auto& s : stats_) total += s.get();
    return total;
  }

  /// Test-only, requires quiescence: number of elements by list walk.
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    // kpq-hazard: quiescent by contract (test-only helper) — no node can
    // be retired while we walk.
    // kpq-order: acquire pairs-with the seq_cst link/swing CASes of the
    // last completed operations (observe their node writes at quiescence)
    const node_type* p = head_.load(std::memory_order_acquire);
    // kpq-hazard: quiescent (see above)
    // kpq-order: acquire pairs-with the linking CAS (line 74) of each
    // enqueue whose node this walk visits
    for (p = p->next.load(std::memory_order_acquire); p != nullptr;
         // kpq-hazard: quiescent (see above)
         // kpq-order: acquire pairs-with the linking CAS (line 74)
         p = p->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

  // ------------------------------------------------- policy/helping interface
  // Public because the help/phase policies drive them; not part of the user
  // API.

  /// paper lines 48-57
  template <typename Guard>
  std::int64_t max_phase(Guard& g) {
    std::int64_t m = no_phase;
    for (std::uint32_t i = 0; i < n_; ++i) {
      desc_type* d = g.protect(s_desc, state_[i].get());
      if (d->phase > m) m = d->phase;
    }
    return m;
  }

  /// paper lines 38-44: one iteration of the help() loop body. `my` is the
  /// helping thread's own id (reclamation bookkeeping).
  template <typename Guard>
  void help_if_needed(std::uint32_t i, std::int64_t phase, Guard& g,
                      std::uint32_t my) {
    desc_type* d = g.protect(s_desc, state_[i].get());
    if (d->pending && d->phase <= phase) {  // line 39
      // A helping episode: this thread works on thread i's operation. Own
      // operations (i == my) are not episodes — that is just completing.
      // The victim's phase is captured while `d` is still hazard-protected:
      // help_enq/help_deq reuse the s_desc slot, and completion retires the
      // descriptor, so `d` must not be dereferenced after they return.
      const bool traced_episode = trace_type::enabled && i != my;
      const std::int64_t victim_phase = traced_episode ? d->phase : 0;
      if (traced_episode) {
        trace_type::record(my, obs::trace_kind::help_start, victim_phase, i);
      }
      if (d->enqueue) {
        help_enq(i, phase, g, my);  // line 41
      } else {
        help_deq(i, phase, g, my);  // line 43
      }
      if (traced_episode) {
        trace_type::record(my, obs::trace_kind::help_finish, victim_phase, i);
      }
    }
  }

 private:
  friend struct kpq::testing::whitebox;

  using state_slot = std::atomic<desc_type*>;

  // ------------------------------------------------------------- allocation
  // Nodes live wherever the Storage policy puts them (storage/); descriptors
  // stay heap objects recycled through desc_pool — they are small, reused
  // aggressively, and their lifetime is tied to `state`, not the list.

  node_type* alloc_node(std::uint32_t tid, T v, std::int32_t etid) {
    return storage_.alloc(tid, std::move(v), etid, reclaim_);
  }
  void free_desc(desc_type* d) noexcept {
    account_free(sizeof(desc_type));
    delete d;
  }

  static void retire_desc_fn(void* ctx, void* p) {
    if (ctx != nullptr) {
      static_cast<mem_counters*>(ctx)->on_free(sizeof(desc_type));
    }
    delete static_cast<desc_type*>(p);
  }

  void retire_node(std::uint32_t tid, node_type* n) {
    if constexpr (trace_type::enabled) {
      trace_type::record(tid, obs::trace_kind::retire, 0, 0);
    }
    storage_.retire(tid, n, reclaim_);
  }
  void retire_desc(std::uint32_t tid, desc_type* d) {
    reclaim_.retire(tid, d, &retire_desc_fn, memory_counters());
  }

  /// Owner installs a fresh descriptor; the displaced one is retired here,
  /// exactly once (see file comment on why exchange, not store).
  void publish(std::uint32_t tid, desc_type* d) {
    desc_type* old = state_[tid]->exchange(d, std::memory_order_seq_cst);
    retire_desc(tid, old);
  }

  /// Try to swap state_[tid]: curr -> repl. Retires curr on success,
  /// recycles repl (never published) on failure. `curr` must be pinned by
  /// the caller (slot s_desc) — that pin is what makes the CAS ABA-free.
  bool swap_state(std::uint32_t tid, std::uint32_t my_tid, desc_type* curr,
                  desc_type* repl) {
    desc_type* expected = curr;
    if (state_[tid]->compare_exchange_strong(expected, repl,
                                             std::memory_order_seq_cst)) {
      retire_desc(my_tid, curr);
      return true;
    }
    if constexpr (Options::collect_stats) ++stats_[my_tid]->desc_cas_failures;
    pool_.recycle(my_tid, repl);
    return false;
  }

  // ----------------------------------------------------------------- helping

  /// paper lines 58-60 (descriptor must be re-read each call; the returned
  /// snapshot is consistent because descriptors are immutable).
  template <typename Guard>
  bool is_still_pending(std::uint32_t tid, std::int64_t ph, Guard& g) {
    desc_type* d = g.protect(s_desc, state_[tid].get());
    return d->pending && d->phase <= ph;
  }

  /// paper lines 67-84. `tid` owns the pending enqueue; the caller's thread
  /// id only matters for reclamation bookkeeping and is carried by `g`'s
  /// slots plus `my` below.
  template <typename Guard>
  void help_enq(std::uint32_t tid, std::int64_t phase, Guard& g,
                std::uint32_t my) {
    while (is_still_pending(tid, phase, g)) {                  // line 68
      node_type* last = g.protect(s_last, tail_);              // line 69
      node_type* next = g.protect(s_next, last->next);         // line 70
      if (last != tail_.load(std::memory_order_seq_cst)) {     // line 71
        continue;
      }
      if (next == nullptr) {  // line 72: enqueue can be applied
        // line 73: the operation must still be pending, and we must fetch
        // the node from the *current* descriptor...
        desc_type* d = g.protect(s_desc, state_[tid].get());
        if (!(d->pending && d->phase <= phase)) continue;
        node_type* node = d->node;
        // ...and pin that node across the CAS: a pending descriptor's node
        // is not yet retired (it cannot be dequeued before the operation's
        // pending flag clears), and the pin keeps it so.
        g.protect_raw(s_node, node);
        if (state_[tid]->load(std::memory_order_seq_cst) != d) continue;
        node_type* expected = nullptr;
        if (last->next.compare_exchange_strong(
                expected, node, std::memory_order_seq_cst)) {  // line 74
          g.clear(s_node);
          help_finish_enq(my, g);  // line 75
          return;                  // line 76
        }
        if constexpr (Options::collect_stats) ++stats_[my]->link_cas_failures;
        g.clear(s_node);
      } else {                          // line 79: an enqueue is in progress
        help_finish_enq(my, g);           // line 80: help it first, then retry
      }
    }
  }

  /// paper lines 85-97 (steps 2 and 3 of the enqueue scheme).
  template <typename Guard>
  void help_finish_enq(std::uint32_t my, Guard& g) {
    node_type* last = g.protect(s_last, tail_);        // line 86
    node_type* next = g.protect(s_next, last->next);   // line 87
    if (next == nullptr) return;                       // line 88
    // Reclamation subtlety absent from the paper's GC setting: `next` was
    // announced against the write-once last->next, which validates nothing.
    // Re-check tail AFTER the announce and BEFORE dereferencing: while
    // tail == last, head <= last in list order, so the dangling node cannot
    // yet have been dequeued, let alone retired — and any later retirement
    // happens after this check, hence after our announce, so the reclaimer
    // sees it (Michael 2004 uses the same validate-the-source pattern).
    if (last != tail_.load(std::memory_order_seq_cst)) return;
    const std::int32_t etid = next->enq_tid;           // line 89
    assert(etid != no_tid);
    const auto tid = static_cast<std::uint32_t>(etid);
    desc_type* cur = g.protect(s_desc, state_[tid].get());  // line 90
    if (last == tail_.load(std::memory_order_seq_cst) &&
        cur->node == next) {  // line 91 (cur is current: protect validated)
      // §3.3 enhancement 3: if step (2) is already done, skip straight to
      // the tail swing (still safe: stage 3 only ever follows a completed
      // stage 2, which pending==false certifies).
      if (!Options::precheck_cas || cur->pending) {
        // line 92: new descriptor marking the operation linearized...
        desc_type* fresh = pool_.make(my, cur->phase, false, true, next);
        const bool won = swap_state(tid, my, cur, fresh);  // line 93 (step 2)
        if constexpr (Options::collect_stats) {
          if (won && tid != my) ++stats_[my]->helped_enq_completions;
        }
      }
      tail_.compare_exchange_strong(last, next,
                                    std::memory_order_seq_cst);  // 94 (step 3)
    }
  }

  /// paper lines 109-140.
  template <typename Guard>
  void help_deq(std::uint32_t tid, std::int64_t phase, Guard& g,
                std::uint32_t my) {
    while (is_still_pending(tid, phase, g)) {              // line 110
      node_type* first = g.protect(s_first, head_);        // line 111
      node_type* last = tail_.load(std::memory_order_seq_cst);  // line 112
      node_type* next = g.protect(s_next, first->next);    // line 113
      if (first != head_.load(std::memory_order_seq_cst)) {  // line 114
        continue;
      }
      if (first == last) {      // line 115: queue might be empty
        if (next == nullptr) {  // line 116: queue is empty
          desc_type* cur = g.protect(s_desc, state_[tid].get());  // line 117
          if (last == tail_.load(std::memory_order_seq_cst) &&
              cur->pending && cur->phase <= phase) {  // line 118
            // lines 119-120: mark the operation completed-empty.
            desc_type* fresh =
                pool_.make(my, cur->phase, false, false, nullptr);
            swap_state(tid, my, cur, fresh);
          }
        } else {                     // line 122: an enqueue is in progress
          help_finish_enq(my, g);    // line 123
        }
      } else {  // line 125: queue is not empty
        desc_type* cur = g.protect(s_desc, state_[tid].get());  // line 126
        node_type* node = cur->node;                            // line 127
        if (!(cur->pending && cur->phase <= phase)) break;      // line 128
        if (first == head_.load(std::memory_order_seq_cst) &&
            node != first) {  // line 129
          // lines 130-131: stage 0 — point tid's state at the sentinel.
          desc_type* fresh = pool_.make(my, cur->phase, true, false, first);
          if (!swap_state(tid, my, cur, fresh)) {
            continue;  // line 132
          }
        }
        std::int32_t expected = no_tid;
        first->deq_tid.compare_exchange_strong(
            expected, static_cast<std::int32_t>(tid),
            std::memory_order_seq_cst);  // line 135 (stage 1, linearization)
        help_finish_deq(my, g);          // line 136
      }
    }
  }

  /// paper lines 141-153 (stages 2 and 3 of the dequeue scheme).
  template <typename Guard>
  void help_finish_deq(std::uint32_t my, Guard& g) {
    node_type* first = g.protect(s_first, head_);       // line 142
    node_type* next = g.protect(s_next, first->next);   // line 143
    const std::int32_t dtid =
        first->deq_tid.load(std::memory_order_seq_cst);  // line 144
    if (dtid == no_tid) return;                          // line 145
    const auto tid = static_cast<std::uint32_t>(dtid);
    desc_type* cur = g.protect(s_desc, state_[tid].get());  // line 146
    if (first == head_.load(std::memory_order_seq_cst) &&
        next != nullptr) {  // line 147
      // §3.3 enhancement 3 (see help_finish_enq).
      if (!Options::precheck_cas || cur->pending) {
        // line 148 + §3.4: copy the payload out of the (pinned) successor
        // into the descriptor so the caller never revisits these nodes.
        desc_type* fresh =
            pool_.make(my, cur->phase, false, false, cur->node, next->value);
        // The residency stamp rides along with the payload — copied while
        // `next` is still pinned, whichever helper completes the op. This is
        // why helping does not distort residency: the stamp is a property of
        // the ITEM, carried unchanged to whoever returns it.
        if constexpr (track_residency) fresh->enq_ts = next->enq_ts;
        const bool won = swap_state(tid, my, cur, fresh);  // line 149 (step 2)
        if constexpr (Options::collect_stats) {
          if (won && tid != my) ++stats_[my]->helped_deq_completions;
        }
      }
      if (head_.compare_exchange_strong(
              first, next, std::memory_order_seq_cst)) {  // line 150 (step 3)
        // Exactly one thread wins the head swing; it owns retiring the old
        // sentinel.
        retire_node(my, first);
      }
    }
  }

  /// Residency measurement at dequeue-completion: the stamp was taken at
  /// enqueue-publish and carried through help_finish_deq into `d`. Clamped
  /// at zero against cross-core TSC skew (invariant TSC keeps this rare).
  void record_residency(std::uint32_t tid, const desc_type& d) noexcept {
    if constexpr (track_residency) {
      const std::uint64_t now = residency_type::now();
      resi_.add(tid, now > d.enq_ts ? now - d.enq_ts : 0);
    } else {
      (void)tid;
      (void)d;
    }
  }

  /// §3.3 enhancement 2: leave a dummy descriptor behind on operation exit.
  template <typename Guard>
  void scrub(std::uint32_t tid, Guard& g, bool enq) {
    desc_type* d = g.protect(s_desc, state_[tid].get());
    publish(tid, pool_.make(tid, d->phase, false, enq, nullptr));
    g.clear(s_desc);
  }

  // ------------------------------------------------------------------- data

  const std::uint32_t n_;
  Storage storage_;  // before reclaim_: reclaimer shutdown drains segment
                     // retirements through callbacks into the storage
  Reclaimer reclaim_;
  desc_pool<T, track_residency> pool_;
  HelpPolicy help_;
  PhasePolicy phase_;

  alignas(destructive_interference) std::atomic<node_type*> head_{nullptr};
  alignas(destructive_interference) std::atomic<node_type*> tail_{nullptr};
  std::vector<padded<state_slot>> state_;  // paper line 26
  std::vector<padded<wf_counters>> stats_;  // empty unless collect_stats
  obs::residency_probe resi_;  // empty unless track_residency
};

// ------------------------------------------------------------------ aliases

/// The paper's evaluated variants (§4):
///   base WF       — help_all + scan_max_phase
///   opt WF (1)    — help_one + scan_max_phase
///   opt WF (2)    — help_all + fetch_add_phase
///   opt WF (1+2)  — help_one + fetch_add_phase
template <typename T, typename R = hp_domain>
using wf_queue_base = wf_queue<T, help_all, scan_max_phase, R>;
template <typename T, typename R = hp_domain>
using wf_queue_opt1 = wf_queue<T, help_one, scan_max_phase, R>;
template <typename T, typename R = hp_domain>
using wf_queue_opt2 = wf_queue<T, help_all, fetch_add_phase, R>;
template <typename T, typename R = hp_domain>
using wf_queue_opt = wf_queue<T, help_one, fetch_add_phase, R>;

/// opt WF with item-residency tracking compiled in (stamped nodes, per-queue
/// residency histograms) — the fig_residency bench's "on" variant.
template <typename T, typename R = hp_domain>
using wf_queue_opt_residency =
    wf_queue<T, help_one, fetch_add_phase, R, wf_options_residency>;

}  // namespace kpq
