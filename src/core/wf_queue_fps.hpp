// Fast-path/slow-path wait-free queue — the §3.3 extension the paper points
// at ("apply techniques of [2] to have the time complexity of the algorithm
// depend on the number of threads concurrently accessing the queue rather
// than n"), realized the way Kogan & Petrank themselves later did (PPoPP'12
// "A methodology for creating fast wait-free data structures"):
//
//   * FAST PATH: up to `max_tries` attempts of the plain Michael–Scott
//     lock-free operation. Contention-free cost is therefore the MS queue's
//     cost plus one cyclic helping probe — independent of n.
//   * SLOW PATH: on exhaustion, fall back to the KP announce-and-help
//     machinery (descriptor, phase, helping), which bounds the total steps.
//   * INTEROP: the two paths share linearization points.
//       - enqueue: the link CAS is the linearization for both; fast nodes
//         carry enq_tid == -1 so helpers know there is no descriptor to
//         complete and only the tail needs fixing (step 2 is skipped, which
//         is safe exactly because nothing is pending).
//       - dequeue: BOTH paths claim the sentinel's deqTid — the fast path
//         writes an encoded "fast" claim — so the write-once-per-node
//         discipline that serializes dequeues is preserved, and either kind
//         of claim can be finished by any thread.
//   * WAIT-FREEDOM: every operation first probes one announce slot in
//     cyclic order (like opt 1) and helps a pending operation to
//     completion, so a slow-path operation is helped after at most n
//     operations of each active peer; the fast path itself is bounded by
//     `max_tries`.
//
// The reclamation discipline (pins on every CAS expected/desired value, the
// validate-the-source rule for the dangling node) is identical to
// wf_queue.hpp — see docs/ALGORITHM.md §2.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/desc_pool.hpp"
#include "core/op_desc.hpp"
#include "harness/mem_tracker.hpp"
#include "obs/residency.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "storage/heap_node_storage.hpp"
#include "storage/storage_concepts.hpp"
#include "sync/cacheline.hpp"
#include "sync/thread_registry.hpp"

namespace kpq {

namespace testing {
struct whitebox;  // test-only white-box driver (defined in test targets)
}  // namespace testing

/// Hooks for the fast-path/slow-path queue (progress tests stall threads at
/// the slow-path announce point, exactly as for wf_queue). A hooks struct
/// may additionally provide `on_fast_attempt(tid, is_enq)` — called once
/// per fast-path attempt; the step-bound tests count these to prove the
/// runtime patience knob can never exceed its compile-time ceiling.
struct fps_no_hooks {
  static void after_slow_publish(std::uint32_t /*tid*/, bool /*is_enq*/) {}
  static void on_fast_attempt(std::uint32_t /*tid*/, bool /*is_enq*/) {}
};

struct fps_options {
  using hooks = fps_no_hooks;
  /// Fast-path attempts before announcing on the slow path — the paper's
  /// MAX_FAILURES patience. This is the *initial* value of a runtime knob
  /// (set_patience); the knob is clamped to [0, max_tries_ceiling], so the
  /// per-operation step bound stays a compile-time constant whatever a
  /// tuner asks for.
  static constexpr std::uint32_t max_tries = 8;
  /// Hard ceiling on runtime patience. Every operation reads the knob once
  /// and clamps against this, so steps-before-announce <= ceiling always.
  static constexpr std::uint32_t max_tries_ceiling = 64;
  static constexpr bool descriptor_cache = true;
  /// Item-residency policy (obs/residency.hpp); no_residency keeps the node
  /// stamp-free. Detected structurally, so pre-existing options structs
  /// without the member keep compiling (they get no_residency).
  using residency = obs::no_residency;
};

/// Item-residency tracking on for the fast-path/slow-path queue.
struct fps_options_residency : fps_options {
  using residency = obs::tick_residency;
};

/// Owner-thread-updated fast/slow path counters (one non-RMW relaxed store
/// per operation; padded per thread). The slow-path share is the tuner's
/// contention signal for the patience knob: a rising share means fast-path
/// CAS attempts are being burned by contention and announcing earlier (or
/// retrying longer) is worth reconsidering.
struct fps_path_stats {
  std::uint64_t fast_enqs = 0;
  std::uint64_t slow_enqs = 0;
  std::uint64_t fast_deqs = 0;
  std::uint64_t slow_deqs = 0;

  std::uint64_t ops() const noexcept {
    return fast_enqs + slow_enqs + fast_deqs + slow_deqs;
  }
  double slow_rate() const noexcept {
    const std::uint64_t n = ops();
    return n == 0 ? 0.0
                  : static_cast<double>(slow_enqs + slow_deqs) /
                        static_cast<double>(n);
  }
  fps_path_stats& operator+=(const fps_path_stats& o) noexcept {
    fast_enqs += o.fast_enqs;
    slow_enqs += o.slow_enqs;
    fast_deqs += o.fast_deqs;
    slow_deqs += o.slow_deqs;
    return *this;
  }
};

template <typename T, typename Reclaimer = hp_domain,
          typename Options = fps_options,
          typename Storage = heap_node_storage<
              T, wf_node<T, obs::residency_policy_t<Options>::enabled>>>
class wf_queue_fps : public mem_tracked {
  static_assert(std::is_default_constructible_v<T>);
  static_assert(std::is_copy_constructible_v<T>);
  static_assert(Options::max_tries <= Options::max_tries_ceiling,
                "initial patience must respect the compile-time ceiling");
  static_assert(node_storage_for<Storage, Reclaimer>,
                "Storage must satisfy the node-storage contract "
                "(storage/storage_concepts.hpp)");

 public:
  /// Residency policy from the Options (structural; see obs/residency.hpp).
  using residency_type = obs::residency_policy_t<Options>;
  static constexpr bool track_residency = residency_type::enabled;

  using value_type = T;
  using node_type = wf_node<T, track_residency>;
  using desc_type = op_desc<T, track_residency>;
  using reclaimer_type = Reclaimer;
  using storage_type = Storage;
  static_assert(std::is_same_v<typename Storage::node_type, node_type>,
                "Storage must be instantiated with the queue's node type "
                "(stamped when the residency policy is enabled)");

  static constexpr std::uint32_t hp_slots = 5;
  enum slot : std::uint32_t {
    s_first = 0,
    s_last = 1,
    s_next = 2,
    s_desc = 3,
    s_node = 4
  };

  /// deqTid encoding: no_tid free, [0, n) slow-path claim by that thread,
  /// fast_claim_base + tid a fast-path claim (no descriptor to complete).
  static constexpr std::int32_t fast_claim_base = 1 << 20;
  static bool is_fast_claim(std::int32_t dtid) noexcept {
    return dtid >= fast_claim_base;
  }

  explicit wf_queue_fps(std::uint32_t max_threads, mem_counters* mc = nullptr)
      : n_(max_threads),
        storage_(max_threads, this),
        reclaim_(max_threads, hp_slots),
        pool_(max_threads, Options::descriptor_cache, this),
        cursor_(max_threads),
        path_stats_(max_threads),
        state_(max_threads),
        resi_(track_residency ? max_threads : 0) {
    set_memory_counters(mc);
    node_type* sentinel = alloc_node(0, T{}, no_tid);
    // kpq-order: relaxed pairs-with the ctor-exit seq_cst fence below —
    // no other thread can touch the queue before the ctor returns
    head_.store(sentinel, std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with the ctor-exit seq_cst fence below
    tail_.store(sentinel, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n_; ++i) {
      // kpq-order: relaxed pairs-with the ctor-exit seq_cst fence below
      state_[i]->store(pool_.make(i, no_phase, false, true, nullptr),
                       std::memory_order_relaxed);
    }
    seal_baseline();
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  wf_queue_fps(const wf_queue_fps&) = delete;
  wf_queue_fps& operator=(const wf_queue_fps&) = delete;

  ~wf_queue_fps() {
    // kpq-order: relaxed pairs-with none (destructor requires quiescence:
    // the caller must have joined every thread that used the queue)
    node_type* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      // kpq-hazard: quiescent — no concurrent retirement during destruction
      // kpq-order: relaxed pairs-with none (quiescent, see above)
      node_type* next = n->next.load(std::memory_order_relaxed);
      storage_.release(n);
      n = next;
    }
    for (std::uint32_t i = 0; i < n_; ++i) {
      // kpq-order: relaxed pairs-with none (quiescent, see above)
      desc_type* d = state_[i]->load(std::memory_order_relaxed);
      assert(!d->pending && "destroying a queue with an operation in flight");
      free_desc(d);
    }
  }

  // ---------------------------------------------------------------- enqueue

  void enqueue(T value) { enqueue(std::move(value), this_thread_id()); }

  void enqueue(T value, std::uint32_t tid) {
    assert(tid < n_);
    auto g = reclaim_.enter(tid);
    help_someone(tid, g);  // wait-freedom: one cyclic probe per operation

    // Fast path: plain MS enqueue, bounded attempts. enq_tid = -1 marks a
    // fast node: helpers fix only the tail for it. The patience knob is
    // read ONCE per operation and clamped against the compile-time
    // ceiling, so a concurrent set_patience can never unbound this loop.
    node_type* node = alloc_node(tid, std::move(value), no_tid);
    // Residency stamp: once, pre-publication; the slow path adopts the same
    // node, so one stamp covers both paths.
    if constexpr (track_residency) node->enq_ts = residency_type::now();
    const std::uint32_t tries = patience_now();
    for (std::uint32_t attempt = 0; attempt < tries; ++attempt) {
      on_fast_attempt(tid, /*is_enq=*/true);
      node_type* last = g.protect(s_last, tail_);
      node_type* next = last->next.load(std::memory_order_seq_cst);
      if (last != tail_.load(std::memory_order_seq_cst)) continue;
      if (next == nullptr) {
        node_type* expected = nullptr;
        if (last->next.compare_exchange_strong(expected, node,
                                               std::memory_order_seq_cst)) {
          count_path(tid, /*slow=*/false, /*is_enq=*/true);
          help_finish_enq(tid, g);
          return;
        }
      } else {
        help_finish_enq(tid, g);
      }
    }

    // Slow path: adopt the node (it was never published) and announce.
    count_path(tid, /*slow=*/true, /*is_enq=*/true);
    node->enq_tid = static_cast<std::int32_t>(tid);
    const std::int64_t phase =
        // kpq-order: acq_rel pairs-with the other phase_counter_ fetch_adds
        // — the RMW chain keeps phases monotone (Bakery doorway, cf.
        // fetch_add_phase)
        phase_counter_->fetch_add(1, std::memory_order_acq_rel);
    publish(tid, pool_.make(tid, phase, true, true, node));
    Options::hooks::after_slow_publish(tid, /*is_enq=*/true);
    help_enq(tid, phase, g, tid);
    help_finish_enq(tid, g);
  }

  // ---------------------------------------------------------------- dequeue

  std::optional<T> dequeue() { return dequeue(this_thread_id()); }

  std::optional<T> dequeue(std::uint32_t tid) {
    assert(tid < n_);
    auto g = reclaim_.enter(tid);
    help_someone(tid, g);

    // Fast path: claim the sentinel's deqTid with a fast marker; the claim
    // is the linearization for both paths, so fast and slow dequeues
    // serialize through the same write-once field. Patience read once,
    // clamped to the ceiling (see enqueue).
    const std::uint32_t tries = patience_now();
    for (std::uint32_t attempt = 0; attempt < tries; ++attempt) {
      on_fast_attempt(tid, /*is_enq=*/false);
      node_type* first = g.protect(s_first, head_);
      node_type* last = tail_.load(std::memory_order_seq_cst);
      node_type* next = g.protect(s_next, first->next);
      if (first != head_.load(std::memory_order_seq_cst)) continue;
      if (first == last) {
        if (next == nullptr) {
          count_path(tid, /*slow=*/false, /*is_enq=*/false);
          return std::nullopt;  // empty, like MS
        }
        help_finish_enq(tid, g);  // dangling enqueue first
        continue;
      }
      // `next` is safe to read: first == head implies next not yet retired.
      T value = next->value;
      std::uint64_t enq_ts = 0;
      if constexpr (track_residency) enq_ts = next->enq_ts;
      std::int32_t expected = no_tid;
      if (first->deq_tid.compare_exchange_strong(
              expected, fast_claim_base + static_cast<std::int32_t>(tid),
              std::memory_order_seq_cst)) {
        count_path(tid, /*slow=*/false, /*is_enq=*/false);
        help_finish_deq(tid, g);  // swing head; winner retires the sentinel
        record_residency(tid, enq_ts);
        return value;
      }
      // Someone else (fast or slow) claimed it: finish them, retry.
      help_finish_deq(tid, g);
    }

    // Slow path: the base algorithm's dequeue.
    count_path(tid, /*slow=*/true, /*is_enq=*/false);
    const std::int64_t phase =
        // kpq-order: acq_rel pairs-with the other phase_counter_ fetch_adds
        // — same doorway as the slow-path enqueue above
        phase_counter_->fetch_add(1, std::memory_order_acq_rel);
    publish(tid, pool_.make(tid, phase, true, false, nullptr));
    Options::hooks::after_slow_publish(tid, /*is_enq=*/false);
    help_deq(tid, phase, g, tid);
    help_finish_deq(tid, g);
    desc_type* d = g.protect(s_desc, state_[tid].get());
    std::optional<T> result;
    if (d->node != nullptr) {
      result = d->value;
      if constexpr (track_residency) record_residency(tid, d->enq_ts);
    }
    g.clear(s_desc);
    return result;
  }

  // --------------------------------------------------------------- patience
  // Runtime knob over the paper's MAX_FAILURES, for contention-adaptive
  // tuning (scale/tuner.hpp). Safe to call concurrently with operations:
  // relaxed atomic, each op reads it once and clamps to the compile-time
  // ceiling, so the wait-free step bound is unconditionally
  // O(max_tries_ceiling + announce-and-help).

  static constexpr std::uint32_t patience_ceiling = Options::max_tries_ceiling;

  /// Set fast-path patience; clamped to [0, patience_ceiling]. 0 means
  /// every operation announces immediately (pure slow path).
  void set_patience(std::uint32_t tries) noexcept {
    // kpq-order: relaxed pairs-with none (tuning knob; readers re-clamp to
    // the compile-time ceiling, so any value they observe is safe)
    patience_.value.store(
        tries > patience_ceiling ? patience_ceiling : tries,
        std::memory_order_relaxed);
  }
  std::uint32_t patience() const noexcept {
    // kpq-order: relaxed pairs-with none (tuning knob read; may lag)
    return patience_.value.load(std::memory_order_relaxed);
  }

  /// Per-thread fast/slow split (owner-writes; sum is exact at quiescence,
  /// a momentary estimate during a run — same contract as every counter
  /// surface in this repo).
  fps_path_stats path_counters(std::uint32_t tid) const noexcept {
    fps_path_stats s;
    const auto& c = path_stats_[tid];
    // kpq-order: relaxed pairs-with none (owner-written statistics; exact
    // at quiescence, momentary estimate during a run — documented contract)
    s.fast_enqs = c->fast_enqs.load(std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with none (statistics, see above)
    s.slow_enqs = c->slow_enqs.load(std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with none (statistics, see above)
    s.fast_deqs = c->fast_deqs.load(std::memory_order_relaxed);
    // kpq-order: relaxed pairs-with none (statistics, see above)
    s.slow_deqs = c->slow_deqs.load(std::memory_order_relaxed);
    return s;
  }
  fps_path_stats aggregate_path_counters() const noexcept {
    fps_path_stats total;
    for (std::uint32_t t = 0; t < n_; ++t) total += path_counters(t);
    return total;
  }

  // ----------------------------------------------------------- observability

  std::uint32_t max_threads() const noexcept { return n_; }
  reclaimer_type& reclaimer() noexcept { return reclaim_; }
  storage_type& storage() noexcept { return storage_; }
  const storage_type& storage() const noexcept { return storage_; }

  /// Merged item-residency histogram in TICKS (see wf_queue); meaningful
  /// only when `track_residency`, scrape-safe while workers run.
  log2_histogram residency_histogram() const { return resi_.merged(); }
  std::uint64_t residency_samples() const noexcept { return resi_.samples(); }
  void reset_residency() noexcept { resi_.reset(); }

  bool empty_hint(std::uint32_t tid) {
    auto g = reclaim_.enter(tid);
    node_type* first = g.protect(s_first, head_);
    node_type* last = tail_.load(std::memory_order_seq_cst);
    node_type* next = g.protect(s_next, first->next);
    return first == last && next == nullptr;
  }
  bool empty_hint() { return empty_hint(this_thread_id()); }

  std::size_t unsafe_size() const {
    std::size_t n = 0;
    // kpq-hazard: quiescent by contract (test-only helper) — no node can be
    // retired while we walk
    // kpq-order: acquire pairs-with the seq_cst link/swing CASes of the last
    // completed operations (observe their node writes at quiescence)
    const node_type* p = head_.load(std::memory_order_acquire);
    // kpq-hazard: quiescent (see above)
    // kpq-order: acquire pairs-with the linking CAS of each visited enqueue
    for (p = p->next.load(std::memory_order_acquire); p != nullptr;
         // kpq-hazard: quiescent (see above)
         // kpq-order: acquire pairs-with the linking CAS (see above)
         p = p->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  friend struct kpq::testing::whitebox;

  using state_slot = std::atomic<desc_type*>;
  using guard_t = decltype(std::declval<Reclaimer&>().enter(0));

  // ------------------------------------------------------------- allocation

  node_type* alloc_node(std::uint32_t tid, T v, std::int32_t etid) {
    return storage_.alloc(tid, std::move(v), etid, reclaim_);
  }
  void free_desc(desc_type* d) noexcept {
    account_free(sizeof(desc_type));
    delete d;
  }
  static void retire_desc_fn(void* ctx, void* p) {
    if (ctx != nullptr) {
      static_cast<mem_counters*>(ctx)->on_free(sizeof(desc_type));
    }
    delete static_cast<desc_type*>(p);
  }
  void retire_node(std::uint32_t tid, node_type* n) {
    storage_.retire(tid, n, reclaim_);
  }
  void retire_desc(std::uint32_t tid, desc_type* d) {
    reclaim_.retire(tid, d, &retire_desc_fn, memory_counters());
  }

  /// Dequeue-completion residency measurement (clamped against TSC skew).
  void record_residency(std::uint32_t tid, std::uint64_t enq_ts) noexcept {
    if constexpr (track_residency) {
      const std::uint64_t now = residency_type::now();
      resi_.add(tid, now > enq_ts ? now - enq_ts : 0);
    } else {
      (void)tid;
      (void)enq_ts;
    }
  }

  // ------------------------------------------------------ patience plumbing

  /// The per-operation fast-path budget: knob read once, clamped to the
  /// compile-time ceiling (the clamp is what keeps the step bound a
  /// constant even while a tuner stores arbitrary values concurrently).
  std::uint32_t patience_now() const noexcept {
    // kpq-order: relaxed pairs-with none (tuning knob; the clamp below makes
    // any observed value safe — the step bound stays compile-time constant)
    const std::uint32_t p = patience_.value.load(std::memory_order_relaxed);
    return p < patience_ceiling ? p : patience_ceiling;
  }

  /// Hook dispatch: optional on a hooks struct so pre-existing hook types
  /// (e.g. the freezing hooks in core tests) keep compiling unchanged.
  static void on_fast_attempt(std::uint32_t tid, bool is_enq) {
    if constexpr (requires { Options::hooks::on_fast_attempt(tid, is_enq); }) {
      Options::hooks::on_fast_attempt(tid, is_enq);
    }
  }

  /// Owner-thread, non-RMW path accounting (load + relaxed store).
  void count_path(std::uint32_t tid, bool slow, bool is_enq) noexcept {
    auto& c = path_stats_[tid].value;
    std::atomic<std::uint64_t>& cell = is_enq
                                           ? (slow ? c.slow_enqs : c.fast_enqs)
                                           : (slow ? c.slow_deqs : c.fast_deqs);
    // kpq-order: relaxed pairs-with none (owner-thread statistics cell; the
    // non-RMW load+store is safe because only `tid` ever writes this cell)
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  void publish(std::uint32_t tid, desc_type* d) {
    desc_type* old = state_[tid]->exchange(d, std::memory_order_seq_cst);
    retire_desc(tid, old);
  }

  bool swap_state(std::uint32_t tid, std::uint32_t my, desc_type* curr,
                  desc_type* repl) {
    desc_type* expected = curr;
    if (state_[tid]->compare_exchange_strong(expected, repl,
                                             std::memory_order_seq_cst)) {
      retire_desc(my, curr);
      return true;
    }
    pool_.recycle(my, repl);
    return false;
  }

  // ----------------------------------------------------------------- helping

  /// One cyclic probe: help whatever announced operation sits at the
  /// cursor, to completion (no phase bound — fast operations have no phase;
  /// helping "too much" costs time, never correctness).
  void help_someone(std::uint32_t my, guard_t& g) {
    std::uint32_t& k = cursor_[my].value;  // owner-only
    const std::uint32_t candidate = k;
    k = (k + 1 == n_) ? 0 : k + 1;
    if (candidate == my) return;
    desc_type* d = g.protect(s_desc, state_[candidate].get());
    if (!d->pending) return;
    if (d->enqueue) {
      help_enq(candidate, d->phase, g, my);
    } else {
      help_deq(candidate, d->phase, g, my);
    }
  }

  bool is_still_pending(std::uint32_t tid, std::int64_t ph, guard_t& g) {
    desc_type* d = g.protect(s_desc, state_[tid].get());
    return d->pending && d->phase <= ph;
  }

  /// Slow-path enqueue helping; identical to wf_queue::help_enq.
  void help_enq(std::uint32_t tid, std::int64_t phase, guard_t& g,
                std::uint32_t my) {
    while (is_still_pending(tid, phase, g)) {
      node_type* last = g.protect(s_last, tail_);
      node_type* next = g.protect(s_next, last->next);
      if (last != tail_.load(std::memory_order_seq_cst)) continue;
      if (next == nullptr) {
        desc_type* d = g.protect(s_desc, state_[tid].get());
        if (!(d->pending && d->phase <= phase)) continue;
        node_type* node = d->node;
        g.protect_raw(s_node, node);
        if (state_[tid]->load(std::memory_order_seq_cst) != d) continue;
        node_type* expected = nullptr;
        if (last->next.compare_exchange_strong(expected, node,
                                               std::memory_order_seq_cst)) {
          g.clear(s_node);
          help_finish_enq(my, g);
          return;
        }
        g.clear(s_node);
      } else {
        help_finish_enq(my, g);
      }
    }
  }

  /// Finishes a dangling enqueue of EITHER kind. Fast nodes (enq_tid == -1)
  /// have no descriptor: only the tail swing (step 3) applies, and skipping
  /// step 2 is safe precisely because nothing is pending for them.
  void help_finish_enq(std::uint32_t my, guard_t& g) {
    node_type* last = g.protect(s_last, tail_);
    node_type* next = g.protect(s_next, last->next);
    if (next == nullptr) return;
    // Validate-the-source before dereferencing `next` (docs/ALGORITHM.md §2).
    if (last != tail_.load(std::memory_order_seq_cst)) return;
    const std::int32_t etid = next->enq_tid;
    if (etid == no_tid) {  // fast-path node
      tail_.compare_exchange_strong(last, next, std::memory_order_seq_cst);
      return;
    }
    const auto tid = static_cast<std::uint32_t>(etid);
    desc_type* cur = g.protect(s_desc, state_[tid].get());
    if (last == tail_.load(std::memory_order_seq_cst) && cur->node == next) {
      desc_type* fresh = pool_.make(my, cur->phase, false, true, next);
      swap_state(tid, my, cur, fresh);
      tail_.compare_exchange_strong(last, next, std::memory_order_seq_cst);
    }
  }

  /// Slow-path dequeue helping; identical to wf_queue::help_deq except that
  /// the deqTid claim can lose to a fast claim, which help_finish_deq then
  /// completes before the loop retries.
  void help_deq(std::uint32_t tid, std::int64_t phase, guard_t& g,
                std::uint32_t my) {
    while (is_still_pending(tid, phase, g)) {
      node_type* first = g.protect(s_first, head_);
      node_type* last = tail_.load(std::memory_order_seq_cst);
      node_type* next = g.protect(s_next, first->next);
      if (first != head_.load(std::memory_order_seq_cst)) continue;
      if (first == last) {
        if (next == nullptr) {
          desc_type* cur = g.protect(s_desc, state_[tid].get());
          if (last == tail_.load(std::memory_order_seq_cst) && cur->pending &&
              cur->phase <= phase) {
            desc_type* fresh = pool_.make(my, cur->phase, false, false,
                                          static_cast<node_type*>(nullptr));
            swap_state(tid, my, cur, fresh);
          }
        } else {
          help_finish_enq(my, g);
        }
      } else {
        desc_type* cur = g.protect(s_desc, state_[tid].get());
        node_type* node = cur->node;
        if (!(cur->pending && cur->phase <= phase)) break;
        if (first == head_.load(std::memory_order_seq_cst) && node != first) {
          desc_type* fresh = pool_.make(my, cur->phase, true, false, first);
          if (!swap_state(tid, my, cur, fresh)) continue;
        }
        std::int32_t expected = no_tid;
        first->deq_tid.compare_exchange_strong(
            expected, static_cast<std::int32_t>(tid),
            std::memory_order_seq_cst);
        help_finish_deq(my, g);
      }
    }
  }

  /// Finishes a claimed dequeue of EITHER kind: fast claims need only the
  /// head swing; slow claims additionally complete step 2 into the owner's
  /// descriptor (with the §3.4 value copy).
  void help_finish_deq(std::uint32_t my, guard_t& g) {
    node_type* first = g.protect(s_first, head_);
    node_type* next = g.protect(s_next, first->next);
    const std::int32_t dtid = first->deq_tid.load(std::memory_order_seq_cst);
    if (dtid == no_tid) return;
    if (is_fast_claim(dtid)) {
      if (first == head_.load(std::memory_order_seq_cst) && next != nullptr) {
        if (head_.compare_exchange_strong(first, next,
                                          std::memory_order_seq_cst)) {
          retire_node(my, first);
        }
      }
      return;
    }
    const auto tid = static_cast<std::uint32_t>(dtid);
    desc_type* cur = g.protect(s_desc, state_[tid].get());
    if (first == head_.load(std::memory_order_seq_cst) && next != nullptr) {
      desc_type* fresh =
          pool_.make(my, cur->phase, false, false, cur->node, next->value);
      // Stamp rides with the payload, copied while `next` is pinned.
      if constexpr (track_residency) fresh->enq_ts = next->enq_ts;
      swap_state(tid, my, cur, fresh);
      if (head_.compare_exchange_strong(first, next,
                                        std::memory_order_seq_cst)) {
        retire_node(my, first);
      }
    }
  }

  // ------------------------------------------------------------------- data

  const std::uint32_t n_;
  Storage storage_;  // before reclaim_: reclaimer shutdown drains segment
                     // retirements through callbacks into the storage
  Reclaimer reclaim_;
  desc_pool<T, track_residency> pool_;
  std::vector<padded<std::uint32_t>> cursor_;  // help_someone's cyclic cursor
  padded<std::atomic<std::int64_t>> phase_counter_{std::int64_t{0}};

  /// Runtime patience knob (see set_patience); starts at the compile-time
  /// default so a tuner-less queue behaves exactly like before.
  padded<std::atomic<std::uint32_t>> patience_{Options::max_tries};

  /// Per-thread owner-written fast/slow path counters.
  struct path_cells {
    std::atomic<std::uint64_t> fast_enqs{0};
    std::atomic<std::uint64_t> slow_enqs{0};
    std::atomic<std::uint64_t> fast_deqs{0};
    std::atomic<std::uint64_t> slow_deqs{0};
  };
  std::vector<padded<path_cells>> path_stats_;

  alignas(destructive_interference) std::atomic<node_type*> head_{nullptr};
  alignas(destructive_interference) std::atomic<node_type*> tail_{nullptr};
  std::vector<padded<state_slot>> state_;
  obs::residency_probe resi_;  // empty unless track_residency
};

}  // namespace kpq
