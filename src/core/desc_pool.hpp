// Per-thread descriptor cache (paper §3.3, first enhancement).
//
// "any update of state is preceded with an allocation of a new operation
//  descriptor. These allocations might be wasteful [...] if the following
//  CAS operation fails [...] This issue can be easily solved by caching
//  allocated descriptors used in unsuccessful CASes and reusing them."
//
// Only descriptors that were *never published* (their installing CAS failed,
// so no other thread can hold a reference) may be recycled here; published
// descriptors go through the reclaimer. Each thread owns its own free list,
// so the pool needs no synchronization.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/op_desc.hpp"
#include "harness/mem_tracker.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

template <typename T, bool Stamped = false>
class desc_pool {
 public:
  using desc_type = op_desc<T, Stamped>;

  desc_pool(std::uint32_t max_threads, bool enabled,
            const mem_tracked* accounting, std::size_t cache_cap = 64)
      : enabled_(enabled),
        cache_cap_(cache_cap),
        accounting_(accounting),
        free_(max_threads) {}

  desc_pool(const desc_pool&) = delete;
  desc_pool& operator=(const desc_pool&) = delete;

  ~desc_pool() { purge(); }

  /// Construct a descriptor, reusing a cached allocation when possible.
  template <typename... Args>
  desc_type* make(std::uint32_t tid, Args&&... args) {
    auto& list = free_[tid]->items;
    if (!list.empty()) {
      desc_type* d = list.back();
      list.pop_back();
      d->~desc_type();
      return new (d) desc_type(std::forward<Args>(args)...);
    }
    // kpq-order: relaxed pairs-with none (statistics counter; read only by
    // the relaxed load in fresh_allocs(), orders no other data)
    fresh_allocs_.fetch_add(1, std::memory_order_relaxed);
    if (accounting_ != nullptr) accounting_->account_alloc(sizeof(desc_type));
    return new desc_type(std::forward<Args>(args)...);
  }

  /// Return a never-published descriptor for reuse. Cached descriptors stay
  /// "live" in the accounting (they occupy heap).
  void recycle(std::uint32_t tid, desc_type* d) noexcept {
    auto& list = free_[tid]->items;
    if (enabled_ && list.size() < cache_cap_) {
      list.push_back(d);
    } else {
      if (accounting_ != nullptr) accounting_->account_free(sizeof(desc_type));
      delete d;
    }
  }

  /// Delete all cached descriptors (destructor path).
  void purge() noexcept {
    for (auto& f : free_) {
      for (desc_type* d : f->items) {
        if (accounting_ != nullptr) {
          accounting_->account_free(sizeof(desc_type));
        }
        delete d;
      }
      f->items.clear();
    }
  }

  std::size_t cached(std::uint32_t tid) const noexcept {
    return free_[tid]->items.size();
  }
  std::uint64_t fresh_allocs() const noexcept {
    // kpq-order: relaxed pairs-with none (statistics read; may lag)
    return fresh_allocs_.load(std::memory_order_relaxed);
  }

 private:
  struct free_list {
    std::vector<desc_type*> items;
  };

  bool enabled_;
  std::size_t cache_cap_;
  const mem_tracked* accounting_;  // the owning queue's accounting sink
  std::vector<padded<free_list>> free_;
  std::atomic<std::uint64_t> fresh_allocs_{0};
};

}  // namespace kpq
