// Phase-number assignment policies (paper §3.3, optimization 2).
//
// Wait-freedom requires that a thread starting an operation picks a phase at
// least as large as every phase chosen before it (the Bakery-style doorway):
// then the set of operations that can linearize before a given one is
// bounded.
//
//   * scan_max_phase  — the paper's base scheme (lines 48–57 + 62/99):
//                       scan the `state` array for the maximum phase, use
//                       max + 1. O(n) per operation even without contention.
//   * fetch_add_phase — optimization 2: a shared counter bumped with an
//                       atomic fetch-and-add. O(1).
//   * cas_phase       — the CAS flavour the paper describes in footnote 3:
//                       read the counter and CAS it up, *ignoring failure* —
//                       a failed CAS just means another thread took the same
//                       phase, which is harmless because helping uses <=.
//
// All three preserve the doorway property the wait-freedom proof (paper
// §5.3) relies on.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/cacheline.hpp"

namespace kpq {

struct scan_max_phase {
  explicit scan_max_phase(std::uint32_t /*max_threads*/) {}

  template <typename Queue, typename Guard>
  std::int64_t next_phase(Queue& q, Guard& g, std::uint32_t /*tid*/) noexcept {
    return q.max_phase(g) + 1;  // paper line 62 / 99
  }
  static constexpr const char* name = "scan_max_phase";
  static constexpr bool scans_state = true;
};

struct fetch_add_phase {
  explicit fetch_add_phase(std::uint32_t /*max_threads*/) {}

  template <typename Queue, typename Guard>
  std::int64_t next_phase(Queue&, Guard&, std::uint32_t /*tid*/) noexcept {
    // kpq-order: acq_rel pairs-with the other next_phase fetch_adds — the
    // RMW chain makes phase numbers monotone across threads (the Bakery
    // doorway the §5.3 wait-freedom proof needs); seq_cst is not required
    // because only the counter's own modification order matters
    return counter.value.fetch_add(1, std::memory_order_acq_rel);
  }
  static constexpr const char* name = "fetch_add_phase";
  static constexpr bool scans_state = false;

  padded<std::atomic<std::int64_t>> counter{std::int64_t{0}};
};

struct cas_phase {
  explicit cas_phase(std::uint32_t /*max_threads*/) {}

  template <typename Queue, typename Guard>
  std::int64_t next_phase(Queue&, Guard&, std::uint32_t /*tid*/) noexcept {
    // kpq-order: acquire pairs-with the release half of the CAS below as
    // performed by other threads (observe their counter bumps)
    std::int64_t cur = counter.value.load(std::memory_order_acquire);
    // Paper footnote 3: no need to retry — a failure means another thread
    // chose the same phase, which the <= helping rule tolerates.
    // kpq-order: acq_rel pairs-with the acquire load above in rival
    // next_phase calls; duplicate phases on CAS failure are tolerated
    counter.value.compare_exchange_strong(cur, cur + 1,
                                          std::memory_order_acq_rel);
    return cur;
  }
  static constexpr const char* name = "cas_phase";
  static constexpr bool scans_state = false;

  padded<std::atomic<std::int64_t>> counter{std::int64_t{0}};
};

}  // namespace kpq
