// Blocking convenience adapter over any kpq MPMC queue.
//
// The KP queue's dequeue is total: on an empty queue it returns nullopt
// (the paper's EmptyException). Applications structured around consumer
// threads usually want "wait until an element arrives or the queue is
// closed". This adapter layers that on top of any queue type in the library
// via the shared continuation layer (sync/waiter_hub.hpp): the fast path
// never touches the hub mutex; waiters enlist under the lock and re-check
// before sleeping, producers only notify when a sleeper might exist. The
// same hub accepts coroutine continuations, which is how async/ builds
// co_dequeue on an identical wakeup discipline.
//
// NOTE: waiting obviously forfeits wait-freedom — a blocked consumer is
// blocked. The *queue operations* keep their progress guarantee; only the
// emptiness wait blocks. That is the right split for most applications
// (cf. paper §1: the bound matters for the operation, not for data arrival).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>

#include "sync/thread_registry.hpp"
#include "sync/waiter_hub.hpp"

namespace kpq {

template <typename Queue>
class blocking_adapter {
 public:
  using value_type = typename Queue::value_type;

  template <typename... Args>
  explicit blocking_adapter(Args&&... args)
      : q_(std::forward<Args>(args)...) {}

  /// Wait-free (as the underlying queue); wakes one sleeper if any.
  void enqueue(value_type v, std::uint32_t tid) {
    q_.enqueue(std::move(v), tid);
    // seq_cst pairs with the waiter's enlist-then-recheck (Dekker): if we
    // read no waiters here, the waiter's re-check happens after our insert.
    if (hub_.maybe_waiters()) hub_.notify_one();
  }
  void enqueue(value_type v) { enqueue(std::move(v), this_thread_id()); }

  /// Non-blocking dequeue (the underlying queue's contract).
  std::optional<value_type> try_dequeue(std::uint32_t tid) {
    return q_.dequeue(tid);
  }
  std::optional<value_type> try_dequeue() {
    return try_dequeue(this_thread_id());
  }

  /// Blocks until an element is available or close() was called.
  /// Returns nullopt only after close() with the queue drained.
  std::optional<value_type> dequeue_blocking(std::uint32_t tid) {
    // kpq-bound: blocking by documented contract (see header comment) — each
    // retry follows an accepted wakeup, i.e. a producer enqueued or close()
    for (;;) {
      if (auto v = q_.dequeue(tid)) return v;
      // kpq-block: this adapter IS the sanctioned blocking facade over the
      // wait-free queue; the park itself is delegated to the hub protocol
      thread_parker p;
      p.set_trace_tid(tid);  // hub events go to the same ring as q_'s ops
      auto lk = hub_.lock();
      hub_.enlist(p, lk);
      // Re-check under registration: no produce can now slip past unseen.
      if (auto v = q_.dequeue(tid)) {
        hub_.delist(p, lk);
        return v;
      }
      if (closed_) {
        hub_.delist(p, lk);
        return std::nullopt;
      }
      // kpq-block: sanctioned blocking facade (see dequeue_blocking header)
      p.park(hub_, lk);  // an accepted notify already delisted us
    }
  }
  std::optional<value_type> dequeue_blocking() {
    return dequeue_blocking(this_thread_id());
  }

  /// Blocks up to `timeout`; nullopt on timeout or drained-and-closed.
  template <typename Rep, typename Period>
  std::optional<value_type> dequeue_for(
      std::chrono::duration<Rep, Period> timeout, std::uint32_t tid) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    // kpq-bound: blocking by documented contract, additionally bounded by
    // `deadline` — every retry follows a wakeup or the timeout fires
    for (;;) {
      if (auto v = q_.dequeue(tid)) return v;
      // kpq-block: sanctioned blocking facade (see dequeue_blocking header)
      thread_parker p;
      p.set_trace_tid(tid);  // hub events go to the same ring as q_'s ops
      auto lk = hub_.lock();
      hub_.enlist(p, lk);
      if (auto v = q_.dequeue(tid)) {
        hub_.delist(p, lk);
        return v;
      }
      // kpq-block: sanctioned bounded wait — returns false at `deadline`
      if (closed_ || !p.park_until(hub_, lk, deadline)) {
        hub_.delist(p, lk);
        return q_.dequeue(tid);  // final chance either way
      }
    }
  }

  /// After close(), blocked consumers drain what is left and then get
  /// nullopt; further enqueues are the caller's bug (not checked — the
  /// underlying queue has no closed state).
  void close() {
    auto lk = hub_.lock();
    closed_ = true;
    hub_.notify_all(std::move(lk));
  }
  bool closed() const {
    auto lk = hub_.lock();
    return closed_;
  }

  Queue& underlying() noexcept { return q_; }

  /// The continuation hub (park/resume stats for the obs registry; the
  /// async layer enlists coroutine waiters on the same hub).
  waiter_hub& hub() noexcept { return hub_; }
  const waiter_hub& hub() const noexcept { return hub_; }

 private:
  Queue q_;
  waiter_hub hub_;
  bool closed_ = false;  // guarded by the hub lock
};

}  // namespace kpq
