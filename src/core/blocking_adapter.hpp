// Blocking convenience adapter over any kpq MPMC queue.
//
// The KP queue's dequeue is total: on an empty queue it returns nullopt
// (the paper's EmptyException). Applications structured around consumer
// threads usually want "wait until an element arrives or the queue is
// closed". This adapter layers that on top of any queue type in the library
// using the standard eventcount-lite pattern: the fast path never touches
// the mutex; waiters register under the lock and re-check before sleeping,
// producers only lock when a sleeper might exist.
//
// NOTE: waiting obviously forfeits wait-freedom — a blocked consumer is
// blocked. The *queue operations* keep their progress guarantee; only the
// emptiness wait blocks. That is the right split for most applications
// (cf. paper §1: the bound matters for the operation, not for data arrival).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "sync/thread_registry.hpp"

namespace kpq {

template <typename Queue>
class blocking_adapter {
 public:
  using value_type = typename Queue::value_type;

  template <typename... Args>
  explicit blocking_adapter(Args&&... args)
      : q_(std::forward<Args>(args)...) {}

  /// Wait-free (as the underlying queue); wakes one sleeper if any.
  void enqueue(value_type v, std::uint32_t tid) {
    q_.enqueue(std::move(v), tid);
    // seq_cst pairs with the waiter's increment-then-recheck (Dekker): if
    // we read 0 here, the waiter's re-check happens after our insert.
    if (waiters_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lk(m_);
      cv_.notify_one();
    }
  }
  void enqueue(value_type v) { enqueue(std::move(v), this_thread_id()); }

  /// Non-blocking dequeue (the underlying queue's contract).
  std::optional<value_type> try_dequeue(std::uint32_t tid) {
    return q_.dequeue(tid);
  }
  std::optional<value_type> try_dequeue() {
    return try_dequeue(this_thread_id());
  }

  /// Blocks until an element is available or close() was called.
  /// Returns nullopt only after close() with the queue drained.
  std::optional<value_type> dequeue_blocking(std::uint32_t tid) {
    for (;;) {
      if (auto v = q_.dequeue(tid)) return v;
      std::unique_lock<std::mutex> lk(m_);
      waiters_.fetch_add(1, std::memory_order_seq_cst);
      // Re-check under registration: no produce can now slip past unseen.
      if (auto v = q_.dequeue(tid)) {
        waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return v;
      }
      if (closed_) {
        waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return std::nullopt;
      }
      cv_.wait(lk);
      waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  std::optional<value_type> dequeue_blocking() {
    return dequeue_blocking(this_thread_id());
  }

  /// Blocks up to `timeout`; nullopt on timeout or drained-and-closed.
  template <typename Rep, typename Period>
  std::optional<value_type> dequeue_for(
      std::chrono::duration<Rep, Period> timeout, std::uint32_t tid) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (auto v = q_.dequeue(tid)) return v;
      std::unique_lock<std::mutex> lk(m_);
      waiters_.fetch_add(1, std::memory_order_seq_cst);
      if (auto v = q_.dequeue(tid)) {
        waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return v;
      }
      if (closed_ ||
          cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return q_.dequeue(tid);  // final chance either way
      }
      waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  /// After close(), blocked consumers drain what is left and then get
  /// nullopt; further enqueues are the caller's bug (not checked — the
  /// underlying queue has no closed state).
  void close() {
    std::lock_guard<std::mutex> lk(m_);
    closed_ = true;
    cv_.notify_all();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lk(m_);
    return closed_;
  }

  Queue& underlying() noexcept { return q_; }

 private:
  Queue q_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> waiters_{0};
  bool closed_ = false;  // guarded by m_
};

}  // namespace kpq
