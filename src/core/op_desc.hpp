// Node and operation-descriptor records of the KP wait-free queue
// (paper Figure 1, lines 1–24), ported to unmanaged C++.
//
// Both records are *immutable after publication* with two exceptions that the
// paper itself makes atomic: `node::next` (set once, null -> non-null, by the
// winning enqueue CAS, paper line 74) and `node::deq_tid` (set once,
// -1 -> tid, by the winning dequeue CAS, paper line 135). Descriptor fields
// are all written before the descriptor is published through the `state`
// array, so any descriptor reached through a protected load is a consistent
// snapshot — the property the whole helping scheme leans on.
//
// C++ port changes (paper §3.4):
//   * op_desc carries `value`, the payload removed by a dequeue, so that
//     deq() never needs to chase `node->next->value` through a node that may
//     already have been retired. help_finish_deq() fills it in while the
//     successor node is still hazard-protected.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace kpq {

/// Sentinel thread id meaning "no thread" (paper's -1).
inline constexpr std::int32_t no_tid = -1;

/// Sentinel phase carried by the initial descriptors (paper line 33 uses -1).
inline constexpr std::int64_t no_phase = -1;

/// Optional residency stamp (obs/residency.hpp). Present as a base class of
/// wf_node/op_desc only when the queue's options enable residency tracking,
/// so the default node keeps the paper's 24-byte shape (pinned by
/// shape_regression_test). `enq_ts` follows the same publication discipline
/// as `value`/`enq_tid`: written once by the enqueuer before the record is
/// published, read only through a protected load afterwards.
struct residency_stamp {
  std::uint64_t enq_ts = 0;  // tick_now() at enqueue-publish
};
struct no_residency_stamp {};

template <bool Stamped>
using residency_base =
    std::conditional_t<Stamped, residency_stamp, no_residency_stamp>;

template <typename T, bool Stamped = false>
struct wf_node : residency_base<Stamped> {
  T value;
  std::atomic<wf_node*> next{nullptr};
  std::int32_t enq_tid;                  // paper: enqTid, written once pre-publication
  std::atomic<std::int32_t> deq_tid{no_tid};  // paper: deqTid, -1 -> tid once

  wf_node(T v, std::int32_t etid) : value(std::move(v)), enq_tid(etid) {}
};

template <typename T, bool Stamped = false>
struct op_desc : residency_base<Stamped> {
  std::int64_t phase;           // paper: phase
  bool pending;                 // paper: pending
  bool enqueue;                 // paper: enqueue
  wf_node<T, Stamped>* node;    // paper: node (meaning depends on op type, see §3.2)
  T value{};                    // C++ port (§3.4): payload of a completed dequeue

  op_desc(std::int64_t ph, bool pend, bool enq, wf_node<T, Stamped>* n)
      : phase(ph), pending(pend), enqueue(enq), node(n) {}

  op_desc(std::int64_t ph, bool pend, bool enq, wf_node<T, Stamped>* n, T val)
      : phase(ph), pending(pend), enqueue(enq), node(n), value(std::move(val)) {}
};

}  // namespace kpq
