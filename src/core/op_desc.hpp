// Node and operation-descriptor records of the KP wait-free queue
// (paper Figure 1, lines 1–24), ported to unmanaged C++.
//
// Both records are *immutable after publication* with two exceptions that the
// paper itself makes atomic: `node::next` (set once, null -> non-null, by the
// winning enqueue CAS, paper line 74) and `node::deq_tid` (set once,
// -1 -> tid, by the winning dequeue CAS, paper line 135). Descriptor fields
// are all written before the descriptor is published through the `state`
// array, so any descriptor reached through a protected load is a consistent
// snapshot — the property the whole helping scheme leans on.
//
// C++ port changes (paper §3.4):
//   * op_desc carries `value`, the payload removed by a dequeue, so that
//     deq() never needs to chase `node->next->value` through a node that may
//     already have been retired. help_finish_deq() fills it in while the
//     successor node is still hazard-protected.
#pragma once

#include <atomic>
#include <cstdint>

namespace kpq {

/// Sentinel thread id meaning "no thread" (paper's -1).
inline constexpr std::int32_t no_tid = -1;

/// Sentinel phase carried by the initial descriptors (paper line 33 uses -1).
inline constexpr std::int64_t no_phase = -1;

template <typename T>
struct wf_node {
  T value;
  std::atomic<wf_node*> next{nullptr};
  std::int32_t enq_tid;                  // paper: enqTid, written once pre-publication
  std::atomic<std::int32_t> deq_tid{no_tid};  // paper: deqTid, -1 -> tid once

  wf_node(T v, std::int32_t etid) : value(std::move(v)), enq_tid(etid) {}
};

template <typename T>
struct op_desc {
  std::int64_t phase;  // paper: phase
  bool pending;        // paper: pending
  bool enqueue;        // paper: enqueue
  wf_node<T>* node;    // paper: node (meaning depends on op type, see §3.2)
  T value{};           // C++ port (§3.4): payload of a completed dequeue

  op_desc(std::int64_t ph, bool pend, bool enq, wf_node<T>* n)
      : phase(ph), pending(pend), enqueue(enq), node(n) {}

  op_desc(std::int64_t ph, bool pend, bool enq, wf_node<T>* n, T val)
      : phase(ph), pending(pend), enqueue(enq), node(n), value(std::move(val)) {}
};

}  // namespace kpq
