// Multi-threaded benchmark runner.
//
// Reproduces the paper's measurement methodology (§4): spawn k threads, each
// running its workload loop; total completion time is measured from the
// moment all threads are released (spin barrier) to the last join. Each data
// point is repeated `reps` times and summarized.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "harness/affinity.hpp"
#include "harness/stats.hpp"
#include "harness/timing.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq {

struct run_config {
  std::uint32_t threads = 1;
  std::uint32_t reps = 1;
  bool pin = false;  // pin thread i to cpu (i % hw_concurrency)
};

/// Body signature: (tid) -> void, executed once per thread per repetition.
/// Returns wall-clock summary over `reps` repetitions, in seconds.
template <typename Setup, typename Body>
summary run_trials(const run_config& cfg, Setup&& setup, Body&& body) {
  running_stats rs;
  for (std::uint32_t rep = 0; rep < cfg.reps; ++rep) {
    setup(rep);
    spin_barrier barrier(cfg.threads + 1);
    std::vector<std::thread> workers;
    workers.reserve(cfg.threads);
    for (std::uint32_t t = 0; t < cfg.threads; ++t) {
      workers.emplace_back([&, t] {
        if (cfg.pin) pin_to_cpu(t);
        barrier.arrive_and_wait();
        body(t);
      });
    }
    barrier.arrive_and_wait();  // release the fleet; start the clock
    stopwatch sw;
    for (auto& w : workers) w.join();
    rs.add(sw.elapsed_s());
  }
  return rs.finish();
}

/// Convenience overload with no per-repetition setup.
template <typename Body>
summary run_trials(const run_config& cfg, Body&& body) {
  return run_trials(
      cfg, [](std::uint32_t) {}, std::forward<Body>(body));
}

}  // namespace kpq
