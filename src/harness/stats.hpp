// Summary statistics for repeated benchmark runs.
//
// The paper reports the average of ten runs per data point and notes the
// standard deviation was negligible; we report mean, stddev and min/max so
// EXPERIMENTS.md can substantiate the same claim, plus percentile helpers
// for the latency-tail bench (which quantifies the wait-freedom property
// the paper motivates but does not plot).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace kpq {

struct summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Welford's online algorithm: numerically stable single pass.
class running_stats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  summary finish() const noexcept {
    summary s;
    if (n_ == 0) return s;  // all-zero: a stat that never fired must export
                            // 0, never the ±inf/NaN of the empty state
    s.n = n_;
    s.mean = mean_;
    // m2_ can dip below zero by rounding when all samples are (near-)equal;
    // clamp so stddev is never NaN.
    s.stddev =
        n_ > 1 ? std::sqrt(std::max(m2_, 0.0) / static_cast<double>(n_ - 1))
               : 0.0;
    s.min = min_;
    s.max = max_;
    return s;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Nearest-rank percentile (q in [0,1]) over a sample vector. Sorts a copy;
/// use sort_and_percentiles for repeated queries.
inline double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

/// In-place variant: sorts xs once, then evaluates each requested quantile.
inline std::vector<double> sorted_percentiles(std::vector<double>& xs,
                                              const std::vector<double>& qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  if (xs.empty()) {
    out.assign(qs.size(), 0.0);
    return out;
  }
  std::sort(xs.begin(), xs.end());
  for (double q : qs) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(xs.size() - 1) + 0.5);
    out.push_back(xs[std::min(rank, xs.size() - 1)]);
  }
  return out;
}

}  // namespace kpq
