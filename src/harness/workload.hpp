// Workload generation for the paper's two benchmarks (§4):
//
//   * enqueue-dequeue pairs — "the queue is initially empty, and at each
//     iteration, each thread iteratively performs an enqueue operation
//     followed by a dequeue operation."
//   * 50% enqueues — "the queue is initialized with 1000 elements, and at
//     each iteration, each thread decides uniformly at random and
//     independently of other threads which operation it is going to
//     execute, with equal odds."
//
// Determinism: each thread derives its RNG from (seed, thread id) with
// splitmix64, so a run is reproducible regardless of interleaving.
#pragma once

#include <cstdint>

namespace kpq {

/// splitmix64 — tiny, high-quality seeding/stream-splitting PRNG.
struct splitmix64 {
  std::uint64_t state;

  explicit splitmix64(std::uint64_t seed) noexcept : state(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
};

/// xoshiro-style fast generator seeded from splitmix64.
class fast_rng {
 public:
  explicit fast_rng(std::uint64_t seed) noexcept {
    splitmix64 sm(seed);
    s0_ = sm.next();
    s1_ = sm.next();
    if ((s0_ | s1_) == 0) s1_ = 1;  // avoid the all-zero orbit
  }

  std::uint64_t next() noexcept {  // xorshift128+
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform boolean with probability p_num/p_den of true.
  bool bernoulli(std::uint32_t p_num, std::uint32_t p_den) noexcept {
    return next() % p_den < p_num;
  }
  bool coin() noexcept { return (next() & 1) != 0; }

 private:
  std::uint64_t s0_, s1_;
};

/// Per-thread RNG stream for workload `seed` and thread `tid`.
inline fast_rng thread_stream(std::uint64_t seed, std::uint32_t tid) noexcept {
  splitmix64 sm(seed ^ (0xA0761D6478BD642FULL * (tid + 1)));
  return fast_rng(sm.next());
}

/// Stateless 64-bit mixer (splitmix64 finalizer): the avalanche the
/// key-hash shard policy needs so that sequential keys spread evenly over a
/// small shard count.
inline std::uint64_t hash64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Sharded/batched workload knobs (bench/fig_sharding, scale tests): how
/// many items a producer hands to one bulk call. `max_batch == 1` reduces
/// every bulk op to the per-item path, which is the degenerate case the
/// batching layer must stay correct (and cheap) under.
inline std::uint64_t pick_batch_size(fast_rng& rng,
                                     std::uint64_t max_batch) noexcept {
  return max_batch <= 1 ? 1 : 1 + rng.next() % max_batch;
}

/// Unique payload encoding: thread id in the top bits, per-thread sequence
/// in the bottom. Tests use this to check per-producer FIFO order and
/// element conservation without auxiliary maps.
inline std::uint64_t encode_value(std::uint32_t tid,
                                  std::uint64_t seq) noexcept {
  return (static_cast<std::uint64_t>(tid) << 40) | seq;
}
inline std::uint32_t value_tid(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(v >> 40);
}
inline std::uint64_t value_seq(std::uint64_t v) noexcept {
  return v & ((1ULL << 40) - 1);
}

}  // namespace kpq
