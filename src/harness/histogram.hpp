// Log2-bucketed histogram for latency recording.
//
// The percentile helpers in stats.hpp need every sample kept and sorted —
// fine for bench-sized runs, wasteful for soak tests. This histogram keeps
// 64 power-of-two buckets, supports lock-free concurrent recording
// (relaxed per-bucket counters), merging, and conservative (upper-bound)
// quantile queries. Resolution is a factor of two, which is exactly the
// granularity latency-tail discussions care about.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>

namespace kpq {

class log2_histogram {
 public:
  static constexpr std::size_t bucket_count = 64;

  log2_histogram() = default;
  // Copies take a relaxed snapshot of each bucket; copying while writers are
  // active yields some interleaving of their increments, same as total().
  log2_histogram(const log2_histogram& other) noexcept { copy_from(other); }
  log2_histogram& operator=(const log2_histogram& other) noexcept {
    if (this != &other) copy_from(other);
    return *this;
  }

  void add(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Bucket b holds values in [2^(b-1), 2^b), bucket 0 holds {0}.
  static std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Inclusive upper bound of a bucket's value range.
  static std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b == 0 ? 0 : (b >= 64 ? UINT64_MAX : (std::uint64_t{1} << b) - 1);
  }

  std::uint64_t count(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Conservative quantile: smallest bucket upper bound covering at least
  /// q of the recorded samples. The covering rank is ceil(q*n) clamped to
  /// [1, n] — q=0 means the smallest recorded sample's bucket, q=1 the
  /// largest's, and a single-sample histogram answers its one bucket for
  /// every q. (A floor-and-strictly-greater rank, the previous behaviour,
  /// overshoots by a whole bucket whenever q*n lands on an integer: p90 of
  /// 100 samples would report the bucket of the 91st.)
  std::uint64_t quantile_upper_bound(double q) const noexcept {
    const std::uint64_t n = total();
    if (n == 0) return 0;
    const double scaled = q * static_cast<double>(n);
    auto target = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(target) < scaled) ++target;  // ceil
    target = std::min(std::max<std::uint64_t>(target, 1), n);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bucket_count; ++b) {
      seen += count(b);
      if (seen >= target) return bucket_upper(b);
    }
    return bucket_upper(bucket_count - 1);
  }

  void merge(const log2_histogram& other) noexcept {
    for (std::size_t b = 0; b < bucket_count; ++b) {
      buckets_[b].fetch_add(other.count(b), std::memory_order_relaxed);
    }
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// Compact ASCII rendering of the non-empty range.
  void print(std::FILE* out = stdout, const char* unit = "ns") const {
    const std::uint64_t n = total();
    if (n == 0) {
      std::fprintf(out, "(empty histogram)\n");
      return;
    }
    std::size_t lo = bucket_count, hi = 0;
    std::uint64_t peak = 0;
    for (std::size_t b = 0; b < bucket_count; ++b) {
      if (count(b) > 0) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
        peak = std::max(peak, count(b));
      }
    }
    for (std::size_t b = lo; b <= hi; ++b) {
      const std::uint64_t c = count(b);
      const auto bar = static_cast<int>(
          c == 0 ? 0 : 1 + 39 * c / (peak == 0 ? 1 : peak));
      std::fprintf(out, "%12llu %-3s |%-40.*s| %llu\n",
                   static_cast<unsigned long long>(bucket_upper(b)), unit, bar,
                   "########################################",
                   static_cast<unsigned long long>(c));
    }
  }

 private:
  void copy_from(const log2_histogram& other) noexcept {
    for (std::size_t b = 0; b < bucket_count; ++b) {
      buckets_[b].store(other.count(b), std::memory_order_relaxed);
    }
  }

  std::array<std::atomic<std::uint64_t>, bucket_count> buckets_{};
};

}  // namespace kpq
