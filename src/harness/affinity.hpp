// CPU affinity pinning.
//
// The paper's headline observation is that the LF/WF performance ratio is
// "intimately related to the system configuration" — scheduling policy and
// thread placement in particular. Pinning on/off is the one placement knob
// portable to our hardware, so the benches expose it (--pin).
#pragma once

#include <cstdint>

namespace kpq {

/// Pin the calling thread to `cpu % hardware_concurrency`. Returns false if
/// unsupported or the syscall failed (callers treat pinning as best-effort).
bool pin_to_cpu(std::uint32_t cpu) noexcept;

/// Number of online CPUs (>= 1).
std::uint32_t online_cpus() noexcept;

}  // namespace kpq
