// CPU affinity pinning.
//
// The paper's headline observation is that the LF/WF performance ratio is
// "intimately related to the system configuration" — scheduling policy and
// thread placement in particular. Pinning on/off is the one placement knob
// portable to our hardware, so the benches expose it (--pin).
#pragma once

#include <cstdint>
#include <vector>

namespace kpq {

/// Pin the calling thread to `cpu % hardware_concurrency`. Returns false if
/// unsupported or the syscall failed (callers treat pinning as best-effort).
bool pin_to_cpu(std::uint32_t cpu) noexcept;

/// Number of online CPUs (>= 1).
std::uint32_t online_cpus() noexcept;

/// Cache/NUMA topology summary for shard placement. A "domain" is a set of
/// CPUs sharing a last-level cache (or, on NUMA boxes, a memory node —
/// whichever /sys exposes). The elastic tuner uses this to cap the useful
/// active-shard count: more shards than domains just shreds the LLC, which
/// is the regime the paper's cross-socket Figure 8 results warn about.
struct cpu_topology {
  std::uint32_t cpus = 1;     ///< online CPUs
  std::uint32_t domains = 1;  ///< distinct LLC/NUMA domains (>= 1)
  /// domain_of[cpu] for cpu < cpus; all zero in the single-domain fallback.
  std::vector<std::uint32_t> domain_of;
};

/// Best-effort detection from /sys (Linux): prefers NUMA node cpulists,
/// falls back to shared L3 (cache/index3/shared_cpu_list), and degrades to
/// one flat domain when neither parses (containers, non-Linux). Never
/// throws; always returns a consistent topology with domains >= 1.
cpu_topology detect_topology() noexcept;

/// Suggested shard-pool size for this host: one shard per domain when there
/// are several, else a small divisor of the CPU count, always in
/// [1, max_cap]. A pure heuristic — the tuner adapts within whatever pool
/// the caller actually builds.
std::uint32_t recommended_shards(const cpu_topology& topo,
                                 std::uint32_t max_cap = 8) noexcept;

/// Pin the calling thread to some CPU of `domain % topo.domains`,
/// round-robining by `seq` within the domain. Best-effort like pin_to_cpu.
bool pin_to_domain(const cpu_topology& topo, std::uint32_t domain,
                   std::uint32_t seq) noexcept;

}  // namespace kpq
