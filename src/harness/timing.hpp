// Monotonic timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace kpq {

using monotonic_clock = std::chrono::steady_clock;

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          monotonic_clock::now().time_since_epoch())
          .count());
}

class stopwatch {
 public:
  stopwatch() : start_(now_ns()) {}
  void reset() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace kpq
