// Live-heap accounting for the Figure 10 reproduction.
//
// The paper measured the space overhead of the wait-free queue relative to
// the lock-free one by sampling JVM GC statistics (`--verbosegc`) for the
// size of live objects. We do not have a GC; instead every queue in this
// library routes its node/descriptor allocations through an optional
// `mem_counters` sink, so "live bytes attributable to the queue" is an exact
// counter rather than a sampled estimate.
//
// The counters are atomics: allocation happens on every thread. Relaxed
// ordering suffices — benches only read them at sampling points that are
// already synchronized by thread join or by barrier.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace kpq {

class mem_counters {
 public:
  void on_alloc(std::size_t bytes) noexcept {
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    live_objects_.fetch_add(1, std::memory_order_relaxed);
    total_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_free(std::size_t bytes) noexcept {
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    live_objects_.fetch_sub(1, std::memory_order_relaxed);
  }

  std::int64_t live_bytes() const noexcept {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  std::int64_t live_objects() const noexcept {
    return live_objects_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_allocs() const noexcept {
    return total_allocs_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    live_bytes_.store(0, std::memory_order_relaxed);
    live_objects_.store(0, std::memory_order_relaxed);
    total_allocs_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> live_bytes_{0};
  std::atomic<std::int64_t> live_objects_{0};
  std::atomic<std::uint64_t> total_allocs_{0};
};

/// Mixin the queues use. A null sink compiles to two predictable branches;
/// the benchmarks that do not measure space leave it null.
class mem_tracked {
 public:
  void set_memory_counters(mem_counters* c) noexcept { mem_ = c; }
  mem_counters* memory_counters() const noexcept { return mem_; }

  void account_alloc(std::size_t bytes) const noexcept {
    if (mem_) mem_->on_alloc(bytes);
  }
  void account_free(std::size_t bytes) const noexcept {
    if (mem_) mem_->on_free(bytes);
  }

 private:
  mem_counters* mem_ = nullptr;
};

}  // namespace kpq
