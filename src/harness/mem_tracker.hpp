// Live-heap accounting for the Figure 10 reproduction.
//
// The paper measured the space overhead of the wait-free queue relative to
// the lock-free one by sampling JVM GC statistics (`--verbosegc`) for the
// size of live objects. We do not have a GC; instead every queue in this
// library routes its node/descriptor allocations through an optional
// `mem_counters` sink, so "live bytes attributable to the queue" is an exact
// counter rather than a sampled estimate.
//
// The counters are atomics: allocation happens on every thread. Relaxed
// ordering suffices — benches only read them at sampling points that are
// already synchronized by thread join or by barrier.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace kpq {

class mem_counters {
 public:
  void on_alloc(std::size_t bytes) noexcept {
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    live_objects_.fetch_add(1, std::memory_order_relaxed);
    total_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Credit several allocations at once (the construction-baseline replay
  /// below; also keeps total_allocs an allocation count, not a byte count).
  void on_alloc_bulk(std::int64_t bytes, std::int64_t objects) noexcept {
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    live_objects_.fetch_add(objects, std::memory_order_relaxed);
    if (objects > 0) {
      total_allocs_.fetch_add(static_cast<std::uint64_t>(objects),
                              std::memory_order_relaxed);
    }
  }
  void on_free(std::size_t bytes) noexcept {
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    live_objects_.fetch_sub(1, std::memory_order_relaxed);
  }

  std::int64_t live_bytes() const noexcept {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  std::int64_t live_objects() const noexcept {
    return live_objects_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_allocs() const noexcept {
    return total_allocs_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    live_bytes_.store(0, std::memory_order_relaxed);
    live_objects_.store(0, std::memory_order_relaxed);
    total_allocs_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> live_bytes_{0};
  std::atomic<std::int64_t> live_objects_{0};
  std::atomic<std::uint64_t> total_allocs_{0};
};

/// Mixin the queues use. A null sink compiles to two predictable branches;
/// the benchmarks that do not measure space leave it null.
///
/// Construction baseline: a container allocates during construction (the KP
/// queue: one sentinel node plus one descriptor per thread). If the sink is
/// attached only later via set_memory_counters(), those allocations used to
/// be invisible — their eventual frees were counted but their allocs were
/// not, so live_bytes could go NEGATIVE and the Figure 10 "including
/// descriptors" claim had a hole. Now: while no sink is attached and the
/// baseline is unsealed (i.e. during construction), account_alloc/free
/// accumulate into plain counters; the container calls seal_baseline() at
/// the end of its constructor; a later attach replays the sealed baseline
/// into the new sink (on_alloc_bulk). Zero cost on the hot path — the
/// baseline branch is behind the existing `mem_ == nullptr` check and is
/// compiled against a bool that is false for the queue's whole operating
/// life. Attach a given mem_counters to a container at most once (or
/// reset() it first): each attach replays the baseline.
class mem_tracked {
 public:
  void set_memory_counters(mem_counters* c) noexcept {
    const bool attaching = (mem_ == nullptr && c != nullptr);
    mem_ = c;
    if (attaching && baseline_sealed_ && baseline_objects_ != 0) {
      c->on_alloc_bulk(baseline_bytes_, baseline_objects_);
    }
  }
  mem_counters* memory_counters() const noexcept { return mem_; }

  /// Freeze the construction baseline: call at the END of the constructor of
  /// the most-derived container. Before the seal, unsinked allocations
  /// accumulate; after it, they are intentionally ignored (a null sink means
  /// "not measuring").
  void seal_baseline() noexcept { baseline_sealed_ = true; }

  void account_alloc(std::size_t bytes) const noexcept {
    if (mem_) {
      mem_->on_alloc(bytes);
    } else if (!baseline_sealed_) {
      baseline_bytes_ += static_cast<std::int64_t>(bytes);
      ++baseline_objects_;
    }
  }
  void account_free(std::size_t bytes) const noexcept {
    if (mem_) {
      mem_->on_free(bytes);
    } else if (!baseline_sealed_) {
      baseline_bytes_ -= static_cast<std::int64_t>(bytes);
      --baseline_objects_;
    }
  }

 private:
  mem_counters* mem_ = nullptr;
  // Construction is single-threaded; after seal_baseline() these are
  // read-only. Mutable because the account_* interface is const.
  mutable std::int64_t baseline_bytes_ = 0;
  mutable std::int64_t baseline_objects_ = 0;
  bool baseline_sealed_ = false;
};

}  // namespace kpq
