#include "harness/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace kpq {

std::uint32_t online_cpus() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_to_cpu(std::uint32_t cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % online_cpus(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace kpq
