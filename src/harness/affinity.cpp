#include "harness/affinity.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace kpq {

namespace {

/// Parse a kernel cpulist ("0-3,8,10-11") into CPU indices. Returns an
/// empty vector on any malformed input — callers treat that as "no data".
std::vector<std::uint32_t> parse_cpulist(const std::string& list) {
  std::vector<std::uint32_t> cpus;
  std::stringstream ss(list);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    const auto dash = tok.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
      } else {
        const auto lo =
            static_cast<std::uint32_t>(std::stoul(tok.substr(0, dash)));
        const auto hi =
            static_cast<std::uint32_t>(std::stoul(tok.substr(dash + 1)));
        if (hi < lo || hi - lo > 4096) return {};
        for (std::uint32_t c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      return {};
    }
  }
  return cpus;
}

std::string read_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  if (!f || !std::getline(f, line)) return {};
  return line;
}

/// Try one /sys layout: a numbered directory family whose member files hold
/// cpulists. Assigns domain ids in file order; returns false if fewer than
/// one domain resolved.
bool assign_domains(cpu_topology& topo, const char* pattern_prefix,
                    const char* pattern_suffix) {
  std::uint32_t domain = 0;
  for (std::uint32_t idx = 0; idx < 256; ++idx) {
    const std::string path =
        pattern_prefix + std::to_string(idx) + pattern_suffix;
    const std::string line = read_line(path);
    if (line.empty()) {
      // Numbered families are dense; the first gap ends the scan.
      break;
    }
    const auto cpus = parse_cpulist(line);
    if (cpus.empty()) continue;
    bool fresh = false;
    for (const std::uint32_t c : cpus) {
      if (c < topo.cpus && topo.domain_of[c] == UINT32_MAX) {
        topo.domain_of[c] = domain;
        fresh = true;
      }
    }
    if (fresh) ++domain;
  }
  if (domain == 0) return false;
  // Cover stragglers /sys didn't mention so domain_of is total.
  for (auto& d : topo.domain_of) {
    if (d == UINT32_MAX) d = 0;
  }
  topo.domains = domain;
  return true;
}

}  // namespace

std::uint32_t online_cpus() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

cpu_topology detect_topology() noexcept {
  cpu_topology topo;
  topo.cpus = online_cpus();
  topo.domain_of.assign(topo.cpus, UINT32_MAX);
  try {
#if defined(__linux__)
    // NUMA nodes first (the coarser, more placement-relevant boundary),
    // then shared-L3 sets; both absent → one flat domain.
    if (!assign_domains(topo, "/sys/devices/system/node/node", "/cpulist") &&
        !assign_domains(topo, "/sys/devices/system/cpu/cpu",
                        "/cache/index3/shared_cpu_list")) {
      topo.domain_of.assign(topo.cpus, 0);
      topo.domains = 1;
    }
#else
    topo.domain_of.assign(topo.cpus, 0);
    topo.domains = 1;
#endif
  } catch (...) {
    topo.domain_of.assign(topo.cpus, 0);
    topo.domains = 1;
  }
  if (topo.domains == 0) topo.domains = 1;
  return topo;
}

std::uint32_t recommended_shards(const cpu_topology& topo,
                                 std::uint32_t max_cap) noexcept {
  if (max_cap == 0) max_cap = 1;
  // Multi-domain host: a shard per LLC/NUMA domain keeps each shard's hot
  // nodes resident in one cache.
  if (topo.domains > 1) {
    return topo.domains < max_cap ? topo.domains : max_cap;
  }
  // Single domain: shards only pay off once there are enough CPUs to run
  // disjoint producer/consumer pairs; one shard per 2 CPUs, at least 1.
  const std::uint32_t s = topo.cpus / 2 == 0 ? 1 : topo.cpus / 2;
  return s < max_cap ? s : max_cap;
}

bool pin_to_domain(const cpu_topology& topo, std::uint32_t domain,
                   std::uint32_t seq) noexcept {
  if (topo.domains == 0 || topo.domain_of.size() < topo.cpus) return false;
  domain %= topo.domains;
  // Collect the domain's CPUs (tiny arrays; this runs once per thread).
  std::uint32_t count = 0;
  for (std::uint32_t c = 0; c < topo.cpus; ++c) {
    if (topo.domain_of[c] == domain) ++count;
  }
  if (count == 0) return false;
  std::uint32_t pick = seq % count;
  for (std::uint32_t c = 0; c < topo.cpus; ++c) {
    if (topo.domain_of[c] == domain && pick-- == 0) return pin_to_cpu(c);
  }
  return false;
}

bool pin_to_cpu(std::uint32_t cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % online_cpus(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace kpq
