// Minimal command-line flag parser for the figure-reproduction binaries.
//
// Usage:
//   cli args(argc, argv);
//   auto iters = args.get_u64("iters", 20000);
//   bool pin   = args.get_flag("pin");
// Accepted forms: --name=value, --name value, --flag.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kpq {

class cli {
 public:
  cli(int argc, char** argv);

  bool get_flag(const std::string& name) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_str(const std::string& name, const std::string& def) const;

  /// Any --name the binary never queried: typo detection in scripts.
  std::vector<std::string> unknown(
      const std::vector<std::string>& known) const;

 private:
  const std::string* find(const std::string& name) const;
  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace kpq
