// Plain-text table / CSV emission for the figure-reproduction binaries.
//
// Each bench prints the same series the corresponding paper figure plots —
// one row per x-value (thread count or queue size), one column per series
// (LF, base WF, opt WF ...) — plus an optional CSV dump for replotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace kpq {

class table {
 public:
  explicit table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    print_row(out, headers_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule.append(width[c] + (c ? 2 : 0), '-');
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(out, row, width);
  }

  void print_csv(std::FILE* out) const {
    print_csv_row(out, headers_);
    for (const auto& row : rows_) print_csv_row(out, row);
  }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%-*s", c ? "  " : "",
                   static_cast<int>(width[c]), cells[c].c_str());
    }
    std::fprintf(out, "\n");
  }
  static void print_csv_row(std::FILE* out,
                            const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%s", c ? "," : "", cells[c].c_str());
    }
    std::fprintf(out, "\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace kpq
