#include "harness/cli.hpp"

#include <cstdlib>

namespace kpq {

cli::cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      kv_.emplace_back(arg, argv[++i]);
    } else {
      kv_.emplace_back(arg, "");
    }
  }
}

const std::string* cli::find(const std::string& name) const {
  for (const auto& [k, v] : kv_) {
    if (k == name) return &v;
  }
  return nullptr;
}

bool cli::get_flag(const std::string& name) const {
  return find(name) != nullptr;
}

std::uint64_t cli::get_u64(const std::string& name, std::uint64_t def) const {
  const std::string* v = find(name);
  return (v != nullptr && !v->empty()) ? std::strtoull(v->c_str(), nullptr, 10)
                                       : def;
}

double cli::get_double(const std::string& name, double def) const {
  const std::string* v = find(name);
  return (v != nullptr && !v->empty()) ? std::strtod(v->c_str(), nullptr) : def;
}

std::string cli::get_str(const std::string& name,
                         const std::string& def) const {
  const std::string* v = find(name);
  return (v != nullptr && !v->empty()) ? *v : def;
}

std::vector<std::string> cli::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    (void)v;
    bool found = false;
    for (const auto& name : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) out.push_back(k);
  }
  return out;
}

}  // namespace kpq
