// Default node storage: one heap allocation and one reclaimer retirement per
// node — the exact behavior wf_queue/wf_queue_fps had before the storage
// layer existed, factored behind the node_storage_for interface
// (storage_concepts.hpp) so segment_storage can replace it without touching
// the queue algorithm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/op_desc.hpp"
#include "harness/mem_tracker.hpp"

namespace kpq {

template <typename T, typename Node = wf_node<T>>
class heap_node_storage {
 public:
  using value_type = T;
  using node_type = Node;

  /// One alloc() call performs at most one node-sized heap allocation.
  static constexpr std::size_t max_alloc_bytes = sizeof(node_type);

  heap_node_storage(std::uint32_t /*max_threads*/, const mem_tracked* acct)
      : acct_(acct) {}

  heap_node_storage(const heap_node_storage&) = delete;
  heap_node_storage& operator=(const heap_node_storage&) = delete;

  template <typename R>
  node_type* alloc(std::uint32_t /*tid*/, T v, std::int32_t etid,
                   R& /*reclaim*/) {
    acct_->account_alloc(sizeof(node_type));
    return new node_type(std::move(v), etid);
  }

  /// Unlinked but possibly still referenced: per-node retirement, the
  /// reclaimer frees it once no guard can reach it.
  template <typename R>
  void retire(std::uint32_t tid, node_type* n, R& reclaim) {
    reclaim.retire(tid, n, &retire_node_fn, acct_->memory_counters());
  }

  /// Quiescent free (container destructor path).
  void release(node_type* n) noexcept {
    acct_->account_free(sizeof(node_type));
    delete n;
  }

 private:
  static void retire_node_fn(void* ctx, void* p) {
    if (ctx != nullptr) {
      static_cast<mem_counters*>(ctx)->on_free(sizeof(node_type));
    }
    delete static_cast<node_type*>(p);
  }

  const mem_tracked* acct_;  // the owning container's accounting sink
};

}  // namespace kpq
