// bounded_wf_queue<T>: the KP wait-free queue with a HARD ceiling on live
// memory, built on segment_storage (the wCQ design point: bounded memory is
// only meaningful when allocation and reclamation have a fixed-size unit).
//
// The ceiling is enforced by ADMISSION, not by a slotted ring: every
// enqueue first checks the queue's exact live-byte counter (mem_tracker —
// nodes, descriptors, and segments all flow through it) against
// `max_bytes` minus a fixed headroom covering the worst case the already-
// admitted in-flight operations can still allocate. The bound argument
// (docs/MEMORY.md §4): any allocation happens inside an operation whose
// admission read live <= max_bytes - headroom; between any such read and
// the allocation, each of the n threads has at most one partially-complete
// operation, and one operation allocates at most
// per_op = Storage::max_alloc_bytes + desc_slack * sizeof(op_desc<T>)
// bytes, so live never exceeds (max_bytes - n*per_op) + n*per_op.
//
// Full-queue policies:
//   * reject           — try_enqueue returns false; enqueue drops. The
//                        wait-free choice: admission is one counter read.
//   * block            — producers wait until a dequeue (or the reclaimer
//                        returning a segment) makes room, or close() is
//                        called. Deliberately forfeits wait-freedom for
//                        producers at the ceiling — same split as
//                        blocking_adapter documents for empty-queue waits;
//                        consumers and under-ceiling producers keep the
//                        wait-free step bound.
//   * overwrite_oldest — drop elements from the head until there is room
//                        (bounded-buffer telemetry semantics). If the queue
//                        is EMPTY and still over the ceiling (live bytes
//                        held by not-yet-reclaimed segments/descriptors),
//                        it degrades to reject: the ceiling is never
//                        exceeded by design, even transiently.
//
// This is an adapter, not a re-implementation: the inner queue is the
// unmodified wf_queue (any variant) over segment_storage, so every
// linearizability and helping property is inherited.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "storage/segment_storage.hpp"
#include "sync/cacheline.hpp"
#include "sync/thread_registry.hpp"

namespace kpq {

// Segment-storage variants of the paper's queues (same policy grid as the
// heap aliases in wf_queue.hpp).
template <typename T, typename R = hp_domain>
using wf_queue_base_seg =
    wf_queue<T, help_all, scan_max_phase, R, wf_options, segment_storage<T>>;
template <typename T, typename R = hp_domain>
using wf_queue_opt_seg =
    wf_queue<T, help_one, fetch_add_phase, R, wf_options, segment_storage<T>>;
template <typename T, typename R = hp_domain>
using wf_queue_fps_seg = wf_queue_fps<T, R, fps_options, segment_storage<T>>;

enum class full_policy : std::uint8_t { reject, block, overwrite_oldest };

struct bounded_config {
  /// Ceiling on the queue's total live bytes (nodes + descriptors +
  /// segments), as counted by its mem_counters. Must exceed the fixed
  /// construction footprint plus the admission headroom or every enqueue is
  /// rejected (the constructor asserts a sane floor).
  std::size_t max_bytes;
  full_policy policy = full_policy::reject;
  /// block policy: waiters re-check at this interval even without a
  /// notification — reclaimer scans return segment memory asynchronously to
  /// any dequeue, so space can appear with nobody to signal it.
  std::chrono::milliseconds block_recheck{1};
  /// Headroom slack for descriptor churn, per thread, in descriptors. The
  /// steady state allocates ~none (desc_pool recycles); this covers the
  /// cold-start and helping bursts between admission checks. docs/MEMORY.md
  /// §4 discusses the sizing.
  std::uint32_t desc_slack_per_thread = 8;
};

/// Counters for the policy outcomes (exported via stats(); the obs registry
/// picks them up structurally).
struct bounded_counters {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t overwritten = 0;  // elements dropped by overwrite_oldest
  std::uint64_t block_waits = 0;  // times a producer actually slept
};

template <typename T, typename Inner = wf_queue_opt_seg<T>>
class bounded_wf_queue {
 public:
  using value_type = T;
  using inner_type = Inner;
  using storage_type = typename Inner::storage_type;

  bounded_wf_queue(std::uint32_t max_threads, bounded_config cfg)
      : cfg_(cfg),
        headroom_(static_cast<std::size_t>(max_threads) *
                  (storage_type::max_alloc_bytes +
                   cfg.desc_slack_per_thread *
                       sizeof(typename Inner::desc_type))),
        q_(max_threads, &mc_) {
    // The ceiling must leave room for at least one admitted enqueue on top
    // of the construction footprint, or the queue is unusable.
    assert(static_cast<std::int64_t>(cfg_.max_bytes) >=
               mc_.live_bytes() + static_cast<std::int64_t>(headroom_) &&
           "max_bytes below construction footprint + admission headroom");
  }

  bounded_wf_queue(const bounded_wf_queue&) = delete;
  bounded_wf_queue& operator=(const bounded_wf_queue&) = delete;

  // ---------------------------------------------------------------- enqueue

  /// Policy-aware admission. Returns false iff the element was NOT inserted:
  /// reject → ceiling reached; block → queue closed (after waiting);
  /// overwrite_oldest → ceiling reached with nothing left to drop.
  bool try_enqueue(T value, std::uint32_t tid) {
    switch (cfg_.policy) {
      case full_policy::reject:
        if (!has_room()) {
          count(&bounded_counters::rejected, tid);
          return false;
        }
        break;
      case full_policy::block:
        if (!wait_for_room(tid)) {
          count(&bounded_counters::rejected, tid);
          return false;  // closed while waiting
        }
        break;
      case full_policy::overwrite_oldest:
        while (!has_room()) {
          if (!q_.dequeue(tid).has_value()) {
            // Empty yet over the ceiling: the remaining live bytes are
            // segments/descriptors awaiting reclamation. Never exceed the
            // ceiling — degrade to reject.
            count(&bounded_counters::rejected, tid);
            return false;
          }
          count(&bounded_counters::overwritten, tid);
        }
        break;
    }
    q_.enqueue(std::move(value), tid);
    count(&bounded_counters::admitted, tid);
    return true;
  }
  bool try_enqueue(T value) {
    return try_enqueue(std::move(value), this_thread_id());
  }

  /// mpmc_queue-compatible enqueue: applies the policy and discards the
  /// admission result. Use try_enqueue when rejection must be observed.
  void enqueue(T value, std::uint32_t tid) {
    (void)try_enqueue(std::move(value), tid);
  }
  void enqueue(T value) { enqueue(std::move(value), this_thread_id()); }

  // ---------------------------------------------------------------- dequeue

  std::optional<T> dequeue(std::uint32_t tid) {
    std::optional<T> v = q_.dequeue(tid);
    if (cfg_.policy == full_policy::block && v.has_value() &&
        waiters_.load(std::memory_order_seq_cst) > 0) {
      // A dequeue frees at least one cell's worth of budget eventually;
      // wake one producer to re-check. Lock pairs with the waiter's
      // register-then-recheck, exactly as in blocking_adapter.
      std::lock_guard<std::mutex> lk(m_);
      cv_.notify_one();
    }
    return v;
  }
  std::optional<T> dequeue() { return dequeue(this_thread_id()); }

  // ------------------------------------------------------------- lifecycle

  /// Unblocks every waiting producer (they return false). Consumers can
  /// keep draining; further try_enqueues fail under the block policy.
  void close() {
    std::lock_guard<std::mutex> lk(m_);
    closed_ = true;
    cv_.notify_all();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lk(m_);
    return closed_;
  }

  // ---------------------------------------------------------- observability

  std::uint32_t max_threads() const noexcept { return q_.max_threads(); }
  bool empty_hint(std::uint32_t tid) { return q_.empty_hint(tid); }
  bool empty_hint() { return q_.empty_hint(); }
  std::size_t unsafe_size() const { return q_.unsafe_size(); }
  std::size_t max_bytes() const noexcept { return cfg_.max_bytes; }
  full_policy policy() const noexcept { return cfg_.policy; }
  std::int64_t live_bytes() const noexcept { return mc_.live_bytes(); }
  const mem_counters& memory() const noexcept { return mc_; }
  inner_type& inner() noexcept { return q_; }
  storage_type& storage() noexcept { return q_.storage(); }
  segment_pool_stats pool_stats() const noexcept {
    return q_.storage().pool_stats();
  }

  bounded_counters stats() const {
    bounded_counters total;
    for (std::uint32_t i = 0; i < q_.max_threads(); ++i) {
      const bounded_counters& c = counters_[i].get();
      total.admitted += c.admitted;
      total.rejected += c.rejected;
      total.overwritten += c.overwritten;
      total.block_waits += c.block_waits;
    }
    return total;
  }

 private:
  bool has_room() const noexcept {
    return mc_.live_bytes() + static_cast<std::int64_t>(headroom_) <=
           static_cast<std::int64_t>(cfg_.max_bytes);
  }

  /// Block-policy wait: returns true when there is room, false when the
  /// queue was closed. Timed re-check because reclamation can free segments
  /// with no dequeue (hence no notify) accompanying it.
  bool wait_for_room(std::uint32_t tid) {
    if (has_room()) return true;  // fast path, no lock
    std::unique_lock<std::mutex> lk(m_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    count(&bounded_counters::block_waits, tid);
    bool room;
    for (;;) {
      // Re-check after registering: a dequeue that saw waiters_ == 0 must
      // have completed before our fetch_add, so its space is visible here.
      room = has_room();
      if (room || closed_) break;
      cv_.wait_for(lk, cfg_.block_recheck);
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
    return room;
  }

  void count(std::uint64_t bounded_counters::* field, std::uint32_t tid) {
    counters_[tid].get().*field += 1;  // owner-thread-only, padded
  }

  bounded_config cfg_;
  std::size_t headroom_;
  mem_counters mc_;  // before q_: the inner queue's ctor attaches to it
  Inner q_;
  std::vector<padded<bounded_counters>> counters_{q_.max_threads()};

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> waiters_{0};
  bool closed_ = false;  // guarded by m_
};

}  // namespace kpq
