// bounded_wf_queue<T>: the KP wait-free queue with a HARD ceiling on live
// memory, built on segment_storage (the wCQ design point: bounded memory is
// only meaningful when allocation and reclamation have a fixed-size unit).
//
// The ceiling is enforced by ADMISSION, not by a slotted ring: every
// enqueue first checks the queue's exact live-byte counter (mem_tracker —
// nodes, descriptors, and segments all flow through it) against
// `max_bytes` minus a fixed headroom covering the worst case the already-
// admitted in-flight operations can still allocate. The bound argument
// (docs/MEMORY.md §4): any allocation happens inside an operation whose
// admission read live <= max_bytes - headroom; between any such read and
// the allocation, each of the n threads has at most one partially-complete
// operation, and one operation allocates at most
// per_op = Storage::max_alloc_bytes + desc_slack * sizeof(op_desc<T>)
// bytes, so live never exceeds (max_bytes - n*per_op) + n*per_op.
//
// Full-queue policies:
//   * reject           — try_enqueue returns false; enqueue drops. The
//                        wait-free choice: admission is one counter read.
//   * block            — producers wait until a dequeue (or the reclaimer
//                        returning a segment) makes room, or close() is
//                        called. Deliberately forfeits wait-freedom for
//                        producers at the ceiling — same split as
//                        blocking_adapter documents for empty-queue waits;
//                        consumers and under-ceiling producers keep the
//                        wait-free step bound.
//   * overwrite_oldest — drop elements from the head until there is room
//                        (bounded-buffer telemetry semantics). If the queue
//                        is EMPTY and still over the ceiling (live bytes
//                        held by not-yet-reclaimed segments/descriptors),
//                        it degrades to reject: the ceiling is never
//                        exceeded by design, even transiently.
//
// This is an adapter, not a re-implementation: the inner queue is the
// unmodified wf_queue (any variant) over segment_storage, so every
// linearizability and helping property is inherited.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "storage/segment_storage.hpp"
#include "sync/cacheline.hpp"
#include "sync/thread_registry.hpp"
#include "sync/waiter_hub.hpp"

namespace kpq {

// Segment-storage variants of the paper's queues (same policy grid as the
// heap aliases in wf_queue.hpp).
template <typename T, typename R = hp_domain>
using wf_queue_base_seg =
    wf_queue<T, help_all, scan_max_phase, R, wf_options, segment_storage<T>>;
template <typename T, typename R = hp_domain>
using wf_queue_opt_seg =
    wf_queue<T, help_one, fetch_add_phase, R, wf_options, segment_storage<T>>;
template <typename T, typename R = hp_domain>
using wf_queue_fps_seg = wf_queue_fps<T, R, fps_options, segment_storage<T>>;

enum class full_policy : std::uint8_t { reject, block, overwrite_oldest };

struct bounded_config {
  /// Ceiling on the queue's total live bytes (nodes + descriptors +
  /// segments), as counted by its mem_counters. Must exceed the fixed
  /// construction footprint plus the admission headroom or every enqueue is
  /// rejected (the constructor asserts a sane floor).
  std::size_t max_bytes;
  full_policy policy = full_policy::reject;
  /// block policy: waiters re-check at this interval even without a
  /// notification — reclaimer scans return segment memory asynchronously to
  /// any dequeue, so space can appear with nobody to signal it.
  std::chrono::milliseconds block_recheck{1};
  /// Headroom slack for descriptor churn, per thread, in descriptors. The
  /// steady state allocates ~none (desc_pool recycles); this covers the
  /// cold-start and helping bursts between admission checks. docs/MEMORY.md
  /// §4 discusses the sizing.
  std::uint32_t desc_slack_per_thread = 8;
};

/// Counters for the policy outcomes (exported via stats(); the obs registry
/// picks them up structurally).
struct bounded_counters {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t overwritten = 0;  // elements dropped by overwrite_oldest
  std::uint64_t block_waits = 0;  // times a producer actually slept
};

template <typename T, typename Inner = wf_queue_opt_seg<T>>
class bounded_wf_queue {
 public:
  using value_type = T;
  using inner_type = Inner;
  using storage_type = typename Inner::storage_type;

  bounded_wf_queue(std::uint32_t max_threads, bounded_config cfg)
      : cfg_(cfg),
        headroom_(static_cast<std::size_t>(max_threads) *
                  (storage_type::max_alloc_bytes +
                   cfg.desc_slack_per_thread *
                       sizeof(typename Inner::desc_type))),
        q_(max_threads, &mc_) {
    // The ceiling must leave room for at least one admitted enqueue on top
    // of the construction footprint, or the queue is unusable.
    assert(static_cast<std::int64_t>(cfg_.max_bytes) >=
               mc_.live_bytes() + static_cast<std::int64_t>(headroom_) &&
           "max_bytes below construction footprint + admission headroom");
  }

  bounded_wf_queue(const bounded_wf_queue&) = delete;
  bounded_wf_queue& operator=(const bounded_wf_queue&) = delete;

  // ---------------------------------------------------------------- enqueue

  /// Policy-aware admission. Returns false iff the element was NOT inserted:
  /// reject → ceiling reached; block → queue closed (after waiting);
  /// overwrite_oldest → ceiling reached with nothing left to drop.
  bool try_enqueue(T value, std::uint32_t tid) {
    switch (cfg_.policy) {
      case full_policy::reject:
        if (!has_room()) {
          count(&bounded_counters::rejected, tid);
          return false;
        }
        break;
      case full_policy::block:
        if (!wait_for_room(tid)) {
          count(&bounded_counters::rejected, tid);
          return false;  // closed while waiting
        }
        break;
      case full_policy::overwrite_oldest:
        while (!has_room()) {
          if (!q_.dequeue(tid).has_value()) {
            // Empty yet over the ceiling: the remaining live bytes are
            // segments/descriptors awaiting reclamation. Never exceed the
            // ceiling — degrade to reject.
            count(&bounded_counters::rejected, tid);
            return false;
          }
          count(&bounded_counters::overwritten, tid);
        }
        break;
    }
    q_.enqueue(std::move(value), tid);
    count(&bounded_counters::admitted, tid);
    return true;
  }
  bool try_enqueue(T value) {
    return try_enqueue(std::move(value), this_thread_id());
  }

  /// mpmc_queue-compatible enqueue: applies the policy and discards the
  /// admission result. Use try_enqueue when rejection must be observed.
  void enqueue(T value, std::uint32_t tid) {
    (void)try_enqueue(std::move(value), tid);
  }
  void enqueue(T value) { enqueue(std::move(value), this_thread_id()); }

  // ---------------------------------------------------------------- dequeue

  std::optional<T> dequeue(std::uint32_t tid) {
    std::optional<T> v = q_.dequeue(tid);
    if (cfg_.policy == full_policy::block && v.has_value() &&
        hub_.maybe_waiters()) {
      // A dequeue frees at least one cell's worth of budget eventually;
      // wake one producer to re-check. The hub's seq_cst waiter count pairs
      // with the waiter's enlist-then-recheck, exactly as in
      // blocking_adapter.
      hub_.notify_one();
    }
    return v;
  }
  std::optional<T> dequeue() { return dequeue(this_thread_id()); }

  // ------------------------------------------------------------- lifecycle

  /// Unblocks every waiting producer (they return false). Consumers can
  /// keep draining; further try_enqueues fail under the block policy.
  void close() {
    auto lk = hub_.lock();  // orders the store against parked producers
    closed_.store(true, std::memory_order_seq_cst);
    hub_.notify_all(std::move(lk));
  }
  /// Lock-free on purpose: async::room_step re-checks this while already
  /// holding the room hub's lock — a locking read would self-deadlock.
  bool closed() const noexcept {
    return closed_.load(std::memory_order_seq_cst);
  }

  // -------------------------------------------------------- async admission

  /// One admission poll, no waiting, no policy dispatch: insert iff there is
  /// room right now. The async co_enqueue building block — a false return is
  /// backpressure to suspend on, not an outcome, so nothing is counted as
  /// rejected here.
  bool try_enqueue_nowait(T value, std::uint32_t tid) {
    if (!has_room()) return false;
    q_.enqueue(std::move(value), tid);
    count(&bounded_counters::admitted, tid);
    return true;
  }

  /// Room waiters' hub: dequeues notify it, close() broadcasts it, and the
  /// async layer enlists coroutine continuations on it for backpressure.
  waiter_hub& room_hub() noexcept { return hub_; }
  const waiter_hub& room_hub() const noexcept { return hub_; }

  /// Admission predicate, for waiters re-checking under the hub lock. A
  /// hint, like empty_hint: exact at the instant of the counter read.
  bool has_room_hint() const noexcept { return has_room(); }

  /// The block policy's liveness backstop (see wait_for_room): room waiters
  /// must re-poll at this interval even without a notification.
  std::chrono::milliseconds room_recheck_interval() const noexcept {
    return cfg_.block_recheck;
  }

  // ---------------------------------------------------------- observability

  std::uint32_t max_threads() const noexcept { return q_.max_threads(); }
  bool empty_hint(std::uint32_t tid) { return q_.empty_hint(tid); }
  bool empty_hint() { return q_.empty_hint(); }
  std::size_t unsafe_size() const { return q_.unsafe_size(); }
  std::size_t max_bytes() const noexcept { return cfg_.max_bytes; }
  full_policy policy() const noexcept { return cfg_.policy; }
  std::int64_t live_bytes() const noexcept { return mc_.live_bytes(); }
  const mem_counters& memory() const noexcept { return mc_; }
  inner_type& inner() noexcept { return q_; }
  storage_type& storage() noexcept { return q_.storage(); }
  segment_pool_stats pool_stats() const noexcept {
    return q_.storage().pool_stats();
  }

  bounded_counters stats() const {
    const auto read = [](const std::uint64_t& f) {
      return std::atomic_ref<const std::uint64_t>(f).load(
          std::memory_order_relaxed);
    };
    bounded_counters total;
    for (std::uint32_t i = 0; i < q_.max_threads(); ++i) {
      const bounded_counters& c = counters_[i].get();
      total.admitted += read(c.admitted);
      total.rejected += read(c.rejected);
      total.overwritten += read(c.overwritten);
      total.block_waits += read(c.block_waits);
    }
    return total;
  }

 private:
  bool has_room() const noexcept {
    return mc_.live_bytes() + static_cast<std::int64_t>(headroom_) <=
           static_cast<std::int64_t>(cfg_.max_bytes);
  }

  /// Block-policy wait: returns true when there is room, false when the
  /// queue was closed. Timed re-check because reclamation can free segments
  /// with no dequeue (hence no notify) accompanying it — the timeout is the
  /// liveness backstop for that enqueue-without-notify case, regression-
  /// tested by tests/storage_bounded_wakeup_test.cpp.
  bool wait_for_room(std::uint32_t tid) {
    if (has_room()) return true;  // fast path, no lock
    // kpq-block: the block admission policy is a documented blocking API
    // (like blocking_adapter) — the queue operation itself stays wait-free,
    // only admission under memory pressure waits
    thread_parker p;
    p.set_trace_tid(tid);  // hub events go to the same ring as the queue ops
    auto lk = hub_.lock();
    hub_.enlist(p, lk);
    count(&bounded_counters::block_waits, tid);
    bool room;
    // kpq-bound: blocking by documented contract (block admission policy);
    // each retry follows a notify or the block_recheck liveness timeout
    for (;;) {
      // Re-check after enlisting: a dequeue that saw no waiters must have
      // completed before our seq_cst enlist, so its space is visible here.
      room = has_room();
      if (room || closed_.load(std::memory_order_seq_cst)) break;
      // kpq-block: sanctioned bounded wait (see kpq-bound above)
      (void)p.park_for(hub_, lk, cfg_.block_recheck);
    }
    hub_.delist(p, lk);
    return room;
  }

  // Owner-thread-only slots, but stats() polls them live (the wakeup tests
  // spin on block_waits while producers park) — atomic_ref keeps the
  // single-writer increment a plain load+store while making the cross-
  // thread read well-defined.
  void count(std::uint64_t bounded_counters::* field, std::uint32_t tid) {
    std::atomic_ref<std::uint64_t> ref(counters_[tid].get().*field);
    ref.store(ref.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
  }

  bounded_config cfg_;
  std::size_t headroom_;
  mem_counters mc_;  // before q_: the inner queue's ctor attaches to it
  Inner q_;
  std::vector<padded<bounded_counters>> counters_{q_.max_threads()};

  waiter_hub hub_;
  // Written under the hub lock (close <-> park ordering), read lock-free
  // so the async room_step can poll it while holding the hub lock itself.
  std::atomic<bool> closed_{false};
};

}  // namespace kpq
