// The node-storage policy interface (ROADMAP item 1).
//
// The KP queue's dominant hot-path cost outside the algorithm itself is the
// per-element `new`/`delete` of list nodes plus the per-node reclamation
// traffic. This layer makes "where nodes live" a policy, the same move
// reclaim/reclaimer_concepts.hpp made for "when nodes die":
//
//   * heap_node_storage    — one heap allocation per node, one reclaimer
//                            retirement per node. Exactly the behavior the
//                            queues had before this layer existed; the
//                            default.
//   * segment_storage      — nodes are cells of fixed-size, segment-aligned
//                            arrays (Yang & Mellor-Crummey style; cf.
//                            Nikolaev's wCQ for the bounded-memory goal).
//                            Allocation is a per-thread bump pointer, and the
//                            reclaimer sees ONE retirement per segment
//                            instead of one per node (retire_range). This is
//                            what gives bounded_wf_queue its hard memory
//                            ceiling: live memory is a whole number of
//                            segments, and segments are the unit everything
//                            is accounted and reclaimed in.
//
// Contract
// --------
// A storage is created per container with (max_threads, accounting), where
// `accounting` is the owning container's mem_tracked mixin (may have a null
// mem_counters sink; storage must route every byte it allocates/frees
// through it so fig10's live-byte counter is exact).
//
//   node_type* n = s.alloc(tid, value, etid, reclaimer);
//       // construct a node; `reclaimer` is the container's domain — segment
//       // storage retires a just-sealed segment through it when the seal
//       // completes the segment (see segment_storage.hpp).
//   s.retire(tid, n, reclaimer);
//       // the node was unlinked by the winning head swing and may still be
//       // referenced by in-flight readers: hand it to the reclamation
//       // protocol. Called exactly once per node.
//   s.release(n);
//       // quiescent free (container destructor path): no concurrent reader
//       // can exist, the storage may recycle the memory immediately.
//
// `max_alloc_bytes` is the largest single heap allocation one alloc() call
// can perform — the quantity bounded_wf_queue's admission headroom is built
// from (docs/MEMORY.md has the ceiling argument).
//
// Lifetime rule for containers: declare the storage member BEFORE the
// reclaimer member. Segment retirements carry a callback into the storage
// object, so the reclaimer (whose destructor drains retired items) must be
// destroyed first.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/op_desc.hpp"
#include "reclaim/reclaimer_concepts.hpp"

namespace kpq {

/// Structural requirements shared by every node storage, checked against a
/// concrete reclaimer domain R (the container knows both types).
template <typename S, typename R>
concept node_storage_for =
    reclaimer_domain<R> &&
    requires(S s, std::uint32_t tid, typename S::value_type v,
             std::int32_t etid, typename S::node_type* n, R& r) {
      typename S::value_type;
      typename S::node_type;
      { s.alloc(tid, std::move(v), etid, r) } ->
          std::same_as<typename S::node_type*>;
      { s.retire(tid, n, r) };
      { s.release(n) };
      { S::max_alloc_bytes } -> std::convertible_to<std::size_t>;
    };

}  // namespace kpq
