// Segment-based node storage: fixed-size, segment-aligned arrays of node
// cells, allocated with a per-thread bump pointer and reclaimed at SEGMENT
// granularity (ROADMAP item 1; Yang & Mellor-Crummey's find_cell pages and
// Nikolaev's wCQ are the design points, see docs/MEMORY.md).
//
// Why: with heap storage every element costs one malloc, one free, and one
// reclaimer retirement. Here those costs amortize over a whole segment:
//
//   * alloc   — owner-only bump index into the thread's active segment; a
//               heap allocation (or a spare-segment reuse) happens once per
//               `cells_per_segment` nodes.
//   * retire  — an atomic consumed-count increment; the reclaimer sees ONE
//               retire_range() per segment instead of one retire() per node.
//   * memory  — live memory is a whole number of SegmentBytes blocks, the
//               unit bounded_wf_queue's hard ceiling is stated in.
//
// Protocol (the part that must be exactly right):
//
//   Each segment has an atomic `state` word: a consumed count in the low
//   bits plus a SEALED bit. The owning thread bump-allocates cells; when the
//   segment fills, the owner moves to a fresh segment and SEALS the old one
//   (fetch_or). Every dequeue-side retirement of a cell increments the
//   consumed count (fetch_add). Both RMWs return the previous word, so
//   exactly one of them observes the transition into
//   "sealed && consumed == capacity" — that thread owns handing the segment
//   to the reclaimer.
//
//   The reclaimer is given the segment as an address RANGE
//   (retire_range(), reclaim/): its scan keeps the segment alive while ANY
//   hazard slot points anywhere inside it. Cells are therefore never
//   destroyed or reused while a stale reader might still validate against
//   them — the same guarantee per-node delete had, at 1/cells_per_segment
//   the reclamation traffic. Node destructors run when the segment is
//   reclaimed, not when the cell is logically dequeued (payloads must
//   tolerate deferred destruction, which trivially they do for the
//   value types a concurrent queue carries; the T is copied OUT of the node
//   into the descriptor at dequeue time, see op_desc).
//
//   Reclaimed segments are recycled through a per-thread spare slot (the
//   YMC `handle->spare` idea): the reclaim callback parks the (cell-
//   destroyed) segment in its owner's spare slot if free, else frees it.
//   A thread opening a new segment first claims its spare — steady-state
//   traffic allocates nothing from the heap at all.
//
// ABA: a recycled segment reuses cell addresses, exactly like malloc reuses
// freed node addresses. The queues' hazard discipline (every CAS
// expected/desired value is pinned by the CASing thread) covers both cases
// identically.
//
// Lifetime: the reclaim callback dereferences this storage object, so the
// container MUST declare the storage before the reclaimer (storage outlives
// the reclaimer's destructor drain; see storage_concepts.hpp).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "core/op_desc.hpp"
#include "harness/mem_tracker.hpp"
#include "sync/cacheline.hpp"

namespace kpq {

/// Snapshot of the segment pool (exported through obs/registry.hpp; the
/// fig10 bench and fig_obs_overhead print it). Counts are monotonic totals
/// except the three occupancy gauges.
struct segment_pool_stats {
  std::uint64_t segments_allocated = 0;  // heap allocations, total
  std::uint64_t segments_freed = 0;      // returned to the heap, total
  std::uint64_t segments_recycled = 0;   // reused via a spare slot, total
  std::int64_t segments_live = 0;        // allocated - freed (incl. spares)
  std::int64_t segments_spare = 0;       // parked in spare slots now
  std::int64_t segments_retired = 0;     // handed to the reclaimer, not freed
  std::uint64_t segment_bytes = 0;       // configured segment size
  std::uint64_t cells_per_segment = 0;   // nodes per segment
};

template <typename T, std::size_t SegmentBytes = 4096,
          typename Node = wf_node<T>>
class segment_storage {
  static_assert((SegmentBytes & (SegmentBytes - 1)) == 0,
                "SegmentBytes must be a power of two (cells are mapped back "
                "to their segment by address masking)");

 public:
  using value_type = T;
  using node_type = Node;

 private:
  /// One node slot. Construction is deferred to alloc(), destruction to
  /// segment reclamation (see file comment).
  struct cell {
    alignas(alignof(node_type)) std::byte raw[sizeof(node_type)];
  };

  static constexpr std::uint64_t sealed_bit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t consumed_mask = sealed_bit - 1;

  struct segment_header {
    std::atomic<std::uint64_t> state{0};  // consumed count | sealed_bit
    std::uint32_t allocated = 0;          // bump index, owner-only
    std::uint32_t owner_tid = 0;          // whose spare slot recycling targets
  };

 public:
  static constexpr std::size_t cells_per_segment =
      (SegmentBytes - sizeof(segment_header)) / sizeof(cell);
  static_assert(cells_per_segment >= 1,
                "SegmentBytes too small for even one node cell");

  /// One alloc() call opens at most one new segment.
  static constexpr std::size_t max_alloc_bytes = SegmentBytes;

 private:
  struct segment : segment_header {
    cell cells[cells_per_segment];
  };
  static_assert(sizeof(segment) <= SegmentBytes);

 public:
  segment_storage(std::uint32_t max_threads, const mem_tracked* acct)
      : acct_(acct), active_(max_threads), spare_(max_threads) {}

  segment_storage(const segment_storage&) = delete;
  segment_storage& operator=(const segment_storage&) = delete;

  /// Quiescence plus a drained reclaimer required (container destructor
  /// order guarantees both): frees the active and spare segments. Sealed
  /// segments were already destroyed through release()/the reclaim callback.
  ~segment_storage() {
    for (auto& a : active_) {
      if (segment* s = a.get()) destroy_segment(s);
    }
    for (auto& sp : spare_) {
      if (segment* s = sp->load(std::memory_order_relaxed)) {
        free_segment_memory(s);  // cells already destroyed at reclaim
      }
    }
  }

  // ------------------------------------------------------------------ alloc

  template <typename R>
  node_type* alloc(std::uint32_t tid, T v, std::int32_t etid, R& reclaim) {
    segment* s = active_[tid].get();
    if (s == nullptr || s->allocated == cells_per_segment) {
      s = open_segment(tid, s, reclaim);
    }
    node_type* n =
        new (&s->cells[s->allocated].raw) node_type(std::move(v), etid);
    ++s->allocated;
    return n;
  }

  // ------------------------------------------------------------ retirement

  /// Dequeue-side retirement: count the cell consumed; the consumer that
  /// completes a sealed segment hands the WHOLE segment to the reclaimer as
  /// an address range (one retirement per segment).
  template <typename R>
  void retire(std::uint32_t tid, node_type* n, R& reclaim) {
    segment* s = segment_of(n);
    const std::uint64_t prev =
        s->state.fetch_add(1, std::memory_order_acq_rel);
    assert((prev & consumed_mask) < cells_per_segment);
    if ((prev & sealed_bit) != 0 &&
        (prev & consumed_mask) + 1 == cells_per_segment) {
      retire_segment(tid, s, reclaim);
    }
  }

  /// Quiescent release (container destructor): same counting, but a
  /// completed segment is destroyed immediately — no concurrent reader can
  /// exist.
  void release(node_type* n) noexcept {
    segment* s = segment_of(n);
    const std::uint64_t prev =
        s->state.fetch_add(1, std::memory_order_acq_rel);
    if ((prev & sealed_bit) != 0 &&
        (prev & consumed_mask) + 1 == cells_per_segment) {
      destroy_segment(s);
    }
    // Unsealed (active) segments are freed by ~segment_storage.
  }

  // ---------------------------------------------------------- observability

  segment_pool_stats pool_stats() const noexcept {
    segment_pool_stats st;
    st.segments_allocated = allocated_.load(std::memory_order_relaxed);
    st.segments_freed = freed_.load(std::memory_order_relaxed);
    st.segments_recycled = recycled_.load(std::memory_order_relaxed);
    st.segments_live = static_cast<std::int64_t>(st.segments_allocated) -
                       static_cast<std::int64_t>(st.segments_freed);
    st.segments_spare = spare_count_.load(std::memory_order_relaxed);
    st.segments_retired = retired_pending_.load(std::memory_order_relaxed);
    st.segment_bytes = SegmentBytes;
    st.cells_per_segment = cells_per_segment;
    return st;
  }

 private:
  static segment* segment_of(node_type* n) noexcept {
    return reinterpret_cast<segment*>(reinterpret_cast<std::uintptr_t>(n) &
                                      ~(SegmentBytes - 1));
  }

  /// Seal (and possibly complete) the exhausted active segment, then open a
  /// fresh one: spare slot first, heap as fallback.
  template <typename R>
  segment* open_segment(std::uint32_t tid, segment* old, R& reclaim) {
    if (old != nullptr) {
      const std::uint64_t prev =
          old->state.fetch_or(sealed_bit, std::memory_order_acq_rel);
      assert((prev & sealed_bit) == 0 && "active segment sealed twice");
      if ((prev & consumed_mask) == cells_per_segment) {
        // Every cell was already consumed: the seal completed the segment.
        retire_segment(tid, old, reclaim);
      }
    }
    segment* s = spare_[tid]->exchange(nullptr, std::memory_order_acq_rel);
    if (s != nullptr) {
      spare_count_.fetch_sub(1, std::memory_order_relaxed);
      recycled_.fetch_add(1, std::memory_order_relaxed);
      s->state.store(0, std::memory_order_relaxed);
      s->allocated = 0;
      s->owner_tid = tid;
    } else {
      acct_->account_alloc(SegmentBytes);
      allocated_.fetch_add(1, std::memory_order_relaxed);
      void* raw = ::operator new(SegmentBytes, std::align_val_t{SegmentBytes});
      s = new (raw) segment;
      s->owner_tid = tid;
    }
    active_[tid].get() = s;
    return s;
  }

  template <typename R>
  void retire_segment(std::uint32_t tid, segment* s, R& reclaim) {
    retired_pending_.fetch_add(1, std::memory_order_relaxed);
    reclaim.retire_range(tid, s, SegmentBytes, &reclaim_segment_fn, this);
  }

  /// Reclaimer callback: no hazard slot points into the segment anymore.
  /// Destroy the deferred node objects, then recycle the memory through the
  /// owner's spare slot (or free it if the slot is taken).
  static void reclaim_segment_fn(void* ctx, void* p) {
    auto* self = static_cast<segment_storage*>(ctx);
    auto* s = static_cast<segment*>(p);
    self->retired_pending_.fetch_sub(1, std::memory_order_relaxed);
    self->destroy_cells(s);
    segment* expected = nullptr;
    if (self->spare_[s->owner_tid]->compare_exchange_strong(
            expected, s, std::memory_order_acq_rel)) {
      self->spare_count_.fetch_add(1, std::memory_order_relaxed);
    } else {
      self->free_segment_memory(s);
    }
  }

  void destroy_cells(segment* s) noexcept {
    for (std::uint32_t i = 0; i < s->allocated; ++i) {
      reinterpret_cast<node_type*>(&s->cells[i].raw)->~node_type();
    }
    s->allocated = 0;
  }

  void destroy_segment(segment* s) noexcept {
    destroy_cells(s);
    free_segment_memory(s);
  }

  void free_segment_memory(segment* s) noexcept {
    acct_->account_free(SegmentBytes);
    freed_.fetch_add(1, std::memory_order_relaxed);
    s->~segment();
    ::operator delete(static_cast<void*>(s), std::align_val_t{SegmentBytes});
  }

  const mem_tracked* acct_;  // the owning container's accounting sink
  std::vector<padded<segment*>> active_;  // owner-only bump segment
  std::vector<padded<std::atomic<segment*>>> spare_;  // recycling slots
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::int64_t> spare_count_{0};
  std::atomic<std::int64_t> retired_pending_{0};
};

}  // namespace kpq
