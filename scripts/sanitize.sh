#!/usr/bin/env bash
# Run the test suite under sanitizers. Both configs must be 100% green; TSan
# is the one that caught the port's only genuine reclamation bug (see
# DESIGN.md, "Port findings").
#
# Usage:
#   scripts/sanitize.sh [mode ...] [-- ctest-args ...]
#
#   scripts/sanitize.sh                          # ASan+UBSan and TSan, all tests
#   scripts/sanitize.sh thread                   # TSan only, all tests
#   scripts/sanitize.sh thread -- -R 'Sharded'   # TSan, filtered ctest run
#   scripts/sanitize.sh tsan-storage             # TSan, storage-layer suites
#                                                # (segment retirement + the
#                                                # bounded queue's policies)
#   scripts/sanitize.sh tsan-scale-adaptive      # TSan + KPQ_TRACE=ON over
#                                                # the elastic-sharding and
#                                                # tuner suites
#   scripts/sanitize.sh tsan-async               # TSan + KPQ_TRACE=ON over
#                                                # the continuation layer and
#                                                # the coroutine front-end
#   scripts/sanitize.sh tsan-obs-pipeline        # TSan + KPQ_TRACE=ON over
#                                                # the latency pipeline
#                                                # (residency, timeline,
#                                                # telemetry pump, flight
#                                                # recorder)
set -euo pipefail
cd "$(dirname "$0")/.."

modes=()
while [[ $# -gt 0 && "$1" != "--" ]]; do
  modes+=("$1")
  shift
done
[[ $# -gt 0 ]] && shift  # drop the --
ctest_args=("$@")
[[ ${#modes[@]} -eq 0 ]] && modes=(address thread)

for mode in "${modes[@]}"; do
  filter=()
  extra_cmake=()
  dir_tag="$mode"
  if [[ "$mode" == "tsan-storage" ]]; then
    # Shortcut: TSan over every suite that exercises src/storage/ — the
    # segment-storage unit/stress tests, the bounded-policy tests, the
    # segment variants of the random-schedule linearizability cross-check,
    # and the reclaimers' retire_range path.
    mode=thread
    dir_tag=thread
    filter=(-R 'Storage|Bounded|Segment|RetireRange|MemAccounting|Reclaim')
  elif [[ "$mode" == "tsan-scale-adaptive" ]]; then
    # Shortcut: TSan over the elastic-sharding layer — scan-table publishes,
    # the tuner's control loop against live workers, the runtime patience
    # knob, and the table-routed sharded suites. Built with KPQ_TRACE=ON so
    # the tuner's trace writes race-check against the workers' ring writes
    # (its own build dir: the tracing default changes codegen everywhere).
    mode=thread
    dir_tag=scale-adaptive
    extra_cmake=(-DKPQ_TRACE=ON)
    filter=(-R 'Adaptive|Elastic|Tuner|ScanTable|Sharded|Bulk|HelpChunk')
  elif [[ "$mode" == "tsan-async" ]]; then
    # Shortcut: TSan over the waiter_hub continuation layer and everything
    # rebuilt on it — thread parkers (blocking_adapter, the bounded queue's
    # block policy and its lost-wakeup regressions) and coroutine resumers
    # (event loop, awaitables, select, cancellation, the broker example).
    # Built with KPQ_TRACE=ON so the waiter_park/waiter_resume trace writes
    # race-check against the hub's notify path (own build dir: the tracing
    # default changes codegen everywhere).
    mode=thread
    dir_tag=async
    extra_cmake=(-DKPQ_TRACE=ON)
    filter=(-R 'Async|Waiter|Parker|EventLoop|TimerWheel|Task\.|BoundedWakeup|Blocking|coro_broker')
  elif [[ "$mode" == "tsan-obs-pipeline" ]]; then
    # Shortcut: TSan over the end-to-end latency pipeline — residency
    # stamping inside the queues, the telemetry pump's concurrent registry
    # scrapes against worker mutation, the flight recorder (including the
    # crash child), timeline conversion, and the broker's --telemetry mode.
    # Built with KPQ_TRACE=ON so pump scrapes race-check against live ring
    # writes (own build dir: the tracing default changes codegen everywhere).
    mode=thread
    dir_tag=obs-pipeline
    extra_cmake=(-DKPQ_TRACE=ON)
    filter=(-R 'ObsResidency|ObsTelemetry|ObsFlight|ObsTimeline|ObsExport|EventLoop|coro_broker_telemetry')
  fi
  echo "=== sanitizer: $mode (build-$dir_tag-san) ==="
  cmake -B "build-$dir_tag-san" -G Ninja -DKPQ_SANITIZE="$mode" \
    ${extra_cmake[@]+"${extra_cmake[@]}"}
  cmake --build "build-$dir_tag-san"
  ctest --test-dir "build-$dir_tag-san" --output-on-failure \
    ${filter[@]+"${filter[@]}"} ${ctest_args[@]+"${ctest_args[@]}"}
done
