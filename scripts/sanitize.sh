#!/usr/bin/env bash
# Run the whole test suite under ASan+UBSan and under TSan. Both configs
# must be 100% green; TSan is the one that caught the port's only genuine
# reclamation bug (see DESIGN.md, "Port findings").
set -euo pipefail
cd "$(dirname "$0")/.."

for mode in address thread; do
  echo "=== sanitizer: $mode ==="
  cmake -B "build-$mode-san" -G Ninja -DKPQ_SANITIZE="$mode"
  cmake --build "build-$mode-san"
  ctest --test-dir "build-$mode-san" --output-on-failure
done
