#!/usr/bin/env bash
# Run the test suite under sanitizers. Both configs must be 100% green; TSan
# is the one that caught the port's only genuine reclamation bug (see
# DESIGN.md, "Port findings").
#
# Usage:
#   scripts/sanitize.sh [mode ...] [-- ctest-args ...]
#
#   scripts/sanitize.sh                          # ASan+UBSan and TSan, all tests
#   scripts/sanitize.sh thread                   # TSan only, all tests
#   scripts/sanitize.sh thread -- -R 'Sharded'   # TSan, filtered ctest run
#   scripts/sanitize.sh tsan-storage             # TSan, storage-layer suites
#                                                # (segment retirement + the
#                                                # bounded queue's policies)
set -euo pipefail
cd "$(dirname "$0")/.."

modes=()
while [[ $# -gt 0 && "$1" != "--" ]]; do
  modes+=("$1")
  shift
done
[[ $# -gt 0 ]] && shift  # drop the --
ctest_args=("$@")
[[ ${#modes[@]} -eq 0 ]] && modes=(address thread)

for mode in "${modes[@]}"; do
  filter=()
  if [[ "$mode" == "tsan-storage" ]]; then
    # Shortcut: TSan over every suite that exercises src/storage/ — the
    # segment-storage unit/stress tests, the bounded-policy tests, the
    # segment variants of the random-schedule linearizability cross-check,
    # and the reclaimers' retire_range path.
    mode=thread
    filter=(-R 'Storage|Bounded|Segment|RetireRange|MemAccounting|Reclaim')
  fi
  echo "=== sanitizer: $mode ==="
  cmake -B "build-$mode-san" -G Ninja -DKPQ_SANITIZE="$mode"
  cmake --build "build-$mode-san"
  ctest --test-dir "build-$mode-san" --output-on-failure \
    ${filter[@]+"${filter[@]}"} ${ctest_args[@]+"${ctest_args[@]}"}
done
