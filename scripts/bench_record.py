#!/usr/bin/env python3
"""Record and compare benchmark baselines (schema kpq-bench-1).

Two subcommands over the figure benches (fig7, fig8, fig10, fig_sharding,
fig_obs_overhead, fig_broker):

  record    Run each bench's sweep with --json and write BENCH_<fig>.json at
            the repo root. These files are the committed baselines.
  compare   Re-run (or take --candidate-dir) and diff against the committed
            baselines, point by point on the primary metric of each series.

  --smoke   Reduced-scale record into a temp dir + schema validation +
            structure-only comparison against the committed baselines (series
            present, schema valid). Used by the CI bench-smoke job, where
            shared-runner timing is too noisy for value comparisons. A
            baseline naming a bench binary the build didn't produce is
            skipped with a warning rather than aborting the whole pass.

Regression policy
-----------------
Two classes of finding, gated differently:

  STRUCTURAL — schema invalid, a series disappeared, a point vanished, or
  the baseline's params no longer match the sweep definition. These are
  deterministic properties of the artifacts, not of machine speed, so they
  ALWAYS exit non-zero (CI hard-fails on them; no flag needed). A changed
  sweep is fixed by re-recording the baseline, not by ignoring it.

  PERF — the primary metric worsened by more than --threshold (default 15%,
  comfortably above the ~3% quiet-machine noise in EXPERIMENTS.md; CI
  runners are far noisier). These WARN by default; pass --fail to turn them
  into a non-zero exit for gating jobs.

Primary metric per point: mean_s (time, lower is better) or mean_bytes
(space, lower is better) — whichever the series carries.

Stdlib only. Examples:
  scripts/bench_record.py record
  scripts/bench_record.py compare
  scripts/bench_record.py compare --candidate-dir /tmp/run2 --fail
  scripts/bench_record.py --smoke
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Sweep definitions: bench binary + args for the committed baseline
# ("record") and for the CI smoke run ("smoke"). Scales are deliberately
# modest — baselines must be reproducible on a small machine.
FIGS = {
    "fig7": {
        "bin": "fig7_enq_deq",
        "record": ["--threads", "4", "--iters", "10000", "--reps", "3"],
        "smoke": ["--threads", "2", "--iters", "1000", "--reps", "2"],
    },
    "fig8": {
        "bin": "fig8_fifty_fifty",
        "record": ["--threads", "4", "--iters", "10000", "--reps", "3"],
        "smoke": ["--threads", "2", "--iters", "1000", "--reps", "2"],
    },
    "fig10": {
        "bin": "fig10_space",
        "record": ["--max-size", "100000", "--threads", "4"],
        "smoke": ["--max-size", "1000", "--threads", "2", "--iters", "500"],
    },
    "fig_sharding": {
        "bin": "fig_sharding",
        "record": ["--threads", "4", "--iters", "5000", "--reps", "3"],
        "smoke": ["--threads", "2", "--iters", "1000", "--reps", "2"],
    },
    "fig_obs_overhead": {
        "bin": "fig_obs_overhead",
        "record": ["--threads", "4", "--iters", "5000", "--reps", "3"],
        "smoke": ["--threads", "2", "--iters", "1000", "--reps", "2"],
    },
    "fig_residency": {
        "bin": "fig_residency",
        "record": ["--threads", "4", "--iters", "5000", "--reps", "3"],
        "smoke": ["--threads", "2", "--iters", "1000", "--reps", "2"],
    },
    # Coroutine front-end broker (gated on KPQ_HAS_COROUTINES at build time;
    # the smoke pass skips it with a warning when the compiler can't build it).
    "fig_broker": {
        "bin": "fig_broker",
        "record": ["--sessions", "10000", "--reps", "3"],
        "smoke": ["--sessions", "1000", "--reps", "2"],
    },
}

PRIMARY_METRICS = ("mean_s", "mean_bytes", "mean")


def baseline_path(fig, directory):
    return os.path.join(directory, f"BENCH_{fig}.json")


def run_fig(fig, scale, build_dir, out_path):
    """Run one bench sweep; returns the parsed JSON doc, or None when the
    binary is missing on a smoke run (a partial build shouldn't crash the
    whole CI smoke pass — the skip is reported as a warning instead)."""
    spec = FIGS[fig]
    binary = os.path.join(build_dir, "bench", spec["bin"])
    if not os.path.exists(binary):
        if scale == "smoke":
            print(f"warning: [{fig}] bench binary not found: {binary} — "
                  f"skipped (build the '{spec['bin']}' target to cover it)")
            return None
        sys.exit(f"bench binary not found: {binary} (build the repo first)")
    cmd = [binary, *spec[scale], "--json", out_path]
    print(f"[{fig}] {' '.join(cmd)}")
    subprocess.run(cmd, check=True, cwd=REPO,
                   stdout=subprocess.DEVNULL if scale == "smoke" else None)
    with open(out_path) as f:
        doc = json.load(f)
    if doc.get("schema") != "kpq-bench-1":
        sys.exit(f"{out_path}: unexpected schema {doc.get('schema')!r}")
    return doc


def validate(paths):
    subprocess.run(
        [sys.executable, os.path.join(REPO, "scripts", "validate_bench_json.py"),
         *paths],
        check=True, cwd=REPO)


def load(path):
    with open(path) as f:
        return json.load(f)


def primary_metric(point):
    for key in PRIMARY_METRICS:
        if key in point:
            return key
    return None


def index_points(doc):
    """{series name: {x: point}}"""
    out = {}
    for series in doc.get("series", []):
        out[series["name"]] = {p["x"]: p for p in series.get("points", [])}
    return out


def compare_doc(fig, base, cand, threshold_pct, structural_only):
    """Returns (structural, perf, notes): lists of message strings.
    Structural findings are always fatal to the caller; perf deltas are
    gated behind --fail."""
    structural, perf, notes = [], [], []
    bseries, cseries = index_points(base), index_points(cand)

    for name in bseries:
        if name not in cseries:
            structural.append(f"{fig}: series '{name}' disappeared")
    for name in cseries:
        if name not in bseries:
            notes.append(f"{fig}: new series '{name}' (no baseline)")

    if structural_only:
        # Smoke runs use reduced sweeps: params and x-values legitimately
        # differ from the committed baseline, so the per-point and params
        # checks below don't apply — only series presence (above) and
        # schema validity (validate()) gate the smoke pass.
        return structural, perf, notes

    def stable_params(doc):
        # tick_hz is a per-run TSC estimate, not a sweep parameter — two
        # runs of the same sweep always differ on it.
        return {k: v for k, v in (doc.get("params") or {}).items()
                if k not in ("tick_hz",)}

    if stable_params(base) != stable_params(cand):
        structural.append(
            f"{fig}: params differ from baseline — the sweep definition "
            f"changed, values are not comparable; re-record with "
            f"'scripts/bench_record.py record --figs {fig}'")
        return structural, perf, notes

    for name, bpoints in bseries.items():
        for x, bp in bpoints.items():
            cp = cseries.get(name, {}).get(x)
            if cp is None:
                structural.append(f"{fig}: '{name}' lost point x={x}")
                continue
            key = primary_metric(bp)
            if key is None or key not in cp:
                continue
            bv, cv = bp[key], cp[key]
            if bv <= 0:
                continue
            delta = 100.0 * (cv - bv) / bv
            if delta > threshold_pct:
                perf.append(
                    f"{fig}: '{name}' x={x} {key} {bv:.6g} -> {cv:.6g} "
                    f"(+{delta:.1f}% > {threshold_pct:.0f}%)")
            elif delta < -threshold_pct:
                notes.append(
                    f"{fig}: '{name}' x={x} {key} improved {delta:.1f}%")
    return structural, perf, notes


def cmd_record(args):
    paths = []
    for fig in args.figs:
        path = baseline_path(fig, REPO)
        run_fig(fig, "record", args.build_dir, path)
        paths.append(path)
    validate(paths)
    print(f"recorded baselines: {', '.join(os.path.basename(p) for p in paths)}")


def cmd_compare(args):
    all_structural, all_perf, all_notes = [], [], []
    with tempfile.TemporaryDirectory() as tmp:
        for fig in args.figs:
            bpath = baseline_path(fig, REPO)
            if not os.path.exists(bpath):
                all_notes.append(f"{fig}: no committed baseline "
                                 f"({os.path.basename(bpath)}) — skipped")
                continue
            if args.candidate_dir:
                cpath = baseline_path(fig, args.candidate_dir)
                if not os.path.exists(cpath):
                    all_structural.append(f"{fig}: candidate missing "
                                          f"{os.path.basename(cpath)}")
                    continue
                cand = load(cpath)
            else:
                cpath = baseline_path(fig, tmp)
                cand = run_fig(fig, "record", args.build_dir, cpath)
            structural, perf, notes = compare_doc(fig, load(bpath), cand,
                                                  args.threshold, False)
            all_structural += structural
            all_perf += perf
            all_notes += notes
    report(all_structural, all_perf, all_notes, args.fail)


def cmd_smoke(args):
    with tempfile.TemporaryDirectory() as tmp:
        covered, paths = [], []
        all_structural, all_perf, all_notes = [], [], []
        for fig in args.figs:
            cpath = baseline_path(fig, tmp)
            cand = run_fig(fig, "smoke", args.build_dir, cpath)
            if cand is None:
                all_notes.append(f"{fig}: bench binary missing — skipped")
                continue
            covered.append(fig)
            paths.append(cpath)
            bpath = baseline_path(fig, REPO)
            if os.path.exists(bpath):
                structural, perf, notes = compare_doc(fig, load(bpath), cand,
                                                      args.threshold,
                                                      structural_only=True)
                all_structural += structural
                all_perf += perf
                all_notes += notes
            else:
                all_notes.append(f"{fig}: no committed baseline — "
                                 f"schema check only")
        if paths:
            validate(paths)
    if covered:
        print("smoke: schema valid for", ", ".join(covered))
    report(all_structural, all_perf, all_notes, args.fail)


def report(structural, perf, notes, fail):
    for n in notes:
        print(f"note: {n}")
    for s in structural:
        print(f"STRUCTURAL: {s}")
    for r in perf:
        print(f"REGRESSION: {r}")
    if structural:
        # Structural breakage is deterministic — never downgraded to a
        # warning, with or without --fail.
        sys.exit(f"{len(structural)} structural failure(s)")
    if perf:
        if fail:
            sys.exit(1)
        print(f"({len(perf)} perf regression(s); warn-only — "
              f"pass --fail to gate)")
    else:
        print("no regressions")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("command", nargs="?", choices=["record", "compare"],
                    help="record baselines or compare against them")
    ap.add_argument("--smoke", action="store_true",
                    help="reduced-scale run + schema/structure check (CI)")
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    ap.add_argument("--figs", default=",".join(FIGS),
                    help=f"comma list from: {','.join(FIGS)}")
    ap.add_argument("--candidate-dir",
                    help="compare: take BENCH_<fig>.json from here instead "
                         "of re-running")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="regression threshold in %% on the primary metric "
                         "(default 15; machine noise is ~3%%)")
    ap.add_argument("--fail", action="store_true",
                    help="exit non-zero on regressions (default: warn)")
    args = ap.parse_args()
    args.figs = [f.strip() for f in args.figs.split(",") if f.strip()]
    for f in args.figs:
        if f not in FIGS:
            sys.exit(f"unknown fig '{f}' (choose from {', '.join(FIGS)})")

    if args.smoke:
        cmd_smoke(args)
    elif args.command == "record":
        cmd_record(args)
    elif args.command == "compare":
        cmd_compare(args)
    else:
        sys.exit("nothing to do: give a command (record|compare) or --smoke")


if __name__ == "__main__":
    main()
