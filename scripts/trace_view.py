#!/usr/bin/env python3
"""Convert a raw kpq trace dump (JSONL) to Chrome/Perfetto timeline JSON.

The raw form is what obs::dump_trace_jsonl and the crash flight recorder
write (src/obs/timeline.hpp documents it):

    {"kpq_trace_raw":1,"tick_hz":<hz>,"dropped":<n>,"reason":"<why>"}
    {"ts":<ticks>,"tid":<t>,"kind":<k>,"kind_name":"<n>","phase":<p>,"aux":<a>}
    ...
    {"metric":"<name>","value":<v>}          (registry lines, optional)

This script performs the same conversion obs::trace_to_timeline performs
in-process: publish/complete pairs become "X" slices, help episodes become
"X" slices with an "s"/"f" flow arrow to the victim operation's completion,
everything else becomes a thread-scoped instant. Open the output at
https://ui.perfetto.dev or chrome://tracing.

Usage:
    trace_view.py DUMP [-o OUT.json] [--summary]

With --summary, also prints per-kind event counts, per-thread totals, the
registry lines, and the flow-arrow count to stderr. Stdlib only.
"""

import argparse
import collections
import json
import sys

SCHEMA = "kpq-trace-1"

# Kind families the converter pairs into slices; everything else is a point.
OP_PAIRS = {
    "enq_publish": ("enq", "enqueue"),
    "deq_publish": ("deq", "dequeue"),
    "enq_complete": ("enq", "enqueue"),
    "deq_complete": ("deq", "dequeue"),
}


def read_dump(path):
    header, events, metrics = None, [], []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                # A crash dump's final line may be torn mid-write; tolerate.
                print(f"warning: skipping unparseable line {lineno}",
                      file=sys.stderr)
                continue
            if obj.get("kpq_trace_raw") == 1:
                header = obj
            elif "kind_name" in obj:
                events.append(obj)
            elif "metric" in obj:
                metrics.append(obj)
    if header is None:
        sys.exit(f"error: {path} has no kpq_trace_raw header line")
    events.sort(key=lambda e: e["ts"])
    return header, events, metrics


def convert(header, events):
    tick_hz = float(header.get("tick_hz", 1e9)) or 1e9
    base = events[0]["ts"] if events else 0

    def to_us(ticks):
        return (ticks - base) / tick_hz * 1e6

    out = []
    out.append({"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                "args": {"name": "kpq"}})
    for tid in sorted({e["tid"] for e in events}):
        out.append({"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                    "args": {"name": f"worker {tid}"}})

    # Pass 1: completions (flow targets) and help episodes. Per-tid ops are
    # sequential, so one pending slot per (tid, family) pairs the points.
    completions, episodes = [], []
    pending_help = {}
    for e in events:
        kind = e["kind_name"]
        if kind == "help_start":
            pending_help[e["tid"]] = e
        elif kind == "help_finish":
            start = pending_help.pop(e["tid"], None)
            if start is not None:
                episodes.append({"helper": e["tid"], "victim": e["aux"],
                                 "victim_phase": e["phase"],
                                 "start": start["ts"], "finish": e["ts"]})
        elif kind in ("enq_complete", "deq_complete"):
            completions.append(e)

    # Pass 2: slices and instants.
    pending = {}
    for e in events:
        kind = e["kind_name"]
        if kind in ("enq_publish", "deq_publish"):
            pending[(e["tid"], OP_PAIRS[kind][0])] = e
        elif kind in ("enq_complete", "deq_complete"):
            fam, name = OP_PAIRS[kind]
            pub = pending.pop((e["tid"], fam), None)
            if pub is None:
                continue
            ev = {"name": name, "ph": "X", "pid": 0, "tid": e["tid"],
                  "ts": to_us(pub["ts"]),
                  "dur": max(to_us(e["ts"]) - to_us(pub["ts"]), 0.0),
                  "cat": "op", "args": {"phase": e["phase"]}}
            if kind == "deq_complete":
                ev["args"]["hit"] = e["aux"] != 0
            out.append(ev)
        elif kind == "help_start":
            pending[(e["tid"], "help")] = e
        elif kind == "help_finish":
            start = pending.pop((e["tid"], "help"), None)
            if start is None:
                continue
            out.append({"name": "help", "ph": "X", "pid": 0, "tid": e["tid"],
                        "ts": to_us(start["ts"]),
                        "dur": max(to_us(e["ts"]) - to_us(start["ts"]), 0.0),
                        "cat": "help",
                        "args": {"victim": e["aux"],
                                 "victim_phase": e["phase"]}})
        else:
            out.append({"name": kind, "ph": "i", "pid": 0, "tid": e["tid"],
                        "ts": to_us(e["ts"]), "s": "t", "cat": "event",
                        "args": {"phase": e["phase"], "aux": e["aux"]}})

    # Flow arrows: helper's finished episode -> the victim operation's first
    # completion with the episode's phase at or after the help began.
    flow_id = 1
    for ep in episodes:
        target = next((c for c in completions
                       if c["tid"] == ep["victim"]
                       and c["phase"] == ep["victim_phase"]
                       and c["ts"] >= ep["start"]), None)
        if target is None:
            continue
        out.append({"name": "helped", "ph": "s", "pid": 0,
                    "tid": ep["helper"], "ts": to_us(ep["finish"]),
                    "cat": "help_flow", "id": flow_id})
        out.append({"name": "helped", "ph": "f", "pid": 0,
                    "tid": target["tid"], "ts": to_us(target["ts"]),
                    "cat": "help_flow", "id": flow_id, "bp": "e"})
        flow_id += 1

    return {
        "kpqTraceSchema": SCHEMA,
        "displayTimeUnit": "ns",
        "otherData": {
            "tick_hz": tick_hz,
            "dropped_events": header.get("dropped", 0),
            "event_count": len(events),
            "reason": str(header.get("reason", "")),
        },
        "traceEvents": out,
    }, flow_id - 1


def summarize(header, events, metrics, flows):
    by_kind = collections.Counter(e["kind_name"] for e in events)
    by_tid = collections.Counter(e["tid"] for e in events)
    print(f"reason: {header.get('reason', '?')}  "
          f"tick_hz: {header.get('tick_hz', '?')}  "
          f"dropped: {header.get('dropped', 0)}", file=sys.stderr)
    print(f"events: {len(events)} across {len(by_tid)} threads, "
          f"{flows} helper->helped flow arrow(s)", file=sys.stderr)
    for kind, n in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:>16}: {n}", file=sys.stderr)
    for tid, n in sorted(by_tid.items()):
        print(f"  worker {tid}: {n} events", file=sys.stderr)
    if metrics:
        print(f"registry snapshot ({len(metrics)} metrics):", file=sys.stderr)
        for m in metrics:
            print(f"  {m['metric']} = {m['value']}", file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("dump", help="raw trace dump (JSONL)")
    parser.add_argument("-o", "--output", default=None,
                        help="timeline JSON path (default: stdout)")
    parser.add_argument("--summary", action="store_true",
                        help="print per-kind/per-thread counts to stderr")
    args = parser.parse_args()

    header, events, metrics = read_dump(args.dump)
    doc, flows = convert(header, events)
    text = json.dumps(doc, indent=1)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text + "\n")
    else:
        print(text)
    if args.summary:
        summarize(header, events, metrics, flows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
