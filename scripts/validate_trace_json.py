#!/usr/bin/env python3
"""Validate kpq-trace-1 timeline JSON against scripts/trace_schema.json.

Stdlib only (CI containers have no jsonschema); same draft-07 subset
interpreter as validate_bench_json.py: type, enum, required, properties,
additionalProperties (schema form), items, minItems.

On top of the schema, this checks the trace-event semantics the schema
language cannot express:

  * every "X" slice carries ts and a non-negative dur;
  * flow arrows pair up: each "s" (flow start) has an "f" (flow end) with
    the same id, and vice versa;
  * with --require-flow, at least one complete s/f pair must exist (CI uses
    this on the checked-in fixture so the helper->helped arrow path cannot
    silently regress).

Usage: validate_trace_json.py [--schema SCHEMA] [--require-flow] FILE ...
Exit status 0 iff every file validates.
"""

import argparse
import json
import math
import os
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def check(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected {'/'.join(types)}, "
                          f"got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key '{req}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                check(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                check(sub, extra, f"{path}.{key}", errors)
    elif isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            errors.append(f"{path}: {len(value)} items < "
                          f"minItems {schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, sub in enumerate(value):
                check(sub, items, f"{path}[{i}]", errors)
    elif isinstance(value, float) and not math.isfinite(value):
        errors.append(f"{path}: non-finite number {value}")


def check_semantics(doc, require_flow, errors):
    events = doc.get("traceEvents", [])
    starts, ends = {}, {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            continue
        ph = e.get("ph")
        path = f"$.traceEvents[{i}]"
        if ph == "X":
            if "ts" not in e or "dur" not in e:
                errors.append(f"{path}: 'X' slice needs ts and dur")
            elif e["dur"] < 0:
                errors.append(f"{path}: negative dur {e['dur']}")
        elif ph in ("s", "f"):
            if "id" not in e:
                errors.append(f"{path}: flow event needs an id")
                continue
            (starts if ph == "s" else ends).setdefault(e["id"], []).append(i)
    for fid, idxs in starts.items():
        if fid not in ends:
            errors.append(f"flow id {fid}: 's' at index {idxs[0]} has no 'f'")
    for fid, idxs in ends.items():
        if fid not in starts:
            errors.append(f"flow id {fid}: 'f' at index {idxs[0]} has no 's'")
    pairs = sum(1 for fid in starts if fid in ends)
    if require_flow and pairs == 0:
        errors.append("--require-flow: no complete s/f flow-arrow pair "
                      "(the helper->helped causality path emitted none)")
    return pairs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "trace_schema.json"))
    parser.add_argument("--require-flow", action="store_true",
                        help="fail unless >=1 complete s/f flow pair exists")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    failed = False
    for path in args.files:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: {exc}")
            failed = True
            continue
        errors = []
        check(doc, schema, "$", errors)
        pairs = check_semantics(doc, args.require_flow, errors)
        if errors:
            failed = True
            print(f"FAIL {path}:")
            for err in errors[:20]:
                print(f"  {err}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            n = len(doc.get("traceEvents", []))
            print(f"OK   {path} ({n} events, {pairs} flow pairs)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
