#!/usr/bin/env python3
"""Validate bench --json output against scripts/bench_schema.json.

Stdlib only (CI containers have no jsonschema). Implements the small
draft-07 subset the schema actually uses: type, enum, required,
properties, additionalProperties (schema form), items, minItems.

Usage: validate_bench_json.py [--schema SCHEMA] FILE [FILE ...]
Exit status 0 iff every file validates.
"""

import argparse
import json
import math
import os
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def check(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected {'/'.join(types)}, "
                          f"got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key '{req}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                check(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                check(sub, extra, f"{path}.{key}", errors)
    elif isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            errors.append(f"{path}: {len(value)} items < "
                          f"minItems {schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, sub in enumerate(value):
                check(sub, items, f"{path}[{i}]", errors)
    elif isinstance(value, float) and not math.isfinite(value):
        # The exporters sanitize non-finite values to 0; a nan/inf leaking
        # through is a bug even where the schema just says "number".
        errors.append(f"{path}: non-finite number {value}")


def validate_file(path, schema):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"$: cannot parse: {e}"]
    errors = []
    check(doc, schema, "$", errors)
    return errors


def main():
    default_schema = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  "bench_schema.json")
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--schema", default=default_schema)
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)

    ok = True
    for path in args.files:
        errors = validate_file(path, schema)
        if errors:
            ok = False
            print(f"FAIL {path}")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"OK   {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
