#!/usr/bin/env bash
# Reproduce the CI static-analysis gate locally with one command:
#
#   scripts/static_analysis.sh [build-dir]
#
# Layers (docs/STATIC_ANALYSIS.md):
#   1. kpq-lint        — project-specific concurrency rules R1-R4
#   2. its fixture suite — so a broken linter cannot greenwash the tree
#   3. clang-tidy      — generic bug classes over compile_commands.json
#   4. clang-format    — formatting gate (--dry-run -Werror)
#
# clang-tidy / clang-format are skipped with a notice when not installed
# (the token-level kpq-lint front-end carries the gate everywhere); CI
# installs them, so a local pass here plus a clean format is the full gate.
set -u
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
status=0

echo "== kpq-lint (R1-R4) =="
if ! PYTHONPATH="$ROOT/tools/kpq_lint" python3 -m kpq_lint \
    --repo "$ROOT" --build-dir "$BUILD"; then
  status=1
fi

echo "== kpq-lint fixture suite =="
if ! (cd "$ROOT/tools/kpq_lint" && PYTHONPATH=. \
    python3 -m unittest discover -q -s tests); then
  status=1
fi

if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD/compile_commands.json" ]; then
    echo "== clang-tidy =="
    # Walk the TUs the build actually compiles; headers are pulled in via
    # HeaderFilterRegex in .clang-tidy.
    mapfile -t tus < <(python3 -c "
import json, sys
for e in json.load(open('$BUILD/compile_commands.json')):
    print(e['file'])
" | sort -u)
    if ! clang-tidy -p "$BUILD" --quiet "${tus[@]}"; then
      status=1
    fi
  else
    echo "clang-tidy: $BUILD/compile_commands.json missing — configure" \
         "first: cmake -B '$BUILD' -S '$ROOT' (README: the" \
         "compile_commands contract)" >&2
    status=1
  fi
else
  echo "clang-tidy: not installed — skipped (CI runs it)"
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format =="
  if ! git -C "$ROOT" ls-files '*.hpp' '*.cpp' '*.h' \
      | xargs -r clang-format --dry-run -Werror; then
    status=1
  fi
else
  echo "clang-format: not installed — skipped (CI runs it)"
fi

if [ "$status" -eq 0 ]; then
  echo "static analysis: clean"
else
  echo "static analysis: FAILED (see above)" >&2
fi
exit "$status"
