#!/usr/bin/env bash
# Full reproduction run: configure, build, test, regenerate every paper
# figure and every beyond-paper bench. Outputs land in test_output.txt and
# bench_output.txt at the repo root.
#
# Usage:
#   scripts/reproduce.sh              # CI-scale defaults (minutes)
#   KPQ_PAPER_SCALE=1 scripts/reproduce.sh   # paper-scale iteration counts
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

EXTRA=()
if [[ "${KPQ_PAPER_SCALE:-0}" == "1" ]]; then
  # The paper: 1,000,000 iterations/thread, 10 repetitions, threads 1..16.
  EXTRA=(--iters 1000000 --reps 10 --full)
  echo "Running at PAPER SCALE; expect hours on small machines." >&2
fi

{
  for b in build/bench/*; do
    echo "=== $(basename "$b") ==="
    case "$(basename "$b")" in
      fig7_enq_deq|fig8_fifty_fifty|fig9_ablation)
        "$b" "${EXTRA[@]}" ;;
      *)
        "$b" ;;
    esac
    echo
  done
} 2>&1 | tee bench_output.txt
