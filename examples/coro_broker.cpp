// Example: an event-loop request broker serving tens of thousands of
// suspended coroutine sessions over sharded wait-free queues.
//
//   build/examples/coro_broker [sessions] [shards] [workers] [--telemetry]
//
// The service shape the async front-end exists for: each SESSION is a
// coroutine that submits one echo request and suspends until its response
// arrives; a handful of WORKER coroutines multiplex every shard with
// co_select (async_sharded::co_dequeue_any), echo the payload, and resume
// the waiting session. All of it runs on ONE event-loop thread — the peak
// number of in-flight (spawned, not yet completed) coroutines equals the
// session count, while the thread count stays 1.
//
// Requests route to shards by key_hash on the session id, so each
// session's traffic stays on one lane (per-key FIFO) no matter which
// thread enqueues — the Kafka-partitioner contract from
// scale/shard_policy.hpp. NOTE: affinity routing would be useless here:
// every enqueue happens on the single loop thread, so tid-based routing
// would funnel all sessions into one shard.
//
// The example validates itself and exits nonzero on any inconsistency:
//   * every session completes with the correct echo (payload ^ kEchoMask),
//   * every request is served exactly once,
//   * the in-flight peak reached the session count,
//   * >= 2 shards actually carried traffic,
//   * the queues drain dry (graceful shutdown: last session closes all
//     shards, workers observe closed-and-drained and exit, run() returns).
//
// With --telemetry the broker also runs the live observability pipeline:
// a telemetry pump samples a metrics registry (loop health gauges + per-
// shard waiter-hub stats) every 10 ms from a background thread WHILE the
// loop runs, appends each snapshot to coro_broker_telemetry.jsonl, rewrites
// coro_broker_telemetry.prom for textfile collection, and keeps an armed
// crash flight recorder's registry buffer fresh — the service wiring
// docs/OBSERVABILITY.md's "Pipeline" section describes.
#include <coroutine>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <cstring>
#include <string>

#include "async/async_queue.hpp"
#include "async/event_loop.hpp"
#include "async/task.hpp"
#include "core/wf_queue.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_ring.hpp"
#include "scale/async_shards.hpp"
#include "scale/shard_policy.hpp"

namespace {

constexpr std::uint64_t kEchoMask = 0xa5a5'5a5a'c3c3'3c3cULL;

struct request {
  std::uint64_t session = 0;
  std::uint64_t payload = 0;
  std::uint64_t response = 0;
  int served = 0;  // exactly-once check: a worker bumps this when echoing
  bool done = false;
  std::coroutine_handle<> h{};  // the suspended session, resumed via post
};

struct session_key {
  std::uint64_t operator()(const request* r) const noexcept {
    return r->session;
  }
};

using broker_shards =
    kpq::async::async_sharded<kpq::wf_queue_opt<request*>,
                              kpq::key_hash_shards<session_key>>;

// Suspend until a worker marks the request done and posts our handle.
struct echo_awaiter {
  request* r;
  bool await_ready() const noexcept { return r->done; }
  void await_suspend(std::coroutine_handle<> h) noexcept { r->h = h; }
  std::uint64_t await_resume() const noexcept { return r->response; }
};

struct shared_state {
  broker_shards* shards = nullptr;
  std::uint64_t sessions = 0;
  std::uint64_t completed = 0;
  std::uint64_t served = 0;
  std::uint64_t echo_errors = 0;
  std::uint64_t double_serves = 0;
  std::vector<std::uint64_t> per_shard{};
};

kpq::async::task<void> session(shared_state& st, request& r) {
  // Unbounded shards: co_enqueue completes without suspending, then the
  // session parks awaiting its echo. On one loop thread nothing can run
  // between the enqueue and the suspension, so the handle is always set
  // before any worker sees the request.
  (void)co_await st.shards->co_enqueue(&r);
  const std::uint64_t echoed = co_await echo_awaiter{&r};
  if (echoed != (r.payload ^ kEchoMask)) ++st.echo_errors;
  if (++st.completed == st.sessions) st.shards->close_all();
}

kpq::async::task<void> worker(kpq::async::event_loop& loop,
                              shared_state& st) {
  for (std::uint64_t drained = 0;; ++drained) {
    auto got = co_await st.shards->co_dequeue_any();
    if (!got.value) co_return;  // every shard closed-and-drained
    request* r = *got.value;
    ++st.per_shard[got.index];
    if (r->served++ != 0) ++st.double_serves;
    r->response = r->payload ^ kEchoMask;  // the "echo"
    r->done = true;
    ++st.served;
    loop.post(r->h);  // resume the parked session through the loop
    // Cooperative chunking (docs/ASYNC.md §3): while the shards are
    // non-empty every co_dequeue_any completes inline by symmetric
    // transfer, and sanitizer instrumentation keeps that from being a
    // tail call — yield periodically so the resume chain unwinds.
    if ((drained & 0xff) == 0xff) co_await loop.yield();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool telemetry = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::uint64_t sessions =
      positional.size() > 0 ? std::strtoull(positional[0], nullptr, 10)
                            : 10000;
  const std::uint32_t shard_count =
      positional.size() > 1
          ? static_cast<std::uint32_t>(std::strtoul(positional[1], nullptr, 10))
          : 2;
  const std::uint32_t workers =
      positional.size() > 2
          ? static_cast<std::uint32_t>(std::strtoul(positional[2], nullptr, 10))
          : 2;

  kpq::async::event_loop loop;
  broker_shards shards(shard_count, /*max_threads=*/4);
  shards.set_executor(&loop);

  shared_state st;
  st.shards = &shards;
  st.sessions = sessions;
  st.per_shard.assign(shard_count, 0);

  // --telemetry: the live pipeline. Register only scrape-safe surfaces
  // (loop.stats() copies under the loop's lock; hub stats are a locked
  // copy too), arm the flight recorder, and start the pump BEFORE the loop
  // runs so snapshots cover the busy phase, not just the aftermath.
  kpq::obs::registry reg;
  kpq::obs::telemetry_pump* pump = nullptr;
  kpq::obs::telemetry_pump pump_storage(reg, [] {
    kpq::obs::telemetry_options o;
    o.interval_ms = 10;
    o.jsonl_path = "coro_broker_telemetry.jsonl";
    o.prom_path = "coro_broker_telemetry.prom";
    return o;
  }());
  if (telemetry) {
    std::remove("coro_broker_telemetry.jsonl");
    reg.add_source("broker.loop", [&loop](kpq::obs::metrics_snapshot& out) {
      kpq::obs::append_metrics(out, "broker.loop", loop.stats());
    });
    for (std::uint32_t sh = 0; sh < shard_count; ++sh) {
      reg.add_source("broker.shard" + std::to_string(sh),
                     [&shards, sh](kpq::obs::metrics_snapshot& out) {
                       kpq::obs::append_metrics(
                           out, "broker.shard" + std::to_string(sh) + ".hub",
                           shards.shard(sh).hub().stats());
                     });
    }
    kpq::obs::flight_recorder_config frc;
    frc.path = "coro_broker_flight.dump";
    kpq::obs::flight_recorder::instance().arm(
        frc, &kpq::obs::global_trace(), &reg);
    pump = &pump_storage;
    pump->start();
  }

  std::vector<request> requests(sessions);
  for (std::uint64_t i = 0; i < sessions; ++i) {
    requests[i].session = i;
    requests[i].payload = i * 2654435761ULL + 17;
    loop.spawn(session(st, requests[i]));
  }
  // Every session is now suspended awaiting its echo: the in-flight peak.
  const std::size_t peak_in_flight = loop.active();

  for (std::uint32_t w = 0; w < workers; ++w) {
    loop.spawn(worker(loop, st));
  }
  loop.run();  // returns when drained: all sessions + workers completed

  if (pump != nullptr) pump->stop();  // final scrape covers the drained loop

  const auto ls = loop.stats();
  std::printf("coro_broker: %llu sessions, %u shards, %u workers\n",
              static_cast<unsigned long long>(sessions), shard_count,
              workers);
  std::printf("  in-flight peak      %zu coroutines (1 thread)\n",
              peak_in_flight);
  std::printf("  served / completed  %llu / %llu\n",
              static_cast<unsigned long long>(st.served),
              static_cast<unsigned long long>(st.completed));
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    std::printf("  shard[%u]            %llu requests, %llu hub parks\n", s,
                static_cast<unsigned long long>(st.per_shard[s]),
                static_cast<unsigned long long>(
                    shards.shard(s).hub().stats().parks));
  }
  std::printf("  loop                %llu resumes, %llu spawned, %llu idle "
              "parks\n",
              static_cast<unsigned long long>(ls.resumes),
              static_cast<unsigned long long>(ls.spawned),
              static_cast<unsigned long long>(ls.idle_parks));
  std::printf("  loop health         ready lag mean %.0f ns (max %llu), "
              "timer slack mean %.0f ns, peak depth %llu\n",
              ls.mean_ready_lag_ns(),
              static_cast<unsigned long long>(ls.ready_lag_ns_max),
              ls.mean_timer_slack_ns(),
              static_cast<unsigned long long>(ls.max_ready_depth));
  if (pump != nullptr) {
    std::printf("  telemetry           %llu scrapes -> "
                "coro_broker_telemetry.{jsonl,prom}; flight recorder armed\n",
                static_cast<unsigned long long>(pump->scrapes()));
  }

  bool ok = true;
  auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "FAILED: %s\n", what);
      ok = false;
    }
  };
  check(st.completed == sessions, "every session completed");
  check(st.served == sessions, "every request served");
  check(st.echo_errors == 0, "every echo correct");
  check(st.double_serves == 0, "no request served twice");
  check(peak_in_flight >= sessions, "in-flight peak reached session count");
  check(loop.active() == 0, "loop drained");
  std::uint32_t active_shards = 0;
  for (auto c : st.per_shard) active_shards += c > 0 ? 1 : 0;
  check(shard_count < 2 || active_shards >= 2, "traffic spread over shards");
  std::uint64_t leftovers = 0;
  while (shards.try_dequeue(0).has_value()) ++leftovers;
  check(leftovers == 0, "queues drained dry");
  if (telemetry) {
    check(pump->scrapes() >= 1, "telemetry pump scraped at least once");
    const auto recent = pump->recent();
    check(!recent.empty(), "telemetry ring retained snapshots");
    bool finite = true, saw_loop = false;
    for (const kpq::obs::metric& m : recent.back().snap) {
      if (m.value != m.value) finite = false;
      if (m.name == "broker.loop.resumes") saw_loop = true;
    }
    check(finite, "telemetry values finite");
    check(saw_loop, "loop health metrics exported");
    kpq::obs::flight_recorder::instance().disarm();
  }

  if (!ok) return 1;
  std::printf("OK\n");
  return 0;
}
