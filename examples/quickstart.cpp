// Quickstart: the 60-second tour of the kpq public API.
//
//   build/examples/quickstart
//
// Shows: constructing a wait-free queue, implicit vs explicit thread ids,
// the optional-based dequeue contract, the paper's variants, and swapping
// the memory-reclamation policy.
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"     // the Kogan-Petrank wait-free queue
#include "baseline/ms_queue.hpp" // the Michael-Scott lock-free baseline
#include "reclaim/epoch.hpp"

int main() {
  // A queue must know an upper bound on the number of threads that will
  // ever touch it (the paper's NUM_THRDS) — here, 4.
  constexpr std::uint32_t kThreads = 4;
  kpq::wf_queue_opt<int> q(kThreads);  // "opt WF (1+2)": the fast variant

  // Thread ids: pass your own dense id, or omit it and the process-wide
  // registry assigns one per OS thread.
  q.enqueue(1, /*tid=*/0);
  q.enqueue(2);  // registry-assigned tid

  // dequeue returns std::optional: nullopt means the queue was empty at the
  // operation's linearization point — no exceptions, no sentinels.
  while (std::optional<int> v = q.dequeue()) {
    std::printf("dequeued %d\n", *v);
  }

  // Concurrent use: every thread needs a distinct tid < kThreads.
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&q, tid] {
      for (int i = 0; i < 1000; ++i) {
        q.enqueue(static_cast<int>(tid) * 1000 + i, tid);
        q.dequeue(tid);  // wait-free: completes in a bounded number of steps
      }
    });
  }
  for (auto& w : workers) w.join();
  std::printf("after 4x1000 enqueue/dequeue pairs, size = %zu\n",
              q.unsafe_size());

  // The paper's other variants share the same interface:
  kpq::wf_queue_base<std::string> base_variant(kThreads);   // §3.2 base
  kpq::wf_queue_opt1<std::string> help_one_only(kThreads);  // §3.3 opt 1
  base_variant.enqueue("hello", 0);
  help_one_only.enqueue("world", 0);
  std::printf("%s %s\n", base_variant.dequeue(0)->c_str(),
              help_one_only.dequeue(0)->c_str());

  // Reclamation is a policy: hazard pointers by default (wait-free, as the
  // paper prescribes for C++), epoch-based if you prefer cheaper reads and
  // can tolerate blocking memory bounds.
  kpq::wf_queue_opt<int, kpq::epoch_domain> ebr_queue(kThreads);
  ebr_queue.enqueue(7, 0);
  std::printf("epoch-reclaimed queue says %d\n", *ebr_queue.dequeue(0));

  // And the lock-free baseline the paper compares against:
  kpq::ms_queue<int> lf(kThreads);
  lf.enqueue(42, 0);
  std::printf("lock-free baseline says %d\n", *lf.dequeue(0));
  return 0;
}
