// Example: an asynchronous logger built on the blocking adapter.
//
//   build/examples/async_logger [messages_per_producer]
//
// Scenario: latency-critical request threads must never block on I/O, so
// they push log records through the wait-free queue (bounded-step enqueue —
// the SLA-relevant property from the paper's §1) while a sink thread waits
// on the blocking adapter, batches whatever has accumulated, and "writes"
// it. close() drains and shuts the sink down without losing a record.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/blocking_adapter.hpp"
#include "core/wf_queue.hpp"
#include "harness/timing.hpp"

namespace {

struct log_record {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;
};

constexpr std::uint32_t kProducers = 3;
constexpr std::uint32_t kMaxThreads = kProducers + 1;  // + sink

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t per_producer =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  kpq::blocking_adapter<kpq::wf_queue_opt<log_record>> log(kMaxThreads);

  // The sink: blocks when idle, batches when busy.
  std::uint64_t written = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  std::thread sink([&] {
    const std::uint32_t tid = kProducers;
    for (;;) {
      auto first = log.dequeue_blocking(tid);
      if (!first.has_value()) break;  // closed and drained
      // Batch: grab everything else that is already queued.
      std::uint64_t batch = 1;
      while (auto more = log.try_dequeue(tid)) {
        ++batch;
        (void)more;
      }
      written += batch;
      ++batches;
      if (batch > max_batch) max_batch = batch;
    }
  });

  // Producers: wait-free enqueues on the request path.
  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> slowest_enqueue_ns{0};
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t worst = 0;
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t t0 = kpq::now_ns();
        log.enqueue(log_record{p, i, t0}, p);
        worst = std::max(worst, kpq::now_ns() - t0);
      }
      std::uint64_t seen = slowest_enqueue_ns.load();
      while (worst > seen &&
             !slowest_enqueue_ns.compare_exchange_weak(seen, worst)) {
      }
    });
  }
  for (auto& t : producers) t.join();
  log.close();
  sink.join();

  const std::uint64_t expected = kProducers * per_producer;
  std::printf("logged %llu/%llu records in %llu batches (max batch %llu)\n",
              static_cast<unsigned long long>(written),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(batches),
              static_cast<unsigned long long>(max_batch));
  std::printf("worst producer-side enqueue: %llu ns\n",
              static_cast<unsigned long long>(slowest_enqueue_ns.load()));
  const bool ok = written == expected;
  std::printf("%s\n", ok ? "OK: no record lost" : "RECORDS LOST");
  return ok ? 0 : 1;
}
