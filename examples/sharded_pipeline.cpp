// Example: fan-in/fan-out over the sharded front-end with batched handoff.
//
//   build/examples/sharded_pipeline [items_per_producer] [shards]
//
// Scenario: a telemetry fan-in — several producers each emit an ordered
// stream of readings, a pool of consumers drains them. The sharded queue
// gives each producer its own lane (affinity policy: per-producer FIFO is
// per-shard FIFO), consumers prefer their own lane and steal from the
// others when idle, and both sides move items in batches through the bulk
// fast path (one phase/guard registration per batch on the KP inner
// queues).
//
// Self-validation (exits nonzero on any inconsistency):
//   * conservation — every produced item consumed exactly once;
//   * per-producer order — each consumer's view of any one producer's
//     stream is strictly increasing (a consumer's pops from the producer's
//     shard are a subsequence of that shard's FIFO order);
//   * the steal counters agree with the front-end's accounting.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "harness/workload.hpp"
#include "scale/sharded_queue.hpp"

namespace {

constexpr std::uint32_t kProducers = 4;
constexpr std::uint32_t kConsumers = 4;
constexpr std::uint32_t kMaxThreads = kProducers + kConsumers;
constexpr std::uint64_t kBatch = 32;

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t items_per_producer =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  std::uint32_t shards =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 4;
  if (shards == 0) {
    std::fprintf(stderr, "shards must be >= 1 (got '%s')\n", argv[2]);
    return 2;
  }

  kpq::sharded_queue<kpq::wf_queue_opt<std::uint64_t>> q(shards, kMaxThreads);

  std::atomic<std::uint32_t> producers_done{0};
  std::atomic<std::uint64_t> consumed_total{0};
  std::atomic<bool> order_ok{true};
  std::vector<std::thread> threads;

  // Producers: tids 0..kProducers-1, batched emission of ordered streams.
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      const std::uint32_t tid = p;
      std::vector<std::uint64_t> staging;
      for (std::uint64_t i = 0; i < items_per_producer;) {
        staging.clear();
        const std::uint64_t k =
            std::min<std::uint64_t>(kBatch, items_per_producer - i);
        for (std::uint64_t j = 0; j < k; ++j) {
          staging.push_back(kpq::encode_value(p, i + j));
        }
        q.enqueue_bulk(staging.begin(), staging.end(), tid);
        i += k;
      }
      producers_done.fetch_add(1);
    });
  }

  // Consumers: tids kProducers..kMaxThreads-1, batched draining + stealing.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kProducers) * items_per_producer;
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      const std::uint32_t tid = kProducers + c;
      std::vector<std::uint64_t> popped;
      std::vector<std::int64_t> last_seq(kProducers, -1);
      for (;;) {
        popped.clear();
        if (q.dequeue_bulk(popped, kBatch, tid) == 0) {
          if (producers_done.load() == kProducers &&
              consumed_total.load() >= expected) {
            break;
          }
          std::this_thread::yield();
          continue;
        }
        for (std::uint64_t v : popped) {
          const std::uint32_t from = kpq::value_tid(v);
          const auto seq = static_cast<std::int64_t>(kpq::value_seq(v));
          if (seq <= last_seq[from]) order_ok.store(false);
          last_seq[from] = seq;
        }
        consumed_total.fetch_add(popped.size());
      }
    });
  }

  for (auto& t : threads) t.join();

  const kpq::shard_stats agg = q.aggregate_counters();
  std::printf("sharded_pipeline: %u producers -> %u shards -> %u consumers\n",
              kProducers, shards, kConsumers);
  std::printf("consumed %llu / %llu items, steal rate %.1f%%, "
              "batch fill %.1f, residual depth %lld\n",
              static_cast<unsigned long long>(consumed_total.load()),
              static_cast<unsigned long long>(expected),
              100.0 * agg.steal_rate(), agg.batch_fill(),
              static_cast<long long>(agg.depth()));

  const bool ok = consumed_total.load() == expected && order_ok.load() &&
                  agg.enqueued == expected && agg.dequeued == expected &&
                  agg.depth() == 0 && q.unsafe_size() == 0;
  std::printf("%s\n", ok ? "OK: conserved, per-producer ordered, drained"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
