// Example: dynamic thread churn over one queue (paper §3.3, relaxed tids).
//
//   build/examples/dynamic_threads [waves] [threads_per_wave]
//
// The base algorithm assumes a fixed set of thread ids in [0, NUM_THRDS).
// Section 3.3 relaxes this: "threads can get and release (virtual) IDs from
// a small name space through one of the known long-lived ... renaming
// algorithms". kpq::thread_registry is that substrate: this example spawns
// waves of short-lived threads — far more threads over the program's life
// than the queue was sized for — and each wave reuses the ids released by
// the previous one. The queue only needs to be sized for the *concurrent*
// maximum.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <set>
#include <mutex>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "sync/thread_registry.hpp"

int main(int argc, char** argv) {
  const int waves = argc > 1 ? std::atoi(argv[1]) : 20;
  const int per_wave = argc > 2 ? std::atoi(argv[2]) : 6;

  // Sized for one wave, not for waves * per_wave threads.
  kpq::wf_queue_opt<std::uint64_t> q(
      static_cast<std::uint32_t>(per_wave));

  std::atomic<std::uint64_t> produced{0}, consumed{0};
  std::set<std::uint32_t> ids_ever_seen;
  std::mutex ids_mutex;

  for (int wave = 0; wave < waves; ++wave) {
    std::vector<std::thread> threads;
    for (int t = 0; t < per_wave; ++t) {
      threads.emplace_back([&, wave, t] {
        // Registry id: assigned on first use, released at thread exit, so
        // each wave recycles the previous wave's ids.
        const std::uint32_t tid = kpq::this_thread_id();
        {
          std::lock_guard<std::mutex> lk(ids_mutex);
          ids_ever_seen.insert(tid);
        }
        for (int i = 0; i < 200; ++i) {
          if ((t + i) % 2 == 0) {
            q.enqueue(static_cast<std::uint64_t>(wave) * 100000 + i, tid);
            produced.fetch_add(1);
          } else if (q.dequeue(tid).has_value()) {
            consumed.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  // Drain the remainder.
  while (q.dequeue(0).has_value()) consumed.fetch_add(1);

  std::printf("%d waves x %d threads = %d threads total over the run\n",
              waves, per_wave, waves * per_wave);
  std::printf("distinct ids actually used: %zu (queue sized for %d)\n",
              ids_ever_seen.size(), per_wave);
  std::printf("produced %llu, consumed %llu\n",
              static_cast<unsigned long long>(produced.load()),
              static_cast<unsigned long long>(consumed.load()));

  const bool ok = produced.load() == consumed.load() &&
                  ids_ever_seen.size() <= static_cast<std::size_t>(per_wave);
  std::printf("%s\n", ok ? "OK: id namespace stayed bounded, nothing lost"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
