// Example: deadline accounting — what wait-freedom buys under an SLA.
//
//   build/examples/realtime_deadline [ops_per_thread] [threads]
//
// The paper's motivation: "strict deadlines for operation completion exist,
// e.g., in real-time applications or when operating under a service level
// agreement". This example runs the same oversubscribed producer/consumer
// workload against the lock-free baseline and the wait-free queue, records
// every operation's latency, and reports how many operations would have
// blown a deadline budget — the metric an SLA owner actually cares about,
// which throughput plots hide.
//
// On a loaded machine expect the wait-free queue to trade a slower median
// for a shorter, flatter tail; the *guarantee* (bounded steps regardless of
// scheduling) holds on every machine even when the measured tail is noisy.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <thread>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/stats.hpp"
#include "harness/timing.hpp"
#include "harness/workload.hpp"
#include "sync/cacheline.hpp"
#include "sync/spin_barrier.hpp"

namespace {

using namespace kpq;

struct report {
  double p50 = 0, p99 = 0, max = 0;
  std::vector<std::pair<double, double>> deadline_miss;  // (budget_us, %)
};

template <typename Q>
report run(std::uint32_t threads, std::uint64_t ops) {
  Q q(threads);
  std::vector<padded<std::vector<double>>> lat(threads);
  spin_barrier barrier(threads);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      auto& samples = lat[tid].get();
      samples.reserve(ops);
      fast_rng rng = thread_stream(42, tid);
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < ops; ++i) {
        const std::uint64_t t0 = now_ns();
        if (rng.coin()) {
          q.enqueue(encode_value(tid, i), tid);
        } else {
          (void)q.dequeue(tid);
        }
        samples.push_back(static_cast<double>(now_ns() - t0));
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v->begin(), v->end());
  report r;
  auto ps = sorted_percentiles(all, {0.50, 0.99, 1.0});
  r.p50 = ps[0];
  r.p99 = ps[1];
  r.max = ps[2];
  for (double budget_us : {10.0, 100.0, 1000.0}) {
    const double limit_ns = budget_us * 1000.0;
    const auto misses = static_cast<double>(
        all.end() - std::lower_bound(all.begin(), all.end(), limit_ns));
    r.deadline_miss.emplace_back(budget_us,
                                 100.0 * misses / static_cast<double>(all.size()));
  }
  return r;
}

void print(const char* name, const report& r) {
  std::printf("%-14s p50 %7.0f ns   p99 %8.0f ns   max %9.0f ns\n", name,
              r.p50, r.p99, r.max);
  for (auto [budget, pct] : r.deadline_miss) {
    std::printf("               deadline %6.0f us: %.4f%% of ops missed\n",
                budget, pct);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t ops =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const auto threads = static_cast<std::uint32_t>(
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8);

  std::printf(
      "deadline study: %u threads (oversubscribed), %llu mixed ops each\n\n",
      threads, static_cast<unsigned long long>(ops));

  const report lf = run<ms_queue<std::uint64_t>>(threads, ops);
  const report wf = run<wf_queue_opt<std::uint64_t>>(threads, ops);

  print("LF (MS)", lf);
  print("opt WF (1+2)", wf);

  std::printf(
      "\nNote: only the wait-free queue *guarantees* a bound on the steps\n"
      "per operation; the lock-free queue's tail is scheduler luck.\n");
  return 0;
}
