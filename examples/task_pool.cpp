// Example: a multi-producer multi-consumer task pool on the wait-free queue.
//
//   build/examples/task_pool [tasks] [producers] [workers]
//
// Scenario: a shared work pool where several request threads submit jobs
// (here: FNV-1a checksums over generated buffers) and several workers drain
// them. This is the multi-enqueuer/multi-dequeuer shape that no prior
// wait-free queue supported (the paper's headline claim: Lamport's queue is
// SPSC, David's is single-enqueuer, Jayanti-Petrovic is single-dequeuer).
//
// The example also demonstrates graceful shutdown with poison pills and the
// explicit-tid API for thread pools that manage their own identities.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "harness/workload.hpp"

namespace {

struct task {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  std::uint32_t len = 0;
  bool poison = false;
};

std::uint64_t fnv1a(std::uint64_t seed, std::uint32_t len) {
  kpq::fast_rng rng(seed);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint32_t i = 0; i < len; ++i) {
    h ^= rng.next() & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t tasks =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const auto producers = static_cast<std::uint32_t>(
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3);
  const auto workers = static_cast<std::uint32_t>(
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 3);

  const std::uint32_t max_threads = producers + workers;
  kpq::wf_queue_opt<task> pool(max_threads);

  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> done_tasks{0};
  std::atomic<std::uint32_t> producers_left{producers};

  std::vector<std::thread> threads;

  // Workers: tids [0, workers).
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const std::uint32_t tid = w;
      for (;;) {
        auto t = pool.dequeue(tid);
        if (!t) {
          if (producers_left.load() == 0 && pool.empty_hint(tid)) break;
          std::this_thread::yield();
          continue;
        }
        if (t->poison) break;
        checksum.fetch_xor(fnv1a(t->seed, t->len));
        done_tasks.fetch_add(1);
      }
    });
  }

  // Producers: tids [workers, workers+producers).
  for (std::uint32_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::uint32_t tid = workers + p;
      const std::uint64_t share = tasks / producers +
                                  (p < tasks % producers ? 1 : 0);
      for (std::uint64_t i = 0; i < share; ++i) {
        task t;
        t.id = p * tasks + i;
        t.seed = t.id * 0x9E3779B97F4A7C15ULL + 1;
        t.len = 64 + static_cast<std::uint32_t>(t.id % 192);
        pool.enqueue(t, tid);
      }
      producers_left.fetch_sub(1);
    });
  }

  for (auto& t : threads) t.join();

  // Sequential reference.
  std::uint64_t expected = 0;
  std::uint64_t expected_count = 0;
  for (std::uint32_t p = 0; p < producers; ++p) {
    const std::uint64_t share = tasks / producers +
                                (p < tasks % producers ? 1 : 0);
    for (std::uint64_t i = 0; i < share; ++i) {
      const std::uint64_t id = p * tasks + i;
      expected ^= fnv1a(id * 0x9E3779B97F4A7C15ULL + 1,
                        64 + static_cast<std::uint32_t>(id % 192));
      ++expected_count;
    }
  }

  std::printf("completed %llu/%llu tasks, checksum %016llx (expected %016llx)\n",
              static_cast<unsigned long long>(done_tasks.load()),
              static_cast<unsigned long long>(expected_count),
              static_cast<unsigned long long>(checksum.load()),
              static_cast<unsigned long long>(expected));
  const bool ok =
      done_tasks.load() == expected_count && checksum.load() == expected;
  std::printf("%s\n", ok ? "OK: every task executed exactly once"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
