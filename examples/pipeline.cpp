// Example: a three-stage streaming pipeline connected by wait-free queues.
//
//   build/examples/pipeline [items]
//
// Scenario (the kind of workload the paper's introduction motivates):
// multiple producers ingest "sensor readings", a pool of workers transforms
// them, and an aggregator folds the results. The stage boundaries are
// MPMC queues; with the wait-free queue, a stalled or deprioritized worker
// can never wedge a stage boundary — peers finish its announced operation.
//
// Stage 1 (2 producers) --> q1 --> Stage 2 (3 transformers) --> q2 --> Stage 3 (1 aggregator)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"

namespace {

struct reading {
  std::uint32_t sensor = 0;
  std::uint64_t raw = 0;
};

struct sample {
  std::uint32_t sensor = 0;
  double calibrated = 0.0;
};

constexpr std::uint32_t kProducers = 2;
constexpr std::uint32_t kTransformers = 3;
constexpr std::uint32_t kMaxThreads = kProducers + kTransformers + 1;

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t items_per_producer =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  kpq::wf_queue_opt<reading> q1(kMaxThreads);
  kpq::wf_queue_opt<sample> q2(kMaxThreads);

  std::atomic<std::uint32_t> producers_done{0};
  std::atomic<std::uint32_t> transformers_done{0};

  std::vector<std::thread> threads;

  // Stage 1: producers. tids 0 .. kProducers-1.
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      const std::uint32_t tid = p;
      for (std::uint64_t i = 0; i < items_per_producer; ++i) {
        q1.enqueue(reading{p, i * 2 + 1}, tid);
      }
      producers_done.fetch_add(1);
    });
  }

  // Stage 2: transformers. tids kProducers .. kProducers+kTransformers-1.
  for (std::uint32_t w = 0; w < kTransformers; ++w) {
    threads.emplace_back([&, w] {
      const std::uint32_t tid = kProducers + w;
      for (;;) {
        if (auto r = q1.dequeue(tid)) {
          q2.enqueue(sample{r->sensor, static_cast<double>(r->raw) * 0.5},
                     tid);
        } else if (producers_done.load() == kProducers && q1.empty_hint(tid)) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
      transformers_done.fetch_add(1);
    });
  }

  // Stage 3: aggregator. tid kMaxThreads-1.
  double total = 0.0;
  std::uint64_t count = 0;
  {
    const std::uint32_t tid = kMaxThreads - 1;
    for (;;) {
      if (auto s = q2.dequeue(tid)) {
        total += s->calibrated;
        ++count;
      } else if (transformers_done.load() == kTransformers &&
                 q2.empty_hint(tid)) {
        break;
      } else {
        std::this_thread::yield();
      }
    }
  }

  for (auto& t : threads) t.join();

  const std::uint64_t expected_count = kProducers * items_per_producer;
  // sum over producers of sum_{i<N} (2i+1)*0.5 = P * N^2 / 2
  const double expected_total =
      static_cast<double>(kProducers) *
      static_cast<double>(items_per_producer) *
      static_cast<double>(items_per_producer) * 0.5;

  std::printf("pipeline processed %llu samples (expected %llu)\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(expected_count));
  std::printf("aggregate = %.1f (expected %.1f)\n", total, expected_total);
  const bool ok = count == expected_count && total == expected_total;
  std::printf("%s\n", ok ? "OK: no sample lost, duplicated, or corrupted"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
