// Value-parameterized property sweep (TEST_P / INSTANTIATE_TEST_SUITE_P):
// one property — "every recorded history passes the FIFO checker and the
// queue conserves elements" — swept over a grid of workload shapes
// (thread count × operation mix × prefill × seed) for the flagship
// variants. Complements the TYPED_TEST suites, which sweep the *queue type*
// axis with fixed workloads; here the queue is fixed per suite and the
// *workload* axis is swept.
#include <gtest/gtest.h>

#include <cstdint>
#include <ostream>
#include <thread>
#include <tuple>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "harness/workload.hpp"
#include "sync/spin_barrier.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"

namespace kpq {
namespace {

struct sweep_config {
  std::uint32_t threads;
  std::uint64_t iters;
  std::uint32_t enq_percent;  // probability of enqueue per op
  std::uint64_t prefill;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const sweep_config& c) {
    return os << "t" << c.threads << "_i" << c.iters << "_e" << c.enq_percent
              << "_p" << c.prefill << "_s" << c.seed;
  }
};

template <typename Q>
check_result run_property(const sweep_config& c) {
  Q q(c.threads);
  history_recorder rec(c.threads);

  for (std::uint64_t i = 0; i < c.prefill; ++i) {
    const std::uint64_t v = encode_value(c.threads - 1, (1ULL << 39) + i);
    auto s = rec.begin(c.threads - 1, op_kind::enq, v);
    q.enqueue(v, c.threads - 1);
    s.commit();
  }

  spin_barrier barrier(c.threads);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < c.threads; ++tid) {
    workers.emplace_back([&, tid] {
      fast_rng rng = thread_stream(c.seed, tid);
      std::uint64_t seq = 0;
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < c.iters; ++i) {
        if (rng.bernoulli(c.enq_percent, 100)) {
          const std::uint64_t v = encode_value(tid, seq++);
          auto s = rec.begin(tid, op_kind::enq, v);
          q.enqueue(v, tid);
          s.commit();
        } else {
          auto s = rec.begin(tid, op_kind::deq);
          auto r = q.dequeue(tid);
          if (r.has_value()) {
            s.set_value(*r);
          } else {
            s.set_empty();
          }
          s.commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::uint64_t> drained;
  while (auto v = q.dequeue(0)) drained.push_back(*v);
  EXPECT_EQ(q.unsafe_size(), 0u);
  return fifo_checker::check(rec.collect(), drained);
}

// ----------------------------------------------- opt WF (1+2) sweep

class OptWfSweep : public ::testing::TestWithParam<sweep_config> {};

TEST_P(OptWfSweep, HistoryIsFifoConsistent) {
  auto r = run_property<wf_queue_opt<std::uint64_t>>(GetParam());
  EXPECT_TRUE(r.ok) << r.to_string();
}

// ----------------------------------------------- fps sweep

class FpsSweep : public ::testing::TestWithParam<sweep_config> {};

TEST_P(FpsSweep, HistoryIsFifoConsistent) {
  auto r = run_property<wf_queue_fps<std::uint64_t>>(GetParam());
  EXPECT_TRUE(r.ok) << r.to_string();
}

// ----------------------------------------------- base WF sweep

class BaseWfSweep : public ::testing::TestWithParam<sweep_config> {};

TEST_P(BaseWfSweep, HistoryIsFifoConsistent) {
  auto r = run_property<wf_queue_base<std::uint64_t>>(GetParam());
  EXPECT_TRUE(r.ok) << r.to_string();
}

const sweep_config kGrid[] = {
    // thread scaling, balanced mix
    {2, 1200, 50, 0, 11},
    {3, 900, 50, 0, 12},
    {4, 700, 50, 0, 13},
    {6, 500, 50, 0, 14},
    {8, 350, 50, 0, 15},
    // enqueue-heavy / dequeue-heavy mixes (empty path and growth path)
    {4, 700, 80, 0, 21},
    {4, 700, 20, 0, 22},
    {4, 700, 10, 50, 23},
    // prefilled queues (steady-state FIFO order across the prefill boundary)
    {4, 700, 50, 200, 31},
    {6, 400, 35, 500, 32},
    // different seeds at the contention sweet spot
    {4, 700, 50, 0, 41},
    {4, 700, 50, 0, 42},
};

INSTANTIATE_TEST_SUITE_P(WorkloadGrid, OptWfSweep, ::testing::ValuesIn(kGrid));
INSTANTIATE_TEST_SUITE_P(WorkloadGrid, FpsSweep, ::testing::ValuesIn(kGrid));
INSTANTIATE_TEST_SUITE_P(WorkloadGrid, BaseWfSweep,
                         ::testing::ValuesIn(kGrid));

}  // namespace
}  // namespace kpq
