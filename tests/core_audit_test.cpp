// Structural-invariant audits (verify/queue_auditor.hpp) interleaved with
// workload phases, plus negative tests proving the auditor detects each
// class of corruption it claims to.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "harness/workload.hpp"
#include "support/whitebox.hpp"
#include "sync/spin_barrier.hpp"
#include "verify/queue_auditor.hpp"

namespace kpq {
namespace {

using wb = testing::whitebox;
using queue = wf_queue_base<std::uint64_t>;

audit_result audit(queue& q) { return audit_quiescent(wb::view(q)); }

TEST(QueueAuditor, FreshQueueIsClean) {
  queue q(4);
  auto r = audit(q);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(QueueAuditor, CleanAfterSequentialWorkload) {
  queue q(4);
  for (std::uint64_t i = 0; i < 50; ++i) q.enqueue(i, 0);
  for (std::uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(q.dequeue(1).has_value());
  auto r = audit(q);
  EXPECT_TRUE(r.ok) << r.to_string();
  EXPECT_EQ(q.unsafe_size(), 30u);
}

TEST(QueueAuditor, CleanBetweenConcurrentPhases) {
  queue q(4);
  for (int phase = 0; phase < 5; ++phase) {
    spin_barrier barrier(4);
    std::vector<std::thread> workers;
    for (std::uint32_t tid = 0; tid < 4; ++tid) {
      workers.emplace_back([&, tid] {
        barrier.arrive_and_wait();
        for (std::uint64_t i = 0; i < 300; ++i) {
          q.enqueue(encode_value(tid, static_cast<std::uint64_t>(phase) * 1000 + i), tid);
          (void)q.dequeue(tid);
        }
      });
    }
    for (auto& w : workers) w.join();
    auto r = audit(q);
    ASSERT_TRUE(r.ok) << "after phase " << phase << ":\n" << r.to_string();
  }
}

TEST(QueueAuditor, DetectsPendingDescriptor) {
  queue q(2);
  wb::publish(q, 1, 5, /*pending=*/true, /*enq=*/false, nullptr);
  auto r = audit(q);
  EXPECT_FALSE(r.ok);
  // Clean up so the destructor's assertion doesn't fire.
  wb::publish(q, 1, 5, false, false, nullptr);
}

TEST(QueueAuditor, DetectsDanglingNode) {
  queue q(2);
  q.enqueue(1, 0);
  // Manually append a node without swinging tail: a half-finished enqueue.
  auto* n = wb::make_node(q, 99, 1);
  auto* last = wb::tail(q);
  queue::node_type* expected = nullptr;
  ASSERT_TRUE(last->next.compare_exchange_strong(expected, n));
  auto r = audit(q);
  EXPECT_FALSE(r.ok);
  // Finish the enqueue properly so destruction is clean: publish a matching
  // pending descriptor and let the finisher run.
  wb::publish(q, 1, wb::max_phase(q, 1) + 1, true, true, n);
  wb::help_finish_enq(q, 0);
  auto r2 = audit(q);
  EXPECT_TRUE(r2.ok) << r2.to_string();
}

TEST(QueueAuditor, DetectsInteriorDeqTid) {
  queue q(2);
  q.enqueue(1, 0);
  q.enqueue(2, 0);
  // Corrupt: set deq_tid on an interior node (not the sentinel).
  auto* interior = wb::head(q)->next.load();
  ASSERT_NE(interior, nullptr);
  std::int32_t expected = no_tid;
  ASSERT_TRUE(interior->next.load() != nullptr ||
              true);  // structure sanity only
  ASSERT_TRUE(interior->deq_tid.compare_exchange_strong(expected, 1));
  auto r = audit(q);
  EXPECT_FALSE(r.ok);
}

TEST(QueueAuditor, DetectsOutOfRangeEnqTid) {
  queue q(2);
  // Append a node claiming an impossible enqueuer id via a real half-insert.
  auto* n = wb::make_node(q, 7, /*etid=*/77);  // max_threads is 2
  auto* last = wb::tail(q);
  queue::node_type* expected = nullptr;
  ASSERT_TRUE(last->next.compare_exchange_strong(expected, n));
  auto r = audit(q);
  EXPECT_FALSE(r.ok) << "out-of-range enq_tid must be flagged";
}

TEST(QueueAuditor, FpsQueueIsCleanWithAnonymousNodesAllowed) {
  wf_queue_fps<std::uint64_t> q(4);
  spin_barrier barrier(4);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    workers.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < 400; ++i) {
        q.enqueue(encode_value(tid, i), tid);
        if (i % 2 == 0) (void)q.dequeue(tid);
      }
    });
  }
  for (auto& w : workers) w.join();
  auto v = wb::view(q);
  v.allow_anonymous_enqueuers = true;  // fast-path nodes carry enq_tid -1
  auto r = audit_quiescent(v);
  EXPECT_TRUE(r.ok) << r.to_string();
}

}  // namespace
}  // namespace kpq
