// Lost-wakeup regression tests for bounded_wf_queue's block-admission path
// (the ISSUE-8 audit of the enqueue-without-notify case documented in
// storage/bounded_wf_queue.hpp wait_for_room):
//
//   1. Space can appear with NO notify attached — draining through inner()
//     bypasses the bounded dequeue wrapper entirely, standing in for the
//     reclaimer returning segment memory asynchronously. A blocked producer
//     must still make progress via the timed recheck backstop.
//   2. block/close/drain interleavings under load: producers blocking at
//     the ceiling while consumers drain and a closer races — nobody may
//     hang, and admitted items are conserved exactly once.
#include "storage/bounded_wf_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "sync/thread_registry.hpp"

namespace kpq {
namespace {

using namespace std::chrono_literals;

bounded_config small_block_cfg(std::size_t max_bytes) {
  bounded_config cfg{max_bytes, full_policy::block};
  cfg.block_recheck = 1ms;
  return cfg;
}

// Fill to the ceiling, then free space WITHOUT a notify (drain through
// inner(), which never touches the room hub — the stand-in for reclamation
// returning segments). The blocked producer must recover via the timed
// recheck alone, within a bound ~ block_recheck, not hang.
TEST(BoundedWakeup, EnqueueWithoutNotifyRecoversViaTimedRecheck) {
  bounded_wf_queue<std::uint64_t> q(
      8, small_block_cfg(3u << 20));  // fits construction + a few segments
  std::uint64_t n = 0;
  while (q.try_enqueue_nowait(n, this_thread_id())) ++n;
  ASSERT_GT(n, 0u);

  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    // Blocks at the ceiling until space appears.
    EXPECT_TRUE(q.try_enqueue(n, this_thread_id()));
    admitted.store(true);
  });
  // Let the producer actually park.
  while (q.stats().block_waits == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  // Free room with no notify: drain through the inner queue directly. The
  // producer may be admitted mid-drain, so its item can show up here too.
  std::size_t drained = 0;
  while (q.inner().dequeue(this_thread_id()).has_value()) ++drained;
  EXPECT_GE(drained, n);
  producer.join();  // timed recheck must admit it; a hang fails via timeout
  EXPECT_TRUE(admitted.load());
  while (q.inner().dequeue(this_thread_id()).has_value()) ++drained;
  EXPECT_EQ(drained, n + 1);  // conservation, exactly once
  EXPECT_EQ(q.stats().admitted, n + 1);
}

// Producers hammering the ceiling against draining consumers with a closer
// racing the tail: every producer must return (admitted or closed-reject),
// and conservation must hold exactly once.
TEST(BoundedWakeup, BlockCloseDrainInterleavingStress) {
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    bounded_wf_queue<std::uint64_t> q(8, small_block_cfg(3u << 20));
    constexpr int kProducers = 2;
    constexpr int kPerProducer = 400;
    std::atomic<std::uint64_t> produced{0};
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<int> producers_done{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const std::uint64_t v =
              static_cast<std::uint64_t>(p) * kPerProducer + i;
          if (q.try_enqueue(v, this_thread_id())) {
            produced.fetch_add(1);
          } else {
            break;  // closed while blocked: legal exit
          }
        }
        producers_done.fetch_add(1);
      });
    }
    std::vector<std::thread> consumers;
    std::atomic<bool> stop_consuming{false};
    for (int c = 0; c < 2; ++c) {
      consumers.emplace_back([&] {
        while (!stop_consuming.load()) {
          if (q.dequeue(this_thread_id()).has_value()) {
            consumed.fetch_add(1);
          } else {
            std::this_thread::yield();
          }
        }
        // final drain
        while (q.dequeue(this_thread_id()).has_value()) {
          consumed.fetch_add(1);
        }
      });
    }
    // On odd rounds, close early to race blocked producers; on even rounds
    // let everything through.
    if (round % 2 == 1) {
      while (q.stats().block_waits == 0 &&
             producers_done.load() < kProducers) {
        std::this_thread::yield();
      }
      q.close();
    }
    for (auto& t : threads) t.join();
    q.close();  // idempotent
    stop_consuming.store(true);
    for (auto& t : consumers) t.join();
    EXPECT_EQ(consumed.load(), produced.load()) << "round " << round;
    EXPECT_EQ(q.stats().admitted, produced.load()) << "round " << round;
  }
}

// close() must release a parked producer promptly (not only via timeout).
TEST(BoundedWakeup, CloseReleasesParkedProducer) {
  bounded_config cfg{3u << 20, full_policy::block};
  cfg.block_recheck = std::chrono::milliseconds(10'000);  // recheck is NOT
                                                          // the wakeup here
  bounded_wf_queue<std::uint64_t> q(8, cfg);
  std::uint64_t n = 0;
  while (q.try_enqueue_nowait(n, this_thread_id())) ++n;
  ASSERT_GT(n, 0u);
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    rejected.store(!q.try_enqueue(n, this_thread_id()));
  });
  while (q.stats().block_waits == 0) std::this_thread::yield();
  const auto t0 = std::chrono::steady_clock::now();
  q.close();
  producer.join();
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(rejected.load());
  EXPECT_LT(dt, 5s);  // far below the 10s recheck: the notify did it
}

// A dequeue-side notify must wake a parked producer even when many
// producers contend for one freed slot (token pass-on, not token loss).
TEST(BoundedWakeup, DequeueNotifyWakesBlockedProducers) {
  constexpr std::uint32_t kProducers = 3;
  bounded_wf_queue<std::uint64_t> q(8, small_block_cfg(3u << 20));
  std::uint64_t n = 0;
  while (q.try_enqueue_nowait(n, this_thread_id())) ++n;
  ASSERT_GT(n, kProducers);

  std::atomic<std::uint32_t> admitted{0};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      if (q.try_enqueue(1, this_thread_id())) admitted.fetch_add(1);
    });
  }
  while (q.stats().block_waits < kProducers) std::this_thread::yield();
  // Drain through the NOTIFYING path this time (newly admitted items can
  // arrive mid-drain and be consumed by this same loop).
  std::size_t drained = 0;
  while (q.dequeue(this_thread_id()).has_value()) ++drained;
  EXPECT_GE(drained, n);
  for (auto& t : producers) t.join();
  EXPECT_EQ(admitted.load(), kProducers);
  EXPECT_EQ(q.stats().block_waits, kProducers);
  while (q.dequeue(this_thread_id()).has_value()) ++drained;
  EXPECT_EQ(drained, n + kProducers);  // conservation, exactly once
}

}  // namespace
}  // namespace kpq
