// Crash child for obs_flight_test: arms the flight recorder, has two
// threads record trace events, pre-renders a registry snapshot, then dies
// on abort(). The parent test asserts the post-mortem dump parses back.
//
// argv[1] = dump path. Exits 0 only on setup failure (the expected exit is
// death by SIGABRT re-raised from the recorder's handler).
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace_ring.hpp"

int main(int argc, char** argv) {
  if (argc < 2) return 0;

  using namespace kpq::obs;
  static trace_domain domain(4, 1024);
  static registry reg;
  static std::uint64_t work_done = 0;
  reg.add_source("child.work_done", [](metrics_snapshot& out) {
    append_value(out, "child.work_done", static_cast<double>(work_done));
  });

  // Two live threads, each with events in its ring (tid 0 and tid 1).
  std::thread t1([] {
    for (int i = 0; i < 100; ++i) {
      domain.record(1, trace_kind::enq_publish, i, 0);
      domain.record(1, trace_kind::enq_complete, i, 0);
    }
  });
  for (int i = 0; i < 100; ++i) {
    domain.record(0, trace_kind::deq_publish, i, 0);
    domain.record(0, trace_kind::deq_complete, i, 1);
  }
  t1.join();
  work_done = 200;

  flight_recorder_config cfg;
  cfg.path = argv[1];
  cfg.last_n_per_thread = 64;
  flight_recorder::instance().arm(cfg, &domain, &reg);
  flight_recorder::instance().refresh_registry();

  std::abort();  // SIGABRT -> handler dumps, re-raises, child dies
}
