// Unit tests for the benchmark harness substrate: statistics, workload
// determinism, run orchestration, memory counters, tables, CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/affinity.hpp"
#include "harness/cli.hpp"
#include "harness/mem_tracker.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/timing.hpp"
#include "harness/workload.hpp"

namespace kpq {
namespace {

// -------------------------------------------------------------------- stats

TEST(RunningStats, MeanAndStddevMatchClosedForm) {
  running_stats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  auto s = rs.finish();
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(RunningStats, SingleSampleHasZeroStddev) {
  running_stats rs;
  rs.add(3.5);
  auto s = rs.finish();
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Percentile, NearestRankBehaviour) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 100.0);
  EXPECT_NEAR(percentile(xs, 0.5), 50.0, 1.0);
  EXPECT_NEAR(percentile(xs, 0.99), 99.0, 1.0);
}

TEST(Percentile, SortedPercentilesAgreeWithSingleQuery) {
  std::vector<double> xs = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  auto copy = xs;
  auto ps = sorted_percentiles(copy, {0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(ps[0], percentile(xs, 0.0));
  EXPECT_DOUBLE_EQ(ps[1], percentile(xs, 0.5));
  EXPECT_DOUBLE_EQ(ps[2], percentile(xs, 1.0));
}

// ----------------------------------------------------------------- workload

TEST(Workload, ThreadStreamsAreDeterministic) {
  fast_rng a = thread_stream(42, 3);
  fast_rng b = thread_stream(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Workload, ThreadStreamsDiffer) {
  fast_rng a = thread_stream(42, 0);
  fast_rng b = thread_stream(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Workload, BernoulliIsRoughlyFair) {
  fast_rng rng(7);
  int heads = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.coin()) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.5, 0.02);
}

TEST(Workload, ValueEncodingRoundTrips) {
  for (std::uint32_t tid : {0u, 1u, 17u, 255u}) {
    for (std::uint64_t seq : {0ull, 1ull, 999999ull, (1ull << 39)}) {
      const std::uint64_t v = encode_value(tid, seq);
      EXPECT_EQ(value_tid(v), tid);
      EXPECT_EQ(value_seq(v), seq);
    }
  }
}

// ------------------------------------------------------------------- runner

TEST(Runner, ExecutesBodyOncePerThreadPerRep) {
  std::atomic<int> calls{0};
  run_config cfg;
  cfg.threads = 3;
  cfg.reps = 4;
  auto s = run_trials(cfg, [&](std::uint32_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 12);
  EXPECT_EQ(s.n, 4u);
  EXPECT_GT(s.mean, 0.0);
}

TEST(Runner, SetupRunsBeforeEachRep) {
  std::vector<int> reps_seen;
  run_config cfg;
  cfg.threads = 1;
  cfg.reps = 3;
  run_trials(
      cfg, [&](std::uint32_t rep) { reps_seen.push_back(static_cast<int>(rep)); },
      [&](std::uint32_t) {});
  EXPECT_EQ(reps_seen, (std::vector<int>{0, 1, 2}));
}

// ------------------------------------------------------------------- timing

TEST(Timing, StopwatchMeasuresForwardTime) {
  stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(sw.elapsed_ns(), 1000000u);
  EXPECT_GE(sw.elapsed_s(), 0.001);
  sw.reset();
  EXPECT_LT(sw.elapsed_s(), 1.0);
}

// -------------------------------------------------------------- mem_tracker

TEST(MemCounters, TracksAllocAndFree) {
  mem_counters mc;
  mc.on_alloc(100);
  mc.on_alloc(50);
  EXPECT_EQ(mc.live_bytes(), 150);
  EXPECT_EQ(mc.live_objects(), 2);
  EXPECT_EQ(mc.total_allocs(), 2u);
  mc.on_free(100);
  EXPECT_EQ(mc.live_bytes(), 50);
  EXPECT_EQ(mc.live_objects(), 1);
  mc.reset();
  EXPECT_EQ(mc.live_bytes(), 0);
}

// -------------------------------------------------------------------- table

TEST(Table, PrintsAlignedColumnsAndCsv) {
  table t({"threads", "LF", "WF"});
  t.add_row({"1", "0.5", "1.2"});
  t.add_row({"16", "3.25", "4.0"});

  char buf[4096];
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  ASSERT_NE(mem, nullptr);
  t.print(mem);
  std::fclose(mem);
  std::string out(buf);
  EXPECT_NE(out.find("threads"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);

  std::FILE* mem2 = fmemopen(buf, sizeof(buf), "w");
  t.print_csv(mem2);
  std::fclose(mem2);
  std::string csv(buf);
  EXPECT_NE(csv.find("threads,LF,WF"), std::string::npos);
  EXPECT_NE(csv.find("16,3.25,4.0"), std::string::npos);
}

TEST(Table, FmtFormatsWithPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

// ---------------------------------------------------------------------- cli

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",    "--iters=500", "--threads", "8",
                        "--pin",   "--name=foo"};
  cli c(6, const_cast<char**>(argv));
  EXPECT_EQ(c.get_u64("iters", 1), 500u);
  EXPECT_EQ(c.get_u64("threads", 1), 8u);
  EXPECT_TRUE(c.get_flag("pin"));
  EXPECT_FALSE(c.get_flag("absent"));
  EXPECT_EQ(c.get_str("name", "bar"), "foo");
  EXPECT_EQ(c.get_u64("missing", 99), 99u);
}

TEST(Cli, ReportsUnknownFlags) {
  const char* argv[] = {"prog", "--iters=1", "--typo=2"};
  cli c(3, const_cast<char**>(argv));
  auto unknown = c.unknown({"iters", "threads"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

// ----------------------------------------------------------------- affinity

TEST(Affinity, OnlineCpusIsPositive) { EXPECT_GE(online_cpus(), 1u); }

TEST(Affinity, PinningIsBestEffort) {
  // Must not crash; success depends on the host.
  (void)pin_to_cpu(0);
  SUCCEED();
}

}  // namespace
}  // namespace kpq
