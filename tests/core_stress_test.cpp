// Concurrency stress tests for the KP queue: full histories are recorded
// and validated by the FIFO checker (conservation, uniqueness, real-time
// FIFO order, empty honesty); tiny runs are additionally validated by the
// exact brute-force linearizability checker.
//
// The CI host may have a single hardware thread; these tests are sized so
// the whole suite stays fast while still forcing preemption-driven
// interleavings (oversubscription is the adversarial regime for helping).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "harness/workload.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"
#include "sync/spin_barrier.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"
#include "verify/lin_checker.hpp"

namespace kpq {
namespace {

enum class pattern { pairs, fifty_fifty, enq_heavy, deq_heavy };

template <typename Q>
check_result stress_run(std::uint32_t threads, std::uint64_t iters,
                        pattern pat, std::uint64_t seed,
                        std::uint64_t prefill = 0) {
  Q q(threads);
  history_recorder rec(threads);

  std::uint64_t prefill_seq = 0;
  for (std::uint64_t i = 0; i < prefill; ++i) {
    const std::uint64_t v = encode_value(threads - 1, 1'000'000 + prefill_seq++);
    auto s = rec.begin(threads - 1, op_kind::enq, v);
    q.enqueue(v, threads - 1);
    s.commit();
  }

  spin_barrier barrier(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      fast_rng rng = thread_stream(seed, tid);
      std::uint64_t seq = 0;
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < iters; ++i) {
        bool do_enq = false;
        switch (pat) {
          case pattern::pairs:
            do_enq = (i % 2) == 0;
            break;
          case pattern::fifty_fifty:
            do_enq = rng.coin();
            break;
          case pattern::enq_heavy:
            do_enq = rng.bernoulli(3, 4);
            break;
          case pattern::deq_heavy:
            do_enq = rng.bernoulli(1, 4);
            break;
        }
        if (do_enq) {
          const std::uint64_t v = encode_value(tid, seq++);
          auto s = rec.begin(tid, op_kind::enq, v);
          q.enqueue(v, tid);
          s.commit();
        } else {
          auto s = rec.begin(tid, op_kind::deq);
          auto r = q.dequeue(tid);
          if (r.has_value()) {
            s.set_value(*r);
          } else {
            s.set_empty();
          }
          s.commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::uint64_t> drained;
  while (auto v = q.dequeue(0)) drained.push_back(*v);
  EXPECT_EQ(q.unsafe_size(), 0u);
  return fifo_checker::check(rec.collect(), drained);
}

template <typename Q>
class WfQueueStressTest : public ::testing::Test {};

using StressTypes = ::testing::Types<
    wf_queue_base<std::uint64_t>, wf_queue_opt1<std::uint64_t>,
    wf_queue_opt2<std::uint64_t>, wf_queue_opt<std::uint64_t>,
    wf_queue_base<std::uint64_t, epoch_domain>,
    wf_queue_opt<std::uint64_t, epoch_domain>,
    wf_queue_base<std::uint64_t, leaky_domain>,
    wf_queue<std::uint64_t, help_one, fetch_add_phase, hp_domain,
             wf_options_scrub>,
    wf_queue<std::uint64_t, help_chunk<2>, fetch_add_phase>,
    wf_queue<std::uint64_t, help_random, fetch_add_phase>,
    wf_queue<std::uint64_t, help_all, fetch_add_phase, hp_domain,
             wf_options_precheck>,
    wf_queue_fps<std::uint64_t>,
    wf_queue_fps<std::uint64_t, epoch_domain>>;
TYPED_TEST_SUITE(WfQueueStressTest, StressTypes);

TYPED_TEST(WfQueueStressTest, PairsTwoThreads) {
  auto r = stress_run<TypeParam>(2, 2000, pattern::pairs, 0xABCD);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TYPED_TEST(WfQueueStressTest, PairsFourThreads) {
  auto r = stress_run<TypeParam>(4, 1000, pattern::pairs, 0x1234);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TYPED_TEST(WfQueueStressTest, FiftyFiftyFourThreads) {
  auto r = stress_run<TypeParam>(4, 1000, pattern::fifty_fifty, 0x77,
                                 /*prefill=*/100);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TYPED_TEST(WfQueueStressTest, EnqueueHeavyEightThreads) {
  auto r = stress_run<TypeParam>(8, 400, pattern::enq_heavy, 0xDEAD);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TYPED_TEST(WfQueueStressTest, DequeueHeavyDrivesEmptyPath) {
  auto r = stress_run<TypeParam>(4, 800, pattern::deq_heavy, 0xBEEF);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TYPED_TEST(WfQueueStressTest, OversubscribedPairs) {
  // More threads than any sane core count for this CI box: maximum
  // preemption inside operations.
  auto r = stress_run<TypeParam>(12, 200, pattern::pairs, 0xF00D);
  EXPECT_TRUE(r.ok) << r.to_string();
}

// Exact linearizability on tiny concurrent runs: few ops, many repetitions,
// every history brute-force checked.
template <typename Q>
void tiny_exact_runs(int reps) {
  for (int rep = 0; rep < reps; ++rep) {
    Q q(3);
    history_recorder rec(3);
    spin_barrier barrier(3);
    std::vector<std::thread> workers;
    for (std::uint32_t tid = 0; tid < 3; ++tid) {
      workers.emplace_back([&, tid] {
        barrier.arrive_and_wait();
        for (std::uint64_t i = 0; i < 2; ++i) {
          if ((tid + i) % 2 == 0) {
            const std::uint64_t v = encode_value(tid, i);
            auto s = rec.begin(tid, op_kind::enq, v);
            q.enqueue(v, tid);
            s.commit();
          } else {
            auto s = rec.begin(tid, op_kind::deq);
            auto r = q.dequeue(tid);
            if (r.has_value()) {
              s.set_value(*r);
            } else {
              s.set_empty();
            }
            s.commit();
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    // Complete the history with sequential dequeues so lin_checker sees a
    // drained queue (it tolerates leftovers, but draining covers the deq
    // path once more).
    for (;;) {
      auto s = rec.begin(0, op_kind::deq);
      auto r = q.dequeue(0);
      if (r.has_value()) {
        s.set_value(*r);
        s.commit();
      } else {
        s.set_empty();
        s.commit();
        break;
      }
    }
    auto h = rec.collect();
    ASSERT_TRUE(lin_checker::is_linearizable(h))
        << "non-linearizable history at repetition " << rep;
  }
}

TEST(WfQueueExactLin, BaseVariant) {
  tiny_exact_runs<wf_queue_base<std::uint64_t>>(150);
}
TEST(WfQueueExactLin, FullyOptimizedVariant) {
  tiny_exact_runs<wf_queue_opt<std::uint64_t>>(150);
}
TEST(WfQueueExactLin, EpochVariant) {
  tiny_exact_runs<wf_queue_base<std::uint64_t, epoch_domain>>(100);
}

// Two queues sharing threads: domains and descriptor pools must be fully
// per-instance (no hidden globals).
TEST(WfQueueIsolation, TwoQueuesDoNotInterfere) {
  wf_queue_opt<std::uint64_t> a(4);
  wf_queue_opt<std::uint64_t> b(4);
  spin_barrier barrier(4);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    workers.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < 500; ++i) {
        a.enqueue(encode_value(tid, 2 * i), tid);
        b.enqueue(encode_value(tid, 2 * i + 1), tid);
        auto va = a.dequeue(tid);
        auto vb = b.dequeue(tid);
        ASSERT_TRUE(va.has_value());
        ASSERT_TRUE(vb.has_value());
        // Values never cross queues: parity identifies the queue.
        ASSERT_EQ(value_seq(*va) % 2, 0u);
        ASSERT_EQ(value_seq(*vb) % 2, 1u);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(a.unsafe_size(), 0u);
  EXPECT_EQ(b.unsafe_size(), 0u);
}

// Memory safety under churn: run enough operations that hazard-pointer
// scans must fire many times, then check the allocation balance sheet.
TEST(WfQueueChurn, AllocationBalanceUnderContention) {
  mem_counters mc;
  {
    wf_queue_opt<std::uint64_t> q(4, &mc);
    spin_barrier barrier(4);
    std::vector<std::thread> workers;
    for (std::uint32_t tid = 0; tid < 4; ++tid) {
      workers.emplace_back([&, tid] {
        barrier.arrive_and_wait();
        for (std::uint64_t i = 0; i < 3000; ++i) {
          q.enqueue(encode_value(tid, i), tid);
          q.dequeue(tid);
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_GT(q.reclaimer().freed_count(), 0u);
  }
  // Construction-time attachment: the balance sheet must close exactly.
  EXPECT_EQ(mc.live_objects(), 0);
  EXPECT_EQ(mc.live_bytes(), 0);
}

}  // namespace
}  // namespace kpq
