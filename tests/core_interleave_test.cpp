// Exhaustive schedule exploration of the KP queue's step decomposition.
//
// The paper's §3.1 scheme splits each operation into small atomic steps so
// helpers can share work. OS-thread stress tests only sample interleavings
// of those steps; this test *enumerates* them using the step machines from
// tests/support/step_machines.hpp. A DFS walks every interleaving of the
// machines' steps; after each complete schedule the returned values plus
// final queue content are checked with the exact brute-force
// linearizability checker (op intervals = [first step index, last step
// index]).
//
// Any schedule that loses a value, duplicates one, returns a wrong value,
// or produces an unlinearizable outcome fails loudly with the schedule
// string, which makes failures replayable.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/step_machines.hpp"
#include "verify/history.hpp"
#include "verify/lin_checker.hpp"

namespace kpq {
namespace {

using testing::build_machine;
using testing::machine;
using testing::op_spec;
using testing::sm_queue;

/// Runs one schedule (sequence of machine indexes, greedily extended until
/// all machines finish) and returns false + diagnostics on any violation.
::testing::AssertionResult run_schedule(const std::vector<op_spec>& specs,
                                        const std::vector<std::size_t>& sched,
                                        std::uint64_t prefill) {
  sm_queue q(4);
  for (std::uint64_t i = 0; i < prefill; ++i) q.enqueue(1000 + i, 3);

  std::vector<std::unique_ptr<machine>> ms;
  for (const auto& s : specs) ms.push_back(build_machine(s));

  std::uint64_t clock = 1;
  auto step_machine = [&](std::size_t i) {
    machine& m = *ms[i];
    if (m.done) return;
    if (m.inv == 0) m.inv = clock++;
    if (m.step(q)) {
      m.done = true;
      m.res = clock++;
    } else {
      ++clock;
    }
  };

  for (std::size_t i : sched) step_machine(i);
  // Greedy tail: round-robin until everything completes (bounded).
  for (int guard = 0; guard < 1000; ++guard) {
    bool all_done = true;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      if (!ms[i]->done) {
        all_done = false;
        step_machine(i);
      }
    }
    if (all_done) break;
  }
  for (auto& m : ms) {
    if (!m->done) {
      return ::testing::AssertionFailure() << "machine failed to terminate";
    }
  }

  // Assemble the history: prefill enqueues (sequential, before everything),
  // the explored operations, then a sequential drain.
  std::vector<op_event> h;
  std::uint64_t pre_ts = 0;
  for (std::uint64_t i = 0; i < prefill; ++i) {
    h.push_back({op_kind::enq, true, 3, 1000 + i, pre_ts, pre_ts + 1});
    pre_ts += 2;
  }
  const std::uint64_t base = pre_ts;  // all machine stamps shifted above
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto& s = specs[i];
    if (s.is_enq) {
      h.push_back({op_kind::enq, true, s.tid, s.value, base + ms[i]->inv,
                   base + ms[i]->res});
    } else {
      auto* dm = static_cast<testing::deq_machine*>(ms[i].get());
      h.push_back({op_kind::deq, dm->result.has_value(), s.tid,
                   dm->result.value_or(0), base + ms[i]->inv,
                   base + ms[i]->res});
    }
  }
  std::uint64_t drain_ts = base + 10000;
  while (auto v = q.dequeue(3)) {
    h.push_back({op_kind::deq, true, 3, *v, drain_ts, drain_ts + 1});
    drain_ts += 2;
  }

  if (!lin_checker::is_linearizable(h)) {
    std::string sstr;
    for (std::size_t i : sched) sstr += std::to_string(i);
    return ::testing::AssertionFailure()
           << "schedule " << sstr << " produced a non-linearizable history";
  }
  return ::testing::AssertionSuccess();
}

/// Enumerates every interleaving of `budget` scheduler choices over the
/// machines (the greedy tail completes whatever is unfinished).
void explore_all(const std::vector<op_spec>& specs, std::uint64_t prefill,
                 int budget) {
  std::vector<std::size_t> sched;
  std::uint64_t count = 0;
  std::function<void()> dfs = [&] {
    if (static_cast<int>(sched.size()) == budget) {
      ++count;
      ASSERT_TRUE(run_schedule(specs, sched, prefill));
      return;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      sched.push_back(i);
      dfs();
      sched.pop_back();
      if (::testing::Test::HasFatalFailure()) return;
    }
  };
  dfs();
  EXPECT_GT(count, 0u);
}

// ------------------------------------------------------------------ tests

TEST(InterleaveExplorer, TwoConcurrentEnqueues) {
  explore_all({{true, 0, 100}, {true, 1, 200}}, /*prefill=*/0, /*budget=*/12);
}

TEST(InterleaveExplorer, TwoConcurrentDequeues) {
  explore_all({{false, 0, 0}, {false, 1, 0}}, /*prefill=*/2, /*budget=*/12);
}

TEST(InterleaveExplorer, TwoDequeuesOnOneElement) {
  // Exactly one must get the element, the other must observe empty —
  // in every interleaving.
  explore_all({{false, 0, 0}, {false, 1, 0}}, /*prefill=*/1, /*budget=*/12);
}

TEST(InterleaveExplorer, EnqueueRacesDequeueOnEmptyQueue) {
  explore_all({{true, 0, 100}, {false, 1, 0}}, /*prefill=*/0, /*budget=*/12);
}

TEST(InterleaveExplorer, EnqueueRacesDequeueOnNonEmptyQueue) {
  explore_all({{true, 0, 100}, {false, 1, 0}}, /*prefill=*/1, /*budget=*/12);
}

TEST(InterleaveExplorer, ThreeWayMixedRace) {
  // 3 machines, 3^8 = 6561 schedule prefixes.
  explore_all({{true, 0, 100}, {false, 1, 0}, {true, 2, 200}}, /*prefill=*/1,
              /*budget=*/8);
}

TEST(InterleaveExplorer, ThreeDequeuesTwoElements) {
  // Two must succeed with FIFO values, one must observe empty — in every
  // interleaving of the claim/finish steps.
  explore_all({{false, 0, 0}, {false, 1, 0}, {false, 2, 0}}, /*prefill=*/2,
              /*budget=*/8);
}

TEST(InterleaveExplorer, DuelingEnqueuesThenDuelingDequeues) {
  explore_all({{true, 0, 100}, {true, 1, 200}, {false, 2, 0}}, /*prefill=*/0,
              /*budget=*/8);
}

}  // namespace
}  // namespace kpq
