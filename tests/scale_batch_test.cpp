// Tests for the bulk-operation layer: the wf_queue native hooks (one
// guard + one phase per batch), the generic dispatch/fallback in
// scale/batch.hpp, and concurrent bulk traffic checked for conservation
// and FIFO.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/workload.hpp"
#include "scale/batch.hpp"
#include "sync/spin_barrier.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"

namespace kpq {
namespace {

using wfq = wf_queue_opt<std::uint64_t>;

static_assert(bulk_mpmc_queue<wfq>);
static_assert(bulk_mpmc_queue<wf_queue_base<std::uint64_t>>);
// The baseline has no native hooks — generic dispatch must fall back.
static_assert(!bulk_mpmc_queue<ms_queue<std::uint64_t>>);

TEST(WfQueueBulk, EnqueueBulkPreservesOrder) {
  wfq q(2);
  std::vector<std::uint64_t> in{5, 6, 7, 8, 9};
  q.enqueue_bulk(in.begin(), in.end(), 0);
  for (std::uint64_t v : in) {
    EXPECT_EQ(q.dequeue(1), std::optional<std::uint64_t>(v));
  }
  EXPECT_EQ(q.dequeue(1), std::nullopt);
}

TEST(WfQueueBulk, DequeueBulkStopsAtEmptyAndCounts) {
  wfq q(1);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(i, 0);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(q.dequeue_bulk(out, 2, 0), 2u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(q.dequeue_bulk(out, 10, 0), 2u);  // asks 10, gets the rest
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(q.dequeue_bulk(out, 10, 0), 0u);  // empty: zero, out untouched
  EXPECT_EQ(out.size(), 4u);
}

TEST(WfQueueBulk, EmptyRangeAndZeroMaxAreNoops) {
  wfq q(1);
  std::vector<std::uint64_t> none;
  q.enqueue_bulk(none.begin(), none.end(), 0);
  EXPECT_EQ(q.dequeue_bulk(none, 0, 0), 0u);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
}

TEST(WfQueueBulk, BatchOfOneEqualsScalarPath) {
  wfq q(2);
  std::vector<std::uint64_t> one{77};
  q.enqueue_bulk(one.begin(), one.end(), 0);
  q.enqueue(78, 0);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(q.dequeue_bulk(out, 1, 1), 1u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{77}));
  EXPECT_EQ(q.dequeue(1), std::optional<std::uint64_t>(78));
}

TEST(WfQueueBulk, MixesWithScalarOpsUnderBothPhasePolicies) {
  // scan_max_phase is the policy whose per-item cost bulk actually
  // amortizes (one O(n) scan per batch); exercise it explicitly.
  wf_queue_base<std::uint64_t> q(4);
  std::vector<std::uint64_t> in{1, 2, 3};
  q.enqueue(0, 2);
  q.enqueue_bulk(in.begin(), in.end(), 2);
  q.enqueue(4, 2);
  for (std::uint64_t v = 0; v <= 4; ++v) {
    EXPECT_EQ(q.dequeue(3), std::optional<std::uint64_t>(v));
  }
}

TEST(WfQueueBulk, StatsCountEveryItemInABatch) {
  wf_queue<std::uint64_t, help_one, fetch_add_phase, hp_domain,
           wf_options_stats>
      q(2);
  std::vector<std::uint64_t> in{1, 2, 3, 4, 5, 6};
  q.enqueue_bulk(in.begin(), in.end(), 0);
  std::vector<std::uint64_t> out;
  (void)q.dequeue_bulk(out, 4, 1);
  (void)q.dequeue_bulk(out, 4, 1);  // 2 hits, then an empty stop
  const wf_counters total = q.aggregate_counters();
  EXPECT_EQ(total.enq_ops, 6u);
  EXPECT_EQ(total.deq_ops, 7u);  // 6 hits + the empty-linearized one
  EXPECT_EQ(total.empty_deqs, 1u);
}

TEST(GenericBulk, FallsBackToPerItemOpsOnTheBaseline) {
  ms_queue<std::uint64_t> q(2);
  std::vector<std::uint64_t> in{9, 8, 7};
  enqueue_bulk(q, in.begin(), in.end(), 0);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(dequeue_bulk(q, out, 2, 1), 2u);
  EXPECT_EQ(dequeue_bulk(q, out, 2, 1), 1u);
  EXPECT_EQ(out, in);
}

TEST(GenericBulk, DispatchesToTheNativeHook) {
  wfq q(2);
  std::vector<std::uint64_t> in{1, 2, 3};
  enqueue_bulk(q, in.begin(), in.end(), 0);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(dequeue_bulk(q, out, 8, 1), 3u);
  EXPECT_EQ(out, in);
}

// Concurrent bulk traffic on ONE wf_queue: the queue stays a linearizable
// FIFO item-by-item (batches are not transactions), so the whole-run
// checker applies unchanged. Each item of a bulk call is recorded with the
// call's window — a widening that can only hide, never fabricate,
// precedence, so every violation flagged is real.
TEST(BulkStress, ConcurrentBulkProducersAndConsumers) {
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint64_t kBatches = 400;
  constexpr std::uint64_t kMaxBatch = 8;
  wfq q(kThreads);
  history_recorder rec(kThreads);
  spin_barrier barrier(kThreads);
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      fast_rng rng = thread_stream(0xBA7C4, t);
      std::uint64_t seq = 0;
      std::vector<std::uint64_t> staging, popped;
      barrier.arrive_and_wait();
      for (std::uint64_t b = 0; b < kBatches; ++b) {
        staging.clear();
        const std::uint64_t k = pick_batch_size(rng, kMaxBatch);
        for (std::uint64_t i = 0; i < k; ++i) {
          staging.push_back(encode_value(t, seq++));
        }
        const std::uint64_t einv = rec.stamp();
        q.enqueue_bulk(staging.begin(), staging.end(), t);
        const std::uint64_t eres = rec.stamp();
        for (std::uint64_t v : staging) {
          rec.record(t, {op_kind::enq, true, t, v, einv, eres});
        }
        popped.clear();
        const std::uint64_t dinv = rec.stamp();
        const std::size_t got = q.dequeue_bulk(popped, k, t);
        const std::uint64_t dres = rec.stamp();
        for (std::size_t i = 0; i < got; ++i) {
          rec.record(t, {op_kind::deq, true, t, popped[i], dinv, dres});
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::uint64_t> drained;
  while (auto v = q.dequeue(0)) drained.push_back(*v);
  auto r = fifo_checker::check(rec.collect(), drained);
  ASSERT_TRUE(r.ok) << r.to_string();
}

}  // namespace
}  // namespace kpq
