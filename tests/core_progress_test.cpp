// Direct observation of the helping mechanism — the property that makes the
// queue wait-free rather than merely lock-free.
//
// Using the test hook that fires right after a thread publishes its
// operation descriptor (and before it helps anyone, including itself), we
// freeze a thread at its most vulnerable point: operation announced, nothing
// executed. A lock-free queue would simply leave that operation dormant;
// the KP queue requires *other* threads to complete it on the frozen
// thread's behalf. These tests verify exactly that:
//
//   * a frozen enqueue's value becomes dequeuable by peers while the
//     enqueuer is still frozen;
//   * a frozen dequeue is executed by peers: the head element disappears
//     into the frozen thread's descriptor, and when the thread thaws it
//     returns that element without taking any further steps of its own;
//   * peers keep completing unboundedly many of their own operations while
//     a thread stays frozen (no global progress dependency on any single
//     thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>

#include "core/wf_queue.hpp"

namespace kpq {
namespace {

// Hook state: when `frozen_tid` matches the publishing thread, it parks on
// `gate` until released. Plain relaxed atomics + spin/yield keep this
// test-only code simple.
std::atomic<std::int64_t> frozen_tid{-1};
std::atomic<bool> gate_open{true};
std::atomic<bool> is_frozen{false};

struct freezing_hooks {
  static void after_publish(std::uint32_t tid, bool /*is_enqueue*/) {
    if (static_cast<std::int64_t>(tid) !=
        frozen_tid.load(std::memory_order_acquire)) {
      return;
    }
    is_frozen.store(true, std::memory_order_release);
    while (!gate_open.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    is_frozen.store(false, std::memory_order_release);
  }
};

struct freezing_options : wf_options {
  using hooks = freezing_hooks;
};

using frozen_queue =
    wf_queue<std::uint64_t, help_all, scan_max_phase, hp_domain,
             freezing_options>;

class ProgressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    frozen_tid.store(-1, std::memory_order_release);
    gate_open.store(true, std::memory_order_release);
    is_frozen.store(false, std::memory_order_release);
  }
  void TearDown() override {
    gate_open.store(true, std::memory_order_release);
    frozen_tid.store(-1, std::memory_order_release);
  }

  static void freeze(std::uint32_t tid) {
    gate_open.store(false, std::memory_order_release);
    frozen_tid.store(tid, std::memory_order_release);
  }
  static void wait_frozen() {
    while (!is_frozen.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  static void thaw() { gate_open.store(true, std::memory_order_release); }
};

TEST_F(ProgressTest, PeersCompleteAFrozenEnqueue) {
  frozen_queue q(2);
  freeze(0);
  std::thread frozen([&] { q.enqueue(42, 0); });
  wait_frozen();

  // Thread 0 is parked with a pending enqueue it has not begun executing.
  // Thread 1's next operation must pick it up (its phase is older).
  auto v = q.dequeue(1);
  ASSERT_TRUE(v.has_value()) << "peer did not help the frozen enqueue";
  EXPECT_EQ(*v, 42u);

  thaw();
  frozen.join();
  EXPECT_EQ(q.unsafe_size(), 0u);
}

TEST_F(ProgressTest, PeersCompleteAFrozenDequeue) {
  frozen_queue q(2);
  q.enqueue(7, 1);
  q.enqueue(8, 1);

  freeze(0);
  std::optional<std::uint64_t> got;
  std::thread frozen([&] { got = q.dequeue(0); });
  wait_frozen();

  // Thread 1 helps the frozen dequeue before performing its own, so its own
  // dequeue must observe the *second* element.
  auto v = q.dequeue(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 8u) << "peer's dequeue should come after the frozen one";

  thaw();
  frozen.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7u) << "frozen dequeue must return the element helpers "
                         "removed on its behalf";
  EXPECT_EQ(q.unsafe_size(), 0u);
}

TEST_F(ProgressTest, FrozenEmptyDequeueIsCompletedByPeers) {
  frozen_queue q(2);
  freeze(0);
  std::optional<std::uint64_t> got = std::uint64_t{123};
  std::thread frozen([&] { got = q.dequeue(0); });
  wait_frozen();

  // Peer helps: the frozen dequeue linearizes on the empty queue.
  q.enqueue(1, 1);
  // The helped dequeue's linearization point (peer reading an empty queue)
  // may fall before or... no: thread 1's enqueue has a *later* phase, and it
  // helps the frozen op first, so the frozen dequeue linearizes before the
  // enqueue and must return empty.
  auto v = q.dequeue(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);

  thaw();
  frozen.join();
  EXPECT_EQ(got, std::nullopt)
      << "frozen dequeue was linearized on an empty queue by its helper";
}

TEST_F(ProgressTest, PeersMakeUnboundedProgressWhileOneThreadIsFrozen) {
  frozen_queue q(3);
  freeze(0);
  std::thread frozen([&] { q.enqueue(999, 0); });
  wait_frozen();

  // Threads 1 and 2 run a long workload; none of it may hang on thread 0.
  std::uint64_t completed = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    q.enqueue(i, 1);
    if (q.dequeue(2).has_value()) ++completed;
  }
  EXPECT_GT(completed, 0u);

  thaw();
  frozen.join();
  // 999 was enqueued (helped) at the very beginning; everything balances.
  std::uint64_t drained = 0;
  while (q.dequeue(1).has_value()) ++drained;
  EXPECT_EQ(completed + drained, 2001u);
}

TEST_F(ProgressTest, HelpedOperationIsAppliedExactlyOnce) {
  // The subtlest part of the scheme (paper §3.1): concurrent helpers must
  // not apply the same operation twice. Freeze an enqueuer, let MANY peers
  // all try to help it, then count.
  frozen_queue q(4);
  freeze(0);
  std::thread frozen([&] { q.enqueue(4242, 0); });
  wait_frozen();

  std::thread peers[3];
  for (int t = 0; t < 3; ++t) {
    peers[t] = std::thread([&, t] {
      // Every peer operation re-scans state and would re-help thread 0 if
      // its descriptor still looked pending.
      for (int i = 0; i < 200; ++i) {
        q.enqueue(static_cast<std::uint64_t>(1000 + t * 200 + i),
                  static_cast<std::uint32_t>(t + 1));
      }
    });
  }
  for (auto& p : peers) p.join();
  thaw();
  frozen.join();

  std::uint64_t count_4242 = 0;
  std::uint64_t total = 0;
  while (auto v = q.dequeue(1)) {
    ++total;
    if (*v == 4242) ++count_4242;
  }
  EXPECT_EQ(count_4242, 1u) << "helped enqueue applied more than once";
  EXPECT_EQ(total, 601u);
}

}  // namespace
}  // namespace kpq
