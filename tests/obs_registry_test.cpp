// Metrics registry and exposition: structural append_metrics sources,
// JSON round-trip (emit, reparse, compare), Prometheus text format, and the
// never-NaN guarantee for counters that never fired.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "core/wf_queue.hpp"
#include "harness/mem_tracker.hpp"
#include "harness/stats.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "scale/scale_counters.hpp"

namespace kpq::obs {
namespace {

std::map<std::string, double> as_map(const metrics_snapshot& snap) {
  std::map<std::string, double> m;
  for (const metric& x : snap) m[x.name] = x.value;
  return m;
}

TEST(ObsRegistry, WfCountersSource) {
  wf_counters c;
  c.enq_ops = 10;
  c.deq_ops = 30;
  c.helped_enq_completions = 3;
  c.helped_deq_completions = 1;
  metrics_snapshot snap;
  append_metrics(snap, "q", c);
  const auto m = as_map(snap);
  EXPECT_EQ(m.at("q.enq_ops"), 10.0);
  EXPECT_EQ(m.at("q.deq_ops"), 30.0);
  EXPECT_DOUBLE_EQ(m.at("q.helped_per_op"), 0.1);
}

TEST(ObsRegistry, WfCountersNeverFiredExportsZeroNotNaN) {
  metrics_snapshot snap;
  append_metrics(snap, "idle", wf_counters{});
  for (const metric& m : snap) {
    EXPECT_TRUE(std::isfinite(m.value)) << m.name;
  }
  EXPECT_EQ(as_map(snap).at("idle.helped_per_op"), 0.0);
}

TEST(ObsRegistry, ShardStatsSource) {
  shard_stats s;
  s.enqueued = 100;
  s.dequeued = 80;
  s.stolen = 20;
  metrics_snapshot snap;
  append_metrics(snap, "shard0", s);
  const auto m = as_map(snap);
  EXPECT_EQ(m.at("shard0.depth"), 20.0);
  EXPECT_DOUBLE_EQ(m.at("shard0.steal_rate"), 0.25);
  EXPECT_EQ(m.at("shard0.batch_fill"), 0.0);  // no batches: 0, not NaN
}

TEST(ObsRegistry, MemAndReclaimerSources) {
  mem_counters mc;
  mc.on_alloc(64);
  mc.on_alloc(32);
  mc.on_free(32);
  hp_domain dom(2, 3);
  metrics_snapshot snap;
  append_metrics(snap, "mem", mc);
  append_metrics(snap, "hp", dom);
  const auto m = as_map(snap);
  EXPECT_EQ(m.at("mem.live_bytes"), 64.0);
  EXPECT_EQ(m.at("mem.live_objects"), 1.0);
  EXPECT_EQ(m.at("mem.total_allocs"), 2.0);
  EXPECT_EQ(m.at("hp.retired"), 0.0);
  EXPECT_EQ(m.at("hp.freed"), 0.0);
  EXPECT_EQ(m.at("hp.pending"), 0.0);
}

TEST(ObsRegistry, EventLoopStatsSource) {
  // Mirror of async::loop_stats (structural concept — no async include).
  struct fake_loop_stats {
    std::uint64_t resumes = 10;
    std::uint64_t timer_fires = 4;
    std::uint64_t idle_parks = 2;
    std::uint64_t spawned = 5;
    std::uint64_t completed = 5;
    std::uint64_t ready_lag_ns_total = 1000;
    std::uint64_t ready_lag_ns_max = 300;
    std::uint64_t timer_slack_ns_total = 800;
    std::uint64_t timer_slack_ns_max = 500;
    std::uint64_t max_ready_depth = 7;
    double mean_ready_lag_ns() const { return 100.0; }
    double mean_timer_slack_ns() const { return 200.0; }
  };
  static_assert(event_loop_stats_like<fake_loop_stats>);

  metrics_snapshot out;
  append_metrics(out, "loop", fake_loop_stats{});
  ASSERT_EQ(out.size(), 10u);
  bool saw_lag = false, saw_depth = false;
  for (const metric& m : out) {
    if (m.name == "loop.ready_lag_ns_mean") {
      saw_lag = true;
      EXPECT_EQ(m.value, 100.0);
    }
    if (m.name == "loop.max_ready_depth") {
      saw_depth = true;
      EXPECT_EQ(m.value, 7.0);
    }
  }
  EXPECT_TRUE(saw_lag);
  EXPECT_TRUE(saw_depth);
}

TEST(ObsRegistry, SummarySourceGuardsEmpty) {
  running_stats rs;  // never fired
  metrics_snapshot snap;
  append_metrics(snap, "empty", rs.finish());
  const auto m = as_map(snap);
  EXPECT_EQ(m.at("empty.n"), 0.0);
  EXPECT_EQ(m.at("empty.mean"), 0.0);
  EXPECT_EQ(m.at("empty.min"), 0.0);   // not +inf
  EXPECT_EQ(m.at("empty.max"), 0.0);   // not -inf
  EXPECT_EQ(m.at("empty.stddev"), 0.0);
}

TEST(ObsRegistry, RegistryCollectsRegisteredSourcesInOrder) {
  wf_counters c;
  c.enq_ops = 5;
  mem_counters mc;
  registry reg;
  reg.add("queue", c);
  reg.add("mem", mc);
  reg.add_source("custom", [](metrics_snapshot& out) {
    append_value(out, "custom.answer", 42.0);
  });
  EXPECT_EQ(reg.source_count(), 3u);
  const metrics_snapshot snap = reg.snapshot();
  const auto m = as_map(snap);
  EXPECT_EQ(m.at("queue.enq_ops"), 5.0);
  EXPECT_EQ(m.at("mem.live_bytes"), 0.0);
  EXPECT_EQ(m.at("custom.answer"), 42.0);
  // Registration order is preserved in the flat document.
  EXPECT_EQ(snap.front().name, "queue.enq_ops");
  EXPECT_EQ(snap.back().name, "custom.answer");
}

// ------------------------------------------------------------- exposition

TEST(ObsExport, JsonRoundTripIsExact) {
  metrics_snapshot snap;
  append_value(snap, "a.count", 12345.0);
  append_value(snap, "a.rate", 0.14285714285714285);
  append_value(snap, "b.big", 9.007199254740992e18);
  append_value(snap, "b.neg", -17.0);
  const std::string json = to_json(snap);
  const auto parsed = parse_flat_json(json);
  ASSERT_EQ(parsed.size(), snap.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].first, snap[i].name);
    EXPECT_DOUBLE_EQ(parsed[i].second, snap[i].value) << snap[i].name;
  }
}

TEST(ObsExport, JsonSanitizesNonFiniteToZero) {
  metrics_snapshot snap;
  snap.push_back({"bad.a", std::nan("")});            // bypass append_value
  snap.push_back({"bad.b", HUGE_VAL});
  const std::string json = to_json(snap);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  const auto parsed = parse_flat_json(json);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].second, 0.0);
  EXPECT_EQ(parsed[1].second, 0.0);
}

TEST(ObsExport, JsonEscapesKeys) {
  metrics_snapshot snap;
  append_value(snap, "weird\"key\\name", 1.0);
  const std::string json = to_json(snap);
  const auto parsed = parse_flat_json(json);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].first, "weird\"key\\name");
}

TEST(ObsExport, ParseFlatJsonUnescapesKeys) {
  // Regression: the parser used to keep escape sequences raw ("a\"b" parsed
  // to the three characters a \ " b), breaking json_escape -> parse
  // round-trips for any key with a quote, backslash or control char.
  const auto parsed = parse_flat_json(
      "{\"a\\\"b\":1,\"c\\\\d\":2,\"e\\nf\":3,\"g\\u0041h\":4,"
      "\"tab\\there\":5}");
  ASSERT_EQ(parsed.size(), 5u);
  EXPECT_EQ(parsed[0].first, "a\"b");
  EXPECT_EQ(parsed[1].first, "c\\d");
  EXPECT_EQ(parsed[2].first, "e\nf");
  EXPECT_EQ(parsed[3].first, "gAh");  // \u0041 == 'A'
  EXPECT_EQ(parsed[4].first, "tab\there");
}

TEST(ObsExport, ControlCharKeyRoundTripsThroughJson) {
  // json_escape emits \u00XX for control chars; the parser must decode it.
  metrics_snapshot snap;
  append_value(snap, std::string("bell\x07key"), 9.0);
  const auto parsed = parse_flat_json(to_json(snap));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].first, "bell\x07key");
  EXPECT_EQ(parsed[0].second, 9.0);
}

TEST(ObsExport, ParseFlatJsonUnescapesMultibyteCodePoints) {
  // \u00e9 (é, 2-byte UTF-8) and \u20ac (€, 3-byte UTF-8).
  const auto parsed = parse_flat_json("{\"caf\\u00e9\":1,\"\\u20ac\":2}");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].first, "caf\xc3\xa9");
  EXPECT_EQ(parsed[1].first, "\xe2\x82\xac");
}

TEST(ObsExport, IntegralValuesPrintWithoutFraction) {
  metrics_snapshot snap;
  append_value(snap, "n", 3.0);
  EXPECT_EQ(to_json(snap), "{\"n\":3}");
}

TEST(ObsExport, PrometheusFormatAndNameSanitization) {
  metrics_snapshot snap;
  append_value(snap, "q.enq-ops", 7.0);
  append_value(snap, "9lives", 1.0);
  const std::string text = to_prometheus(snap);
  EXPECT_NE(text.find("# TYPE q_enq_ops gauge\n"), std::string::npos);
  EXPECT_NE(text.find("q_enq_ops 7\n"), std::string::npos);
  // Leading digit gets a '_' prefix (prometheus names cannot start with one).
  EXPECT_NE(text.find("_9lives 1\n"), std::string::npos);
}

TEST(ObsExport, ParseFlatJsonToleratesWhitespace) {
  const auto parsed =
      parse_flat_json("  { \"x\" : 1.5 ,\n \"y\" : -2 }  ");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].first, "x");
  EXPECT_EQ(parsed[0].second, 1.5);
  EXPECT_EQ(parsed[1].second, -2.0);
}

TEST(ObsExport, JsonWriterNestedDocument) {
  json_writer w;
  w.begin_object();
  w.key("name").value("fig");
  w.key("flag").value(true);
  w.key("xs").begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.key("obj").begin_object();
  w.key("pi").value(3.5);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"fig\",\"flag\":true,\"xs\":[1,2],"
            "\"obj\":{\"pi\":3.5}}");
}

}  // namespace
}  // namespace kpq::obs
