// Unit tests for the async runtime pieces that do not involve queues:
// task<T> (laziness, chaining, exceptions), the hashed timer wheel
// (due-filtering, past-deadline clamp, full-revolution sweeps), and the
// event loop (FIFO ready queue, yield interleaving, sleep ordering,
// drain-on-completion, stop, cross-thread post wakeups).
#include "async/event_loop.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "async/task.hpp"

namespace kpq::async {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------------- task

task<void> set_flag(bool& flag) {
  flag = true;
  co_return;
}

TEST(Task, IsLazyUntilStarted) {
  bool ran = false;
  task<void> t = set_flag(ran);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(ran);  // initial_suspend = suspend_always
  t.start();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(t.done());
}

task<int> leaf() { co_return 21; }
task<int> parent() { co_return co_await leaf() * 2; }

TEST(Task, ChainsThroughCoAwaitWithSymmetricTransfer) {
  task<int> t = parent();
  t.start();  // no external suspension points: runs to completion
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.take(), 42);
}

task<int> thrower() {
  throw std::runtime_error("boom");
  co_return 0;  // unreachable; makes this a coroutine
}

TEST(Task, ExceptionPropagatesFromTake) {
  task<int> t = thrower();
  t.start();
  ASSERT_TRUE(t.done());
  EXPECT_THROW((void)t.take(), std::runtime_error);
}

task<int> rethrower() { co_return co_await thrower(); }

TEST(Task, ExceptionPropagatesThroughCoAwait) {
  task<int> t = rethrower();
  t.start();
  ASSERT_TRUE(t.done());
  EXPECT_THROW((void)t.take(), std::runtime_error);
}

TEST(Task, DestroyingUnstartedTaskFreesTheFrame) {
  bool ran = false;
  { task<void> t = set_flag(ran); }  // dtor destroys a never-started frame
  EXPECT_FALSE(ran);
}

// ------------------------------------------------------------ timer wheel

timer_wheel::entry cb_entry(std::uint64_t deadline, int& fired) {
  return {deadline, {}, [&fired] { ++fired; }};
}

TEST(TimerWheel, FiresOnlyDueEntries) {
  timer_wheel w(/*tick_ns=*/100, /*slot_count=*/8);
  int a = 0, b = 0;
  w.schedule(cb_entry(250, a));
  w.schedule(cb_entry(910, b));
  EXPECT_EQ(w.pending(), 2u);
  EXPECT_EQ(w.next_deadline_ns(), 250u);

  std::vector<timer_wheel::entry> due;
  w.advance(300, due);
  ASSERT_EQ(due.size(), 1u);
  due[0].cb();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(w.pending(), 1u);

  due.clear();
  w.advance(1000, due);
  ASSERT_EQ(due.size(), 1u);
  due[0].cb();
  EXPECT_EQ(b, 1);
  EXPECT_EQ(w.pending(), 0u);
  EXPECT_EQ(w.next_deadline_ns(), timer_wheel::no_deadline);
}

TEST(TimerWheel, FutureRevolutionStaysPutUntilDue) {
  timer_wheel w(100, 4);  // revolution = 400 ns
  int fired = 0;
  // Deadline 950 shares slot 1 with tick 1, but is two revolutions out.
  w.schedule(cb_entry(950, fired));
  std::vector<timer_wheel::entry> due;
  w.advance(150, due);  // sweeps slot 1 — entry must NOT fire early
  EXPECT_TRUE(due.empty());
  w.advance(960, due);
  ASSERT_EQ(due.size(), 1u);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvanceNotNextRevolution) {
  timer_wheel w(100, 4);
  std::vector<timer_wheel::entry> due;
  w.advance(500, due);  // cursor now at tick 5
  EXPECT_TRUE(due.empty());
  int fired = 0;
  w.schedule(cb_entry(120, fired));  // tick 1: already behind the cursor
  w.advance(510, due);               // must fire HERE, not at tick 1+4k
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].deadline_ns, 120u);
}

TEST(TimerWheel, FirstAdvanceSweepsPreStartSchedules) {
  timer_wheel w(100, 4);
  int fired = 0;
  // Several slots, all due well before the first advance's `now`.
  w.schedule(cb_entry(10, fired));
  w.schedule(cb_entry(110, fired));
  w.schedule(cb_entry(210, fired));
  std::vector<timer_wheel::entry> due;
  w.advance(100'000, due);  // first sweep covers a whole revolution
  EXPECT_EQ(due.size(), 3u);
  EXPECT_EQ(w.pending(), 0u);
}

// ------------------------------------------------------------- event loop

task<void> append_after_yield(event_loop& loop, std::vector<int>& order,
                              int id) {
  co_await loop.yield();
  order.push_back(id);
}

TEST(EventLoop, ReadyQueueRunsInPostOrder) {
  event_loop loop;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    loop.spawn(append_after_yield(loop, order, i));
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  const loop_stats s = loop.stats();
  EXPECT_EQ(s.spawned, 4u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_GE(s.resumes, 4u);
  EXPECT_EQ(loop.active(), 0u);
}

task<void> append_twice(event_loop& loop, std::vector<std::string>& order,
                        std::string tag) {
  co_await loop.yield();
  order.push_back(tag + "0");
  co_await loop.yield();
  order.push_back(tag + "1");
}

TEST(EventLoop, YieldInterleavesCooperatively) {
  event_loop loop;
  std::vector<std::string> order;
  loop.spawn(append_twice(loop, order, "a"));
  loop.spawn(append_twice(loop, order, "b"));
  loop.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"a0", "b0", "a1", "b1"}));
}

task<void> sleep_then_append(event_loop& loop, std::chrono::milliseconds d,
                             std::vector<char>& order, char id) {
  co_await loop.sleep_for(d);
  order.push_back(id);
}

TEST(EventLoop, SleepOrdersByDeadlineAndParksIdle) {
  event_loop loop;
  std::vector<char> order;
  loop.spawn(sleep_then_append(loop, 30ms, order, 'A'));
  loop.spawn(sleep_then_append(loop, 5ms, order, 'B'));
  const auto t0 = std::chrono::steady_clock::now();
  loop.run();
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(order, (std::vector<char>{'B', 'A'}));
  EXPECT_GE(dt, 29ms);  // really waited for the later deadline
  const loop_stats s = loop.stats();
  EXPECT_GE(s.timer_fires, 2u);
  EXPECT_GE(s.idle_parks, 1u);  // slept instead of spinning
}

TEST(EventLoop, StopReturnsEarlyThenResumedRunDrains) {
  event_loop loop;
  std::vector<char> order;
  loop.spawn(sleep_then_append(loop, 100ms, order, 'S'));
  std::thread stopper([&] {
    std::this_thread::sleep_for(10ms);
    loop.stop();
  });
  loop.run();  // returns at the stop, sleeper still pending
  stopper.join();
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(loop.active(), 1u);
  loop.run();  // stop flag was consumed; this run drains fully
  EXPECT_EQ(order, (std::vector<char>{'S'}));
  EXPECT_EQ(loop.active(), 0u);
}

struct capture_handle {
  std::coroutine_handle<>* slot;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept { *slot = h; }
  void await_resume() const noexcept {}
};

task<void> wait_external(std::coroutine_handle<>& slot, bool& resumed) {
  co_await capture_handle{&slot};
  resumed = true;
}

TEST(EventLoop, CrossThreadPostWakesParkedLoop) {
  event_loop loop;
  std::coroutine_handle<> h{};
  bool resumed = false;
  loop.spawn(wait_external(h, resumed));  // suspends during spawn
  ASSERT_TRUE(h);
  std::thread poster([&] {
    std::this_thread::sleep_for(20ms);
    loop.post(h);  // the only wake signal the parked loop will get
  });
  loop.run();
  poster.join();
  EXPECT_TRUE(resumed);
  EXPECT_GE(loop.stats().idle_parks, 1u);
  EXPECT_EQ(loop.hub().stats().parks, loop.stats().idle_parks);
}

// ------------------------------------------------------- loop health gauges

task<void> yield_n(event_loop& loop, int n) {
  for (int i = 0; i < n; ++i) co_await loop.yield();
}

TEST(EventLoop, HealthGaugesTrackReadyLagAndDepth) {
  event_loop loop;
  for (int i = 0; i < 8; ++i) loop.spawn(yield_n(loop, 3));
  loop.run();
  const loop_stats s = loop.stats();
  // 8 coroutines were queued at once at least during the spawn burst.
  EXPECT_GE(s.max_ready_depth, 8u);
  EXPECT_GT(s.resumes, 0u);
  // Lag is measured per resumed handle; the max bounds the mean.
  EXPECT_GE(static_cast<double>(s.ready_lag_ns_max), s.mean_ready_lag_ns());
  EXPECT_GE(s.ready_lag_ns_max, 0u);
}

TEST(EventLoop, HealthGaugesTrackTimerSlack) {
  event_loop loop;
  std::vector<char> order;
  loop.spawn(sleep_then_append(loop, 5ms, order, 'T'));
  loop.run();
  const loop_stats s = loop.stats();
  ASSERT_GE(s.timer_fires, 1u);
  // The wheel has 1ms ticks and the loop parks until the deadline, so the
  // fire happens AT or AFTER the deadline — slack is well-defined and the
  // max bounds the mean.
  EXPECT_GE(static_cast<double>(s.timer_slack_ns_max),
            s.mean_timer_slack_ns());
}

TEST(EventLoop, IdleStatsAreZeroNotGarbage) {
  event_loop loop;
  loop.run();  // nothing spawned: drains immediately
  const loop_stats s = loop.stats();
  EXPECT_EQ(s.ready_lag_ns_total, 0u);
  EXPECT_EQ(s.timer_slack_ns_total, 0u);
  EXPECT_EQ(s.max_ready_depth, 0u);
  EXPECT_EQ(s.mean_ready_lag_ns(), 0.0);    // resumes == 0 guard
  EXPECT_EQ(s.mean_timer_slack_ns(), 0.0);  // timer_fires == 0 guard
}

}  // namespace
}  // namespace kpq::async
