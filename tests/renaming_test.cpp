// Tests for the splitter and the Moir–Anderson grid renaming.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sync/renaming.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq {
namespace {

// ---------------------------------------------------------------- splitter

TEST(Splitter, SoloVisitorStops) {
  splitter s;
  EXPECT_EQ(s.visit(1), splitter::outcome::stop);
  EXPECT_TRUE(s.closed());
}

TEST(Splitter, SecondSequentialVisitorGoesRight) {
  splitter s;
  EXPECT_EQ(s.visit(1), splitter::outcome::stop);
  EXPECT_EQ(s.visit(2), splitter::outcome::right);
  EXPECT_EQ(s.visit(3), splitter::outcome::right);
}

TEST(Splitter, AtMostOneStopUnderConcurrency) {
  for (int rep = 0; rep < 100; ++rep) {
    splitter s;
    constexpr int kThreads = 4;
    std::atomic<int> stops{0}, rights{0}, downs{0};
    spin_barrier b(kThreads);
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        b.arrive_and_wait();
        switch (s.visit(static_cast<std::uint64_t>(i + 1))) {
          case splitter::outcome::stop:
            stops.fetch_add(1);
            break;
          case splitter::outcome::right:
            rights.fetch_add(1);
            break;
          case splitter::outcome::down:
            downs.fetch_add(1);
            break;
        }
      });
    }
    for (auto& t : ts) t.join();
    EXPECT_LE(stops.load(), 1) << "splitter let two threads stop";
    // Splitter lemma: not everyone can be diverted the same way.
    EXPECT_LT(rights.load(), kThreads);
    EXPECT_LT(downs.load(), kThreads);
  }
}

// -------------------------------------------------------------------- grid

TEST(SplitterGrid, SoloParticipantGetsNameZeroInZeroMoves) {
  splitter_grid_renaming g(8);
  auto a = g.acquire(12345);
  EXPECT_EQ(a.name, 0u);
  EXPECT_EQ(a.moves, 0u);
}

TEST(SplitterGrid, SequentialParticipantsGetDistinctSmallNames) {
  splitter_grid_renaming g(4);
  std::set<std::uint32_t> names;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    auto a = g.acquire(id);
    EXPECT_TRUE(names.insert(a.name).second) << "duplicate name " << a.name;
    EXPECT_LT(a.name, g.name_space());
  }
  // Sequential arrivals walk the top row: adaptive naming keeps them tiny.
  EXPECT_LE(*names.rbegin(), g.name_space() - 1);
}

TEST(SplitterGrid, NameSpaceIsTriangular) {
  EXPECT_EQ(splitter_grid_renaming(1).name_space(), 1u);
  EXPECT_EQ(splitter_grid_renaming(4).name_space(), 10u);
  EXPECT_EQ(splitter_grid_renaming(16).name_space(), 136u);
}

TEST(SplitterGrid, ConcurrentParticipantsGetDistinctNamesWithinBound) {
  constexpr std::uint32_t k = 8;
  for (int rep = 0; rep < 50; ++rep) {
    splitter_grid_renaming g(k);
    std::vector<std::uint32_t> names(k);
    std::vector<std::uint32_t> moves(k);
    spin_barrier b(k);
    std::vector<std::thread> ts;
    for (std::uint32_t i = 0; i < k; ++i) {
      ts.emplace_back([&, i] {
        b.arrive_and_wait();
        auto a = g.acquire(0x1000 + i);
        names[i] = a.name;
        moves[i] = a.moves;
      });
    }
    for (auto& t : ts) t.join();
    std::set<std::uint32_t> unique(names.begin(), names.end());
    ASSERT_EQ(unique.size(), static_cast<std::size_t>(k))
        << "name collision at rep " << rep;
    for (std::uint32_t i = 0; i < k; ++i) {
      EXPECT_LT(names[i], g.name_space());
      EXPECT_LE(moves[i], k - 1) << "walk exceeded the wait-free bound";
    }
  }
}

TEST(SplitterGrid, MixedWavesStayDistinctAcrossTheShot) {
  // One-shot semantics: names are never recycled, so even threads arriving
  // in waves must all be distinct (as long as total <= ... the grid handles
  // up to k CONCURRENT participants; sequential arrivals consume the top
  // row). Keep total <= k to stay within the one-shot contract.
  constexpr std::uint32_t k = 6;
  splitter_grid_renaming g(k);
  std::set<std::uint32_t> names;
  std::mutex m;
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::thread> ts;
    spin_barrier b(3);
    for (int i = 0; i < 3; ++i) {
      ts.emplace_back([&, wave, i] {
        b.arrive_and_wait();
        auto a = g.acquire(static_cast<std::uint64_t>(wave) * 100 + i + 1);
        std::lock_guard<std::mutex> lk(m);
        EXPECT_TRUE(names.insert(a.name).second);
      });
    }
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace kpq
