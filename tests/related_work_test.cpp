// Tests for the related-work baselines (paper §2): Herlihy's wait-free
// universal construction instantiated as a queue, and Lamport's SPSC queue.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "baseline/spsc_queue.hpp"
#include "baseline/universal_queue.hpp"
#include "harness/workload.hpp"
#include "sync/spin_barrier.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"

namespace kpq {
namespace {

// ------------------------------------------------------- universal_queue

TEST(UniversalQueue, SequentialFifoSemantics) {
  universal_queue<std::uint64_t> q(2);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  for (std::uint64_t i = 0; i < 50; ++i) q.enqueue(i, 0);
  EXPECT_EQ(q.unsafe_size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(q.dequeue(1), std::optional<std::uint64_t>(i));
  }
  EXPECT_EQ(q.dequeue(1), std::nullopt);
}

TEST(UniversalQueue, EmptyDequeueIsThreadedIntoTheLog) {
  universal_queue<std::uint64_t> q(1);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  // anchor + 2 dequeues: universal constructions log *every* operation,
  // even no-ops — one of the §2 inefficiencies.
  EXPECT_EQ(q.log_length(), 3u);
}

TEST(UniversalQueue, LogGrowsWithoutBound) {
  universal_queue<std::uint64_t> q(1);
  for (std::uint64_t i = 0; i < 20; ++i) {
    q.enqueue(i, 0);
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  EXPECT_EQ(q.log_length(), 41u) << "anchor + 40 operations";
  EXPECT_EQ(q.unsafe_size(), 0u);
}

TEST(UniversalQueue, ConcurrentHistoryIsFifoConsistent) {
  constexpr std::uint32_t kThreads = 4;
  universal_queue<std::uint64_t> q(kThreads);
  history_recorder rec(kThreads);
  spin_barrier barrier(kThreads);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      fast_rng rng = thread_stream(0xBEE, tid);
      std::uint64_t seq = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 150; ++i) {  // replay is O(history): keep small
        if (rng.coin()) {
          const std::uint64_t v = encode_value(tid, seq++);
          auto s = rec.begin(tid, op_kind::enq, v);
          q.enqueue(v, tid);
          s.commit();
        } else {
          auto s = rec.begin(tid, op_kind::deq);
          auto r = q.dequeue(tid);
          if (r.has_value()) {
            s.set_value(*r);
          } else {
            s.set_empty();
          }
          s.commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::uint64_t> drained;
  while (auto v = q.dequeue(0)) drained.push_back(*v);
  auto r = fifo_checker::check(rec.collect(), drained);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(UniversalQueue, HelpsAnnouncedOperationsInTurnOrder) {
  // Indirect progress check: with heavy interference from thread 0, thread
  // 1's operations must still complete (turn-based helping guarantees a
  // slot within n rounds). Run them truly concurrently and bound total ops.
  universal_queue<std::uint64_t> q(2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> t1_done{0};
  std::thread interferer([&] {
    // Bounded interference: replay is O(history), so an unbounded loop
    // would make the test quadratic in wall time.
    for (std::uint64_t i = 0; i < 2000 && !stop.load(); ++i) {
      q.enqueue(i, 0);
    }
  });
  std::thread victim([&] {
    for (int i = 0; i < 100; ++i) {
      q.enqueue(encode_value(1, i), 1);
      t1_done.fetch_add(1);
    }
  });
  victim.join();
  stop.store(true);
  interferer.join();
  EXPECT_EQ(t1_done.load(), 100u);
}

// ------------------------------------------------------------ spsc_queue

TEST(SpscQueue, SequentialFifoAndBoundedness) {
  spsc_queue<std::uint64_t> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.empty_hint());
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.enqueue(i));
  EXPECT_TRUE(q.full_hint());
  EXPECT_FALSE(q.enqueue(99)) << "bounded array must reject when full";
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(i));
  }
  EXPECT_EQ(q.dequeue(), std::nullopt);
}

TEST(SpscQueue, WrapsAroundTheRing) {
  spsc_queue<std::uint64_t> q(3);
  std::uint64_t in = 0, out = 0;
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(q.enqueue(in++));
    EXPECT_TRUE(q.enqueue(in++));
    EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(out++));
    EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(out++));
  }
  EXPECT_EQ(q.unsafe_size(), 0u);
}

TEST(SpscQueue, ProducerConsumerTransfersEverythingInOrder) {
  spsc_queue<std::uint64_t> q(64);
  constexpr std::uint64_t kItems = 100000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (q.enqueue(i)) ++i;
    }
  });
  std::uint64_t expect = 0;
  while (expect < kItems) {
    if (auto v = q.dequeue()) {
      ASSERT_EQ(*v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty_hint());
}

}  // namespace
}  // namespace kpq
