// Tests for the blocking adapter: wake-up correctness (no lost wakeups, no
// lost elements), close semantics, timeouts, and a producer/consumer soak.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "core/blocking_adapter.hpp"
#include "core/wf_queue.hpp"

namespace kpq {
namespace {

using namespace std::chrono_literals;

using blocking_wf = blocking_adapter<wf_queue_opt<std::uint64_t>>;

TEST(BlockingAdapter, TryDequeueMatchesUnderlyingContract) {
  blocking_wf q(2);
  EXPECT_EQ(q.try_dequeue(0), std::nullopt);
  q.enqueue(7, 0);
  EXPECT_EQ(q.try_dequeue(1), std::optional<std::uint64_t>(7));
}

TEST(BlockingAdapter, BlockingDequeueWakesOnEnqueue) {
  blocking_wf q(2);
  std::optional<std::uint64_t> got;
  std::thread consumer([&] { got = q.dequeue_blocking(1); });
  std::this_thread::sleep_for(20ms);  // let it sleep
  q.enqueue(99, 0);
  consumer.join();
  EXPECT_EQ(got, std::optional<std::uint64_t>(99));
}

TEST(BlockingAdapter, CloseReleasesBlockedConsumers) {
  blocking_wf q(3);
  std::atomic<int> released{0};
  std::vector<std::thread> consumers;
  for (std::uint32_t tid = 0; tid < 2; ++tid) {
    consumers.emplace_back([&, tid] {
      EXPECT_EQ(q.dequeue_blocking(tid), std::nullopt);
      released.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(released.load(), 0);
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(released.load(), 2);
  EXPECT_TRUE(q.closed());
}

TEST(BlockingAdapter, CloseStillDrainsRemainingElements) {
  blocking_wf q(2);
  q.enqueue(1, 0);
  q.enqueue(2, 0);
  q.close();
  EXPECT_EQ(q.dequeue_blocking(1), std::optional<std::uint64_t>(1));
  EXPECT_EQ(q.dequeue_blocking(1), std::optional<std::uint64_t>(2));
  EXPECT_EQ(q.dequeue_blocking(1), std::nullopt);
}

TEST(BlockingAdapter, TimeoutExpiresOnEmptyQueue) {
  blocking_wf q(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.dequeue_for(30ms, 0), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
}

TEST(BlockingAdapter, TimeoutReturnsElementThatArrivesInTime) {
  blocking_wf q(2);
  std::optional<std::uint64_t> got;
  std::thread consumer([&] { got = q.dequeue_for(2s, 1); });
  std::this_thread::sleep_for(10ms);
  q.enqueue(5, 0);
  consumer.join();
  EXPECT_EQ(got, std::optional<std::uint64_t>(5));
}

TEST(BlockingAdapter, NoLostWakeupsUnderChurn) {
  // Many tiny handoffs: every produced element must be consumed exactly
  // once with no consumer stuck. A lost wakeup would hang this test (caught
  // by the ctest timeout).
  constexpr std::uint32_t kConsumers = 3;
  constexpr std::uint64_t kItems = 3000;
  blocking_adapter<wf_queue_opt<std::uint64_t>> q(kConsumers + 1);
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::thread> consumers;
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (q.dequeue_blocking(c).has_value()) {
        consumed.fetch_add(1);
      }
    });
  }
  for (std::uint64_t i = 0; i < kItems; ++i) {
    q.enqueue(i, kConsumers);
    if (i % 64 == 0) std::this_thread::yield();
  }
  while (consumed.load() < kItems) std::this_thread::yield();
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(consumed.load(), kItems);
}

TEST(BlockingAdapter, ShutdownWakesAllSleepersAndDrainsBacklog) {
  // Full shutdown sequence with items in flight: several consumers asleep
  // on an empty queue, then a producer enqueues a small backlog and
  // immediately closes. Every consumer must wake without further enqueues,
  // the backlog must be drained exactly once collectively, and every
  // consumer must then observe end-of-queue (nullopt) — including on pops
  // issued after close returned.
  constexpr std::uint32_t kConsumers = 4;
  constexpr std::uint64_t kBacklog = 3;
  blocking_adapter<wf_queue_opt<std::uint64_t>> q(kConsumers + 1);
  std::atomic<std::uint64_t> drained{0};
  std::atomic<int> ended{0};
  std::vector<std::thread> consumers;
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (q.dequeue_blocking(c).has_value()) drained.fetch_add(1);
      ended.fetch_add(1);
      // Closed and drained stays closed and drained.
      EXPECT_EQ(q.dequeue_blocking(c), std::nullopt);
      EXPECT_EQ(q.try_dequeue(c), std::nullopt);
    });
  }
  std::this_thread::sleep_for(30ms);  // let all consumers block
  EXPECT_EQ(ended.load(), 0);
  for (std::uint64_t i = 0; i < kBacklog; ++i) q.enqueue(i, kConsumers);
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(drained.load(), kBacklog);
  EXPECT_EQ(ended.load(), static_cast<int>(kConsumers));
  EXPECT_TRUE(q.closed());
}

TEST(BlockingAdapter, WorksOverTheLockFreeBaselineToo) {
  blocking_adapter<ms_queue<std::uint64_t>> q(2);
  q.enqueue(11, 0);
  EXPECT_EQ(q.dequeue_blocking(1), std::optional<std::uint64_t>(11));
}

}  // namespace
}  // namespace kpq
