// Tests for the optional per-thread statistics instrumentation
// (wf_options_stats / wf_counters).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "harness/workload.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq {
namespace {

using stats_queue = wf_queue<std::uint64_t, help_all, fetch_add_phase,
                             hp_domain, wf_options_stats>;

TEST(WfStats, CountsOperationsSequentially) {
  stats_queue q(2);
  for (std::uint64_t i = 0; i < 10; ++i) q.enqueue(i, 0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.dequeue(1).has_value());
  const auto c0 = q.counters(0);
  const auto c1 = q.counters(1);
  EXPECT_EQ(c0.enq_ops, 10u);
  EXPECT_EQ(c0.deq_ops, 0u);
  EXPECT_EQ(c1.deq_ops, 5u);
  EXPECT_EQ(c1.enq_ops, 0u);
}

TEST(WfStats, EmptyDequeuesAreCounted) {
  stats_queue q(1);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  q.enqueue(1, 0);
  EXPECT_TRUE(q.dequeue(0).has_value());
  EXPECT_EQ(q.counters(0).empty_deqs, 2u);
  EXPECT_EQ(q.counters(0).deq_ops, 3u);
}

TEST(WfStats, NoHelpingWhenSingleThreaded) {
  stats_queue q(4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    q.enqueue(i, 2);
    ASSERT_TRUE(q.dequeue(2).has_value());
  }
  const auto total = q.aggregate_counters();
  EXPECT_EQ(total.helped_enq_completions, 0u);
  EXPECT_EQ(total.helped_deq_completions, 0u);
  EXPECT_EQ(total.link_cas_failures, 0u);
  EXPECT_EQ(total.desc_cas_failures, 0u);
}

TEST(WfStats, AggregateSumsAllThreads) {
  stats_queue q(3);
  q.enqueue(1, 0);
  q.enqueue(2, 1);
  ASSERT_TRUE(q.dequeue(2).has_value());
  const auto total = q.aggregate_counters();
  EXPECT_EQ(total.enq_ops, 2u);
  EXPECT_EQ(total.deq_ops, 1u);
}

// Deterministic helping: freeze a thread right after it announces its
// operation (same hook as core_progress_test) and verify the helper's
// counters record the completion it performed for the frozen peer.
std::atomic<bool> freeze_tid0{false};
std::atomic<bool> frozen_now{false};
std::atomic<bool> release_gate{false};

struct stats_freeze_hooks {
  static void after_publish(std::uint32_t tid, bool /*is_enqueue*/) {
    if (tid != 0 || !freeze_tid0.load(std::memory_order_acquire)) return;
    frozen_now.store(true, std::memory_order_release);
    while (!release_gate.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
};
struct stats_freeze_options : wf_options_stats {
  using hooks = stats_freeze_hooks;
};

TEST(WfStats, HelperCompletionIsCountedDeterministically) {
  using frozen_stats_queue =
      wf_queue<std::uint64_t, help_all, fetch_add_phase, hp_domain,
               stats_freeze_options>;
  frozen_stats_queue q(2);
  freeze_tid0.store(true);
  frozen_now.store(false);
  release_gate.store(false);

  std::thread frozen([&] { q.enqueue(42, 0); });
  while (!frozen_now.load()) std::this_thread::yield();

  // Thread 1's dequeue must complete thread 0's frozen enqueue first.
  auto v = q.dequeue(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42u);

  release_gate.store(true);
  frozen.join();
  freeze_tid0.store(false);

  const auto c1 = q.counters(1);
  EXPECT_EQ(c1.helped_enq_completions, 1u)
      << "helper's completion CAS for the frozen peer was not counted";
  EXPECT_EQ(q.counters(0).helped_enq_completions, 0u);
}

TEST(WfStats, CountersOffCostsNothingAndIsSafe) {
  // Default options: stats vector is empty; aggregate must return zeros
  // rather than touching anything.
  wf_queue_opt<std::uint64_t> q(2);
  q.enqueue(1, 0);
  const auto total = q.aggregate_counters();
  EXPECT_EQ(total.enq_ops, 0u);
  EXPECT_EQ(total.deq_ops, 0u);
}

}  // namespace
}  // namespace kpq
