// The storage layer: segment geometry, the seal/consume/retire protocol,
// spare-slot recycling, range-aware hazard scanning, exact live-byte
// accounting (including the construction baseline), and the obs export of
// pool occupancy.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "harness/mem_tracker.hpp"
#include "obs/registry.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "reclaim/leaky.hpp"
#include "storage/bounded_wf_queue.hpp"
#include "storage/segment_storage.hpp"

namespace kpq {
namespace {

// A standalone accounting anchor playing the container's role for direct
// storage-layer tests.
struct acct_holder : mem_tracked {
  mem_counters mc;
  acct_holder() {
    set_memory_counters(&mc);
    seal_baseline();
  }
};

using seg256 = segment_storage<std::uint64_t, 256>;

// ----------------------------------------------------------- geometry

TEST(SegmentStorage, GeometryAndBumpAllocation) {
  static_assert(seg256::cells_per_segment >= 2);
  static_assert(seg256::max_alloc_bytes == 256);

  acct_holder a;
  hp_domain dom(1, 1);
  seg256 s(1, &a);

  auto* n0 = s.alloc(0, 1, 0, dom);
  auto* n1 = s.alloc(0, 2, 0, dom);
  ASSERT_NE(n0, nullptr);
  // Bump allocation: consecutive cells, same 256-byte-aligned segment.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(n0) & ~std::uintptr_t{255},
            reinterpret_cast<std::uintptr_t>(n1) & ~std::uintptr_t{255});
  EXPECT_EQ(n0->value, 1u);
  EXPECT_EQ(n1->value, 2u);

  const auto st = s.pool_stats();
  EXPECT_EQ(st.segments_allocated, 1u);
  EXPECT_EQ(st.segments_live, 1);
  EXPECT_EQ(st.segment_bytes, 256u);
  EXPECT_EQ(st.cells_per_segment, seg256::cells_per_segment);
  EXPECT_EQ(a.mc.live_bytes(), 256);  // one segment, accounted as a block
}

// A full segment's retirement frees (or parks) it; the next opening reuses
// the spare instead of the heap.
TEST(SegmentStorage, SealConsumeRecycleRoundtrip) {
  acct_holder a;
  hp_domain dom(1, 1);
  seg256 s(1, &a);

  constexpr std::size_t k = seg256::cells_per_segment;
  std::vector<seg256::node_type*> nodes;
  for (std::size_t i = 0; i < k; ++i) {
    nodes.push_back(s.alloc(0, i, 0, dom));
  }
  // Opening the second segment seals the first.
  auto* overflow = s.alloc(0, 99, 0, dom);
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(s.pool_stats().segments_allocated, 2u);

  // Consuming every cell of the sealed segment retires it; with no hazard
  // announcement the eager scan reclaims immediately — into the spare slot.
  for (auto* n : nodes) s.retire(0, n, dom);
  {
    const auto st = s.pool_stats();
    EXPECT_EQ(st.segments_retired, 0);  // reclaimed, not pending
    EXPECT_EQ(st.segments_spare, 1);
    EXPECT_EQ(st.segments_live, 2);  // spare still owns its memory
  }

  // Fill the second segment; its successor must come from the spare slot.
  for (std::size_t i = 1; i < k; ++i) s.alloc(0, i, 0, dom);
  s.alloc(0, 100, 0, dom);
  {
    const auto st = s.pool_stats();
    EXPECT_EQ(st.segments_allocated, 2u);  // no third heap allocation
    EXPECT_EQ(st.segments_recycled, 1u);
    EXPECT_EQ(st.segments_spare, 0);
  }
}

// A hazard announcement anywhere INSIDE a retired segment keeps the whole
// segment alive; clearing it lets the next scan reclaim.
TEST(SegmentStorage, AnnouncedCellPinsWholeSegment) {
  acct_holder a;
  hp_domain dom(2, 1);
  seg256 s(2, &a);

  constexpr std::size_t k = seg256::cells_per_segment;
  std::vector<seg256::node_type*> nodes;
  for (std::size_t i = 0; i < k; ++i) nodes.push_back(s.alloc(0, i, 0, dom));

  auto g = dom.enter(1);
  g.protect_raw(0, nodes[k - 1]);  // pin the LAST cell only

  s.alloc(0, 99, 0, dom);                   // seal segment 1
  for (auto* n : nodes) s.retire(0, n, dom);  // fully consume -> retire_range
  EXPECT_EQ(s.pool_stats().segments_retired, 1);  // pinned: still pending

  g.clear(0);
  dom.scan(0);  // next scan reclaims it
  const auto st = s.pool_stats();
  EXPECT_EQ(st.segments_retired, 0);
  EXPECT_EQ(st.segments_spare, 1);
}

// ------------------------------------------------- retire_range, directly

struct range_probe {
  std::atomic<int> freed{0};
  static void cb(void* ctx, void*) {
    static_cast<range_probe*>(ctx)->freed.fetch_add(1);
  }
};

TEST(RetireRange, HazardScanIsRangeAware) {
  hp_domain dom(2, 2);
  alignas(64) static std::byte buf[128];
  range_probe probe;

  auto g = dom.enter(0);
  g.protect_raw(0, buf + 64);  // an interior pointer, not the base

  dom.retire_range(1, buf, sizeof(buf), &range_probe::cb, &probe);
  EXPECT_EQ(probe.freed.load(), 0);  // interior announcement pins the range

  // One past the end is NOT inside the range.
  g.protect_raw(0, buf + sizeof(buf));
  dom.scan(1);
  EXPECT_EQ(probe.freed.load(), 1);
  g.clear(0);
}

TEST(RetireRange, ExactItemsKeepExactMatching) {
  hp_domain dom(1, 2);
  static int a_obj, b_obj;
  range_probe probe;

  auto g = dom.enter(0);
  g.protect_raw(0, &a_obj);
  dom.retire(0, &a_obj, &range_probe::cb, &probe);
  dom.retire(0, &b_obj, &range_probe::cb, &probe);
  dom.scan(0);
  EXPECT_EQ(probe.freed.load(), 1);  // b freed, a pinned
  g.clear(0);
  dom.scan(0);
  EXPECT_EQ(probe.freed.load(), 2);
}

TEST(RetireRange, EpochAndLeakyDelegate) {
  {
    range_probe probe;
    {
      epoch_domain dom(1, 0, /*flush_threshold=*/1);
      alignas(16) static std::byte buf[32];
      dom.retire_range(0, buf, sizeof(buf), &range_probe::cb, &probe);
    }
    EXPECT_EQ(probe.freed.load(), 1);  // freed by advance or teardown
  }
  {
    range_probe probe;
    {
      leaky_domain dom(1, 0);
      alignas(16) static std::byte buf[32];
      dom.retire_range(0, buf, sizeof(buf), &range_probe::cb, &probe);
      EXPECT_EQ(probe.freed.load(), 0);  // leaky: deferred to teardown
    }
    EXPECT_EQ(probe.freed.load(), 1);
  }
}

// ---------------------------------------------------- accounting (fig10)

// Attach-at-construction and attach-later must agree: the construction
// baseline replay closes the gap ISSUE 6 calls out (descriptor and sentinel
// allocations invisible to a late-attached counter).
TEST(MemAccounting, LateAttachReplaysConstructionBaseline) {
  mem_counters at_ctor, late;
  {
    wf_queue_base<std::uint64_t> q1(3, &at_ctor);
    wf_queue_base<std::uint64_t> q2(3);
    q2.set_memory_counters(&late);
    EXPECT_EQ(at_ctor.live_bytes(), late.live_bytes());
    EXPECT_EQ(at_ctor.live_objects(), late.live_objects());
    EXPECT_GT(late.live_bytes(), 0);
  }
}

// Every allocation the queue makes is matched by a free by destruction
// time: live counters return to exactly zero, for BOTH storages. This is
// the invariant the bounded queue's ceiling rests on.
TEST(MemAccounting, LiveBytesReturnToZeroHeapStorage) {
  mem_counters mc;
  {
    wf_queue_base<std::uint64_t> q(3, &mc);
    for (int round = 0; round < 3; ++round) {
      for (std::uint64_t i = 0; i < 200; ++i)
        q.enqueue(i, static_cast<std::uint32_t>(i % 3));
      for (int i = 0; i < 200; ++i) (void)q.dequeue(i % 3);
    }
    EXPECT_GE(mc.live_bytes(), 0);
  }
  EXPECT_EQ(mc.live_bytes(), 0);
  EXPECT_EQ(mc.live_objects(), 0);
}

TEST(MemAccounting, LiveBytesReturnToZeroSegmentStorage) {
  mem_counters mc;
  {
    wf_queue_opt_seg<std::uint64_t> q(3, &mc);
    for (int round = 0; round < 3; ++round) {
      for (std::uint64_t i = 0; i < 200; ++i)
        q.enqueue(i, static_cast<std::uint32_t>(i % 3));
      for (int i = 0; i < 200; ++i) (void)q.dequeue(i % 3);
    }
    EXPECT_GE(mc.live_bytes(), 0);
  }
  EXPECT_EQ(mc.live_bytes(), 0);
  EXPECT_EQ(mc.live_objects(), 0);
}

// --------------------------------------------- segment queue, end to end

TEST(SegmentQueue, FifoRoundtripAndDrain) {
  wf_queue_base_seg<std::uint64_t> q(2);
  for (std::uint64_t i = 0; i < 1000; ++i) q.enqueue(i, 0);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto v = q.dequeue(1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue(0).has_value());

  const auto st = q.storage().pool_stats();
  EXPECT_GT(st.segments_allocated + st.segments_recycled, 1u);
}

TEST(SegmentQueue, ConcurrentMpmcKeepsAllValues) {
  constexpr std::uint32_t kProducers = 2, kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 3000;
  wf_queue_opt_seg<std::uint64_t> q(kProducers + kConsumers);

  std::atomic<std::uint64_t> sum{0}, got{0};
  std::vector<std::thread> ts;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.enqueue(p * kPerProducer + i + 1, p);
      }
    });
  }
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&, c] {
      const std::uint32_t tid = kProducers + c;
      while (got.load() < kProducers * kPerProducer) {
        if (auto v = q.dequeue(tid)) {
          sum.fetch_add(*v);
          got.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(got.load(), n);
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  EXPECT_EQ(q.unsafe_size(), 0u);
}

// ------------------------------------------------------------ obs export

TEST(ObsExport, SegmentPoolStatsAppendStructurally) {
  wf_queue_base_seg<std::uint64_t> q(1);
  for (std::uint64_t i = 0; i < 100; ++i) q.enqueue(i, 0);
  while (q.dequeue(0)) {
  }

  obs::metrics_snapshot snap;
  obs::append_metrics(snap, "segpool", q.storage().pool_stats());
  ASSERT_EQ(snap.size(), 9u);
  EXPECT_EQ(snap[0].name, "segpool.segments_allocated");
  EXPECT_GT(snap[0].value, 0.0);
  EXPECT_EQ(snap[8].name, "segpool.recycle_rate");
  for (const auto& m : snap) EXPECT_TRUE(std::isfinite(m.value));
}

TEST(ObsExport, BoundedCountersAppendStructurally) {
  bounded_counters c{.admitted = 5, .rejected = 2, .overwritten = 1,
                     .block_waits = 0};
  obs::metrics_snapshot snap;
  obs::append_metrics(snap, "bounded", c);
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "bounded.admitted");
  EXPECT_EQ(snap[0].value, 5.0);
  EXPECT_EQ(snap[1].value, 2.0);
}

}  // namespace
}  // namespace kpq
