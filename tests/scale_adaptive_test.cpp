// The adaptation test harness for self-tuning elastic sharding
// (scale/adaptive.hpp + scale/tuner.hpp). Four layers, mirroring the
// adaptation invariants of docs/ALGORITHM.md §9:
//
//   1. MECHANISM — scan_table / elastic_control unit behaviour: identity
//      seed table, epoch monotonicity, permutation checking, activation
//      masks; plus the cache/NUMA topology probe the tuner sizes pools
//      with (harness/affinity).
//
//   2. SAFETY UNDER INTERLEAVING — the deterministic tick injector: the
//      step-machine replay (tests/support/step_machines.hpp, elastic
//      section) runs sharded operations one primitive action at a time
//      while grow / shrink / scan-reorder tables are published at random
//      schedule points. Operations snapshot the table at their start —
//      exactly like the real sharded_queue — so every publish lands
//      mid-operation for everything in flight. Per-pool-slot histories
//      must pass the full FIFO checker, small runs the exact
//      linearizability checker, and the global count identity proves no
//      item is lost or duplicated across a reshard.
//
//   3. POLICY — shard_tuner decision unit tests with a deterministic
//      inline tick: grow on depth, shrink on drain+starvation, reorder
//      deepest-first, patience raise on slow-path share (and on trace
//      phase lag), patience decay when calm — each with hysteresis
//      observed.
//
//   4. BOUNDS + STRESS — the runtime patience knob can never exceed the
//      compile-time ceiling (counted fast-path attempts per operation,
//      under a stalled-thread schedule à la core_progress_test /
//      bench/stall_injection), and a real-thread elastic stress run in
//      which the single tuner thread reshards continuously while workers
//      hammer the queue — the TSan target of the tsan-scale-adaptive CI
//      job (KPQ_TRACE=ON exercises the tracing hook sites too).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/wf_queue_fps.hpp"
#include "harness/affinity.hpp"
#include "harness/workload.hpp"
#include "obs/registry.hpp"
#include "obs/trace_ring.hpp"
#include "obs/wf_metrics.hpp"
#include "scale/adaptive.hpp"
#include "scale/sharded_queue.hpp"
#include "scale/tuner.hpp"
#include "support/step_machines.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"
#include "verify/lin_checker.hpp"

namespace kpq {
namespace {

using testing::elastic_shard_set;
using testing::elastic_sharded_op;

// ===================================================== 1. mechanism layer

TEST(ScanTable, SeedTableIsIdentityAtEpochZero) {
  elastic_control ec(4);
  const scan_table* t = ec.table();
  EXPECT_EQ(t->epoch, 0u);
  EXPECT_EQ(t->active_count, 4u);
  ASSERT_EQ(t->order.size(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(t->order[s], s);
    EXPECT_TRUE(t->is_active(s));
  }
  EXPECT_EQ(t->active_mask(), 0b1111u);
  EXPECT_EQ(ec.tables_published(), 1u);
}

TEST(ScanTable, PublishBumpsEpochAndFlipsActivation) {
  elastic_control ec(4);
  const std::uint64_t e1 = ec.publish(2, {3, 1, 0, 2});
  EXPECT_EQ(e1, 1u);
  const scan_table* t = ec.table();
  EXPECT_EQ(t->active_count, 2u);
  EXPECT_TRUE(t->is_active(3));
  EXPECT_TRUE(t->is_active(1));
  EXPECT_FALSE(t->is_active(0));
  EXPECT_FALSE(t->is_active(2));
  EXPECT_EQ(t->active_mask(), (1u << 3) | (1u << 1));

  const std::uint64_t e2 = ec.set_active_count(3);
  EXPECT_EQ(e2, 2u);
  EXPECT_EQ(ec.table()->order, (std::vector<std::uint32_t>{3, 1, 0, 2}));
  EXPECT_TRUE(ec.table()->is_active(0));
  EXPECT_EQ(ec.tables_published(), 3u);
}

TEST(ScanTable, OldSnapshotsStayValidAfterPublish) {
  // The wait-free reader contract: a pointer loaded before a publish keeps
  // describing a consistent (stale) routing forever.
  elastic_control ec(3);
  const scan_table* old = ec.table();
  ec.publish(1, {2, 0, 1});
  EXPECT_EQ(old->epoch, 0u);
  EXPECT_EQ(old->active_count, 3u);
  EXPECT_EQ(ec.table()->epoch, 1u);
  EXPECT_NE(old, ec.table());
}

TEST(AdaptiveTopology, DetectionIsAlwaysConsistent) {
  const cpu_topology topo = detect_topology();
  EXPECT_GE(topo.cpus, 1u);
  EXPECT_GE(topo.domains, 1u);
  EXPECT_LE(topo.domains, topo.cpus);
  ASSERT_EQ(topo.domain_of.size(), topo.cpus);
  for (const std::uint32_t d : topo.domain_of) EXPECT_LT(d, topo.domains);
}

TEST(AdaptiveTopology, RecommendedShardsIsBoundedAndPositive) {
  const cpu_topology topo = detect_topology();
  for (std::uint32_t cap : {1u, 2u, 8u, 64u}) {
    const std::uint32_t s = recommended_shards(topo, cap);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, cap);
  }
  // Synthetic multi-domain box: one shard per domain, capped.
  cpu_topology fake;
  fake.cpus = 8;
  fake.domains = 4;
  fake.domain_of = {0, 0, 1, 1, 2, 2, 3, 3};
  EXPECT_EQ(recommended_shards(fake, 8), 4u);
  EXPECT_EQ(recommended_shards(fake, 2), 2u);
}

TEST(AdaptiveTopology, DomainPinningIsBestEffort) {
  const cpu_topology topo = detect_topology();
  // Must not crash and must return a verdict; success depends on the host.
  const bool ok = pin_to_domain(topo, 0, 0);
  if (ok) {
    // Re-pin to the full machine is not exposed; just confirm repeatable.
    EXPECT_TRUE(pin_to_domain(topo, topo.domains - 1, 7));
  }
}

// ============================== 2. replay with the deterministic injector

struct elastic_outcome {
  check_result per_shard;
  std::vector<std::vector<op_event>> history;  // with drains appended
  std::uint64_t enqueued = 0, dequeued = 0, drained = 0;
  std::uint32_t grows = 0, shrinks = 0, reorders = 0;
};

/// Random-schedule run over the elastic replay: logical threads advance
/// one primitive step at a time; every `inject_every` scheduler picks, the
/// injector publishes the next table in a shrink -> reorder -> grow ->
/// reorder cycle (so all three adaptation kinds land repeatedly, at points
/// chosen by the seed).
elastic_outcome run_elastic_random(std::uint64_t seed, std::uint32_t cap,
                                   std::uint32_t logical_threads,
                                   std::uint32_t ops_per_thread,
                                   std::uint32_t enq_bias,
                                   std::uint32_t inject_every) {
  fast_rng rng(seed);
  elastic_shard_set set(cap, logical_threads);

  struct prog {
    std::vector<std::pair<bool, std::uint64_t>> ops;
    std::size_t next = 0;
  };
  std::vector<prog> progs(logical_threads);
  for (std::uint32_t t = 0; t < logical_threads; ++t) {
    for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
      progs[t].ops.emplace_back(rng.bernoulli(enq_bias, 100),
                                encode_value(t, i));
    }
  }

  std::vector<std::unique_ptr<elastic_sharded_op>> current(logical_threads);
  std::uint64_t clock = 1;
  elastic_outcome o;

  // The deterministic tick injector: single mutator, runs on the scheduler
  // "thread", publishes between primitive steps — never inside one.
  std::uint32_t inject_phase = 0;
  const auto inject = [&] {
    const scan_table& t = *set.control.table();
    std::vector<std::uint32_t> order = t.order;
    switch (inject_phase++ % 4) {
      case 0:  // shrink (keep >= 1 active)
        if (t.active_count > 1) {
          set.control.set_active_count(t.active_count - 1);
          ++o.shrinks;
        }
        break;
      case 1: {  // reorder: rotate the permutation by one
        std::rotate(order.begin(), order.begin() + 1, order.end());
        set.control.publish(t.active_count, std::move(order));
        ++o.reorders;
        break;
      }
      case 2:  // grow (up to the pool capacity)
        if (t.active_count < cap) {
          set.control.set_active_count(t.active_count + 1);
          ++o.grows;
        }
        break;
      case 3: {  // reorder: reverse
        std::reverse(order.begin(), order.end());
        set.control.publish(t.active_count, std::move(order));
        ++o.reorders;
        break;
      }
    }
  };

  const auto all_done = [&] {
    for (std::uint32_t t = 0; t < logical_threads; ++t) {
      if (current[t] != nullptr || progs[t].next < progs[t].ops.size()) {
        return false;
      }
    }
    return true;
  };

  std::uint64_t picks = 0, safety = 0;
  const std::uint64_t budget = static_cast<std::uint64_t>(logical_threads) *
                               ops_per_thread * cap * 500;
  while (!all_done()) {
    if (++safety > budget) {
      o.per_shard.fail("schedule did not terminate (seed " +
                       std::to_string(seed) + ")");
      return o;
    }
    if (++picks % inject_every == 0) inject();
    const auto t = static_cast<std::uint32_t>(rng.next() % logical_threads);
    if (current[t] == nullptr) {
      if (progs[t].next >= progs[t].ops.size()) continue;
      const auto& [is_enq, value] = progs[t].ops[progs[t].next];
      current[t] = std::make_unique<elastic_sharded_op>(t, is_enq, value, set);
      current[t]->inv() = clock++;
    }
    if (current[t]->step(set, clock)) {
      const auto& [is_enq, value] = progs[t].ops[progs[t].next];
      if (is_enq) {
        ++o.enqueued;
      } else if (current[t]->result.has_value()) {
        ++o.dequeued;
      }
      current[t].reset();
      ++progs[t].next;
    }
  }

  o.history = set.history;
  for (std::uint32_t s = 0; s < cap; ++s) {
    std::vector<std::uint64_t> drained;
    while (auto v = set.shards[s]->dequeue(0)) drained.push_back(*v);
    o.drained += drained.size();
    auto r = fifo_checker::check(set.history[s], drained);
    if (!r.ok) {
      o.per_shard.fail("shard " + std::to_string(s) + ": " + r.to_string());
    }
    std::uint64_t ts = clock + 1000;
    for (std::uint64_t v : drained) {
      o.history[s].push_back({op_kind::deq, true, 0, v, ts, ts + 1});
      ts += 2;
    }
  }
  return o;
}

TEST(ElasticReplay, ReshardingMidScheduleLosesAndDuplicatesNothing) {
  std::uint32_t grows = 0, shrinks = 0, reorders = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    auto o = run_elastic_random(seed, /*cap=*/4, /*threads=*/4, /*ops=*/6,
                                /*enq_bias=*/60, /*inject_every=*/7);
    ASSERT_TRUE(o.per_shard.ok) << "seed " << seed << ":\n"
                                << o.per_shard.to_string();
    ASSERT_EQ(o.enqueued, o.dequeued + o.drained) << "seed " << seed;
    grows += o.grows;
    shrinks += o.shrinks;
    reorders += o.reorders;
  }
  // The injector really drove every adaptation kind through the schedules.
  EXPECT_GT(grows, 0u);
  EXPECT_GT(shrinks, 0u);
  EXPECT_GT(reorders, 0u);
}

TEST(ElasticReplay, FrequentInjectionWithDeepPool) {
  // Publish every 3 picks over an 8-slot pool: most operations in flight
  // hold a table at least one epoch stale.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    auto o = run_elastic_random(seed, 8, 6, 5, 55, 3);
    ASSERT_TRUE(o.per_shard.ok) << "seed " << seed << ":\n"
                                << o.per_shard.to_string();
    ASSERT_EQ(o.enqueued, o.dequeued + o.drained) << "seed " << seed;
    EXPECT_GT(o.shrinks + o.grows + o.reorders, 3u);
  }
}

TEST(ElasticReplay, SmallRunsCrossCheckedExactlyPerShard) {
  // The exact linearizability checker over every pool slot's history,
  // including the drain tail — the strongest per-shard verdict we have,
  // now with tables swapping under the schedule.
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    auto o = run_elastic_random(seed, 2, 3, 2, 50, 5);
    ASSERT_TRUE(o.per_shard.ok) << "seed " << seed << ":\n"
                                << o.per_shard.to_string();
    for (std::size_t s = 0; s < o.history.size(); ++s) {
      ASSERT_LE(o.history[s].size(), 20u);
      ASSERT_TRUE(lin_checker::is_linearizable(o.history[s]))
          << "exact checker rejected shard " << s << " of seed " << seed;
    }
  }
}

// ================================================= 3. tuner policy layer

using fps_q = wf_queue_fps<std::uint64_t>;
using elastic_q = sharded_queue<fps_q>;

tuner_config quiet_config() {
  tuner_config cfg;
  cfg.hysteresis_ticks = 2;
  cfg.min_ops_per_tick = 16;
  // Defaults that keep every rule OFF unless a test switches it on.
  cfg.grow_depth = 1 << 30;
  cfg.shrink_depth = -1;
  cfg.reorder_min_spread = 1 << 30;
  cfg.patience_raise_slow_rate = 1.1;   // unreachable
  cfg.patience_lower_slow_rate = -1.0;  // unreachable
  cfg.phase_lag_raise = 1e18;
  return cfg;
}

TEST(ShardTuner, GrowsOnSustainedDepthWithHysteresis) {
  elastic_q q(4, 1);
  q.set_active_shards(2);
  tuner_config cfg = quiet_config();
  cfg.grow_depth = 64;
  shard_tuner<elastic_q> tuner(q, cfg);

  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < 200; ++i) q.enqueue(v++, 0);
  EXPECT_EQ(tuner.tick(), tuner_action::none) << "hysteresis tick 1";
  for (std::uint32_t i = 0; i < 50; ++i) q.enqueue(v++, 0);
  EXPECT_EQ(tuner.tick(), tuner_action::grow);
  EXPECT_EQ(q.active_shards(), 3u);
  EXPECT_EQ(tuner.stats().grows, 1u);
  EXPECT_EQ(tuner.stats().active_shards, 3u);
  EXPECT_GT(tuner.stats().scan_epoch, 0u);
}

TEST(ShardTuner, ShrinksWhenDrainedAndConsumersStarve) {
  elastic_q q(4, 1);
  q.set_active_shards(3);
  tuner_config cfg = quiet_config();
  cfg.shrink_depth = 8;
  cfg.shrink_empty_rate = 0.25;
  shard_tuner<elastic_q> tuner(q, cfg);

  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t i = 0; i < 50; ++i) {
      EXPECT_FALSE(q.dequeue(0).has_value());
    }
    if (round == 0) {
      EXPECT_EQ(tuner.tick(), tuner_action::none) << "hysteresis tick 1";
    }
  }
  EXPECT_EQ(tuner.tick(), tuner_action::shrink);
  EXPECT_EQ(q.active_shards(), 2u);
  EXPECT_EQ(tuner.stats().shrinks, 1u);
}

TEST(ShardTuner, ReordersScanDeepestFirst) {
  elastic_q q(4, 4);
  tuner_config cfg = quiet_config();
  cfg.reorder_min_spread = 64;
  shard_tuner<elastic_q> tuner(q, cfg);

  // Affinity policy: tid t feeds shard t. Build depths 10/40/200/80.
  const std::array<std::uint32_t, 4> fill = {10, 40, 200, 80};
  std::uint64_t v = 0;
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (std::uint32_t i = 0; i < fill[t]; ++i) q.enqueue(v++, t);
  }
  EXPECT_EQ(tuner.tick(), tuner_action::none) << "hysteresis tick 1";
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (int i = 0; i < 5; ++i) q.enqueue(v++, t);
  }
  EXPECT_EQ(tuner.tick(), tuner_action::reorder);
  EXPECT_EQ(q.active_shards(), 4u) << "reorder must not change the set";
  EXPECT_EQ(q.current_table().order,
            (std::vector<std::uint32_t>{2, 3, 1, 0}));
  EXPECT_EQ(tuner.stats().reorders, 1u);
}

TEST(ShardTuner, RaisesPatienceUnderSlowPathPressure) {
  elastic_q q(1, 1);  // single shard: no structural rule can fire
  tuner_config cfg = quiet_config();
  cfg.patience_raise_slow_rate = 0.20;
  shard_tuner<elastic_q> tuner(q, cfg);

  q.shard(0).set_patience(0);  // force every op onto the slow path
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t i = 0; i < 25; ++i) {
      q.enqueue(i, 0);
      (void)q.dequeue(0);
    }
    if (round == 0) {
      EXPECT_EQ(tuner.tick(), tuner_action::none) << "hysteresis tick 1";
    }
  }
  EXPECT_EQ(tuner.tick(), tuner_action::patience_raise);
  EXPECT_EQ(q.shard(0).patience(), cfg.patience_step);
  EXPECT_EQ(tuner.stats().patience_raises, 1u);
  EXPECT_EQ(tuner.stats().patience, cfg.patience_step);
}

TEST(ShardTuner, DropsPatienceWhenCalm) {
  elastic_q q(1, 1);
  tuner_config cfg = quiet_config();
  cfg.patience_lower_slow_rate = 0.02;
  cfg.min_patience = 2;
  shard_tuner<elastic_q> tuner(q, cfg);

  ASSERT_EQ(q.shard(0).patience(), fps_options::max_tries);
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t i = 0; i < 25; ++i) {
      q.enqueue(i, 0);  // uncontended: pure fast path, slow rate 0
      (void)q.dequeue(0);
    }
    if (round == 0) {
      EXPECT_EQ(tuner.tick(), tuner_action::none) << "hysteresis tick 1";
    }
  }
  EXPECT_EQ(tuner.tick(), tuner_action::patience_drop);
  EXPECT_EQ(q.shard(0).patience(), cfg.min_patience);
  EXPECT_EQ(tuner.stats().patience_drops, 1u);
}

TEST(ShardTuner, TracePhaseLagAlsoRaisesPatience) {
  elastic_q q(1, 1);
  tuner_config cfg = quiet_config();
  cfg.phase_lag_raise = 64.0;
  shard_tuner<elastic_q> tuner(q, cfg);

  tuner_signals sig;
  sig.phase_lag_p99 = 512.0;  // the doorway is backing up
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t i = 0; i < 25; ++i) {
      q.enqueue(i, 0);
      (void)q.dequeue(0);
    }
    if (round == 0) {
      EXPECT_EQ(tuner.tick(sig), tuner_action::none) << "hysteresis tick 1";
    }
  }
  EXPECT_EQ(tuner.tick(sig), tuner_action::patience_raise);
  EXPECT_EQ(q.shard(0).patience(),
            fps_options::max_tries + cfg.patience_step);
}

TEST(ShardTuner, IdleTicksResetPressureAndDecideNothing) {
  elastic_q q(4, 1);
  q.set_active_shards(2);
  tuner_config cfg = quiet_config();
  cfg.grow_depth = 64;
  shard_tuner<elastic_q> tuner(q, cfg);

  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < 200; ++i) q.enqueue(v++, 0);
  EXPECT_EQ(tuner.tick(), tuner_action::none);  // pressure 1
  EXPECT_EQ(tuner.tick(), tuner_action::none);  // idle: pressure cleared
  for (std::uint32_t i = 0; i < 50; ++i) q.enqueue(v++, 0);
  EXPECT_EQ(tuner.tick(), tuner_action::none);  // pressure restarts at 1
  EXPECT_EQ(q.active_shards(), 2u) << "idle tick must not count as evidence";
  EXPECT_EQ(tuner.stats().ticks, 3u);
}

// The helping-chunk twin of the patience knob: runtime-adjustable width,
// clamped against the compile-time ceiling on every read, reachable on a
// live queue through help_policy(). Same invariant (I4): the knob moves
// within the box, never the box.
TEST(HelpChunkRt, KnobClampsAndQueueStaysCorrect) {
  using chunk_q = wf_queue<std::uint64_t, help_chunk_rt<4>, fetch_add_phase>;
  chunk_q q(2);
  EXPECT_EQ(q.help_policy().chunk(), 1u);
  q.help_policy().set_chunk(0);  // below the floor
  EXPECT_EQ(q.help_policy().chunk(), 1u);
  q.help_policy().set_chunk(100);  // above the ceiling
  EXPECT_EQ(q.help_policy().chunk(), chunk_q::help_policy_type::chunk_ceiling);
  // Operations complete and stay FIFO at both extremes of the knob.
  for (std::uint64_t i = 0; i < 64; ++i) {
    q.help_policy().set_chunk(i % 2 == 0 ? 1 : 100);
    q.enqueue(i, 0);
  }
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto v = q.dequeue(1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue(0).has_value());
}

// ============================================= 4. bounds + thread stress

// Per-tid fast-path attempt counters + the stall gate, for the step-bound
// assertion (same freeze-at-announce machinery as core_progress_test and
// bench/stall_injection).
std::array<std::atomic<std::uint64_t>, 8> g_fast_attempts;
std::atomic<std::int64_t> g_frozen_tid{-1};
std::atomic<bool> g_gate_open{true};
std::atomic<bool> g_is_frozen{false};

struct bound_hooks {
  static void after_slow_publish(std::uint32_t tid, bool /*is_enq*/) {
    if (static_cast<std::int64_t>(tid) !=
        g_frozen_tid.load(std::memory_order_acquire)) {
      return;
    }
    g_is_frozen.store(true, std::memory_order_release);
    while (!g_gate_open.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    g_is_frozen.store(false, std::memory_order_release);
  }
  static void on_fast_attempt(std::uint32_t tid, bool /*is_enq*/) {
    g_fast_attempts[tid].fetch_add(1, std::memory_order_relaxed);
  }
};

struct bound_options : fps_options {
  using hooks = bound_hooks;
};
using bound_queue = wf_queue_fps<std::uint64_t, hp_domain, bound_options>;

class AdaptivePatienceBound : public ::testing::Test {
 protected:
  void SetUp() override {
    for (auto& a : g_fast_attempts) a.store(0, std::memory_order_relaxed);
    g_frozen_tid.store(-1, std::memory_order_release);
    g_gate_open.store(true, std::memory_order_release);
    g_is_frozen.store(false, std::memory_order_release);
  }
  void TearDown() override {
    g_gate_open.store(true, std::memory_order_release);
    g_frozen_tid.store(-1, std::memory_order_release);
  }
  static std::uint64_t attempts(std::uint32_t tid) {
    return g_fast_attempts[tid].load(std::memory_order_relaxed);
  }
};

TEST_F(AdaptivePatienceBound, KnobClampsToCompileTimeCeiling) {
  bound_queue q(1);
  q.set_patience(UINT32_MAX);
  EXPECT_EQ(q.patience(), bound_queue::patience_ceiling);
  q.set_patience(1u << 30);
  EXPECT_EQ(q.patience(), bound_queue::patience_ceiling);
  q.set_patience(0);
  EXPECT_EQ(q.patience(), 0u);
  q.set_patience(fps_options::max_tries);
  EXPECT_EQ(q.patience(), fps_options::max_tries);
}

TEST_F(AdaptivePatienceBound, ZeroPatienceMeansPureSlowPath) {
  bound_queue q(1);
  q.set_patience(0);
  q.enqueue(7, 0);
  auto v = q.dequeue(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7u);
  EXPECT_EQ(attempts(0), 0u) << "patience 0 must skip the fast path";
  const auto ps = q.path_counters(0);
  EXPECT_EQ(ps.slow_enqs, 1u);
  EXPECT_EQ(ps.slow_deqs, 1u);
  EXPECT_EQ(ps.fast_enqs + ps.fast_deqs, 0u);
}

TEST_F(AdaptivePatienceBound,
       FastAttemptsPerOpNeverExceedCeilingUnderStalledPeer) {
  // Stalled-thread schedule: thread 0 announces a slow-path dequeue and
  // freezes at the announce point, leaving its descriptor pending for the
  // whole run — every operation of thread 1 keeps probing/helping it.
  // Meanwhile a tuner asks for absurd patience; the per-operation
  // fast-path attempt count (counted by hook, per tid) must still respect
  // the compile-time ceiling, and thread 1 must keep completing
  // operations (wait-freedom does not hinge on thread 0).
  bound_queue q(2);
  q.set_patience(0);  // push the victim straight to its announce
  g_gate_open.store(false, std::memory_order_release);
  g_frozen_tid.store(0, std::memory_order_release);
  std::optional<std::uint64_t> frozen_result;
  std::thread frozen([&] { frozen_result = q.dequeue(0); });
  while (!g_is_frozen.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  q.set_patience(UINT32_MAX);  // tuner gone mad; ops must clamp
  ASSERT_EQ(q.patience(), bound_queue::patience_ceiling);

  std::uint64_t completed = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::uint64_t before = attempts(1);
    q.enqueue(i, 1);
    EXPECT_LE(attempts(1) - before, bound_queue::patience_ceiling)
        << "enqueue " << i << " exceeded the fast-path step ceiling";
    before = attempts(1);
    if (q.dequeue(1).has_value()) ++completed;
    EXPECT_LE(attempts(1) - before, bound_queue::patience_ceiling)
        << "dequeue " << i << " exceeded the fast-path step ceiling";
  }
  EXPECT_GT(completed, 0u);

  g_gate_open.store(true, std::memory_order_release);
  frozen.join();
  // The frozen dequeue was helped: it consumed exactly one element.
  std::uint64_t drained = 0;
  while (q.dequeue(1).has_value()) ++drained;
  EXPECT_EQ(completed + drained + (frozen_result.has_value() ? 1 : 0), 500u);
}

TEST(ElasticStress, ContinuousReshardingUnderRealThreadsConservesItems) {
  // The tsan-scale-adaptive CI target: workers hammer an elastic sharded
  // FPS queue while the single tuner thread (main) reshards continuously —
  // tuner ticks plus a forced grow/shrink/reorder/patience cycle so every
  // adaptation kind runs many times under real concurrency. Conservation:
  // every enqueued value is dequeued exactly once (workers + final drain).
  constexpr std::uint32_t kCap = 4;
  constexpr std::uint32_t kWorkers = 3;
  constexpr std::uint32_t kTunerTid = kWorkers;  // dense tid for main
  constexpr std::uint64_t kOpsPerWorker = 6000;

  elastic_q q(kCap, kWorkers + 1);
  tuner_config cfg;
  cfg.hysteresis_ticks = 1;
  cfg.min_ops_per_tick = 8;
  cfg.grow_depth = 64;
  cfg.shrink_depth = 4;
  cfg.reorder_min_spread = 32;
  cfg.trace_tid = kTunerTid;
  shard_tuner<elastic_q> tuner(q, cfg);

  std::atomic<std::uint32_t> running{kWorkers};
  std::vector<std::vector<std::uint64_t>> got(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (std::uint32_t t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      fast_rng rng(0x5eed + t);
      for (std::uint64_t i = 0; i < kOpsPerWorker; ++i) {
        q.enqueue(encode_value(t, i), t);
        if (rng.bernoulli(70, 100)) {
          if (auto v = q.dequeue(t)) got[t].push_back(*v);
        }
      }
      running.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  // Single mutator: deterministic tick loop + a forced adaptation cycle.
  // The loop runs at least two full cycles even if the workers finish
  // first (on a fast host they can), so the epoch assertion below never
  // depends on scheduling.
  std::uint32_t cycle = 0;
  while (running.load(std::memory_order_acquire) != 0 || cycle < 8) {
    (void)tuner.tick();
    switch (cycle++ % 4) {
      case 0: q.set_active_shards(2); break;
      case 1: {
        std::vector<std::uint32_t> order = q.current_table().order;
        std::reverse(order.begin(), order.end());
        q.publish_table(3, std::move(order));
        break;
      }
      case 2: q.set_active_shards(kCap); break;
      case 3:
        for (std::uint32_t s = 0; s < kCap; ++s) {
          q.shard(s).set_patience(cycle % 3 == 0 ? 0 : 16);
        }
        break;
    }
    std::this_thread::yield();
  }
  for (auto& w : workers) w.join();
  EXPECT_GE(q.scan_epoch(), 4u) << "resharding really happened";

  std::vector<std::uint64_t> drained;
  while (auto v = q.dequeue(kTunerTid)) drained.push_back(*v);

  // Exactly-once conservation over every (worker, seq) value.
  std::vector<std::vector<std::uint8_t>> seen(
      kWorkers, std::vector<std::uint8_t>(kOpsPerWorker, 0));
  std::uint64_t total = 0;
  const auto account = [&](std::uint64_t v) {
    const auto tid = static_cast<std::uint32_t>(v >> 40);
    const std::uint64_t seq = v & ((std::uint64_t{1} << 40) - 1);
    ASSERT_LT(tid, kWorkers);
    ASSERT_LT(seq, kOpsPerWorker);
    ASSERT_EQ(seen[tid][seq], 0) << "value dequeued twice";
    seen[tid][seq] = 1;
    ++total;
  };
  for (const auto& g : got) {
    for (const std::uint64_t v : g) account(v);
  }
  for (const std::uint64_t v : drained) account(v);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kWorkers) * kOpsPerWorker);
}

// =========================================== obs integration (registry)

TEST(TunerObs, RegistryExportsTunerGauges) {
  tuner_stats ts;
  ts.ticks = 5;
  ts.grows = 1;
  ts.shrinks = 2;
  ts.reorders = 3;
  ts.patience_raises = 4;
  ts.patience_drops = 1;
  ts.active_shards = 3;
  ts.patience = 16;
  ts.scan_epoch = 9;
  obs::metrics_snapshot out;
  obs::append_metrics(out, "tuner", ts);
  const auto value_of = [&](const std::string& name) -> double {
    for (const auto& m : out) {
      if (m.name == name) return m.value;
    }
    ADD_FAILURE() << "metric missing: " << name;
    return -1.0;
  };
  EXPECT_EQ(value_of("tuner.ticks"), 5.0);
  EXPECT_EQ(value_of("tuner.grows"), 1.0);
  EXPECT_EQ(value_of("tuner.shrinks"), 2.0);
  EXPECT_EQ(value_of("tuner.reorders"), 3.0);
  EXPECT_EQ(value_of("tuner.patience_raises"), 4.0);
  EXPECT_EQ(value_of("tuner.patience_drops"), 1.0);
  EXPECT_EQ(value_of("tuner.active_shards"), 3.0);
  EXPECT_EQ(value_of("tuner.patience"), 16.0);
  EXPECT_EQ(value_of("tuner.scan_epoch"), 9.0);
}

TEST(TunerObs, RegistryExportsFpsPathSplit) {
  fps_q q(1);
  for (std::uint64_t i = 0; i < 10; ++i) {
    q.enqueue(i, 0);
    (void)q.dequeue(0);
  }
  const fps_path_stats ps = q.aggregate_path_counters();
  EXPECT_EQ(ps.ops(), 20u);
  obs::metrics_snapshot out;
  obs::append_metrics(out, "fps", ps);
  bool found = false;
  for (const auto& m : out) {
    if (m.name == "fps.slow_rate") {
      found = true;
      EXPECT_GE(m.value, 0.0);
      EXPECT_LE(m.value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TunerObs, TunerDecisionsFlowThroughTraceAnalysis) {
  EXPECT_STREQ(obs::trace_kind_name(obs::trace_kind::tuner_decision),
               "tuner_decision");
  std::vector<obs::trace_event> events;
  obs::trace_event e;
  e.ts = 1;
  e.tid = 0;
  e.kind = obs::trace_kind::tuner_decision;
  e.phase = 3;  // scan epoch
  e.aux = static_cast<std::uint32_t>(tuner_action::grow);
  events.push_back(e);
  const auto report = obs::analyze_trace(events);
  EXPECT_EQ(report.tuner_decisions, 1u);
  EXPECT_STREQ(tuner_action_name(tuner_action::grow), "grow");
  EXPECT_STREQ(tuner_action_name(tuner_action::patience_drop),
               "patience_drop");
}

}  // namespace
}  // namespace kpq
