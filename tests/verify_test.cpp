// Tests for the verification substrate itself: the checkers must accept
// legal histories and reject each class of illegal ones. A checker that
// never fires is worse than none — these tests are the checkers' checkers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"
#include "verify/lin_checker.hpp"

namespace kpq {
namespace {

// Handy literal-style event builder.
op_event ev(op_kind k, std::uint64_t value, std::uint64_t inv,
            std::uint64_t res, bool ok = true, std::uint32_t tid = 0) {
  return op_event{k, ok, tid, value, inv, res};
}

// ---------------------------------------------------------------- recorder

TEST(HistoryRecorder, StampsAreStrictlyIncreasing) {
  history_recorder rec(1);
  std::uint64_t prev = rec.stamp();
  for (int i = 0; i < 100; ++i) {
    std::uint64_t s = rec.stamp();
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(HistoryRecorder, ScopeRecordsInvocationBeforeResponse) {
  history_recorder rec(2);
  {
    auto s = rec.begin(1, op_kind::enq, 7);
    s.commit();
  }
  auto all = rec.collect();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_LT(all[0].inv, all[0].res);
  EXPECT_EQ(all[0].tid, 1u);
  EXPECT_EQ(all[0].value, 7u);
  EXPECT_EQ(all[0].kind, op_kind::enq);
}

TEST(HistoryRecorder, CollectMergesThreadsAndClearResets) {
  history_recorder rec(3);
  rec.begin(0, op_kind::enq, 1).commit();
  rec.begin(2, op_kind::enq, 2).commit();
  EXPECT_EQ(rec.collect().size(), 2u);
  rec.clear();
  EXPECT_TRUE(rec.collect().empty());
}

// ------------------------------------------------------------ fifo_checker

TEST(FifoChecker, AcceptsSequentialHistory) {
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 2),
      ev(op_kind::enq, 11, 3, 4),
      ev(op_kind::deq, 10, 5, 6),
      ev(op_kind::deq, 11, 7, 8),
  };
  auto r = fifo_checker::check(h, {});
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(FifoChecker, AcceptsDrainRemainder) {
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 2),
      ev(op_kind::enq, 11, 3, 4),
      ev(op_kind::deq, 10, 5, 6),
  };
  auto r = fifo_checker::check(h, {11});
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(FifoChecker, RejectsDoubleDequeue) {
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 2),
      ev(op_kind::deq, 10, 3, 4),
      ev(op_kind::deq, 10, 5, 6),
  };
  EXPECT_FALSE(fifo_checker::check(h, {}).ok);
}

TEST(FifoChecker, RejectsPhantomValue) {
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 2),
      ev(op_kind::deq, 99, 3, 4),
  };
  EXPECT_FALSE(fifo_checker::check(h, {10}).ok);
}

TEST(FifoChecker, RejectsLostValue) {
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 2),
      ev(op_kind::enq, 11, 3, 4),
      ev(op_kind::deq, 10, 5, 6),
  };
  // 11 neither dequeued nor drained.
  EXPECT_FALSE(fifo_checker::check(h, {}).ok);
}

TEST(FifoChecker, RejectsFifoInversion) {
  // enq(10) strictly before enq(11), but deq(11) completes strictly before
  // deq(10) begins.
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 2),
      ev(op_kind::enq, 11, 3, 4),
      ev(op_kind::deq, 11, 5, 6),
      ev(op_kind::deq, 10, 7, 8),
  };
  EXPECT_FALSE(fifo_checker::check(h, {}).ok);
}

TEST(FifoChecker, AcceptsOverlappingEnqueuesInEitherOrder) {
  // enq(10) and enq(11) overlap: both dequeue orders are linearizable.
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 5),
      ev(op_kind::enq, 11, 2, 6),
      ev(op_kind::deq, 11, 7, 8),
      ev(op_kind::deq, 10, 9, 10),
  };
  auto r = fifo_checker::check(h, {});
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(FifoChecker, RejectsStrandedPredecessor) {
  // 10 strictly precedes 11; 11 was dequeued but 10 stayed in the queue.
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 2),
      ev(op_kind::enq, 11, 3, 4),
      ev(op_kind::deq, 11, 5, 6),
  };
  EXPECT_FALSE(fifo_checker::check(h, {10}).ok);
}

TEST(FifoChecker, RejectsDishonestEmpty) {
  // 10 is in the queue for the whole window of the empty dequeue.
  std::vector<op_event> h = {
      ev(op_kind::enq, 10, 1, 2),
      ev(op_kind::deq, 0, 3, 4, /*ok=*/false),
      ev(op_kind::deq, 10, 5, 6),
  };
  EXPECT_FALSE(fifo_checker::check(h, {}).ok);
}

TEST(FifoChecker, AcceptsHonestEmptyBeforeEnqueue) {
  std::vector<op_event> h = {
      ev(op_kind::deq, 0, 1, 2, /*ok=*/false),
      ev(op_kind::enq, 10, 3, 4),
      ev(op_kind::deq, 10, 5, 6),
  };
  auto r = fifo_checker::check(h, {});
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(FifoChecker, AcceptsEmptyOverlappingEnqueue) {
  // The empty dequeue overlaps the enqueue: linearize deq first. Legal.
  std::vector<op_event> h = {
      ev(op_kind::deq, 0, 1, 4, /*ok=*/false),
      ev(op_kind::enq, 10, 2, 3),
      ev(op_kind::deq, 10, 5, 6),
  };
  auto r = fifo_checker::check(h, {});
  EXPECT_TRUE(r.ok) << r.to_string();
}

// ------------------------------------------------------------- lin_checker

TEST(LinChecker, AcceptsSequential) {
  std::vector<op_event> h = {
      ev(op_kind::enq, 1, 1, 2),
      ev(op_kind::enq, 2, 3, 4),
      ev(op_kind::deq, 1, 5, 6),
      ev(op_kind::deq, 2, 7, 8),
  };
  EXPECT_TRUE(lin_checker::is_linearizable(h));
}

TEST(LinChecker, RejectsWrongOrderSequential) {
  std::vector<op_event> h = {
      ev(op_kind::enq, 1, 1, 2),
      ev(op_kind::enq, 2, 3, 4),
      ev(op_kind::deq, 2, 5, 6),
  };
  EXPECT_FALSE(lin_checker::is_linearizable(h));
}

TEST(LinChecker, AcceptsOverlapResolvedByReordering) {
  // Two overlapping enqueues; dequeues observe the "later-invoked" one
  // first — legal because overlap allows either linearization order.
  std::vector<op_event> h = {
      ev(op_kind::enq, 1, 1, 10),
      ev(op_kind::enq, 2, 2, 9),
      ev(op_kind::deq, 2, 11, 12),
      ev(op_kind::deq, 1, 13, 14),
  };
  EXPECT_TRUE(lin_checker::is_linearizable(h));
}

TEST(LinChecker, RejectsRealTimeViolation) {
  // Dequeue of 2 completes before dequeue of 1 begins, but 1's enqueue
  // strictly precedes 2's: unlinearizable.
  std::vector<op_event> h = {
      ev(op_kind::enq, 1, 1, 2),
      ev(op_kind::enq, 2, 3, 4),
      ev(op_kind::deq, 2, 5, 6),
      ev(op_kind::deq, 1, 7, 8),
  };
  EXPECT_FALSE(lin_checker::is_linearizable(h));
}

TEST(LinChecker, EmptyDequeueLegalOnlyWhenQueueCanBeEmpty) {
  std::vector<op_event> legal = {
      ev(op_kind::deq, 0, 1, 2, /*ok=*/false),
      ev(op_kind::enq, 1, 3, 4),
  };
  EXPECT_TRUE(lin_checker::is_linearizable(legal));

  std::vector<op_event> illegal = {
      ev(op_kind::enq, 1, 1, 2),
      ev(op_kind::deq, 0, 3, 4, /*ok=*/false),
      ev(op_kind::deq, 1, 5, 6),
  };
  EXPECT_FALSE(lin_checker::is_linearizable(illegal));
}

TEST(LinChecker, EmptyDequeueOverlappingEnqueueIsLegal) {
  std::vector<op_event> h = {
      ev(op_kind::enq, 1, 2, 5),
      ev(op_kind::deq, 0, 1, 6, /*ok=*/false),
      ev(op_kind::deq, 1, 7, 8),
  };
  EXPECT_TRUE(lin_checker::is_linearizable(h));
}

TEST(LinChecker, DeepHistoryStillDecides) {
  // 8 enqueues then 8 dequeues, all sequential: trivially linearizable but
  // exercises the memoization.
  std::vector<op_event> h;
  std::uint64_t t = 1;
  for (std::uint64_t v = 0; v < 8; ++v) {
    h.push_back(ev(op_kind::enq, v, t, t + 1));
    t += 2;
  }
  for (std::uint64_t v = 0; v < 8; ++v) {
    h.push_back(ev(op_kind::deq, v, t, t + 1));
    t += 2;
  }
  EXPECT_TRUE(lin_checker::is_linearizable(h));
  // Swap two dequeue values: now illegal.
  std::swap(h[8].value, h[9].value);
  EXPECT_FALSE(lin_checker::is_linearizable(h));
}

// Cross-validation: fifo_checker must accept everything lin_checker accepts
// (it is a set of necessary conditions).
TEST(CheckerAgreement, FifoCheckerIsWeakerThanLinChecker) {
  const std::vector<std::vector<op_event>> histories = {
      {ev(op_kind::enq, 1, 1, 4), ev(op_kind::enq, 2, 2, 3),
       ev(op_kind::deq, 2, 5, 6), ev(op_kind::deq, 1, 7, 8)},
      {ev(op_kind::enq, 1, 1, 2), ev(op_kind::deq, 1, 3, 6),
       ev(op_kind::deq, 0, 4, 5, false)},
      {ev(op_kind::enq, 1, 1, 8), ev(op_kind::enq, 2, 2, 7),
       ev(op_kind::enq, 3, 3, 6), ev(op_kind::deq, 3, 9, 10),
       ev(op_kind::deq, 1, 11, 12), ev(op_kind::deq, 2, 13, 14)},
  };
  for (const auto& h : histories) {
    if (lin_checker::is_linearizable(h)) {
      auto r = fifo_checker::check(h, {});
      EXPECT_TRUE(r.ok) << r.to_string();
    }
  }
}

}  // namespace
}  // namespace kpq
