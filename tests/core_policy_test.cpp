// Isolated unit tests for the core policy objects: phase assignment
// (doorway property), helping candidate selection, and the descriptor cache.
// The help policies are exercised against a mock queue that records which
// entries they inspect, so candidate-selection logic is pinned independently
// of queue behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/desc_pool.hpp"
#include "core/help_policy.hpp"
#include "core/phase_policy.hpp"
#include "core/wf_queue.hpp"
#include "harness/mem_tracker.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq {
namespace {

// ---------------------------------------------------------------- mock queue

struct mock_guard {};

struct mock_queue {
  std::uint32_t n;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> helped;  // (helped, by)

  std::uint32_t max_threads() const { return n; }
  void help_if_needed(std::uint32_t i, std::int64_t /*phase*/, mock_guard&,
                      std::uint32_t my) {
    helped.emplace_back(i, my);
  }
};

TEST(HelpAll, VisitsEveryEntryInOrder) {
  mock_queue q{4, {}};
  mock_guard g;
  help_all policy(4);
  policy.run(q, 2, 10, g);
  ASSERT_EQ(q.helped.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(q.helped[i].first, i);
    EXPECT_EQ(q.helped[i].second, 2u);
  }
}

TEST(HelpOne, CyclesThroughCandidatesAndAlwaysHelpsSelf) {
  mock_queue q{3, {}};
  mock_guard g;
  help_one policy(3);
  // Thread 0's cursor starts at 0; each run helps (candidate if != self)
  // then self. Expected candidate sequence: 0(skip, ==self), 1, 2, 0(skip)...
  policy.run(q, 0, 1, g);  // cursor 0 == self: only self helped
  policy.run(q, 0, 2, g);  // candidate 1, then self
  policy.run(q, 0, 3, g);  // candidate 2, then self
  policy.run(q, 0, 4, g);  // cursor wrapped to 0 == self again
  std::vector<std::pair<std::uint32_t, std::uint32_t>> expected = {
      {0, 0}, {1, 0}, {0, 0}, {2, 0}, {0, 0}, {0, 0}};
  EXPECT_EQ(q.helped, expected);
}

TEST(HelpOne, EveryPeerIsReachedWithinNRounds) {
  constexpr std::uint32_t n = 5;
  mock_queue q{n, {}};
  mock_guard g;
  help_one policy(n);
  for (std::uint32_t round = 0; round < n; ++round) policy.run(q, 1, 1, g);
  std::set<std::uint32_t> candidates;
  for (auto [helped, by] : q.helped) candidates.insert(helped);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_TRUE(candidates.count(i)) << "peer " << i << " never considered";
  }
}

TEST(HelpChunk, VisitsKCandidatesPerRunAndWraps) {
  constexpr std::uint32_t n = 4;
  mock_queue q{n, {}};
  mock_guard g;
  help_chunk<2> policy(n);
  policy.run(q, 3, 1, g);  // candidates 0,1 + self
  ASSERT_EQ(q.helped.size(), 3u);
  EXPECT_EQ(q.helped[0].first, 0u);
  EXPECT_EQ(q.helped[1].first, 1u);
  EXPECT_EQ(q.helped[2].first, 3u);
  q.helped.clear();
  policy.run(q, 3, 1, g);  // candidates 2,3(skip) + self
  ASSERT_EQ(q.helped.size(), 2u);
  EXPECT_EQ(q.helped[0].first, 2u);
  EXPECT_EQ(q.helped[1].first, 3u);
}

TEST(HelpRandom, AlwaysHelpsSelfAndEventuallyEveryPeer) {
  constexpr std::uint32_t n = 4;
  mock_queue q{n, {}};
  mock_guard g;
  help_random policy(n);
  std::set<std::uint32_t> candidates;
  for (int round = 0; round < 200; ++round) {
    q.helped.clear();
    policy.run(q, 0, 1, g);
    ASSERT_FALSE(q.helped.empty());
    EXPECT_EQ(q.helped.back().first, 0u) << "self must always be helped";
    for (auto [h, by] : q.helped) candidates.insert(h);
  }
  EXPECT_EQ(candidates.size(), n) << "probabilistic coverage failed badly";
}

// ------------------------------------------------------------ phase policies

template <typename P>
class PhasePolicyTest : public ::testing::Test {};

using PhaseTypes = ::testing::Types<fetch_add_phase, cas_phase>;
TYPED_TEST_SUITE(PhasePolicyTest, PhaseTypes);

TYPED_TEST(PhasePolicyTest, SequentialPhasesAreNonDecreasingAndFresh) {
  // The doorway property needs: a phase chosen after another operation
  // *completed* its choice is >= that phase (ties allowed for cas_phase).
  wf_queue_base<std::uint64_t> dummy(1);  // unused by counter policies
  TypeParam p(4);
  mock_guard g;
  std::int64_t prev = -1;
  for (int i = 0; i < 100; ++i) {
    std::int64_t ph = p.next_phase(dummy, g, 0);
    EXPECT_GE(ph, prev);
    prev = ph;
  }
}

TYPED_TEST(PhasePolicyTest, ConcurrentPhasesRespectTheDoorway) {
  TypeParam p(8);
  wf_queue_base<std::uint64_t> dummy(1);
  constexpr int kThreads = 4, kOps = 500;
  std::vector<std::vector<std::int64_t>> seen(kThreads);
  spin_barrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      mock_guard g;
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        seen[t].push_back(p.next_phase(dummy, g, static_cast<std::uint32_t>(t)));
      }
    });
  }
  for (auto& th : ts) th.join();
  // Per-thread monotone non-decreasing (each next call starts after the
  // previous completed).
  for (auto& v : seen) {
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GE(v[i], v[i - 1]);
  }
  // fetch_add must additionally be globally unique.
  if constexpr (std::is_same_v<TypeParam, fetch_add_phase>) {
    std::set<std::int64_t> all;
    for (auto& v : seen) all.insert(v.begin(), v.end());
    EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kOps));
  }
}

TEST(ScanMaxPhase, ReturnsOneAboveTheMaximumInState) {
  wf_queue_base<std::uint64_t> q(4);
  scan_max_phase p(4);
  hp_domain dom(1, 5);
  auto g = dom.enter(0);
  // Fresh queue: all descriptors carry phase -1, so the first phase is 0.
  EXPECT_EQ(p.next_phase(q, g, 0), 0);
  q.enqueue(1, 2);  // thread 2's descriptor now carries phase 0
  EXPECT_EQ(p.next_phase(q, g, 0), 1);
  q.enqueue(2, 1);
  EXPECT_EQ(p.next_phase(q, g, 0), 2);
  (void)q.dequeue(3);
  EXPECT_EQ(p.next_phase(q, g, 0), 3);
}

// ---------------------------------------------------------------- desc_pool

TEST(DescPool, RecycleReusesTheSameAllocation) {
  desc_pool<std::uint64_t> pool(2, /*enabled=*/true, nullptr);
  auto* a = pool.make(0, std::int64_t{1}, true, true, nullptr);
  pool.recycle(0, a);
  EXPECT_EQ(pool.cached(0), 1u);
  auto* b = pool.make(0, std::int64_t{2}, false, false, nullptr);
  EXPECT_EQ(b, a) << "cache must hand back the recycled allocation";
  EXPECT_EQ(b->phase, 2);
  EXPECT_FALSE(b->pending);
  pool.recycle(0, b);
}

TEST(DescPool, DisabledPoolNeverCaches) {
  desc_pool<std::uint64_t> pool(1, /*enabled=*/false, nullptr);
  auto* a = pool.make(0, std::int64_t{1}, true, true, nullptr);
  pool.recycle(0, a);  // deletes immediately
  EXPECT_EQ(pool.cached(0), 0u);
}

TEST(DescPool, CacheIsPerThread) {
  desc_pool<std::uint64_t> pool(2, true, nullptr);
  auto* a = pool.make(0, std::int64_t{1}, true, true, nullptr);
  pool.recycle(0, a);
  EXPECT_EQ(pool.cached(0), 1u);
  EXPECT_EQ(pool.cached(1), 0u);
  // Thread 1's make must not steal thread 0's cache.
  auto* b = pool.make(1, std::int64_t{2}, true, true, nullptr);
  EXPECT_NE(b, a);
  EXPECT_EQ(pool.cached(0), 1u);
  pool.recycle(1, b);
}

TEST(DescPool, CapBoundsTheCache) {
  desc_pool<std::uint64_t> pool(1, true, nullptr, /*cache_cap=*/2);
  auto* a = pool.make(0, std::int64_t{1}, true, true, nullptr);
  auto* b = pool.make(0, std::int64_t{2}, true, true, nullptr);
  auto* c = pool.make(0, std::int64_t{3}, true, true, nullptr);
  pool.recycle(0, a);
  pool.recycle(0, b);
  pool.recycle(0, c);  // over cap: deleted
  EXPECT_EQ(pool.cached(0), 2u);
}

TEST(DescPool, AccountingTracksFreshAllocationsOnly) {
  class probe : public mem_tracked {};
  probe acct;
  mem_counters mc;
  acct.set_memory_counters(&mc);
  desc_pool<std::uint64_t> pool(1, true, &acct);
  auto* a = pool.make(0, std::int64_t{1}, true, true, nullptr);
  EXPECT_EQ(mc.live_objects(), 1);
  pool.recycle(0, a);
  EXPECT_EQ(mc.live_objects(), 1) << "cached descriptors stay live";
  auto* b = pool.make(0, std::int64_t{2}, true, true, nullptr);
  EXPECT_EQ(mc.live_objects(), 1) << "reuse is not a fresh allocation";
  pool.recycle(0, b);
  pool.purge();
  EXPECT_EQ(mc.live_objects(), 0);
}

TEST(DescPool, FreshAllocCounterGrowsOnlyOnMisses) {
  desc_pool<std::uint64_t> pool(1, true, nullptr);
  auto* a = pool.make(0, std::int64_t{1}, true, true, nullptr);
  EXPECT_EQ(pool.fresh_allocs(), 1u);
  pool.recycle(0, a);
  auto* b = pool.make(0, std::int64_t{2}, true, true, nullptr);
  EXPECT_EQ(pool.fresh_allocs(), 1u);
  pool.recycle(0, b);
}

}  // namespace
}  // namespace kpq
