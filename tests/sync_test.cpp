// Unit tests for the low-level synchronization substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "sync/backoff.hpp"
#include "sync/cacheline.hpp"
#include "sync/spin_barrier.hpp"
#include "sync/thread_registry.hpp"

namespace kpq {
namespace {

// ---------------------------------------------------------------- cacheline

TEST(Padded, ElementsDoNotShareCacheLines) {
  padded<std::atomic<int>> arr[4];
  for (int i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, cacheline_size);
  }
}

TEST(Padded, ForwardsConstructorArguments) {
  padded<std::vector<int>> v(std::size_t{5}, 7);
  EXPECT_EQ(v->size(), 5u);
  EXPECT_EQ((*v)[0], 7);
}

// ------------------------------------------------------------------ backoff

TEST(Backoff, IsCallableManyTimesAndResets) {
  backoff bo(16);
  for (int i = 0; i < 100; ++i) bo();  // must terminate promptly
  bo.reset();
  for (int i = 0; i < 10; ++i) bo();
  SUCCEED();
}

// ------------------------------------------------------------- spin_barrier

TEST(SpinBarrier, ReleasesAllPartiesExactlyOneSerial) {
  constexpr std::uint32_t kThreads = 4;
  spin_barrier b(kThreads);
  std::atomic<int> serials{0};
  std::atomic<int> passed{0};
  std::vector<std::thread> ts;
  for (std::uint32_t i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      if (b.arrive_and_wait()) serials.fetch_add(1);
      passed.fetch_add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(passed.load(), 4);
  EXPECT_EQ(serials.load(), 1);
}

TEST(SpinBarrier, IsReusableAcrossGenerations) {
  constexpr std::uint32_t kThreads = 3;
  constexpr int kRounds = 20;
  spin_barrier b(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> ts;
  for (std::uint32_t i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        b.arrive_and_wait();
        // Between generations every thread must observe the full round.
        EXPECT_GE(counter.load(), (r + 1) * static_cast<int>(kThreads));
        b.arrive_and_wait();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kThreads));
}

// ---------------------------------------------------------- thread_registry

TEST(ThreadRegistry, AcquireReturnsDistinctIds) {
  auto& reg = thread_registry::instance();
  std::uint32_t a = reg.acquire();
  std::uint32_t b = reg.acquire();
  std::uint32_t c = reg.acquire();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  EXPECT_TRUE(reg.is_claimed(a));
  reg.release(a);
  EXPECT_FALSE(reg.is_claimed(a));
  // Lowest-free policy: the freed id is handed out again.
  EXPECT_EQ(reg.acquire(), a);
  reg.release(a);
  reg.release(b);
  reg.release(c);
}

TEST(ThreadRegistry, ThreadLocalIdsAreStablePerThread) {
  const std::uint32_t id1 = this_thread_id();
  const std::uint32_t id2 = this_thread_id();
  EXPECT_EQ(id1, id2);
}

TEST(ThreadRegistry, ConcurrentThreadsGetUniqueIds) {
  constexpr int kThreads = 16;
  std::vector<std::uint32_t> ids(kThreads);
  spin_barrier b(kThreads);
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&, i] {
      // Claim before the barrier: until every thread has arrived, no thread
      // can exit, so all 16 ids are held simultaneously and must differ.
      const std::uint32_t id = this_thread_id();
      b.arrive_and_wait();
      ids[static_cast<std::size_t>(i)] = id;
    });
  }
  for (auto& t : ts) t.join();
  std::set<std::uint32_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadRegistry, IdsAreReleasedOnThreadExit) {
  std::uint32_t seen = 0;
  std::thread t([&] { seen = this_thread_id(); });
  t.join();
  // The id used by the dead thread must be reusable. Spawn another thread
  // and expect the dense low namespace to stay small.
  std::uint32_t seen2 = 0;
  std::thread t2([&] { seen2 = this_thread_id(); });
  t2.join();
  EXPECT_EQ(seen, seen2) << "dead thread's id was not recycled";
}

TEST(ThreadRegistry, HighWaterTracksClaims) {
  auto& reg = thread_registry::instance();
  const std::uint32_t base = reg.high_water();
  std::uint32_t id = reg.acquire();
  EXPECT_GE(reg.high_water(), base);
  EXPECT_GE(reg.high_water(), id + 1);
  reg.release(id);
}

}  // namespace
}  // namespace kpq
