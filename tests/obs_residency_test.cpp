// Item-residency tracking: stamped-node shape, compiled-out zero cost,
// single-thread exactness (every dequeued hit records one sample), stamp
// survival across the FPS fast/slow paths, concurrent sample conservation,
// and the calibrated report/registry export surface.
#include "obs/residency.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cmath>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "obs/calibrate.hpp"
#include "obs/registry.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq {
namespace {

// ------------------------------------------------------------------ shape

TEST(ObsResidency, UnstampedNodeKeepsPaperShape) {
  // The residency field is an empty base when compiled out — the default
  // node must keep the 24-byte layout the shape-regression suite pins.
  EXPECT_EQ(sizeof(wf_node<std::uint64_t>), 24u);
  EXPECT_EQ(sizeof(wf_node<std::uint64_t, false>), 24u);
  EXPECT_EQ(sizeof(wf_node<std::uint64_t, true>), 32u);  // +8B stamp
}

TEST(ObsResidency, PolicyDetectionIsStructural) {
  static_assert(!obs::residency_policy_t<wf_options>::enabled);
  static_assert(obs::residency_policy_t<wf_options_residency>::enabled);
  // An Options struct written before the residency policy existed still
  // resolves (to no_residency) without edits.
  struct legacy_options : wf_options {};
  static_assert(!obs::residency_policy_t<legacy_options>::enabled);
  static_assert(!wf_queue_opt<int>::track_residency);
  static_assert(wf_queue_opt_residency<int>::track_residency);
}

// Zero patience: every op takes the slow (descriptor) path, so the stamp
// must survive the help_finish descriptor hand-off too. (Namespace scope:
// local classes cannot hold static data members.)
struct zero_patience : fps_options_residency {
  static constexpr std::uint32_t max_tries = 0;
};

// ------------------------------------------------------- single-threaded

TEST(ObsResidency, EveryDequeuedHitRecordsOneSample) {
  wf_queue_opt_residency<std::uint64_t> q(2);
  constexpr std::uint64_t kOps = 500;
  for (std::uint64_t i = 0; i < kOps; ++i) q.enqueue(i, 0);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    auto v = q.dequeue(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue(0).has_value());  // miss: no sample
  EXPECT_EQ(q.residency_samples(), kOps);
  EXPECT_EQ(q.residency_histogram().total(), kOps);

  q.reset_residency();
  EXPECT_EQ(q.residency_samples(), 0u);
}

TEST(ObsResidency, DwellTimeIsReflectedInTheHistogram) {
  wf_queue_opt_residency<int> q(1);
  const obs::tick_calibration cal = obs::calibrate_ticks(2'000'000);

  q.enqueue(1, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.dequeue(0).has_value());

  const obs::residency_report rep =
      obs::make_residency_report(q.residency_histogram(), cal);
  EXPECT_EQ(rep.samples, 1u);
  // The item sat for >= 20ms; allow generous slack for calibration error.
  EXPECT_GT(rep.p50_ns(), 5'000'000.0);
  EXPECT_GE(rep.max_ns(), rep.p50_ns());
}

// ----------------------------------------------------------- FPS variant

TEST(ObsResidency, FpsFastAndSlowPathsBothRecord) {
  // Default patience: single-threaded ops all take the fast path.
  wf_queue_fps<std::uint64_t, hp_domain, fps_options_residency> q(2);
  constexpr std::uint64_t kOps = 300;
  for (std::uint64_t i = 0; i < kOps; ++i) q.enqueue(i, 0);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  EXPECT_EQ(q.residency_samples(), kOps);

  wf_queue_fps<std::uint64_t, hp_domain, zero_patience> slow(2);
  for (std::uint64_t i = 0; i < kOps; ++i) slow.enqueue(i, 0);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(slow.dequeue(0).has_value());
  }
  EXPECT_EQ(slow.residency_samples(), kOps);
  EXPECT_EQ(slow.aggregate_path_counters().slow_deqs, kOps);
}

// ------------------------------------------------------------- concurrent

TEST(ObsResidency, ConcurrentSamplesAreConserved) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  wf_queue_opt_residency<std::uint64_t> q(kThreads);
  spin_barrier barrier(kThreads);
  std::atomic<std::uint64_t> hits{0};

  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        q.enqueue(i, t);
        if (q.dequeue(t).has_value()) {
          hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (q.dequeue(t).has_value()) {
        hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Conservation: every enqueued item was dequeued exactly once, and every
  // dequeued hit recorded exactly one residency sample (even when the op
  // was completed by a helper on another thread).
  EXPECT_EQ(hits.load(), kThreads * kPerThread);
  EXPECT_EQ(q.residency_samples(), kThreads * kPerThread);
  EXPECT_EQ(q.residency_histogram().total(), kThreads * kPerThread);
}

// ------------------------------------------------------------ report/export

TEST(ObsResidency, ReportQuantilesAreFiniteAndOrdered) {
  log2_histogram h;
  for (int i = 0; i < 1000; ++i) h.add(static_cast<std::uint64_t>(i + 1));
  obs::tick_calibration cal;
  cal.tick_hz = 1e9;  // 1 tick == 1 ns
  const obs::residency_report rep = obs::make_residency_report(h, cal);
  EXPECT_EQ(rep.samples, 1000u);
  EXPECT_GT(rep.p50_ns(), 0.0);
  EXPECT_LE(rep.p50_ns(), rep.p90_ns());
  EXPECT_LE(rep.p90_ns(), rep.p99_ns());
  EXPECT_LE(rep.p99_ns(), rep.max_ns());
}

TEST(ObsResidency, RegistryExportSurface) {
  wf_queue_opt_residency<int> q(1);
  q.enqueue(7, 0);
  ASSERT_TRUE(q.dequeue(0).has_value());

  obs::tick_calibration cal;
  cal.tick_hz = 1e9;
  obs::registry reg;
  reg.add_source("q0.residency", [&](obs::metrics_snapshot& out) {
    obs::append_metrics(out, "q0.residency",
                        obs::make_residency_report(q.residency_histogram(), cal));
  });
  const obs::metrics_snapshot snap = reg.snapshot();
  bool saw_samples = false, saw_p99 = false;
  for (const obs::metric& m : snap) {
    if (m.name == "q0.residency.samples") {
      saw_samples = true;
      EXPECT_EQ(m.value, 1.0);
    }
    if (m.name == "q0.residency.p99_ns") saw_p99 = true;
    EXPECT_TRUE(std::isfinite(m.value)) << m.name;
  }
  EXPECT_TRUE(saw_samples);
  EXPECT_TRUE(saw_p99);
}

}  // namespace
}  // namespace kpq
