// Deterministic replays of the paper's operation walk-throughs.
//
// Figure 3 shows the enqueue flow (thread 3 enqueues 400): descriptor
// published (3b), node linked behind the last element (3c), pending flag
// cleared (3d), tail fixed (3e). Figure 5 shows the dequeue flow (thread 1
// dequeues after Figure 3): state points at the sentinel (5b), the
// sentinel's deqTid is claimed (5c), pending cleared (5d), head fixed and
// the value returned (5e).
//
// These tests drive the private helper methods one paper-step at a time via
// the whitebox friend and assert the exact intermediate structure shown in
// each sub-figure — including the interrupted-operation cases the figures
// imply: an operation abandoned after any step must be completed correctly
// by whoever comes next (the heart of the helping scheme).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/wf_queue.hpp"
#include "support/whitebox.hpp"

namespace kpq {

namespace {

using wb = testing::whitebox;
using queue = wf_queue_base<std::uint64_t>;

// Queue of Figure 3a: values 100, 200, 300 already enqueued (the exact
// enqTids in the figure don't affect behaviour; we use real enqueues).
queue* make_fig3a_queue() {
  auto* q = new queue(4);
  q->enqueue(100, 0);
  q->enqueue(200, 1);
  q->enqueue(300, 0);
  return q;
}

TEST(Figure3Enqueue, StepByStep) {
  auto* q = make_fig3a_queue();

  // -- Figure 3b: thread 3 chooses a phase and publishes its descriptor
  //    (paper lines 62-63). Nothing in the list changes yet.
  const std::int64_t phase = wb::max_phase(*q, 3) + 1;
  auto* node400 = wb::make_node(*q, 400, 3);
  wb::publish(*q, 3, phase, /*pending=*/true, /*enq=*/true, node400);

  auto* d3 = wb::state(*q, 3);
  EXPECT_TRUE(d3->pending);
  EXPECT_TRUE(d3->enqueue);
  EXPECT_EQ(d3->phase, phase);
  EXPECT_EQ(d3->node, node400);
  EXPECT_EQ(q->unsafe_size(), 3u);

  // -- Figure 3c: the next reference of the last element is swung to the
  //    new node (paper line 74). The node is now in the list but tail still
  //    points at 300 and the operation is still pending.
  auto* last = wb::tail(*q);
  auto* expected = static_cast<queue::node_type*>(nullptr);
  ASSERT_TRUE(last->next.compare_exchange_strong(expected, node400));
  EXPECT_EQ(wb::tail(*q), last) << "tail must not move in step (1)";
  EXPECT_TRUE(wb::state(*q, 3)->pending) << "pending clears only in step (2)";
  EXPECT_EQ(q->unsafe_size(), 4u) << "value 400 is linearized as of step (1)";

  // -- Figures 3d + 3e: help_finish_enq clears the pending flag (line 93)
  //    and fixes tail (line 94) — performed here by a *different* thread
  //    (tid 2), as the helping scheme allows.
  wb::help_finish_enq(*q, 2);
  d3 = wb::state(*q, 3);
  EXPECT_FALSE(d3->pending);                // Figure 3d
  EXPECT_TRUE(d3->enqueue);
  EXPECT_EQ(d3->node, node400);
  EXPECT_EQ(wb::tail(*q), node400);         // Figure 3e
  EXPECT_EQ(wb::tail(*q)->enq_tid, 3);

  // The queue must now behave as if thread 3's enqueue completed normally.
  EXPECT_EQ(q->dequeue(0), std::optional<std::uint64_t>(100));
  EXPECT_EQ(q->dequeue(1), std::optional<std::uint64_t>(200));
  EXPECT_EQ(q->dequeue(2), std::optional<std::uint64_t>(300));
  EXPECT_EQ(q->dequeue(3), std::optional<std::uint64_t>(400));
  EXPECT_EQ(q->dequeue(0), std::nullopt);
  delete q;
}

TEST(Figure3Enqueue, AbandonedAfterPublishIsCompletedByHelpEnq) {
  // Thread 3 "crashes" right after Figure 3b; a helper running help_enq
  // must execute all three steps on its behalf.
  auto* q = make_fig3a_queue();
  const std::int64_t phase = wb::max_phase(*q, 3) + 1;
  auto* node400 = wb::make_node(*q, 400, 3);
  wb::publish(*q, 3, phase, true, true, node400);

  wb::help_enq(*q, 3, phase, /*helper=*/1);

  EXPECT_FALSE(wb::state(*q, 3)->pending);
  EXPECT_EQ(wb::tail(*q), node400);
  EXPECT_EQ(q->unsafe_size(), 4u);
  delete q;
}

TEST(Figure3Enqueue, AbandonedAfterLinkIsCompletedByAnyOperation) {
  // Thread 3 crashes between Figures 3c and 3d (node linked, tail stale).
  // Any other thread's next operation must first finish the dangling
  // enqueue (paper lines 79-80 / 122-123) before proceeding.
  auto* q = make_fig3a_queue();
  const std::int64_t phase = wb::max_phase(*q, 3) + 1;
  auto* node400 = wb::make_node(*q, 400, 3);
  wb::publish(*q, 3, phase, true, true, node400);
  auto* last = wb::tail(*q);
  auto* expected = static_cast<queue::node_type*>(nullptr);
  ASSERT_TRUE(last->next.compare_exchange_strong(expected, node400));

  // A regular enqueue by thread 0 — the public API, no whitebox help.
  q->enqueue(500, 0);

  EXPECT_FALSE(wb::state(*q, 3)->pending)
      << "dangling enqueue not finished by the next operation";
  EXPECT_EQ(q->unsafe_size(), 5u);
  // FIFO: 100, 200, 300, 400 (thread 3's), 500.
  for (std::uint64_t v : {100u, 200u, 300u, 400u, 500u}) {
    EXPECT_EQ(q->dequeue(1), std::optional<std::uint64_t>(v));
  }
  delete q;
}

TEST(Figure5Dequeue, StepByStep) {
  // Start from the state of Figure 3e reached through the public API.
  auto* q = make_fig3a_queue();
  q->enqueue(400, 3);

  // -- Figure 5a: thread 1 publishes a pending dequeue descriptor with a
  //    null node reference (paper lines 99-100).
  const std::int64_t phase = wb::max_phase(*q, 1) + 1;
  wb::publish(*q, 1, phase, /*pending=*/true, /*enq=*/false, nullptr);
  EXPECT_TRUE(wb::state(*q, 1)->pending);
  EXPECT_FALSE(wb::state(*q, 1)->enqueue);
  EXPECT_EQ(wb::state(*q, 1)->node, nullptr);

  // -- Figures 5b + 5c: help_deq performs stage (0) — point thread 1's
  //    state at the first (dummy) node (line 131) — and stage (1) — write
  //    tid 1 into the dummy's deqTid (line 135). We run it via a helper
  //    (thread 2) and stop it from finishing by... we can't stop it, so we
  //    verify 5b/5c post-conditions through the completed run and check the
  //    intermediate claims on a separate manual replay below.
  auto* dummy = wb::head(*q);
  EXPECT_EQ(dummy->deq_tid.load(), no_tid);
  wb::help_deq(*q, 1, phase, /*helper=*/2);

  // After help_deq returns the whole operation is done (5d + 5e):
  auto* d1 = wb::state(*q, 1);
  EXPECT_FALSE(d1->pending);                    // Figure 5d
  EXPECT_EQ(d1->node, dummy) << "state must reference the old sentinel";
  EXPECT_EQ(dummy->deq_tid.load(), 1);          // Figure 5c happened
  EXPECT_NE(wb::head(*q), dummy);               // Figure 5e: head fixed
  EXPECT_EQ(d1->value, 100u) << "first real value captured in descriptor";

  // Remaining content: 200, 300, 400.
  for (std::uint64_t v : {200u, 300u, 400u}) {
    EXPECT_EQ(q->dequeue(0), std::optional<std::uint64_t>(v));
  }
  delete q;
}

TEST(Figure5Dequeue, ManualStagesMatchSubfigures) {
  // Replay stages (0)-(1) by hand to pin the exact intermediate states of
  // Figures 5b and 5c, then let help_finish_deq do 5d/5e.
  auto* q = make_fig3a_queue();
  const std::int64_t phase = wb::max_phase(*q, 1) + 1;
  wb::publish(*q, 1, phase, true, false, nullptr);

  auto* dummy = wb::head(*q);

  // Figure 5b: stage (0) — point state[1] at the dummy, still pending.
  wb::publish(*q, 1, phase, true, false, dummy);
  EXPECT_TRUE(wb::state(*q, 1)->pending);
  EXPECT_EQ(wb::state(*q, 1)->node, dummy);
  EXPECT_EQ(dummy->deq_tid.load(), no_tid);
  EXPECT_EQ(wb::head(*q), dummy) << "head untouched until stage (3)";

  // Figure 5c: stage (1) — claim the dummy's deqTid (the linearization).
  std::int32_t expected = no_tid;
  ASSERT_TRUE(dummy->deq_tid.compare_exchange_strong(expected, 1));
  EXPECT_TRUE(wb::state(*q, 1)->pending) << "pending clears in stage (2)";
  EXPECT_EQ(wb::head(*q), dummy) << "head moves in stage (3)";

  // Figures 5d + 5e: a helper finishes stages (2)-(3).
  wb::help_finish_deq(*q, 3);
  EXPECT_FALSE(wb::state(*q, 1)->pending);      // 5d
  EXPECT_NE(wb::head(*q), dummy);               // 5e
  EXPECT_EQ(wb::state(*q, 1)->value, 100u);
  EXPECT_EQ(q->unsafe_size(), 2u);
  delete q;
}

TEST(Figure5Dequeue, AbandonedAfterClaimIsCompletedByAnyOperation) {
  // Thread 1 crashes after stage (1) (deqTid claimed, head stale). The next
  // public-API operation must finish stages (2)-(3) for it.
  auto* q = make_fig3a_queue();
  const std::int64_t phase = wb::max_phase(*q, 1) + 1;
  auto* dummy = wb::head(*q);
  wb::publish(*q, 1, phase, true, false, dummy);
  std::int32_t expected = no_tid;
  ASSERT_TRUE(dummy->deq_tid.compare_exchange_strong(expected, 1));

  // Another thread dequeues through the public API: it must first complete
  // thread 1's claimed dequeue (getting it 100), then its own (getting 200).
  EXPECT_EQ(q->dequeue(2), std::optional<std::uint64_t>(200));
  EXPECT_FALSE(wb::state(*q, 1)->pending);
  EXPECT_EQ(wb::state(*q, 1)->value, 100u);
  EXPECT_EQ(q->unsafe_size(), 1u);
  delete q;
}

TEST(EmptyDequeue, HelperMarksEmptyInState) {
  // The empty-queue path (paper lines 116-121): a helper completing a
  // dequeue on an empty queue must record "empty" (null node) in the
  // owner's state rather than raising anything in its own context.
  queue q(4);
  const std::int64_t phase = wb::max_phase(q, 1) + 1;
  wb::publish(q, 1, phase, true, false, nullptr);

  wb::help_deq(q, 1, phase, /*helper=*/0);

  auto* d1 = wb::state(q, 1);
  EXPECT_FALSE(d1->pending);
  EXPECT_EQ(d1->node, nullptr) << "null node encodes the empty result";
}

TEST(PhaseOrdering, OlderOperationsAreHelpedFirst) {
  // Two pending dequeues with different phases: an operation with a bound
  // between them must help only the older one.
  queue q(4);
  q.enqueue(100, 0);
  q.enqueue(200, 0);

  const std::int64_t ph1 = wb::max_phase(q, 1) + 1;
  wb::publish(q, 1, ph1, true, false, nullptr);
  const std::int64_t ph2 = ph1 + 1;
  wb::publish(q, 2, ph2, true, false, nullptr);

  // Helper bound = ph1: completes thread 1's op, must leave thread 2's
  // pending (phase filter, paper line 39 / 59).
  wb::help_deq(q, 1, ph1, /*helper=*/3);
  EXPECT_FALSE(wb::state(q, 1)->pending);
  EXPECT_TRUE(wb::state(q, 2)->pending);
  EXPECT_EQ(wb::state(q, 1)->value, 100u);

  // Now complete thread 2's as well.
  wb::help_deq(q, 2, ph2, /*helper=*/3);
  EXPECT_FALSE(wb::state(q, 2)->pending);
  EXPECT_EQ(wb::state(q, 2)->value, 200u);
  EXPECT_EQ(q.unsafe_size(), 0u);
}

}  // namespace
}  // namespace kpq
