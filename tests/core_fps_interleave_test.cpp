// Exhaustive interleaving exploration of the fast-path/slow-path queue's
// cross-path races — the part of wf_queue_fps that neither the base queue's
// explorer nor OS-thread stress can pin down deterministically:
//
//   * fast deqTid claim vs slow deqTid claim on the same sentinel;
//   * fast link (anonymous node) vs slow link (announced node);
//   * helpers finishing claims/links of the other path.
//
// Same method as core_interleave_test: DFS over all schedules of the step
// machines, each completed run checked by the exact linearizability checker.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/fps_machines.hpp"
#include "verify/history.hpp"
#include "verify/lin_checker.hpp"

namespace kpq {
namespace {

using testing::build_fps_machine;
using testing::fast_deq_machine;
using testing::fps_machine;
using testing::fps_op_spec;
using testing::fq;
using testing::slow_deq_machine;

using K = fps_op_spec::kind;

bool is_deq(K k) { return k == K::fast_deq || k == K::slow_deq; }

std::optional<std::uint64_t> result_of(fps_machine* m, K k) {
  if (k == K::fast_deq) return static_cast<fast_deq_machine*>(m)->result;
  return static_cast<slow_deq_machine*>(m)->result;
}

::testing::AssertionResult run_schedule(const std::vector<fps_op_spec>& specs,
                                        const std::vector<std::size_t>& sched,
                                        std::uint64_t prefill) {
  fq q(4);
  for (std::uint64_t i = 0; i < prefill; ++i) q.enqueue(1000 + i, 3);

  std::vector<std::unique_ptr<fps_machine>> ms;
  for (const auto& s : specs) ms.push_back(build_fps_machine(s));

  std::uint64_t clock = 1;
  auto step_machine = [&](std::size_t i) {
    fps_machine& m = *ms[i];
    if (m.done) return;
    if (m.inv == 0) m.inv = clock++;
    if (m.step(q)) {
      m.done = true;
      m.res = clock++;
    } else {
      ++clock;
    }
  };

  for (std::size_t i : sched) step_machine(i);
  for (int guard = 0; guard < 1000; ++guard) {
    bool all_done = true;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      if (!ms[i]->done) {
        all_done = false;
        step_machine(i);
      }
    }
    if (all_done) break;
  }
  for (auto& m : ms) {
    if (!m->done) {
      return ::testing::AssertionFailure() << "machine failed to terminate";
    }
  }

  std::vector<op_event> h;
  std::uint64_t pre_ts = 0;
  for (std::uint64_t i = 0; i < prefill; ++i) {
    h.push_back({op_kind::enq, true, 3, 1000 + i, pre_ts, pre_ts + 1});
    pre_ts += 2;
  }
  const std::uint64_t base = pre_ts;
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto& s = specs[i];
    if (is_deq(s.k)) {
      auto r = result_of(ms[i].get(), s.k);
      h.push_back({op_kind::deq, r.has_value(), s.tid, r.value_or(0),
                   base + ms[i]->inv, base + ms[i]->res});
    } else {
      h.push_back({op_kind::enq, true, s.tid, s.value, base + ms[i]->inv,
                   base + ms[i]->res});
    }
  }
  std::uint64_t drain_ts = base + 10000;
  while (auto v = q.dequeue(3)) {
    h.push_back({op_kind::deq, true, 3, *v, drain_ts, drain_ts + 1});
    drain_ts += 2;
  }

  if (!lin_checker::is_linearizable(h)) {
    std::string sstr;
    for (std::size_t i : sched) sstr += std::to_string(i);
    return ::testing::AssertionFailure()
           << "schedule " << sstr << " produced a non-linearizable history";
  }
  return ::testing::AssertionSuccess();
}

void explore_all(const std::vector<fps_op_spec>& specs, std::uint64_t prefill,
                 int budget) {
  std::vector<std::size_t> sched;
  std::uint64_t count = 0;
  std::function<void()> dfs = [&] {
    if (static_cast<int>(sched.size()) == budget) {
      ++count;
      ASSERT_TRUE(run_schedule(specs, sched, prefill));
      return;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      sched.push_back(i);
      dfs();
      sched.pop_back();
      if (::testing::Test::HasFatalFailure()) return;
    }
  };
  dfs();
  EXPECT_GT(count, 0u);
}

// ------------------------------------------------------------------ tests

TEST(FpsInterleave, FastClaimRacesSlowClaimOnOneElement) {
  // The central interop hazard: both claim styles target the same
  // write-once deqTid. Exactly one gets the element in every schedule.
  explore_all({{K::fast_deq, 0}, {K::slow_deq, 1}}, /*prefill=*/1,
              /*budget=*/12);
}

TEST(FpsInterleave, FastClaimRacesSlowClaimTwoElements) {
  explore_all({{K::fast_deq, 0}, {K::slow_deq, 1}}, /*prefill=*/2,
              /*budget=*/12);
}

TEST(FpsInterleave, TwoFastClaimsRace) {
  explore_all({{K::fast_deq, 0}, {K::fast_deq, 1}}, /*prefill=*/1,
              /*budget=*/12);
}

TEST(FpsInterleave, FastLinkRacesSlowLink) {
  explore_all({{K::fast_enq, 0, 100}, {K::slow_enq, 1, 200}}, /*prefill=*/0,
              /*budget=*/12);
}

TEST(FpsInterleave, FastEnqueueRacesSlowDequeueOnEmpty) {
  explore_all({{K::fast_enq, 0, 100}, {K::slow_deq, 1}}, /*prefill=*/0,
              /*budget=*/12);
}

TEST(FpsInterleave, SlowEnqueueRacesFastDequeueOnEmpty) {
  explore_all({{K::slow_enq, 0, 100}, {K::fast_deq, 1}}, /*prefill=*/0,
              /*budget=*/12);
}

TEST(FpsInterleave, ThreeWayCrossPathRace) {
  // fast enq + slow deq + fast deq over one prefilled element: 3^8
  // schedules covering claim ordering, dangling-link helping and the empty
  // path in one scenario family.
  explore_all({{K::fast_enq, 0, 100}, {K::slow_deq, 1}, {K::fast_deq, 2}},
              /*prefill=*/1, /*budget=*/8);
}

TEST(FpsInterleave, SlowPairRacesFastPair) {
  explore_all({{K::slow_enq, 0, 100}, {K::fast_enq, 1, 200},
               {K::slow_deq, 2}},
              /*prefill=*/0, /*budget=*/8);
}

}  // namespace
}  // namespace kpq
