// Unit and stress tests for the continuation layer (sync/waiter_hub.hpp):
// enlist/delist bookkeeping, the two-phase notify with token pass-on over
// claimed waiters, thread_parker park/notify/timeout semantics, and a
// Dekker-pairing stress proving no lost wakeups under enqueue-style
// notify-if-maybe-waiters traffic.
#include "sync/waiter_hub.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace kpq {
namespace {

using namespace std::chrono_literals;

// A scriptable continuation: accepts or refuses the token on demand.
class fake_waiter final : public waiter_hub::waiter {
 public:
  explicit fake_waiter(bool accepts = true)
      : waiter(waiter_hub::waiter_kind::coroutine), accepts_(accepts) {}
  int accept_calls = 0;
  int resume_calls = 0;

 private:
  waiter_hub::accept_result try_accept() noexcept override {
    ++accept_calls;
    return accepts_ ? waiter_hub::accept_result::needs_resume
                    : waiter_hub::accept_result::refused;
  }
  void resume() noexcept override { ++resume_calls; }
  bool accepts_;
};

TEST(WaiterHub, EnlistDelistCounts) {
  waiter_hub hub;
  EXPECT_FALSE(hub.maybe_waiters());
  fake_waiter a, b;
  {
    auto lk = hub.lock();
    hub.enlist(a, lk);
    hub.enlist(b, lk);
    EXPECT_TRUE(a.linked());
    EXPECT_TRUE(b.linked());
  }
  EXPECT_TRUE(hub.maybe_waiters());
  {
    auto lk = hub.lock();
    EXPECT_TRUE(hub.delist(a, lk));
    EXPECT_FALSE(hub.delist(a, lk));  // second delist is a no-op
    EXPECT_TRUE(hub.delist(b, lk));
  }
  EXPECT_FALSE(hub.maybe_waiters());
}

TEST(WaiterHub, NotifyOneResumesInFifoOrder) {
  waiter_hub hub;
  fake_waiter a, b;
  {
    auto lk = hub.lock();
    hub.enlist(a, lk);
    hub.enlist(b, lk);
  }
  hub.notify_one();
  EXPECT_EQ(a.resume_calls, 1);
  EXPECT_EQ(b.resume_calls, 0);
  EXPECT_FALSE(a.linked());
  hub.notify_one();
  EXPECT_EQ(b.resume_calls, 1);
  hub.notify_one();  // empty hub: token evaporates, no crash
}

TEST(WaiterHub, RefusedTokenPassesToNextWaiter) {
  // The lost-wakeup guard: a waiter whose continuation was already claimed
  // (cancel/timeout) must NOT consume the notification.
  waiter_hub hub;
  fake_waiter cancelled(false), live(true);
  {
    auto lk = hub.lock();
    hub.enlist(cancelled, lk);
    hub.enlist(live, lk);
  }
  hub.notify_one();
  EXPECT_EQ(cancelled.accept_calls, 1);
  EXPECT_EQ(cancelled.resume_calls, 0);  // refused -> never resumed
  EXPECT_EQ(live.resume_calls, 1);       // token moved on to the next
  EXPECT_FALSE(cancelled.linked());      // but it IS off the list
  EXPECT_FALSE(hub.maybe_waiters());
}

TEST(WaiterHub, NotifyAllResumesEveryAcceptingWaiter) {
  waiter_hub hub;
  fake_waiter a, b(false), c;
  {
    auto lk = hub.lock();
    hub.enlist(a, lk);
    hub.enlist(b, lk);
    hub.enlist(c, lk);
  }
  hub.notify_all();
  EXPECT_EQ(a.resume_calls, 1);
  EXPECT_EQ(b.resume_calls, 0);
  EXPECT_EQ(c.resume_calls, 1);
  EXPECT_FALSE(hub.maybe_waiters());
}

TEST(WaiterHub, StatsCountParksAndNotifies) {
  waiter_hub hub;
  fake_waiter a;
  {
    auto lk = hub.lock();
    hub.enlist(a, lk);
    hub.commit_park(a, lk);
  }
  hub.notify_one();
  hub.on_resumed(a);
  const waiter_hub_stats s = hub.stats();
  EXPECT_EQ(s.parks, 1u);
  EXPECT_EQ(s.notifies, 1u);
  EXPECT_EQ(s.resumes, 1u);
  EXPECT_GE(s.resume_ns_max, 0u);
  EXPECT_GE(s.mean_resume_ns(), 0.0);
}

TEST(ThreadParker, ParkWakesOnNotify) {
  waiter_hub hub;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    thread_parker p;
    auto lk = hub.lock();
    hub.enlist(p, lk);
    p.park(hub, lk);
    hub.delist(p, lk);
    woke.store(true);
  });
  while (!hub.maybe_waiters()) std::this_thread::yield();
  hub.notify_one();
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(hub.stats().resumes, 1u);
}

TEST(ThreadParker, ParkForTimesOutAndStaysEnlisted) {
  waiter_hub hub;
  thread_parker p;
  auto lk = hub.lock();
  hub.enlist(p, lk);
  EXPECT_FALSE(p.park_for(hub, lk, 2ms));  // nobody notifies
  EXPECT_TRUE(p.linked());                 // timeout keeps registration
  hub.delist(p, lk);
}

TEST(ThreadParker, ParkForReturnsTrueWhenNotified) {
  waiter_hub hub;
  std::atomic<bool> got{false};
  std::thread sleeper([&] {
    thread_parker p;
    auto lk = hub.lock();
    hub.enlist(p, lk);
    got.store(p.park_for(hub, lk, 5s));
    hub.delist(p, lk);
  });
  while (!hub.maybe_waiters()) std::this_thread::yield();
  hub.notify_one();
  sleeper.join();
  EXPECT_TRUE(got.load());
}

// The Dekker pairing under load: producers bump a counter then notify only
// when maybe_waiters(); consumers enlist, re-check, park. Every produced
// token must eventually be consumed — no sleeper may be stranded while
// work remains.
TEST(WaiterHubStress, NoLostWakeups) {
  waiter_hub hub;
  std::atomic<std::int64_t> work{0};
  std::atomic<bool> closed{false};
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;
  std::atomic<std::int64_t> consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        // fast path
        std::int64_t w = work.load(std::memory_order_seq_cst);
        while (w > 0 && !work.compare_exchange_weak(
                            w, w - 1, std::memory_order_seq_cst)) {
        }
        if (w > 0) {
          consumed.fetch_add(1);
          continue;
        }
        thread_parker p;
        auto lk = hub.lock();
        hub.enlist(p, lk);
        // re-check under registration
        w = work.load(std::memory_order_seq_cst);
        while (w > 0 && !work.compare_exchange_weak(
                            w, w - 1, std::memory_order_seq_cst)) {
        }
        if (w > 0) {
          hub.delist(p, lk);
          consumed.fetch_add(1);
          continue;
        }
        if (closed.load(std::memory_order_seq_cst)) {
          hub.delist(p, lk);
          return;
        }
        p.park(hub, lk);
        hub.delist(p, lk);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        work.fetch_add(1, std::memory_order_seq_cst);
        if (hub.maybe_waiters()) hub.notify_one();
      }
    });
  }
  for (auto& t : producers) t.join();
  // Drain, then close and broadcast.
  while (consumed.load() < kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  {
    auto lk = hub.lock();
    closed.store(true, std::memory_order_seq_cst);
    hub.notify_all(std::move(lk));
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(work.load(), 0);
}

}  // namespace
}  // namespace kpq
