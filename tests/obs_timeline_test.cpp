// Timeline export: synthetic traces -> Chrome/Perfetto trace-event JSON.
// Checks the schema tag, the point->slice pairing for ops and help
// episodes, helper->helped flow arrows, instant fallbacks, the raw JSONL
// dump form, and a real traced-queue run surviving the converter.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/calibrate.hpp"
#include "obs/trace_ring.hpp"

namespace kpq::obs {
namespace {

tick_calibration ns_cal() {
  tick_calibration cal;
  cal.tick_hz = 1e9;  // 1 tick == 1 ns == 1e-3 us
  cal.base_ticks = 0;
  cal.base_ns = 0;
  return cal;
}

trace_event ev(std::uint64_t ts, trace_kind k, std::uint32_t tid,
               std::int64_t phase, std::uint32_t aux = 0) {
  trace_event e;
  e.ts = ts;
  e.kind = k;
  e.tid = tid;
  e.phase = phase;
  e.aux = aux;
  return e;
}

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ObsTimeline, EmptyTraceStillEmitsValidDocument) {
  const std::string doc = trace_to_timeline({}, ns_cal());
  EXPECT_NE(doc.find("\"kpqTraceSchema\":\"kpq-trace-1\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"event_count\":0"), std::string::npos);
}

TEST(ObsTimeline, PublishCompletePairsBecomeCompleteSlices) {
  std::vector<trace_event> events;
  events.push_back(ev(1000, trace_kind::enq_publish, 0, 7));
  events.push_back(ev(3000, trace_kind::enq_complete, 0, 7));
  events.push_back(ev(2000, trace_kind::deq_publish, 1, 9));
  events.push_back(ev(6000, trace_kind::deq_complete, 1, 9, /*hit=*/1));

  const std::string doc = trace_to_timeline(events, ns_cal());
  EXPECT_NE(doc.find("\"name\":\"enqueue\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"dequeue\",\"ph\":\"X\""), std::string::npos);
  // 2000 ticks == 2 us duration for the enqueue slice.
  EXPECT_NE(doc.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"hit\":true"), std::string::npos);
  // Orphan publishes (no complete) must not leak open slices.
  EXPECT_EQ(count_of(doc, "\"ph\":\"X\""), 2u);
}

TEST(ObsTimeline, HelpEpisodeProducesSliceAndFlowArrow) {
  // Thread 2 stalls mid-dequeue at phase 9; thread 1 helps it through.
  std::vector<trace_event> events;
  events.push_back(ev(1000, trace_kind::deq_publish, 2, 9));
  events.push_back(ev(1500, trace_kind::help_start, 1, 9, /*victim=*/2));
  events.push_back(ev(2500, trace_kind::help_finish, 1, 9, /*victim=*/2));
  events.push_back(ev(3000, trace_kind::deq_complete, 2, 9, /*hit=*/1));

  const std::string doc = trace_to_timeline(events, ns_cal());
  EXPECT_NE(doc.find("\"name\":\"help\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"victim\":2"), std::string::npos);
  // One flow arrow: "s" at the helper, "f" (bp:"e") at the victim's
  // completion slice, sharing an id.
  EXPECT_EQ(count_of(doc, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_of(doc, "\"ph\":\"f\""), 1u);
  EXPECT_NE(doc.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"help_flow\""), std::string::npos);
}

TEST(ObsTimeline, FlowArrowNeedsAMatchingVictimCompletion) {
  // Victim never completes -> episode slice but no arrow.
  std::vector<trace_event> events;
  events.push_back(ev(1500, trace_kind::help_start, 1, 9, 2));
  events.push_back(ev(2500, trace_kind::help_finish, 1, 9, 2));
  // A completion by the victim at a DIFFERENT phase must not match either.
  events.push_back(ev(3000, trace_kind::deq_complete, 2, 8, 1));

  const std::string doc = trace_to_timeline(events, ns_cal());
  EXPECT_NE(doc.find("\"name\":\"help\",\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(count_of(doc, "\"ph\":\"s\""), 0u);
  EXPECT_EQ(count_of(doc, "\"ph\":\"f\""), 0u);
}

TEST(ObsTimeline, PointKindsBecomeInstants) {
  std::vector<trace_event> events;
  events.push_back(ev(100, trace_kind::waiter_park, 3, 0, 42));
  events.push_back(ev(200, trace_kind::waiter_resume, 3, 0, 42));
  events.push_back(ev(300, trace_kind::tuner_decision, 0, 1, 4));

  const std::string doc = trace_to_timeline(events, ns_cal());
  EXPECT_NE(doc.find("\"name\":\"waiter_park\",\"ph\":\"i\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"tuner_decision\",\"ph\":\"i\""),
            std::string::npos);
  EXPECT_EQ(count_of(doc, "\"s\":\"t\""), 3u);
}

TEST(ObsTimeline, ThreadMetadataNamesEverySeenTid) {
  std::vector<trace_event> events;
  events.push_back(ev(100, trace_kind::retire, 0, 0));
  events.push_back(ev(200, trace_kind::retire, 5, 0));

  const std::string doc = trace_to_timeline(events, ns_cal());
  EXPECT_NE(doc.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_EQ(count_of(doc, "\"name\":\"thread_name\""), 2u);
  EXPECT_NE(doc.find("worker 5"), std::string::npos);
}

TEST(ObsTimeline, DroppedCountSurfacesInOtherData) {
  const std::string doc = trace_to_timeline({}, ns_cal(), /*dropped=*/17);
  EXPECT_NE(doc.find("\"dropped_events\":17"), std::string::npos);
}

TEST(ObsTimeline, RawDumpFormRoundTrips) {
  std::vector<trace_event> events;
  events.push_back(ev(123, trace_kind::enq_publish, 0, 1));
  events.push_back(ev(456, trace_kind::enq_complete, 0, 1));

  const std::string raw = dump_trace_jsonl(events, 1e9, 3, "test");
  // Header line + one line per event.
  EXPECT_EQ(count_of(raw, "\n"), 3u);
  EXPECT_NE(raw.find("\"kpq_trace_raw\":1"), std::string::npos);
  EXPECT_NE(raw.find("\"dropped\":3"), std::string::npos);
  EXPECT_NE(raw.find("\"reason\":\"test\""), std::string::npos);
  EXPECT_NE(raw.find("\"kind_name\":\"enq_publish\""), std::string::npos);
  EXPECT_NE(raw.find("\"ts\":456"), std::string::npos);
}

TEST(ObsTimeline, RealDrainedTraceConverts) {
  // Feed the converter a drain from a real domain (owner-recorded events)
  // rather than synthetic structs, so field conventions stay honest.
  trace_domain domain(2, 1024);
  domain.record(0, trace_kind::enq_publish, 1, 0);
  domain.record(0, trace_kind::enq_complete, 1, 0);
  domain.record(1, trace_kind::deq_publish, 2, 0);
  domain.record(1, trace_kind::deq_complete, 2, 1);

  std::uint64_t dropped = 0;
  const std::vector<trace_event> events = domain.drain_all(&dropped);
  ASSERT_EQ(events.size(), 4u);

  const tick_calibration cal = calibrate_ticks(2'000'000);
  const std::string doc = trace_to_timeline(events, cal, dropped);
  EXPECT_NE(doc.find("\"kpqTraceSchema\":\"kpq-trace-1\""), std::string::npos);
  EXPECT_EQ(count_of(doc, "\"ph\":\"X\""), 2u);
}

}  // namespace
}  // namespace kpq::obs
