// Tests for the coroutine queue front-end: async_mpmc awaitables (fast
// path, suspend/resume, deadlines), bounded co_enqueue backpressure,
// co_select multiplexing, the sharded composition, and a mixed
// threads-and-coroutines run cross-checked by the linearizability checker.
#include "async/async_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "async/select.hpp"
#include "async/task.hpp"
#include "core/wf_queue.hpp"
#include "scale/async_shards.hpp"
#include "storage/bounded_wf_queue.hpp"
#include "sync/thread_registry.hpp"
#include "verify/history.hpp"
#include "verify/lin_checker.hpp"

namespace kpq::async {
namespace {

using namespace std::chrono_literals;

using async_wf = async_mpmc<wf_queue_opt<std::uint64_t>>;
using async_bounded = async_mpmc<bounded_wf_queue<std::uint64_t>>;

TEST(AsyncQueue, CoDequeueFastPathCompletesWithoutSuspending) {
  async_wf q(4);
  q.enqueue(7);
  auto t = q.co_dequeue();
  t.start();
  ASSERT_TRUE(t.done());  // await_ready hit: never parked
  EXPECT_EQ(t.take(), std::optional<std::uint64_t>(7));
  EXPECT_EQ(q.hub().stats().parks, 0u);
}

TEST(AsyncQueue, CoDequeueSuspendsThenResumesInlineOnProducerNotify) {
  async_wf q(4);  // no executor: the notifier resumes the coroutine inline
  auto t = q.co_dequeue();
  t.start();
  ASSERT_FALSE(t.done());  // parked on the hub
  EXPECT_TRUE(q.hub().maybe_waiters());
  std::thread producer([&] { q.enqueue(99); });
  producer.join();  // enqueue's notify ran the continuation on its thread
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.take(), std::optional<std::uint64_t>(99));
  EXPECT_EQ(q.hub().stats().parks, 1u);
  EXPECT_EQ(q.hub().stats().resumes, 1u);
}

TEST(AsyncQueue, CloseDrainsThenCompletesEmpty) {
  async_wf q(4);
  q.enqueue(1);
  q.enqueue(2);
  q.close();
  auto a = q.co_dequeue();
  a.start();
  auto b = q.co_dequeue();
  b.start();
  auto c = q.co_dequeue();
  c.start();
  EXPECT_EQ(a.take(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(b.take(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(c.take(), std::nullopt);  // closed-and-drained
}

task<void> consume_all(async_wf& q, std::vector<std::uint64_t>& out,
                       std::atomic<std::uint64_t>& total) {
  for (;;) {
    auto v = co_await q.co_dequeue();
    if (!v) co_return;
    out.push_back(*v);
    total.fetch_add(1, std::memory_order_relaxed);
  }
}

TEST(AsyncQueue, MultiCoroutineFanInDrainsEverythingExactlyOnce) {
  constexpr int kConsumers = 8;
  constexpr std::uint64_t kItems = 2000;
  async_wf q(8);
  event_loop loop;
  q.set_executor(&loop);

  std::vector<std::vector<std::uint64_t>> got(kConsumers);
  std::atomic<std::uint64_t> total{0};
  for (int c = 0; c < kConsumers; ++c) {
    loop.spawn(consume_all(q, got[c], total));
  }
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) q.enqueue(i);
    q.close();
  });
  loop.run();  // returns when every consumer saw closed-and-drained
  producer.join();

  std::multiset<std::uint64_t> all;
  for (const auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), kItems);
  EXPECT_EQ(total.load(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(all.count(i), 1u) << "value " << i;
  }
}

task<void> co_enqueue_one(async_bounded& q, std::uint64_t v, bool& admitted) {
  admitted = co_await q.co_enqueue(v);
}

task<void> drain_later(event_loop& loop, async_bounded& q, std::size_t n) {
  co_await loop.sleep_for(5ms);
  // Drain EVERYTHING that was enqueued: live bytes only fall when whole
  // segments reclaim, so partial drains may free no admission room at all.
  for (std::size_t i = 0; i < n; ++i) {
    (void)co_await q.co_dequeue();  // notifying drain frees room
    // Unwind the resume chain periodically: each fast-path co_await
    // completes by symmetric transfer, which TSan instrumentation keeps
    // from being a tail call — an unbounded inline run would grow the
    // stack per item (docs/ASYNC.md §3, cooperative chunking).
    if ((i & 0xff) == 0xff) co_await loop.yield();
  }
}

TEST(AsyncQueue, BoundedCoEnqueueParksOnBackpressureThenAdmits) {
  // Fill-to-ceiling then full drain is ~100k ops; TSan makes each one
  // ~20x slower, so shrink the ceiling there to stay inside the ctest
  // timeout (the parking/admission logic being tested is size-independent).
#if defined(__SANITIZE_THREAD__)
  bounded_config cfg{768u << 10, full_policy::block};
#else
  bounded_config cfg{3u << 20, full_policy::block};
#endif
  cfg.block_recheck = 2ms;
  async_bounded q(8, cfg);
  event_loop loop;
  q.set_executor(&loop);

  std::uint64_t n = 0;
  while (q.queue().try_enqueue_nowait(n, this_thread_id())) ++n;
  ASSERT_GT(n, 0u);

  bool admitted = false;
  loop.spawn(co_enqueue_one(q, n, admitted));
  EXPECT_FALSE(admitted);  // suspended at the ceiling
  EXPECT_TRUE(q.queue().room_hub().maybe_waiters());
  loop.spawn(drain_later(loop, q, n));
  loop.run();
  EXPECT_TRUE(admitted);
  EXPECT_GE(q.queue().room_hub().stats().parks, 1u);
  EXPECT_EQ(q.queue().stats().admitted, n + 1);
}

task<void> co_dequeue_for_into(async_wf& q, std::chrono::milliseconds d,
                               std::optional<std::uint64_t>& out) {
  out = co_await q.co_dequeue_for(d);
}

task<void> co_dequeue_for_timed(
    async_wf& q, std::chrono::milliseconds d,
    std::optional<std::uint64_t>& out,
    std::chrono::steady_clock::time_point& served_at) {
  out = co_await q.co_dequeue_for(d);
  served_at = std::chrono::steady_clock::now();
}

TEST(AsyncQueue, CoDequeueForTimesOutEmptyHanded) {
  async_wf q(4);
  event_loop loop;
  q.set_executor(&loop);
  std::optional<std::uint64_t> out = std::optional<std::uint64_t>(1234);
  // t0 BEFORE spawn: spawn runs the coroutine inline up to its first
  // suspension, which stamps the deadline — under a sanitizer that setup
  // can take several ms, and t0-after-spawn would overstate the wait.
  const auto t0 = std::chrono::steady_clock::now();
  loop.spawn(co_dequeue_for_into(q, 20ms, out));
  loop.run();
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(out, std::nullopt);
  EXPECT_GE(dt, 19ms);
  EXPECT_FALSE(q.hub().maybe_waiters());  // timed-out waiter fully delisted
}

TEST(AsyncQueue, CoDequeueForReturnsEarlyWhenServed) {
  async_wf q(4);
  event_loop loop;
  q.set_executor(&loop);
  std::optional<std::uint64_t> out;
  auto served_at = std::chrono::steady_clock::time_point::max();
  // NOTE: run() itself drains the (now-useless) deadline timer before it
  // returns — the TASK completes early, the loop exits at the deadline.
  loop.spawn(co_dequeue_for_timed(q, 2s, out, served_at));
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    q.enqueue(55);
  });
  const auto t0 = std::chrono::steady_clock::now();
  loop.run();
  producer.join();
  EXPECT_EQ(out, std::optional<std::uint64_t>(55));
  EXPECT_LT(served_at - t0, 1s);  // served on arrival, not at the deadline
}

task<void> select_all(std::vector<async_wf*> qs,
                      std::vector<std::pair<std::uint64_t, std::size_t>>& out) {
  for (;;) {
    auto r = co_await co_select<wf_queue_opt<std::uint64_t>>(qs);
    if (!r.value) {
      EXPECT_FALSE(r.open);  // only terminates when every queue closed
      co_return;
    }
    out.emplace_back(*r.value, r.index);
  }
}

TEST(AsyncQueue, SelectMultiplexesTwoQueuesAndReportsSource) {
  async_wf q0(4), q1(4);
  event_loop loop;
  q0.set_executor(&loop);
  q1.set_executor(&loop);
  std::vector<std::pair<std::uint64_t, std::size_t>> out;
  loop.spawn(select_all({&q0, &q1}, out));
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < 50; ++i) {
      (i % 2 ? q1 : q0).enqueue(i);
    }
    q0.close();
    q1.close();
  });
  loop.run();
  producer.join();
  ASSERT_EQ(out.size(), 50u);
  std::multiset<std::uint64_t> seen;
  for (auto [v, idx] : out) {
    seen.insert(v);
    EXPECT_EQ(idx, v % 2) << "value " << v << " served by wrong shard";
  }
  EXPECT_EQ(seen.size(), 50u);
}

task<void> drain_any(async_sharded<wf_queue_opt<std::uint64_t>>& s,
                     std::multiset<std::uint64_t>& out) {
  for (;;) {
    auto r = co_await s.co_dequeue_any();
    if (!r.value) co_return;
    EXPECT_LT(r.index, s.shard_count());
    out.insert(*r.value);
  }
}

TEST(AsyncQueue, ShardedCoDequeueAnyDrainsAllShards) {
  constexpr std::uint64_t kItems = 600;
  async_sharded<wf_queue_opt<std::uint64_t>> shards(3, 8);
  event_loop loop;
  shards.set_executor(&loop);
  std::multiset<std::uint64_t> out;
  loop.spawn(drain_any(shards, out));
  std::thread producer([&] {
    // Spread across shards explicitly (round robin over shard index).
    for (std::uint64_t i = 0; i < kItems; ++i) {
      shards.shard(i % 3).enqueue(i);
    }
    shards.close_all();
  });
  loop.run();
  producer.join();
  EXPECT_EQ(out.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) EXPECT_EQ(out.count(i), 1u);
}

// Mixed mode: plain producer THREADS, coroutine consumers, one history.
// The front-end must preserve the inner queue's linearizability — recorded
// invocation/response windows around enqueue() and co_dequeue must admit a
// legal sequential FIFO witness.
task<void> recorded_consume(async_wf& q, history_recorder& h,
                            std::uint32_t log_tid) {
  for (;;) {
    // All consumer coroutines run on the loop thread, so one log bucket is
    // written single-threadedly even across suspensions.
    auto sc = h.begin(log_tid, op_kind::deq);
    auto v = co_await q.co_dequeue();
    if (v) {
      sc.set_value(*v);
      sc.commit();
    } else {
      sc.set_empty();
      sc.commit();
      co_return;
    }
  }
}

TEST(AsyncQueue, MixedThreadAndCoroutineHistoryIsLinearizable) {
  constexpr std::uint32_t kProducers = 2;
  constexpr std::uint64_t kPerProducer = 4;  // checker wants tiny histories
  async_wf q(8);
  event_loop loop;
  q.set_executor(&loop);
  history_recorder h(8);

  // Consumers share the loop thread; give each its own log bucket anyway.
  loop.spawn(recorded_consume(q, h, 6));
  loop.spawn(recorded_consume(q, h, 7));

  std::atomic<std::uint32_t> remaining{kProducers};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::uint32_t tid = this_thread_id();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = p * kPerProducer + i;
        auto sc = h.begin(p, op_kind::enq, v);
        q.enqueue(v, tid);
        sc.commit();
      }
      if (remaining.fetch_sub(1) == 1) q.close();
    });
  }
  loop.run();
  for (auto& t : producers) t.join();

  auto events = h.collect();
  // 8 enqueues + 8 successful dequeues + 2 empty completions.
  EXPECT_EQ(events.size(), 2 * kProducers * kPerProducer + 2);
  EXPECT_TRUE(lin_checker::is_linearizable(std::move(events)));
}

}  // namespace
}  // namespace kpq::async
