// Compile-time contract: every queue in the library models the mpmc_queue
// concept (and the auto-tid refinement where applicable), and the policy
// types model the reclaimer concept. Breakage here is an API regression
// even if no runtime test notices.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "baseline/locked_queues.hpp"
#include "baseline/ms_queue.hpp"
#include "baseline/universal_queue.hpp"
#include "core/blocking_adapter.hpp"
#include "core/queue_concepts.hpp"
#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/reclaimer_concepts.hpp"
#include "storage/bounded_wf_queue.hpp"
#include "storage/heap_node_storage.hpp"
#include "storage/segment_storage.hpp"
#include "storage/storage_concepts.hpp"

namespace kpq {
namespace {

// -------- queues model mpmc_queue (+ auto-tid convenience overloads)

static_assert(mpmc_queue_autotid<wf_queue_base<std::uint64_t>>);
static_assert(mpmc_queue_autotid<wf_queue_opt1<std::uint64_t>>);
static_assert(mpmc_queue_autotid<wf_queue_opt2<std::uint64_t>>);
static_assert(mpmc_queue_autotid<wf_queue_opt<std::uint64_t>>);
static_assert(mpmc_queue_autotid<wf_queue_opt<std::string>>);
static_assert(
    mpmc_queue_autotid<wf_queue<int, help_chunk<2>, cas_phase, epoch_domain>>);
static_assert(mpmc_queue_autotid<wf_queue_fps<std::uint64_t>>);
static_assert(mpmc_queue_autotid<ms_queue<std::uint64_t>>);
static_assert(mpmc_queue_autotid<ms_queue<std::uint64_t, leaky_domain>>);
static_assert(mpmc_queue<two_lock_queue<std::uint64_t>>);
static_assert(mpmc_queue<mutex_queue<std::uint64_t>>);
static_assert(mpmc_queue_autotid<universal_queue<std::uint64_t>>);

// -------- reclaimers model reclaimer_domain

static_assert(reclaimer_domain<hp_domain>);
static_assert(reclaimer_domain<epoch_domain>);
static_assert(reclaimer_domain<leaky_domain>);

// -------- storages model node_storage_for, against every reclaimer

static_assert(node_storage_for<heap_node_storage<std::uint64_t>, hp_domain>);
static_assert(node_storage_for<heap_node_storage<std::string>, epoch_domain>);
static_assert(node_storage_for<segment_storage<std::uint64_t>, hp_domain>);
static_assert(node_storage_for<segment_storage<std::uint64_t>, epoch_domain>);
static_assert(node_storage_for<segment_storage<std::uint64_t>, leaky_domain>);
static_assert(
    node_storage_for<segment_storage<std::string, 8192>, hp_domain>);

// -------- segment-storage queue variants and the bounded queue still model
// the mpmc concepts (the whole point of making storage a policy)

static_assert(mpmc_queue_autotid<wf_queue_base_seg<std::uint64_t>>);
static_assert(mpmc_queue_autotid<wf_queue_opt_seg<std::uint64_t>>);
static_assert(mpmc_queue_autotid<wf_queue_fps_seg<std::uint64_t>>);
static_assert(mpmc_queue_autotid<wf_queue_opt_seg<std::string>>);
static_assert(mpmc_queue_autotid<bounded_wf_queue<std::uint64_t>>);
static_assert(
    mpmc_queue_autotid<bounded_wf_queue<int, wf_queue_base_seg<int>>>);

// -------- value-type requirements are enforced, not just documented

template <typename T>
concept wf_queue_instantiable = requires { typename wf_queue<T>; } &&
                                std::is_default_constructible_v<T> &&
                                std::is_copy_constructible_v<T>;
static_assert(wf_queue_instantiable<int>);
static_assert(wf_queue_instantiable<std::string>);

TEST(Concepts, GenericCodeCompilesAgainstTheConcept) {
  // A tiny generic function constrained on the concept must accept every
  // queue type: exercised here with two structurally different ones.
  auto roundtrip = []<mpmc_queue Q>(Q& q) {
    q.enqueue(typename Q::value_type{7}, 0);
    auto v = q.dequeue(0);
    return v.has_value() && *v == typename Q::value_type{7};
  };
  wf_queue_opt<std::uint64_t> wf(2);
  mutex_queue<std::uint64_t> mx;
  EXPECT_TRUE(roundtrip(wf));
  EXPECT_TRUE(roundtrip(mx));
}

}  // namespace
}  // namespace kpq
