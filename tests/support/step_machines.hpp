// Step machines: the KP queue's operations re-expressed as explicit
// sequences of primitive atomic actions (publish / link CAS / finish-enq /
// stage-0 CAS / deqTid claim / finish-deq), advanced one action per step()
// call from a single OS thread. A scheduler that picks which machine steps
// next has total control over the interleaving — the exhaustive explorer
// (core_interleave_test) enumerates all schedules, the fuzzer
// (core_random_schedule_test) samples long random ones.
//
// Soundness: every step is a sequence of the same atomics the real
// algorithm performs, executed without interleaving inside one step. The
// schedules explored are therefore a subset of real executions (coarser
// granularity can only hide bugs, never invent them), so any violation
// found here is a real algorithm bug.
//
// The machines are templates over the queue type so the same driver checks
// every storage/reclaimer variant (notably segment_storage, see
// core_random_schedule_test). Machines hold raw node pointers ACROSS steps
// without a hazard guard, so the queue's reclaimer must not free memory
// mid-run: hp_domain qualifies in practice (its scan threshold exceeds any
// test's retirement count), and segment variants must use leaky_domain —
// segment retirement scans eagerly and would otherwise recycle a segment a
// machine still points into. (The real-thread stress tests cover eager
// segment reclamation; here the subject is the interleaving space.)
//
// The elastic replay section at the bottom mirrors sharded_queue's
// table-routed operations over step-machine shards, so scan-table publishes
// (grow / shrink / reorder) can be injected at arbitrary schedule points and
// the resulting mixed-table interleavings checked for lost/duplicated items
// (scale_adaptive_test).
//
// Requires tests/support/whitebox.hpp in the same translation unit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/wf_queue.hpp"
#include "scale/adaptive.hpp"
#include "support/whitebox.hpp"
#include "verify/history.hpp"

namespace kpq::testing {

using sm_queue = wf_queue_base<std::uint64_t>;
using sm_node = sm_queue::node_type;
using sm_desc = sm_queue::desc_type;

/// One logical operation advanced one primitive action per step() call.
template <typename Q>
class basic_machine {
 public:
  virtual ~basic_machine() = default;
  virtual bool step(Q& q) = 0;  // true once the operation completed
  bool done = false;
  std::uint64_t inv = 0, res = 0;  // step indexes for history checking
};

template <typename Q>
class basic_enq_machine : public basic_machine<Q> {
  using node_t = typename Q::node_type;
  using desc_t = typename Q::desc_type;

 public:
  basic_enq_machine(std::uint32_t tid, std::uint64_t value)
      : tid_(tid), value_(value) {}

  bool step(Q& q) override {
    using wb = whitebox;
    switch (pc_) {
      case 0: {  // publish (paper lines 62-63)
        const std::int64_t phase = wb::max_phase(q, tid_) + 1;
        node_t* n =
            wb::make_node(q, value_, static_cast<std::int32_t>(tid_), tid_);
        wb::publish(q, tid_, phase, true, true, n);
        pc_ = 1;
        return false;
      }
      case 1: {  // one iteration of the link loop (lines 68-82)
        desc_t* d = wb::state(q, tid_);
        if (!d->pending) {
          pc_ = 2;
          return false;
        }
        node_t* last = wb::tail(q);
        node_t* next = last->next.load();
        if (next == nullptr) {
          node_t* expected = nullptr;
          last->next.compare_exchange_strong(expected, d->node);  // line 74
        } else {
          wb::help_finish_enq(q, tid_);  // line 80
        }
        return false;  // pending check routes us out next step
      }
      case 2: {  // finish (lines 65 / 75)
        wb::help_finish_enq(q, tid_);
        if (wb::state(q, tid_)->pending) {
          pc_ = 1;
          return false;
        }
        return true;
      }
    }
    return true;
  }

 private:
  std::uint32_t tid_;
  std::uint64_t value_;
  int pc_ = 0;
};

template <typename Q>
class basic_deq_machine : public basic_machine<Q> {
  using node_t = typename Q::node_type;
  using desc_t = typename Q::desc_type;

 public:
  explicit basic_deq_machine(std::uint32_t tid) : tid_(tid) {}

  std::optional<std::uint64_t> result;

  bool step(Q& q) override {
    using wb = whitebox;
    switch (pc_) {
      case 0: {  // publish (lines 99-100)
        const std::int64_t phase = wb::max_phase(q, tid_) + 1;
        wb::publish(q, tid_, phase, true, false, nullptr);
        pc_ = 1;
        return false;
      }
      case 1: {  // one iteration of the help_deq loop (lines 110-138)
        desc_t* d = wb::state(q, tid_);
        if (!d->pending) {
          pc_ = 3;
          return false;
        }
        node_t* first = wb::head(q);
        node_t* last = wb::tail(q);
        node_t* next = first->next.load();
        if (first != wb::head(q)) return false;
        if (first == last) {
          if (next == nullptr) {  // empty (lines 116-121)
            desc_t* fresh = wb::make_desc(q, tid_, d->phase, false, false,
                                          static_cast<node_t*>(nullptr));
            wb::swap_state(q, tid_, tid_, d, fresh);
          } else {
            wb::help_finish_enq(q, tid_);  // line 123
          }
          return false;
        }
        if (d->node != first) {  // stage 0 (lines 129-133)
          desc_t* fresh = wb::make_desc(q, tid_, d->phase, true, false, first);
          if (!wb::swap_state(q, tid_, tid_, d, fresh)) return false;
        }
        claimed_ = first;
        pc_ = 2;
        return false;
      }
      case 2: {  // stage 1: the deqTid claim (line 135)
        std::int32_t expected = no_tid;
        claimed_->deq_tid.compare_exchange_strong(
            expected, static_cast<std::int32_t>(tid_));
        pc_ = 21;
        return false;
      }
      case 21: {  // stages 2-3 (line 136)
        wb::help_finish_deq(q, tid_);
        pc_ = wb::state(q, tid_)->pending ? 1 : 3;
        return false;
      }
      case 3: {  // read the outcome (lines 102-107)
        wb::help_finish_deq(q, tid_);
        desc_t* d = wb::state(q, tid_);
        if (d->node != nullptr) result = d->value;
        return true;
      }
    }
    return true;
  }

 private:
  std::uint32_t tid_;
  node_t* claimed_ = nullptr;
  int pc_ = 0;
};

// Concrete types for the default queue, so existing tests keep their names.
using machine = basic_machine<sm_queue>;
using enq_machine = basic_enq_machine<sm_queue>;
using deq_machine = basic_deq_machine<sm_queue>;

struct op_spec {
  bool is_enq;
  std::uint32_t tid;
  std::uint64_t value;  // enq only
};

template <typename Q>
std::unique_ptr<basic_machine<Q>> build_machine_for(const op_spec& s) {
  if (s.is_enq) return std::make_unique<basic_enq_machine<Q>>(s.tid, s.value);
  return std::make_unique<basic_deq_machine<Q>>(s.tid);
}

inline std::unique_ptr<machine> build_machine(const op_spec& s) {
  return build_machine_for<sm_queue>(s);
}

// ----------------------------------------------------------- elastic replay
//
// sharded_queue's elastic routing replayed over step-machine shards, with
// the PRODUCTION table type (kpq::elastic_control / scan_table) as the
// routing source. The driving test publishes new tables between primitive
// steps; an operation snapshots the table pointer once at its start —
// exactly the one acquire load the real enqueue/dequeue performs — so a
// publish lands mid-operation for every op in flight, producing the
// mixed-table executions the adaptation-safety argument is about.

/// Fixed pool of step-machine shards plus the production table publisher.
/// History is recorded per POOL SLOT (like scale_random_schedule_test), so
/// per-shard FIFO/lin checking is oblivious to which table routed each op.
struct elastic_shard_set {
  elastic_control control;
  std::vector<std::unique_ptr<sm_queue>> shards;
  std::vector<std::vector<op_event>> history;

  elastic_shard_set(std::uint32_t capacity, std::uint32_t threads)
      : control(capacity), history(capacity) {
    for (std::uint32_t i = 0; i < capacity; ++i) {
      shards.push_back(std::make_unique<sm_queue>(threads));
    }
  }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(shards.size());
  }
};

/// One elastically-routed sharded operation, one primitive step per step()
/// call. Mirrors sharded_queue::enqueue / ::dequeue with the affinity
/// policy (policy shard = tid % capacity) routed through the scan table
/// held since the operation started.
class elastic_sharded_op {
 public:
  elastic_sharded_op(std::uint32_t tid, bool is_enq, std::uint64_t value,
                     elastic_shard_set& set)
      : tid_(tid), is_enq_(is_enq), value_(value), table_(set.control.table()) {
    const std::uint32_t policy_shard = tid_ % set.capacity();
    home_ = table_->order[policy_shard % table_->active_count];
    cur_ = home_;
    start_inner();
  }

  /// True once the sharded operation completed. `k_` walks the snapshot's
  /// scan positions: 0 = home, then order[k-1] skipping home — the same
  /// loop shape as sharded_queue::dequeue.
  bool step(elastic_shard_set& set, std::uint64_t& clock) {
    if (inner_->step(*set.shards[cur_])) {
      inner_->res = clock++;
      if (is_enq_) {
        set.history[cur_].push_back(
            {op_kind::enq, true, tid_, value_, inner_->inv, inner_->res});
        return true;
      }
      auto* dm = static_cast<deq_machine*>(inner_.get());
      set.history[cur_].push_back({op_kind::deq, dm->result.has_value(), tid_,
                                   dm->result.value_or(0), inner_->inv,
                                   inner_->res});
      if (dm->result.has_value()) {
        result = dm->result;
        return true;
      }
      // Advance to the next pool slot of the snapshot's scan order.
      while (true) {
        if (++k_ > set.capacity()) return true;  // scanned all: empty
        const std::uint32_t s = table_->order[k_ - 1];
        if (s == home_) continue;  // visited first
        cur_ = s;
        break;
      }
      start_inner();
      inner_->inv = clock++;
      return false;
    }
    ++clock;
    return false;
  }

  std::uint64_t& inv() { return inner_->inv; }
  std::optional<std::uint64_t> result;
  const scan_table* table() const { return table_; }

 private:
  void start_inner() {
    if (is_enq_) {
      inner_ = std::make_unique<enq_machine>(tid_, value_);
    } else {
      inner_ = std::make_unique<deq_machine>(tid_);
    }
  }

  std::uint32_t tid_;
  bool is_enq_;
  std::uint64_t value_;
  const scan_table* table_;  // snapshot held for the whole operation
  std::uint32_t home_ = 0;
  std::uint32_t cur_ = 0;
  std::uint32_t k_ = 0;  // scan position within the snapshot
  std::unique_ptr<machine> inner_;
};

}  // namespace kpq::testing
