// Step machines: the KP queue's operations re-expressed as explicit
// sequences of primitive atomic actions (publish / link CAS / finish-enq /
// stage-0 CAS / deqTid claim / finish-deq), advanced one action per step()
// call from a single OS thread. A scheduler that picks which machine steps
// next has total control over the interleaving — the exhaustive explorer
// (core_interleave_test) enumerates all schedules, the fuzzer
// (core_random_schedule_test) samples long random ones.
//
// Soundness: every step is a sequence of the same atomics the real
// algorithm performs, executed without interleaving inside one step. The
// schedules explored are therefore a subset of real executions (coarser
// granularity can only hide bugs, never invent them), so any violation
// found here is a real algorithm bug.
//
// Requires tests/support/whitebox.hpp in the same translation unit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/wf_queue.hpp"
#include "support/whitebox.hpp"

namespace kpq::testing {

using sm_queue = wf_queue_base<std::uint64_t>;
using sm_node = sm_queue::node_type;
using sm_desc = sm_queue::desc_type;

/// One logical operation advanced one primitive action per step() call.
class machine {
 public:
  virtual ~machine() = default;
  virtual bool step(sm_queue& q) = 0;  // true once the operation completed
  bool done = false;
  std::uint64_t inv = 0, res = 0;  // step indexes for history checking
};

class enq_machine : public machine {
 public:
  enq_machine(std::uint32_t tid, std::uint64_t value)
      : tid_(tid), value_(value) {}

  bool step(sm_queue& q) override {
    using wb = whitebox;
    switch (pc_) {
      case 0: {  // publish (paper lines 62-63)
        const std::int64_t phase = wb::max_phase(q, tid_) + 1;
        sm_node* n = wb::make_node(q, value_, static_cast<std::int32_t>(tid_));
        wb::publish(q, tid_, phase, true, true, n);
        pc_ = 1;
        return false;
      }
      case 1: {  // one iteration of the link loop (lines 68-82)
        sm_desc* d = wb::state(q, tid_);
        if (!d->pending) {
          pc_ = 2;
          return false;
        }
        sm_node* last = wb::tail(q);
        sm_node* next = last->next.load();
        if (next == nullptr) {
          sm_node* expected = nullptr;
          last->next.compare_exchange_strong(expected, d->node);  // line 74
        } else {
          wb::help_finish_enq(q, tid_);  // line 80
        }
        return false;  // pending check routes us out next step
      }
      case 2: {  // finish (lines 65 / 75)
        wb::help_finish_enq(q, tid_);
        if (wb::state(q, tid_)->pending) {
          pc_ = 1;
          return false;
        }
        return true;
      }
    }
    return true;
  }

 private:
  std::uint32_t tid_;
  std::uint64_t value_;
  int pc_ = 0;
};

class deq_machine : public machine {
 public:
  explicit deq_machine(std::uint32_t tid) : tid_(tid) {}

  std::optional<std::uint64_t> result;

  bool step(sm_queue& q) override {
    using wb = whitebox;
    switch (pc_) {
      case 0: {  // publish (lines 99-100)
        const std::int64_t phase = wb::max_phase(q, tid_) + 1;
        wb::publish(q, tid_, phase, true, false, nullptr);
        pc_ = 1;
        return false;
      }
      case 1: {  // one iteration of the help_deq loop (lines 110-138)
        sm_desc* d = wb::state(q, tid_);
        if (!d->pending) {
          pc_ = 3;
          return false;
        }
        sm_node* first = wb::head(q);
        sm_node* last = wb::tail(q);
        sm_node* next = first->next.load();
        if (first != wb::head(q)) return false;
        if (first == last) {
          if (next == nullptr) {  // empty (lines 116-121)
            sm_desc* fresh = wb::make_desc(q, tid_, d->phase, false, false,
                                           static_cast<sm_node*>(nullptr));
            wb::swap_state(q, tid_, tid_, d, fresh);
          } else {
            wb::help_finish_enq(q, tid_);  // line 123
          }
          return false;
        }
        if (d->node != first) {  // stage 0 (lines 129-133)
          sm_desc* fresh = wb::make_desc(q, tid_, d->phase, true, false, first);
          if (!wb::swap_state(q, tid_, tid_, d, fresh)) return false;
        }
        claimed_ = first;
        pc_ = 2;
        return false;
      }
      case 2: {  // stage 1: the deqTid claim (line 135)
        std::int32_t expected = no_tid;
        claimed_->deq_tid.compare_exchange_strong(
            expected, static_cast<std::int32_t>(tid_));
        pc_ = 21;
        return false;
      }
      case 21: {  // stages 2-3 (line 136)
        wb::help_finish_deq(q, tid_);
        pc_ = wb::state(q, tid_)->pending ? 1 : 3;
        return false;
      }
      case 3: {  // read the outcome (lines 102-107)
        wb::help_finish_deq(q, tid_);
        sm_desc* d = wb::state(q, tid_);
        if (d->node != nullptr) result = d->value;
        return true;
      }
    }
    return true;
  }

 private:
  std::uint32_t tid_;
  sm_node* claimed_ = nullptr;
  int pc_ = 0;
};

struct op_spec {
  bool is_enq;
  std::uint32_t tid;
  std::uint64_t value;  // enq only
};

inline std::unique_ptr<machine> build_machine(const op_spec& s) {
  if (s.is_enq) return std::make_unique<enq_machine>(s.tid, s.value);
  return std::make_unique<deq_machine>(s.tid);
}

}  // namespace kpq::testing
