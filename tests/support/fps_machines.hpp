// Step machines for the fast-path/slow-path queue (wf_queue_fps), in the
// style of step_machines.hpp: every primitive action of the fast MS-style
// path and of the slow announce-and-help path is one step, so a scheduler
// can interleave fast claims against slow claims at will — the exact races
// the fps design must survive.
//
// Requires tests/support/whitebox.hpp in the same translation unit, plus
// the fps-specific accessors below.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/wf_queue_fps.hpp"
#include "support/whitebox.hpp"

namespace kpq::testing {

using fq = wf_queue_fps<std::uint64_t>;
using fq_node = fq::node_type;
using fq_desc = fq::desc_type;

/// Alias: all fps access goes through the (friended) generic whitebox —
/// the member names are shared with the base queue, and bump_phase is the
/// one fps-specific accessor.
using fps_access = whitebox;

class fps_machine {
 public:
  virtual ~fps_machine() = default;
  virtual bool step(fq& q) = 0;
  bool done = false;
  std::uint64_t inv = 0, res = 0;
};

/// Fast-path enqueue: link, then fix tail. No announce.
class fast_enq_machine : public fps_machine {
 public:
  fast_enq_machine(std::uint32_t tid, std::uint64_t value)
      : tid_(tid), value_(value) {}

  bool step(fq& q) override {
    using wb = whitebox;
    switch (pc_) {
      case 0: {  // allocate; fast nodes carry enq_tid == -1
        node_ = wb::make_node(q, value_, no_tid);
        pc_ = 1;
        return false;
      }
      case 1: {  // one link attempt
        fq_node* last = wb::tail(q);
        fq_node* next = last->next.load();
        if (next == nullptr) {
          fq_node* expected = nullptr;
          if (last->next.compare_exchange_strong(expected, node_)) {
            pc_ = 2;
          }
        } else {
          fps_access::help_finish_enq(q, tid_);
        }
        return false;
      }
      case 2: {  // fix tail
        fps_access::help_finish_enq(q, tid_);
        return true;
      }
    }
    return true;
  }

 private:
  std::uint32_t tid_;
  std::uint64_t value_;
  fq_node* node_ = nullptr;
  int pc_ = 0;
};

/// Fast-path dequeue: validate, read value, claim deqTid with the fast
/// marker, finish. Retries forever (the bounded-tries fallback is a
/// performance feature, not needed for these closed scenarios).
class fast_deq_machine : public fps_machine {
 public:
  explicit fast_deq_machine(std::uint32_t tid) : tid_(tid) {}

  std::optional<std::uint64_t> result;

  bool step(fq& q) override {
    using wb = whitebox;
    switch (pc_) {
      case 0: {  // one observation + claim attempt
        fq_node* first = wb::head(q);
        fq_node* last = wb::tail(q);
        fq_node* next = first->next.load();
        if (first != wb::head(q)) return false;
        if (first == last) {
          if (next == nullptr) {
            result = std::nullopt;  // empty
            return true;
          }
          fps_access::help_finish_enq(q, tid_);
          return false;
        }
        value_ = next->value;
        std::int32_t expected = no_tid;
        if (first->deq_tid.compare_exchange_strong(
                expected, fq::fast_claim_base +
                              static_cast<std::int32_t>(tid_))) {
          pc_ = 1;
        } else {
          fps_access::help_finish_deq(q, tid_);  // finish whoever claimed
        }
        return false;
      }
      case 1: {  // finish our own claim
        fps_access::help_finish_deq(q, tid_);
        result = value_;
        return true;
      }
    }
    return true;
  }

 private:
  std::uint32_t tid_;
  std::uint64_t value_ = 0;
  int pc_ = 0;
};

/// Slow-path dequeue: announce with a phase, then iterate the help_deq body
/// one primitive at a time (same decomposition as step_machines.hpp).
class slow_deq_machine : public fps_machine {
 public:
  explicit slow_deq_machine(std::uint32_t tid) : tid_(tid) {}

  std::optional<std::uint64_t> result;

  bool step(fq& q) override {
    using wb = whitebox;
    switch (pc_) {
      case 0: {
        const std::int64_t phase = fps_access::bump_phase(q);
        wb::publish(q, tid_, phase, true, false, nullptr);
        pc_ = 1;
        return false;
      }
      case 1: {
        fq_desc* d = wb::state(q, tid_);
        if (!d->pending) {
          pc_ = 3;
          return false;
        }
        fq_node* first = wb::head(q);
        fq_node* last = wb::tail(q);
        fq_node* next = first->next.load();
        if (first != wb::head(q)) return false;
        if (first == last) {
          if (next == nullptr) {
            fq_desc* fresh = wb::make_desc(q, tid_, d->phase, false, false,
                                           static_cast<fq_node*>(nullptr));
            wb::swap_state(q, tid_, tid_, d, fresh);
          } else {
            fps_access::help_finish_enq(q, tid_);
          }
          return false;
        }
        if (d->node != first) {
          fq_desc* fresh = wb::make_desc(q, tid_, d->phase, true, false, first);
          if (!wb::swap_state(q, tid_, tid_, d, fresh)) return false;
        }
        claimed_ = first;
        pc_ = 2;
        return false;
      }
      case 2: {  // slow claim: plain tid
        std::int32_t expected = no_tid;
        claimed_->deq_tid.compare_exchange_strong(
            expected, static_cast<std::int32_t>(tid_));
        pc_ = 21;
        return false;
      }
      case 21: {
        fps_access::help_finish_deq(q, tid_);
        pc_ = wb::state(q, tid_)->pending ? 1 : 3;
        return false;
      }
      case 3: {
        fps_access::help_finish_deq(q, tid_);
        fq_desc* d = wb::state(q, tid_);
        if (d->node != nullptr) result = d->value;
        return true;
      }
    }
    return true;
  }

 private:
  std::uint32_t tid_;
  fq_node* claimed_ = nullptr;
  int pc_ = 0;
};

/// Slow-path enqueue.
class slow_enq_machine : public fps_machine {
 public:
  slow_enq_machine(std::uint32_t tid, std::uint64_t value)
      : tid_(tid), value_(value) {}

  bool step(fq& q) override {
    using wb = whitebox;
    switch (pc_) {
      case 0: {
        const std::int64_t phase = fps_access::bump_phase(q);
        fq_node* n =
            wb::make_node(q, value_, static_cast<std::int32_t>(tid_));
        wb::publish(q, tid_, phase, true, true, n);
        pc_ = 1;
        return false;
      }
      case 1: {
        fq_desc* d = wb::state(q, tid_);
        if (!d->pending) {
          pc_ = 2;
          return false;
        }
        fq_node* last = wb::tail(q);
        fq_node* next = last->next.load();
        if (next == nullptr) {
          fq_node* expected = nullptr;
          last->next.compare_exchange_strong(expected, d->node);
        } else {
          fps_access::help_finish_enq(q, tid_);
        }
        return false;
      }
      case 2: {
        fps_access::help_finish_enq(q, tid_);
        if (wb::state(q, tid_)->pending) {
          pc_ = 1;
          return false;
        }
        return true;
      }
    }
    return true;
  }

 private:
  std::uint32_t tid_;
  std::uint64_t value_;
  int pc_ = 0;
};

struct fps_op_spec {
  enum class kind { fast_enq, fast_deq, slow_enq, slow_deq };
  kind k;
  std::uint32_t tid;
  std::uint64_t value = 0;
};

inline std::unique_ptr<fps_machine> build_fps_machine(const fps_op_spec& s) {
  switch (s.k) {
    case fps_op_spec::kind::fast_enq:
      return std::make_unique<fast_enq_machine>(s.tid, s.value);
    case fps_op_spec::kind::fast_deq:
      return std::make_unique<fast_deq_machine>(s.tid);
    case fps_op_spec::kind::slow_enq:
      return std::make_unique<slow_enq_machine>(s.tid, s.value);
    case fps_op_spec::kind::slow_deq:
      return std::make_unique<slow_deq_machine>(s.tid);
  }
  return nullptr;
}

}  // namespace kpq::testing
