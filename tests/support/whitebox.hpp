// Shared white-box driver for the KP queue tests (scenario replays,
// interleaving exploration, structural audits). kpq::testing::whitebox is
// declared as a friend by wf_queue; this header provides its one definition
// for test targets. Include it from at most one .cpp per binary.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/wf_queue.hpp"
#include "verify/queue_auditor.hpp"

namespace kpq::testing {

struct whitebox {
  template <typename Q>
  static typename Q::node_type* head(Q& q) {
    return q.head_.load();
  }
  template <typename Q>
  static typename Q::node_type* tail(Q& q) {
    return q.tail_.load();
  }
  template <typename Q>
  static typename Q::desc_type* state(Q& q, std::uint32_t i) {
    return q.state_[i]->load();
  }
  template <typename Q>
  static typename Q::node_type* make_node(Q& q, std::uint64_t v,
                                          std::int32_t etid,
                                          std::uint32_t alloc_tid = 0) {
    return q.alloc_node(alloc_tid, v, etid);
  }
  template <typename Q>
  static std::int64_t max_phase(Q& q, std::uint32_t tid) {
    auto g = q.reclaim_.enter(tid);
    return q.max_phase(g);
  }
  template <typename Q>
  static void publish(Q& q, std::uint32_t tid, std::int64_t phase,
                      bool pending, bool enq, typename Q::node_type* node) {
    q.publish(tid, q.pool_.make(tid, phase, pending, enq, node));
  }
  template <typename Q, typename... Args>
  static typename Q::desc_type* make_desc(Q& q, std::uint32_t my,
                                          Args&&... args) {
    return q.pool_.make(my, std::forward<Args>(args)...);
  }
  template <typename Q>
  static bool swap_state(Q& q, std::uint32_t tid, std::uint32_t my,
                         typename Q::desc_type* cur,
                         typename Q::desc_type* repl) {
    return q.swap_state(tid, my, cur, repl);
  }
  /// fps only: the shared phase counter.
  template <typename Q>
  static std::int64_t bump_phase(Q& q) {
    return q.phase_counter_->fetch_add(1, std::memory_order_acq_rel);
  }
  template <typename Q>
  static void help_finish_enq(Q& q, std::uint32_t my) {
    auto g = q.reclaim_.enter(my);
    q.help_finish_enq(my, g);
  }
  template <typename Q>
  static void help_finish_deq(Q& q, std::uint32_t my) {
    auto g = q.reclaim_.enter(my);
    q.help_finish_deq(my, g);
  }
  template <typename Q>
  static void help_enq(Q& q, std::uint32_t tid, std::int64_t ph,
                       std::uint32_t my) {
    auto g = q.reclaim_.enter(my);
    q.help_enq(tid, ph, g, my);
  }
  template <typename Q>
  static void help_deq(Q& q, std::uint32_t tid, std::int64_t ph,
                       std::uint32_t my) {
    auto g = q.reclaim_.enter(my);
    q.help_deq(tid, ph, g, my);
  }

  /// Snapshot for the structural auditor (quiescence required).
  template <typename Q>
  static audit_view<typename Q::node_type, typename Q::desc_type> view(Q& q) {
    audit_view<typename Q::node_type, typename Q::desc_type> v;
    v.head = q.head_.load();
    v.tail = q.tail_.load();
    v.max_threads = q.max_threads();
    for (std::uint32_t i = 0; i < q.max_threads(); ++i) {
      v.state.push_back(q.state_[i]->load());
    }
    return v;
  }
};

}  // namespace kpq::testing
