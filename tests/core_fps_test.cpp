// Tests for the fast-path/slow-path wait-free queue (wf_queue_fps).
//
// Beyond re-running the generic sequential/stress batteries (the typed
// suites in core_wfqueue_test / core_stress_test include fps), this file
// targets the path INTERPLAY: pure-slow configurations, fast/slow races,
// helping across paths, and the frozen-thread progress property on the
// slow path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/wf_queue_fps.hpp"
#include "harness/workload.hpp"
#include "sync/spin_barrier.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"

namespace kpq {
namespace {

struct slow_only_options : fps_options {
  static constexpr std::uint32_t max_tries = 0;  // always announce
};
struct one_try_options : fps_options {
  static constexpr std::uint32_t max_tries = 1;
};

using fps_queue = wf_queue_fps<std::uint64_t>;
using slow_queue = wf_queue_fps<std::uint64_t, hp_domain, slow_only_options>;

template <typename Q>
class FpsVariantTest : public ::testing::Test {};
using FpsTypes =
    ::testing::Types<fps_queue, slow_queue,
                     wf_queue_fps<std::uint64_t, hp_domain, one_try_options>>;
TYPED_TEST_SUITE(FpsVariantTest, FpsTypes);

TYPED_TEST(FpsVariantTest, SequentialFifoContract) {
  TypeParam q(4);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  for (std::uint64_t i = 0; i < 200; ++i) q.enqueue(i, i % 4);
  EXPECT_EQ(q.unsafe_size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    auto v = q.dequeue((i + 1) % 4);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  EXPECT_TRUE(q.empty_hint(0));
}

TYPED_TEST(FpsVariantTest, ConcurrentHistoryIsFifoConsistent) {
  constexpr std::uint32_t kThreads = 4;
  TypeParam q(kThreads);
  history_recorder rec(kThreads);
  spin_barrier barrier(kThreads);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      fast_rng rng = thread_stream(0xF9, tid);
      std::uint64_t seq = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 1500; ++i) {
        if (rng.coin()) {
          const std::uint64_t v = encode_value(tid, seq++);
          auto s = rec.begin(tid, op_kind::enq, v);
          q.enqueue(v, tid);
          s.commit();
        } else {
          auto s = rec.begin(tid, op_kind::deq);
          auto r = q.dequeue(tid);
          if (r.has_value()) {
            s.set_value(*r);
          } else {
            s.set_empty();
          }
          s.commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::uint64_t> drained;
  while (auto v = q.dequeue(0)) drained.push_back(*v);
  auto r = fifo_checker::check(rec.collect(), drained);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(FpsInterplay, SlowOnlyAndFastOnlyQueuesInteroperateWithThemselves) {
  // A queue populated entirely by slow-path enqueues must drain correctly
  // through fast-path dequeues, and vice versa — exercised by mixing the
  // two configurations' code paths within one queue via thread phases.
  fps_queue q(2);
  // Phase 1: default fast enqueues.
  for (std::uint64_t i = 0; i < 50; ++i) q.enqueue(i, 0);
  // Phase 2: dequeues (fast path claims with the fast marker).
  for (std::uint64_t i = 0; i < 50; ++i) {
    auto v = q.dequeue(1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(FpsInterplay, SlowEnqueuesVisibleToFastDequeues) {
  slow_queue q(2);  // every enqueue announces
  q.enqueue(7, 0);
  q.enqueue(8, 0);
  EXPECT_EQ(q.dequeue(1), std::optional<std::uint64_t>(7));
  EXPECT_EQ(q.dequeue(1), std::optional<std::uint64_t>(8));
}

// ------------------------------------------- frozen slow-path progress

std::atomic<std::int64_t> frozen_tid{-1};
std::atomic<bool> gate_open{true};
std::atomic<bool> is_frozen{false};

struct freezing_fps_hooks {
  static void after_slow_publish(std::uint32_t tid, bool /*is_enq*/) {
    if (static_cast<std::int64_t>(tid) !=
        frozen_tid.load(std::memory_order_acquire)) {
      return;
    }
    is_frozen.store(true, std::memory_order_release);
    while (!gate_open.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    is_frozen.store(false, std::memory_order_release);
  }
};
struct freezing_slow_options : slow_only_options {
  using hooks = freezing_fps_hooks;
};
using frozen_fps =
    wf_queue_fps<std::uint64_t, hp_domain, freezing_slow_options>;

class FpsProgressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    frozen_tid.store(-1);
    gate_open.store(true);
    is_frozen.store(false);
  }
  void TearDown() override {
    gate_open.store(true);
    frozen_tid.store(-1);
  }
};

TEST_F(FpsProgressTest, PeersCompleteAFrozenSlowEnqueue) {
  frozen_fps q(2);
  gate_open.store(false);
  frozen_tid.store(0);
  std::thread frozen([&] { q.enqueue(42, 0); });
  while (!is_frozen.load()) std::this_thread::yield();

  // Thread 1's operation probes the announce array (help_someone) and must
  // complete the frozen enqueue within at most max_threads operations.
  std::optional<std::uint64_t> v;
  for (int i = 0; i < 4 && !v.has_value(); ++i) v = q.dequeue(1);
  ASSERT_TRUE(v.has_value()) << "peer never helped the frozen slow enqueue";
  EXPECT_EQ(*v, 42u);

  gate_open.store(true);
  frozen.join();
  EXPECT_EQ(q.unsafe_size(), 0u);
}

TEST_F(FpsProgressTest, PeersCompleteAFrozenSlowDequeue) {
  frozen_fps q(2);
  q.enqueue(5, 1);
  q.enqueue(6, 1);

  gate_open.store(false);
  frozen_tid.store(0);
  std::optional<std::uint64_t> got;
  std::thread frozen([&] { got = q.dequeue(0); });
  while (!is_frozen.load()) std::this_thread::yield();

  // Peer operations must eventually execute the frozen dequeue; its own
  // dequeues then see later elements.
  std::vector<std::uint64_t> peer_got;
  for (int i = 0; i < 4; ++i) {
    if (auto v = q.dequeue(1)) peer_got.push_back(*v);
  }
  gate_open.store(true);
  frozen.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 5u) << "frozen dequeue must receive the front element";
  ASSERT_EQ(peer_got.size(), 1u);
  EXPECT_EQ(peer_got[0], 6u);
}

TEST(FpsMemory, BalanceClosesExactly) {
  mem_counters mc;
  {
    fps_queue q(4, &mc);
    spin_barrier barrier(4);
    std::vector<std::thread> workers;
    for (std::uint32_t tid = 0; tid < 4; ++tid) {
      workers.emplace_back([&, tid] {
        barrier.arrive_and_wait();
        for (std::uint64_t i = 0; i < 2000; ++i) {
          q.enqueue(encode_value(tid, i), tid);
          (void)q.dequeue(tid);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(mc.live_objects(), 0);
  EXPECT_EQ(mc.live_bytes(), 0);
}

TEST(FpsReclamation, NodesAreFreedDuringTheRun) {
  fps_queue q(2);
  const auto threshold = q.reclaimer().scan_threshold();
  for (std::uint64_t i = 0; i < threshold * 4; ++i) {
    q.enqueue(i, 0);
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  EXPECT_GT(q.reclaimer().freed_count(), 0u);
}

}  // namespace
}  // namespace kpq
