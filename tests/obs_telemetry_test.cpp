// Telemetry pump: bounded snapshot ring, JSONL/Prometheus side-channels,
// and — the reason this suite runs under TSan in CI — concurrent scrapes
// against worker threads mutating the registered (atomic) counter surfaces.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/residency.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq::obs {
namespace {

std::string tmp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

TEST(ObsTelemetry, ScrapeOnceFillsRingAndFiles) {
  registry reg;
  std::atomic<std::uint64_t> ticks{41};
  reg.add_source("pump.ticks", [&](metrics_snapshot& out) {
    append_value(out, "pump.ticks",
                 static_cast<double>(ticks.load(std::memory_order_relaxed)));
  });

  telemetry_options opts;
  opts.jsonl_path = tmp_path("kpq_telemetry_test.jsonl");
  opts.prom_path = tmp_path("kpq_telemetry_test.prom");
  std::remove(opts.jsonl_path.c_str());
  std::remove(opts.prom_path.c_str());

  telemetry_pump pump(reg, opts);
  pump.scrape_once();
  ticks.store(42);
  pump.scrape_once();

  ASSERT_EQ(pump.scrapes(), 2u);
  const auto recent = pump.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_LE(recent[0].ts_ns, recent[1].ts_ns);  // oldest first
  ASSERT_EQ(recent[1].snap.size(), 1u);
  EXPECT_EQ(recent[1].snap[0].value, 42.0);

  // JSONL: one parseable flat object per scrape, ts_ns leading.
  std::ifstream jf(opts.jsonl_path);
  ASSERT_TRUE(jf.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jf, line)) {
    ++lines;
    const auto kv = parse_flat_json(line);
    ASSERT_EQ(kv.size(), 2u) << line;
    EXPECT_EQ(kv[0].first, "ts_ns");
    EXPECT_EQ(kv[1].first, "pump.ticks");
  }
  EXPECT_EQ(lines, 2u);

  // Prometheus textfile: whole-file rewrite with the sanitized name.
  std::ifstream pf(opts.prom_path);
  ASSERT_TRUE(pf.good());
  std::string prom((std::istreambuf_iterator<char>(pf)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(prom.find("pump_ticks 42"), std::string::npos) << prom;

  std::remove(opts.jsonl_path.c_str());
  std::remove(opts.prom_path.c_str());
}

TEST(ObsTelemetry, RingIsBounded) {
  registry reg;
  telemetry_options opts;
  opts.ring_capacity = 4;
  telemetry_pump pump(reg, opts);
  for (int i = 0; i < 10; ++i) pump.scrape_once();
  EXPECT_EQ(pump.scrapes(), 10u);
  EXPECT_EQ(pump.recent().size(), 4u);
}

TEST(ObsTelemetry, BackgroundPumpScrapesPeriodically) {
  registry reg;
  telemetry_options opts;
  opts.interval_ms = 5;
  telemetry_pump pump(reg, opts);
  pump.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  pump.stop();
  // ~12 intervals elapsed plus the final scrape on stop; be generous for
  // loaded CI machines — at least the final one must have landed.
  EXPECT_GE(pump.scrapes(), 1u);
  pump.stop();  // idempotent
  EXPECT_FALSE(pump.recent().empty());
}

TEST(ObsTelemetry, ConcurrentScrapeVersusWorkerMutation) {
  // The TSan contract test: the pump scrapes from its own thread while
  // workers hammer a residency-tracking queue whose registered surfaces
  // (residency histogram, shard-free wf_queue internals are NOT registered)
  // are all atomic.
  constexpr std::uint32_t kThreads = 4;
  wf_queue_opt_residency<std::uint64_t> q(kThreads);
  tick_calibration cal;
  cal.tick_hz = 1e9;

  registry reg;
  reg.add_source("q.residency", [&](metrics_snapshot& out) {
    append_metrics(out, "q.residency",
                   make_residency_report(q.residency_histogram(), cal));
  });

  telemetry_options opts;
  opts.interval_ms = 1;  // scrape as hot as the pump allows
  telemetry_pump pump(reg, opts);
  spin_barrier barrier(kThreads);
  pump.start();

  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < 3000; ++i) {
        q.enqueue(i, t);
        q.dequeue(t);
      }
    });
  }
  for (auto& w : workers) w.join();
  pump.stop();

  ASSERT_GE(pump.scrapes(), 1u);
  for (const auto& s : pump.recent()) {
    for (const metric& m : s.snap) {
      EXPECT_TRUE(std::isfinite(m.value)) << m.name;
    }
  }
  // The final scrape (taken after the workers joined) sees the full count.
  const auto recent = pump.recent();
  const auto& last = recent.back().snap;
  bool found = false;
  for (const metric& m : last) {
    if (m.name == "q.residency.samples") {
      found = true;
      EXPECT_EQ(m.value, static_cast<double>(q.residency_samples()));
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace kpq::obs
