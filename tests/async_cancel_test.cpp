// Cancellation-path coverage for the coroutine front-end: stop_token-aware
// awaitables (pre-cancelled, cancel-while-suspended, inline and via the
// loop), destroy-while-suspended frame teardown (docs/ASYNC.md §5), select
// cancellation, and shutdown-drain exactly-once delivery.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <stop_token>
#include <thread>
#include <utility>
#include <vector>

#include "async/async_queue.hpp"
#include "async/select.hpp"
#include "async/task.hpp"
#include "core/wf_queue.hpp"
#include "sync/thread_registry.hpp"

namespace kpq::async {
namespace {

using namespace std::chrono_literals;

using async_wf = async_mpmc<wf_queue_opt<std::uint64_t>>;

TEST(AsyncCancel, PreCancelledTokenCompletesImmediatelyEmpty) {
  async_wf q(4);
  q.enqueue(1);  // an item is present, but the stop wins before the try
  std::stop_source ss;
  ss.request_stop();
  auto t = q.co_dequeue(ss.get_token());
  t.start();
  ASSERT_TRUE(t.done());  // never suspended
  EXPECT_EQ(t.take(), std::nullopt);
  EXPECT_EQ(q.hub().stats().parks, 0u);
  EXPECT_EQ(q.try_dequeue(), std::optional<std::uint64_t>(1));  // untouched
}

TEST(AsyncCancel, StopWhileSuspendedResumesInlineWithEmpty) {
  async_wf q(4);  // no executor: the stop callback resumes inline
  std::stop_source ss;
  auto t = q.co_dequeue(ss.get_token());
  t.start();
  ASSERT_FALSE(t.done());
  EXPECT_TRUE(q.hub().maybe_waiters());
  ss.request_stop();  // claim -> resume runs right here
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.take(), std::nullopt);
  EXPECT_FALSE(q.hub().maybe_waiters());  // claimed waiter was delisted
}

task<void> dequeue_into(async_wf& q, std::stop_token st,
                        std::optional<std::uint64_t>& out, bool& finished) {
  out = co_await q.co_dequeue(std::move(st));
  finished = true;
}

TEST(AsyncCancel, StopFromAnotherThreadWhileParkedOnLoop) {
  async_wf q(4);
  event_loop loop;
  q.set_executor(&loop);
  std::stop_source ss;
  std::optional<std::uint64_t> out = std::optional<std::uint64_t>(7);
  bool finished = false;
  loop.spawn(dequeue_into(q, ss.get_token(), out, finished));
  std::thread canceller([&] {
    std::this_thread::sleep_for(15ms);
    ss.request_stop();  // posts the resumption to the parked loop
  });
  loop.run();
  canceller.join();
  EXPECT_TRUE(finished);
  EXPECT_EQ(out, std::nullopt);
  EXPECT_FALSE(q.hub().maybe_waiters());
}

TEST(AsyncCancel, StopRacingARealItemDeliversAtMostOnce) {
  // The claim has exactly one winner: either the item arrives (value) or
  // the stop does (nullopt) — and a nullopt must leave the item in the
  // queue, never consume-and-drop it.
  for (int round = 0; round < 50; ++round) {
    async_wf q(4);
    std::stop_source ss;
    auto t = q.co_dequeue(ss.get_token());
    t.start();
    std::thread producer([&] { q.enqueue(42); });
    std::thread stopper([&] { ss.request_stop(); });
    producer.join();
    stopper.join();
    ASSERT_TRUE(t.done());
    auto got = t.take();
    if (got) {
      EXPECT_EQ(*got, 42u);
      EXPECT_EQ(q.try_dequeue(), std::nullopt);
    } else {
      EXPECT_EQ(q.try_dequeue(), std::optional<std::uint64_t>(42));
    }
  }
}

TEST(AsyncCancel, DestroyWhileSuspendedUnhooksTheWaiter) {
  async_wf q(4);
  {
    auto t = q.co_dequeue();
    t.start();
    ASSERT_FALSE(t.done());
    EXPECT_TRUE(q.hub().maybe_waiters());
  }  // task dtor destroys the suspended frame; awaiter dtor claims + delists
  EXPECT_FALSE(q.hub().maybe_waiters());
  // A later enqueue must not touch the dead frame (the silent claim made
  // the node refuse tokens) — and the item stays dequeueable.
  q.enqueue(5);
  EXPECT_EQ(q.try_dequeue(), std::optional<std::uint64_t>(5));
}

TEST(AsyncCancel, DestroySuspendedSelectUnhooksEveryHub) {
  async_wf q0(4), q1(4);
  {
    auto t = co_select<wf_queue_opt<std::uint64_t>>({&q0, &q1});
    t.start();
    ASSERT_FALSE(t.done());
    EXPECT_TRUE(q0.hub().maybe_waiters());
    EXPECT_TRUE(q1.hub().maybe_waiters());
  }
  EXPECT_FALSE(q0.hub().maybe_waiters());
  EXPECT_FALSE(q1.hub().maybe_waiters());
  q0.enqueue(1);
  q1.enqueue(2);
  EXPECT_EQ(q0.try_dequeue(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(q1.try_dequeue(), std::optional<std::uint64_t>(2));
}

task<void> select_into(std::vector<async_wf*> qs, std::stop_token st,
                       select_result<std::uint64_t>& out) {
  out = co_await co_select<wf_queue_opt<std::uint64_t>>(std::move(qs),
                                                        std::move(st));
}

TEST(AsyncCancel, SelectStopWhileSuspendedCompletesClosed) {
  async_wf q0(4), q1(4);
  event_loop loop;
  q0.set_executor(&loop);
  q1.set_executor(&loop);
  std::stop_source ss;
  select_result<std::uint64_t> out;
  loop.spawn(select_into({&q0, &q1}, ss.get_token(), out));
  std::thread canceller([&] {
    std::this_thread::sleep_for(10ms);
    ss.request_stop();
  });
  loop.run();
  canceller.join();
  EXPECT_EQ(out.value, std::nullopt);
  EXPECT_FALSE(out.open);
  EXPECT_FALSE(q0.hub().maybe_waiters());
  EXPECT_FALSE(q1.hub().maybe_waiters());
}

TEST(AsyncCancel, SelectPreCancelledCompletesClosed) {
  async_wf q0(4), q1(4);
  std::stop_source ss;
  ss.request_stop();
  auto t = co_select<wf_queue_opt<std::uint64_t>>({&q0, &q1}, ss.get_token());
  t.start();
  ASSERT_TRUE(t.done());
  auto r = t.take();
  EXPECT_EQ(r.value, std::nullopt);
  EXPECT_FALSE(r.open);
}

task<void> drain_counted(async_wf& q, std::multiset<std::uint64_t>& sink,
                         std::atomic<int>& done) {
  for (;;) {
    auto v = co_await q.co_dequeue();
    if (!v) {
      done.fetch_add(1);
      co_return;
    }
    sink.insert(*v);
  }
}

// Graceful shutdown: close() while consumers are parked mid-stream. Every
// enqueued item is delivered to exactly one consumer BEFORE the empty
// completion — close drains, it does not drop.
TEST(AsyncCancel, ShutdownDrainDeliversEverythingExactlyOnce) {
  constexpr int kConsumers = 6;
  constexpr std::uint64_t kItems = 900;
  async_wf q(8);
  event_loop loop;
  q.set_executor(&loop);
  std::vector<std::multiset<std::uint64_t>> sinks(kConsumers);
  std::atomic<int> done{0};
  for (int c = 0; c < kConsumers; ++c) {
    loop.spawn(drain_counted(q, sinks[c], done));
  }
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      q.enqueue(i);
      if (i % 128 == 0) std::this_thread::yield();  // let consumers park
    }
    q.close();  // shutdown signal races in-flight deliveries
  });
  loop.run();
  producer.join();
  EXPECT_EQ(done.load(), kConsumers);  // every consumer saw the close
  std::multiset<std::uint64_t> all;
  for (const auto& s : sinks) all.insert(s.begin(), s.end());
  ASSERT_EQ(all.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(all.count(i), 1u) << "value " << i;
  }
  EXPECT_EQ(q.try_dequeue(), std::nullopt);  // drained dry
}

}  // namespace
}  // namespace kpq::async
