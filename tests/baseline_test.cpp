// Tests for the baseline queues (Michael–Scott lock-free, two-lock, mutex):
// identical sequential contract, plus concurrent histories validated by the
// same FIFO checker used for the wait-free queue.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "baseline/locked_queues.hpp"
#include "baseline/ms_queue.hpp"
#include "harness/workload.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"
#include "sync/spin_barrier.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"

namespace kpq {
namespace {

template <typename Q>
class BaselineSequentialTest : public ::testing::Test {};

using BaselineTypes =
    ::testing::Types<ms_queue<std::uint64_t>, ms_queue<std::uint64_t, epoch_domain>,
                     ms_queue<std::uint64_t, leaky_domain>,
                     two_lock_queue<std::uint64_t>, mutex_queue<std::uint64_t>>;
TYPED_TEST_SUITE(BaselineSequentialTest, BaselineTypes);

TYPED_TEST(BaselineSequentialTest, StartsEmpty) {
  TypeParam q(4);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  EXPECT_TRUE(q.empty_hint());
}

TYPED_TEST(BaselineSequentialTest, FifoOrderPreserved) {
  TypeParam q(2);
  for (std::uint64_t i = 0; i < 200; ++i) q.enqueue(i, 0);
  EXPECT_EQ(q.unsafe_size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    auto v = q.dequeue(1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.dequeue(1), std::nullopt);
}

TYPED_TEST(BaselineSequentialTest, AlternatingEnqDeq) {
  TypeParam q(1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    q.enqueue(i, 0);
    auto v = q.dequeue(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
    EXPECT_EQ(q.dequeue(0), std::nullopt);
  }
}

TYPED_TEST(BaselineSequentialTest, NonEmptyDestruction) {
  TypeParam q(1);
  for (std::uint64_t i = 0; i < 500; ++i) q.enqueue(i, 0);
  // Destructor must release everything (ASan-verified in sanitizer runs).
}

template <typename Q>
check_result baseline_stress(std::uint32_t threads, std::uint64_t iters,
                             std::uint64_t seed) {
  Q q(threads);
  history_recorder rec(threads);
  spin_barrier barrier(threads);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      fast_rng rng = thread_stream(seed, tid);
      std::uint64_t seq = 0;
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < iters; ++i) {
        if (rng.coin()) {
          const std::uint64_t v = encode_value(tid, seq++);
          auto s = rec.begin(tid, op_kind::enq, v);
          q.enqueue(v, tid);
          s.commit();
        } else {
          auto s = rec.begin(tid, op_kind::deq);
          auto r = q.dequeue(tid);
          if (r.has_value()) {
            s.set_value(*r);
          } else {
            s.set_empty();
          }
          s.commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<std::uint64_t> drained;
  while (auto v = q.dequeue(0)) drained.push_back(*v);
  return fifo_checker::check(rec.collect(), drained);
}

TYPED_TEST(BaselineSequentialTest, ConcurrentHistoryIsFifoConsistent) {
  auto r = baseline_stress<TypeParam>(4, 1000, 0xCAFE);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(MsQueueReclamation, NodesAreActuallyFreed) {
  ms_queue<std::uint64_t> q(2);
  const auto threshold = q.reclaimer().scan_threshold();
  for (std::uint64_t i = 0; i < threshold * 4; ++i) {
    q.enqueue(i, 0);
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  EXPECT_GT(q.reclaimer().freed_count(), 0u);
}

TEST(MsQueueMemory, CountersBalance) {
  mem_counters mc;
  {
    ms_queue<std::uint64_t> q(2, &mc);
    for (std::uint64_t i = 0; i < 300; ++i) q.enqueue(i, 0);
    for (std::uint64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(q.dequeue(1).has_value());
    }
  }
  EXPECT_EQ(mc.live_objects(), 0);
  EXPECT_EQ(mc.live_bytes(), 0);
}

TEST(TwoLockQueue, ParallelEnqueuerAndDequeuerDoNotBlockEachOther) {
  two_lock_queue<std::uint64_t> q;
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < 20000; ++i) q.enqueue(i);
    stop.store(true);
  });
  std::uint64_t last = 0;
  std::uint64_t seen = 0;
  while (!stop.load() || !q.empty_hint()) {
    if (auto v = q.dequeue()) {
      if (seen > 0) {
        EXPECT_EQ(*v, last + 1);
      }
      last = *v;
      ++seen;
    }
  }
  producer.join();
  EXPECT_EQ(seen, 20000u);
}

}  // namespace
}  // namespace kpq
