// Crash flight recorder: the in-process dump_now() surface, and the real
// thing — a child process (obs_flight_crash_child) that aborts with the
// recorder armed, whose post-mortem dump must parse back to at least one
// trace event per live thread plus a finite registry snapshot.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace_ring.hpp"

namespace kpq::obs {
namespace {

std::string tmp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

struct parsed_dump {
  bool has_header = false;
  std::uint64_t tick_hz = 0;
  std::string reason;
  std::vector<std::pair<std::string, double>> header_fields;
  std::vector<std::uint64_t> event_tids;
  std::vector<std::pair<std::string, double>> metrics;
};

// The dump is the raw JSONL form (obs/timeline.hpp): a header line, event
// lines, then {"metric":...} lines. Event/header lines have string values
// mixed in, so parse field-by-field rather than via parse_flat_json.
parsed_dump parse_dump(const std::string& path) {
  parsed_dump d;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    if (line.find("\"kpq_trace_raw\":1") != std::string::npos) {
      d.has_header = true;
      const auto hz = line.find("\"tick_hz\":");
      if (hz != std::string::npos) {
        d.tick_hz = std::strtoull(line.c_str() + hz + 10, nullptr, 10);
      }
      const auto rs = line.find("\"reason\":\"");
      if (rs != std::string::npos) {
        const auto end = line.find('"', rs + 10);
        d.reason = line.substr(rs + 10, end - rs - 10);
      }
    } else if (line.find("\"kind_name\":") != std::string::npos) {
      const auto t = line.find("\"tid\":");
      if (t != std::string::npos) {
        d.event_tids.push_back(
            std::strtoull(line.c_str() + t + 6, nullptr, 10));
      }
    } else if (line.find("\"metric\":\"") != std::string::npos) {
      const auto ms = line.find("\"metric\":\"");
      const auto me = line.find('"', ms + 10);
      const auto vs = line.find("\"value\":");
      if (me != std::string::npos && vs != std::string::npos) {
        d.metrics.emplace_back(line.substr(ms + 10, me - ms - 10),
                               std::strtod(line.c_str() + vs + 8, nullptr));
      }
    }
  }
  return d;
}

std::uint64_t count_tid(const parsed_dump& d, std::uint64_t tid) {
  std::uint64_t n = 0;
  for (std::uint64_t t : d.event_tids) {
    if (t == tid) ++n;
  }
  return n;
}

TEST(ObsFlight, DumpNowWritesParseableDump) {
  const std::string path = tmp_path("kpq_flight_dumpnow.dump");
  std::remove(path.c_str());

  trace_domain domain(2, 256);
  registry reg;
  double gauge = 7.5;
  reg.add_source("g", [&](metrics_snapshot& out) {
    append_value(out, "flight.gauge", gauge);
  });
  domain.record(0, trace_kind::enq_publish, 3, 0);
  domain.record(0, trace_kind::enq_complete, 3, 0);

  flight_recorder_config cfg;
  cfg.path = path.c_str();
  cfg.last_n_per_thread = 16;
  flight_recorder& fr = flight_recorder::instance();
  EXPECT_FALSE(fr.armed());
  EXPECT_FALSE(fr.dump_now("early"));  // not armed yet
  fr.arm(cfg, &domain, &reg);
  EXPECT_TRUE(fr.armed());
  EXPECT_TRUE(fr.dump_now("test"));
  fr.disarm();
  EXPECT_FALSE(fr.armed());

  const parsed_dump d = parse_dump(path);
  EXPECT_TRUE(d.has_header);
  EXPECT_GT(d.tick_hz, 0u);
  EXPECT_EQ(d.reason, "test");
  EXPECT_EQ(count_tid(d, 0), 2u);
  ASSERT_EQ(d.metrics.size(), 1u);
  EXPECT_EQ(d.metrics[0].first, "flight.gauge");
  EXPECT_EQ(d.metrics[0].second, 7.5);
  std::remove(path.c_str());
}

TEST(ObsFlight, LastNClampsTheRetainedWindow) {
  const std::string path = tmp_path("kpq_flight_lastn.dump");
  std::remove(path.c_str());

  trace_domain domain(1, 256);
  for (int i = 0; i < 500; ++i) {
    domain.record(0, trace_kind::retire, i, 0);
  }

  flight_recorder_config cfg;
  cfg.path = path.c_str();
  cfg.last_n_per_thread = 8;
  flight_recorder& fr = flight_recorder::instance();
  fr.arm(cfg, &domain, nullptr);
  EXPECT_TRUE(fr.dump_now("clamp"));
  fr.disarm();

  const parsed_dump d = parse_dump(path);
  EXPECT_EQ(d.event_tids.size(), 8u);
  std::remove(path.c_str());
}

#ifdef KPQ_CRASH_CHILD
TEST(ObsFlight, CrashedChildLeavesParseableDump) {
  const std::string path = tmp_path("kpq_flight_crash.dump");
  std::remove(path.c_str());

  const std::string cmd =
      std::string(KPQ_CRASH_CHILD) + " " + path + " 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  // The child dies by the re-raised SIGABRT, not a clean exit.
  ASSERT_NE(rc, -1);
  EXPECT_NE(rc, 0);

  const parsed_dump d = parse_dump(path);
  EXPECT_TRUE(d.has_header);
  EXPECT_GT(d.tick_hz, 0u);
  EXPECT_EQ(d.reason, "SIGABRT");
  // At least one retained event for EACH live thread in the child.
  EXPECT_GE(count_tid(d, 0), 1u);
  EXPECT_GE(count_tid(d, 1), 1u);
  // ...and the pre-rendered registry snapshot with finite values.
  ASSERT_GE(d.metrics.size(), 1u);
  bool saw = false;
  for (const auto& [name, value] : d.metrics) {
    EXPECT_TRUE(std::isfinite(value)) << name;
    if (name == "child.work_done") {
      saw = true;
      EXPECT_EQ(value, 200.0);
    }
  }
  EXPECT_TRUE(saw);
  std::remove(path.c_str());
}
#endif  // KPQ_CRASH_CHILD

}  // namespace
}  // namespace kpq::obs
