// Randomized long-schedule fuzzing of the KP queue's step decomposition.
//
// Complements the exhaustive explorer (core_interleave_test): where that
// test enumerates ALL interleavings of 2-3 operations, this one samples
// thousands of random schedules over much longer programs — several logical
// threads each executing a sequence of operations, every step interleaved
// at the scheduler's whim. Each run's full history (with step-index
// timestamps) is validated by the FIFO checker; small runs are additionally
// cross-checked by the exact linearizability checker.
//
// Deterministic: every schedule derives from a seed printed on failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/workload.hpp"
#include "reclaim/leaky.hpp"
#include "storage/segment_storage.hpp"
#include "support/step_machines.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"
#include "verify/lin_checker.hpp"

namespace kpq {
namespace {

using testing::basic_deq_machine;
using testing::basic_machine;
using testing::build_machine_for;
using testing::op_spec;
using testing::sm_queue;

/// Segment-storage variant driven through the same machines: exercises the
/// bump allocation, seal/consume state machine, and exactly-once segment
/// retirement under every sampled interleaving. leaky_domain, because the
/// machines hold node pointers across steps without a guard and segment
/// retirement reclaims eagerly (step_machines.hpp explains; the real-thread
/// TSan stress tests cover eager reclamation).
using seg_queue = wf_queue<std::uint64_t, help_all, scan_max_phase,
                           leaky_domain, wf_options,
                           segment_storage<std::uint64_t>>;
/// Small segments so every run crosses many seal/retire boundaries.
using seg_queue_small =
    wf_queue<std::uint64_t, help_all, scan_max_phase, leaky_domain, wf_options,
             segment_storage<std::uint64_t, 256>>;

struct program {
  std::uint32_t tid;
  std::vector<op_spec> ops;  // executed in order
};

/// Runs one random schedule on queue type Q; returns the check result.
template <typename Q = sm_queue>
check_result run_random(std::uint64_t seed, std::uint32_t logical_threads,
                        std::uint32_t ops_per_thread, std::uint32_t enq_bias,
                        std::vector<op_event>* history_out = nullptr) {
  fast_rng rng(seed);

  // Build per-thread programs.
  std::vector<program> progs;
  for (std::uint32_t t = 0; t < logical_threads; ++t) {
    program p;
    p.tid = t;
    for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
      const bool enq = rng.bernoulli(enq_bias, 100);
      p.ops.push_back({enq, t, encode_value(t, i)});
    }
    progs.push_back(std::move(p));
  }

  Q q(logical_threads);
  std::vector<std::unique_ptr<basic_machine<Q>>> current(logical_threads);
  std::vector<std::size_t> next_op(logical_threads, 0);
  std::vector<op_event> h;
  std::uint64_t clock = 1;

  auto all_done = [&] {
    for (std::uint32_t t = 0; t < logical_threads; ++t) {
      if (current[t] != nullptr || next_op[t] < progs[t].ops.size()) {
        return false;
      }
    }
    return true;
  };

  std::uint64_t safety = 0;
  const std::uint64_t safety_cap =
      static_cast<std::uint64_t>(logical_threads) * ops_per_thread * 500;
  while (!all_done()) {
    if (++safety > safety_cap) {
      check_result r;
      r.fail("schedule did not terminate (seed " + std::to_string(seed) + ")");
      return r;
    }
    const auto t = static_cast<std::uint32_t>(rng.next() % logical_threads);
    if (current[t] == nullptr) {
      if (next_op[t] >= progs[t].ops.size()) continue;  // thread finished
      current[t] = build_machine_for<Q>(progs[t].ops[next_op[t]]);
      current[t]->inv = clock++;
    }
    if (current[t]->step(q)) {
      current[t]->res = clock++;
      const op_spec& s = progs[t].ops[next_op[t]];
      if (s.is_enq) {
        h.push_back(
            {op_kind::enq, true, t, s.value, current[t]->inv, current[t]->res});
      } else {
        auto* dm = static_cast<basic_deq_machine<Q>*>(current[t].get());
        h.push_back({op_kind::deq, dm->result.has_value(), t,
                     dm->result.value_or(0), current[t]->inv,
                     current[t]->res});
      }
      current[t].reset();
      ++next_op[t];
    } else {
      ++clock;
    }
  }

  std::vector<std::uint64_t> drained;
  while (auto v = q.dequeue(0)) drained.push_back(*v);
  if (history_out != nullptr) {
    *history_out = h;
    std::uint64_t ts = clock + 1000;
    for (std::uint64_t v : drained) {
      history_out->push_back({op_kind::deq, true, 0, v, ts, ts + 1});
      ts += 2;
    }
  }
  return fifo_checker::check(h, drained);
}

TEST(RandomScheduleFuzz, ManySeedsMediumPrograms) {
  for (std::uint64_t seed = 1; seed <= 1500; ++seed) {
    auto r = run_random(seed, /*threads=*/4, /*ops=*/6, /*enq_bias=*/60);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n" << r.to_string();
  }
}

TEST(RandomScheduleFuzz, DequeueHeavyHitsEmptyPaths) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    auto r = run_random(seed, 3, 8, /*enq_bias=*/30);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n" << r.to_string();
  }
}

TEST(RandomScheduleFuzz, WideThreadFan) {
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    auto r = run_random(seed, 8, 4, /*enq_bias=*/50);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n" << r.to_string();
  }
}

TEST(RandomScheduleFuzz, SmallRunsCrossCheckedExactly) {
  // Tiny programs: the exact checker is feasible and strictly stronger than
  // the FIFO checker; agreement on 400 seeds ties the two together.
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    std::vector<op_event> h;
    auto r = run_random(seed, 3, 2, /*enq_bias=*/50, &h);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n" << r.to_string();
    ASSERT_LE(h.size(), 20u);
    ASSERT_TRUE(lin_checker::is_linearizable(h))
        << "exact checker rejected seed " << seed;
  }
}

// ------------------------------- segment-storage variants (same machines)

TEST(RandomScheduleFuzzSegment, ManySeedsMediumPrograms) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    auto r = run_random<seg_queue>(seed, 4, 6, /*enq_bias=*/60);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n" << r.to_string();
  }
}

TEST(RandomScheduleFuzzSegment, SmallSegmentsCrossManySeals) {
  // 256-byte segments hold only a handful of cells, so six ops per thread
  // already seal and retire several segments per schedule.
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    auto r = run_random<seg_queue_small>(seed, 4, 6, /*enq_bias=*/60);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n" << r.to_string();
  }
}

TEST(RandomScheduleFuzzSegment, DequeueHeavyHitsEmptyPaths) {
  for (std::uint64_t seed = 1; seed <= 600; ++seed) {
    auto r = run_random<seg_queue_small>(seed, 3, 8, /*enq_bias=*/30);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n" << r.to_string();
  }
}

TEST(RandomScheduleFuzzSegment, SmallRunsCrossCheckedExactly) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    std::vector<op_event> h;
    auto r = run_random<seg_queue_small>(seed, 3, 2, /*enq_bias=*/50, &h);
    ASSERT_TRUE(r.ok) << "seed " << seed << ":\n" << r.to_string();
    ASSERT_TRUE(lin_checker::is_linearizable(h))
        << "exact checker rejected seed " << seed;
  }
}

}  // namespace
}  // namespace kpq
