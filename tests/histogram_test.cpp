// Tests for the log2 latency histogram.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "harness/histogram.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq {
namespace {

TEST(Log2Histogram, BucketBoundaries) {
  EXPECT_EQ(log2_histogram::bucket_of(0), 0u);
  EXPECT_EQ(log2_histogram::bucket_of(1), 1u);
  EXPECT_EQ(log2_histogram::bucket_of(2), 2u);
  EXPECT_EQ(log2_histogram::bucket_of(3), 2u);
  EXPECT_EQ(log2_histogram::bucket_of(4), 3u);
  EXPECT_EQ(log2_histogram::bucket_of(1023), 10u);
  EXPECT_EQ(log2_histogram::bucket_of(1024), 11u);
  EXPECT_EQ(log2_histogram::bucket_upper(0), 0u);
  EXPECT_EQ(log2_histogram::bucket_upper(1), 1u);
  EXPECT_EQ(log2_histogram::bucket_upper(10), 1023u);
}

TEST(Log2Histogram, CountsAndTotal) {
  log2_histogram h;
  EXPECT_EQ(h.total(), 0u);
  h.add(0);
  h.add(1);
  h.add(100);
  h.add(100);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(log2_histogram::bucket_of(100)), 2u);
}

TEST(Log2Histogram, QuantileUpperBoundsAreConservative) {
  log2_histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);     // bucket upper 15
  for (int i = 0; i < 10; ++i) h.add(5000);   // bucket upper 8191
  EXPECT_EQ(h.quantile_upper_bound(0.5), 15u);
  EXPECT_EQ(h.quantile_upper_bound(0.89), 15u);
  EXPECT_EQ(h.quantile_upper_bound(0.95), 8191u);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 8191u);
}

TEST(Log2Histogram, MergeAndReset) {
  log2_histogram a, b;
  a.add(7);
  b.add(7);
  b.add(9000);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(log2_histogram::bucket_of(7)), 2u);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
}

TEST(Log2Histogram, ConcurrentRecordingLosesNothing) {
  log2_histogram h;
  constexpr int kThreads = 4, kPer = 10000;
  spin_barrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kPer; ++i) {
        h.add(static_cast<std::uint64_t>(t * 1000 + i % 977));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(kThreads) * kPer);
}

}  // namespace
}  // namespace kpq
