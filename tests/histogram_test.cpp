// Tests for the log2 latency histogram.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "harness/histogram.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq {
namespace {

TEST(Log2Histogram, BucketBoundaries) {
  EXPECT_EQ(log2_histogram::bucket_of(0), 0u);
  EXPECT_EQ(log2_histogram::bucket_of(1), 1u);
  EXPECT_EQ(log2_histogram::bucket_of(2), 2u);
  EXPECT_EQ(log2_histogram::bucket_of(3), 2u);
  EXPECT_EQ(log2_histogram::bucket_of(4), 3u);
  EXPECT_EQ(log2_histogram::bucket_of(1023), 10u);
  EXPECT_EQ(log2_histogram::bucket_of(1024), 11u);
  EXPECT_EQ(log2_histogram::bucket_upper(0), 0u);
  EXPECT_EQ(log2_histogram::bucket_upper(1), 1u);
  EXPECT_EQ(log2_histogram::bucket_upper(10), 1023u);
}

TEST(Log2Histogram, CountsAndTotal) {
  log2_histogram h;
  EXPECT_EQ(h.total(), 0u);
  h.add(0);
  h.add(1);
  h.add(100);
  h.add(100);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(log2_histogram::bucket_of(100)), 2u);
}

TEST(Log2Histogram, QuantileUpperBoundsAreConservative) {
  log2_histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);     // bucket upper 15
  for (int i = 0; i < 10; ++i) h.add(5000);   // bucket upper 8191
  EXPECT_EQ(h.quantile_upper_bound(0.5), 15u);
  EXPECT_EQ(h.quantile_upper_bound(0.89), 15u);
  EXPECT_EQ(h.quantile_upper_bound(0.95), 8191u);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 8191u);
}

TEST(Log2Histogram, ExtremeQuantilesHitMinAndMaxBuckets) {
  log2_histogram h;
  for (int i = 0; i < 5; ++i) h.add(3);      // bucket upper 3
  for (int i = 0; i < 5; ++i) h.add(40);     // bucket upper 63
  for (int i = 0; i < 5; ++i) h.add(70000);  // bucket upper 131071
  EXPECT_EQ(h.quantile_upper_bound(0.0), 3u);        // p0 = smallest sample
  EXPECT_EQ(h.quantile_upper_bound(1.0), 131071u);   // p100 = largest
  EXPECT_EQ(h.quantile_upper_bound(0.5), 63u);
}

TEST(Log2Histogram, SingleSampleAnswersItsBucketForEveryQuantile) {
  log2_histogram h;
  h.add(100);  // bucket upper 127
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile_upper_bound(q), 127u) << "q=" << q;
  }
  log2_histogram zero;
  zero.add(0);  // bucket 0: the {0} bucket
  EXPECT_EQ(zero.quantile_upper_bound(0.0), 0u);
  EXPECT_EQ(zero.quantile_upper_bound(1.0), 0u);
}

TEST(Log2Histogram, ExactRankBoundaryIsNotOvershot) {
  // 90 small + 10 large samples: p90 is covered by the 90 small ones, so
  // the small bucket must be the answer (the old floor/strictly-greater
  // rank skipped to the large bucket exactly at integer q*n).
  log2_histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);    // bucket upper 15
  for (int i = 0; i < 10; ++i) h.add(5000);  // bucket upper 8191
  EXPECT_EQ(h.quantile_upper_bound(0.90), 15u);
  EXPECT_EQ(h.quantile_upper_bound(0.901), 8191u);
}

TEST(Log2Histogram, EmptyHistogramQuantilesAreZero) {
  log2_histogram h;
  EXPECT_EQ(h.quantile_upper_bound(0.0), 0u);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 0u);
}

TEST(Log2Histogram, MergeAndReset) {
  log2_histogram a, b;
  a.add(7);
  b.add(7);
  b.add(9000);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(log2_histogram::bucket_of(7)), 2u);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
}

TEST(Log2Histogram, ConcurrentRecordingLosesNothing) {
  log2_histogram h;
  constexpr int kThreads = 4, kPer = 10000;
  spin_barrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kPer; ++i) {
        h.add(static_cast<std::uint64_t>(t * 1000 + i % 977));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(kThreads) * kPer);
}

}  // namespace
}  // namespace kpq
