// Randomized-schedule verification of the SHARDED front-end's contract:
// per-shard FIFO, no-loss/no-dup, and per-shard empty honesty, with 2–8
// shards.
//
// Reuses the step-machine harness (tests/support/step_machines.hpp): every
// shard is an independent sm_queue, a sharded enqueue is one enq_machine on
// the routed shard, and a sharded dequeue replays sharded_queue::dequeue's
// cyclic scan — a deq_machine per visited shard, starting at the caller's
// home shard, stopping at the first hit or after every shard reported
// empty. The scheduler interleaves all primitive steps at random, so shard
// scans from different logical threads overlap arbitrarily — exactly the
// executions the relaxed cross-shard contract must survive.
//
// Checking: the history is recorded PER SHARD (each sub-operation with its
// own window). Each shard's history plus its drain must pass the full FIFO
// checker — including C5 empty honesty, which here proves the scan's
// emptiness claim shard by shard: a sub-dequeue may return empty only if
// that shard really was empty at some instant of its window. Small runs are
// additionally cross-checked per shard by the exact linearizability
// checker. Global no-loss/no-dup is the sum of per-shard C3 plus the
// cross-shard count identity asserted at the end.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/workload.hpp"
#include "support/step_machines.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"
#include "verify/lin_checker.hpp"

namespace kpq {
namespace {

using testing::deq_machine;
using testing::enq_machine;
using testing::machine;
using testing::sm_queue;

struct shard_set {
  std::vector<std::unique_ptr<sm_queue>> shards;
  std::vector<std::vector<op_event>> history;  // one log per shard

  shard_set(std::uint32_t s, std::uint32_t threads) : history(s) {
    for (std::uint32_t i = 0; i < s; ++i) {
      shards.push_back(std::make_unique<sm_queue>(threads));
    }
  }
  std::uint32_t count() const {
    return static_cast<std::uint32_t>(shards.size());
  }
};

/// One sharded operation advanced one primitive step at a time. Mirrors
/// sharded_queue::enqueue / ::dequeue with the affinity policy.
class sharded_op {
 public:
  sharded_op(std::uint32_t tid, bool is_enq, std::uint64_t value,
             shard_set& set)
      : tid_(tid), is_enq_(is_enq), value_(value) {
    cur_ = tid % set.count();  // enqueue_shard == home_shard == tid mod S
    start_inner(set);
  }

  /// True once the sharded operation completed.
  bool step(shard_set& set, std::uint64_t& clock) {
    if (inner_->step(*set.shards[cur_])) {
      inner_->res = clock++;
      if (is_enq_) {
        set.history[cur_].push_back(
            {op_kind::enq, true, tid_, value_, inner_->inv, inner_->res});
        return true;
      }
      auto* dm = static_cast<deq_machine*>(inner_.get());
      set.history[cur_].push_back({op_kind::deq, dm->result.has_value(), tid_,
                                   dm->result.value_or(0), inner_->inv,
                                   inner_->res});
      if (dm->result.has_value()) {
        result = dm->result;
        return true;
      }
      if (++visited_ == set.count()) return true;  // scanned all: empty
      cur_ = (cur_ + 1 == set.count()) ? 0 : cur_ + 1;
      start_inner(set);
      inner_->inv = clock++;
      return false;
    }
    ++clock;
    return false;
  }

  std::uint64_t& inv() { return inner_->inv; }
  std::optional<std::uint64_t> result;

 private:
  void start_inner(shard_set&) {
    if (is_enq_) {
      inner_ = std::make_unique<enq_machine>(tid_, value_);
    } else {
      inner_ = std::make_unique<deq_machine>(tid_);
    }
  }

  std::uint32_t tid_;
  bool is_enq_;
  std::uint64_t value_;
  std::uint32_t cur_ = 0;
  std::uint32_t visited_ = 0;
  std::unique_ptr<machine> inner_;
};

struct outcome {
  check_result per_shard;
  std::vector<std::vector<op_event>> history;  // with drains appended
  std::uint64_t enqueued = 0, dequeued = 0, drained = 0;
};

outcome run_sharded_random(std::uint64_t seed, std::uint32_t shards,
                           std::uint32_t logical_threads,
                           std::uint32_t ops_per_thread,
                           std::uint32_t enq_bias) {
  fast_rng rng(seed);
  shard_set set(shards, logical_threads);

  struct prog {
    std::vector<std::pair<bool, std::uint64_t>> ops;  // (is_enq, value)
    std::size_t next = 0;
  };
  std::vector<prog> progs(logical_threads);
  for (std::uint32_t t = 0; t < logical_threads; ++t) {
    for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
      progs[t].ops.emplace_back(rng.bernoulli(enq_bias, 100),
                                encode_value(t, i));
    }
  }

  std::vector<std::unique_ptr<sharded_op>> current(logical_threads);
  std::uint64_t clock = 1;
  outcome o;

  auto all_done = [&] {
    for (std::uint32_t t = 0; t < logical_threads; ++t) {
      if (current[t] != nullptr || progs[t].next < progs[t].ops.size()) {
        return false;
      }
    }
    return true;
  };

  std::uint64_t safety = 0;
  const std::uint64_t cap = static_cast<std::uint64_t>(logical_threads) *
                            ops_per_thread * shards * 500;
  while (!all_done()) {
    if (++safety > cap) {
      o.per_shard.fail("schedule did not terminate (seed " +
                       std::to_string(seed) + ")");
      return o;
    }
    const auto t = static_cast<std::uint32_t>(rng.next() % logical_threads);
    if (current[t] == nullptr) {
      if (progs[t].next >= progs[t].ops.size()) continue;
      const auto& [is_enq, value] = progs[t].ops[progs[t].next];
      current[t] = std::make_unique<sharded_op>(t, is_enq, value, set);
      current[t]->inv() = clock++;
    }
    if (current[t]->step(set, clock)) {
      const auto& [is_enq, value] = progs[t].ops[progs[t].next];
      if (is_enq) {
        ++o.enqueued;
      } else if (current[t]->result.has_value()) {
        ++o.dequeued;
      }
      current[t].reset();
      ++progs[t].next;
    }
  }

  // Per-shard verdicts; drains append to the returned histories so the
  // exact checker can consume them too.
  o.history = set.history;
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::vector<std::uint64_t> drained;
    while (auto v = set.shards[s]->dequeue(0)) drained.push_back(*v);
    o.drained += drained.size();
    auto r = fifo_checker::check(set.history[s], drained);
    if (!r.ok) {
      o.per_shard.fail("shard " + std::to_string(s) + ": " + r.to_string());
    }
    std::uint64_t ts = clock + 1000;
    for (std::uint64_t v : drained) {
      o.history[s].push_back({op_kind::deq, true, 0, v, ts, ts + 1});
      ts += 2;
    }
  }
  return o;
}

TEST(ShardedRandomSchedule, TwoShards) {
  for (std::uint64_t seed = 1; seed <= 600; ++seed) {
    auto o = run_sharded_random(seed, 2, /*threads=*/4, /*ops=*/6, 60);
    ASSERT_TRUE(o.per_shard.ok) << "seed " << seed << ":\n"
                                << o.per_shard.to_string();
    ASSERT_EQ(o.enqueued, o.dequeued + o.drained) << "seed " << seed;
  }
}

TEST(ShardedRandomSchedule, FourShardsWideFan) {
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    auto o = run_sharded_random(seed, 4, 8, 4, 55);
    ASSERT_TRUE(o.per_shard.ok) << "seed " << seed << ":\n"
                                << o.per_shard.to_string();
    ASSERT_EQ(o.enqueued, o.dequeued + o.drained) << "seed " << seed;
  }
}

TEST(ShardedRandomSchedule, EightShardsDequeueHeavy) {
  // More shards than busy producers: scans regularly sweep several empty
  // shards, hammering the empty-honesty and steal paths.
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    auto o = run_sharded_random(seed, 8, 6, 5, 35);
    ASSERT_TRUE(o.per_shard.ok) << "seed " << seed << ":\n"
                                << o.per_shard.to_string();
    ASSERT_EQ(o.enqueued, o.dequeued + o.drained) << "seed " << seed;
  }
}

TEST(ShardedRandomSchedule, SmallRunsCrossCheckedExactlyPerShard) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    auto o = run_sharded_random(seed, 2, 3, 2, 50);
    ASSERT_TRUE(o.per_shard.ok) << "seed " << seed << ":\n"
                                << o.per_shard.to_string();
    for (std::size_t s = 0; s < o.history.size(); ++s) {
      ASSERT_LE(o.history[s].size(), 20u);
      ASSERT_TRUE(lin_checker::is_linearizable(o.history[s]))
          << "exact checker rejected shard " << s << " of seed " << seed;
    }
  }
}

}  // namespace
}  // namespace kpq
