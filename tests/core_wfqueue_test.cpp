// Sequential-semantics tests for every variant of the KP wait-free queue.
//
// Typed over the four paper variants (base, opt1, opt2, opt1+2) and the
// three reclaimers, because the single-threaded contract must be identical
// for all of them. Concurrency is exercised separately in
// core_stress_test.cpp; deterministic interleavings in core_scenario_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace kpq {
namespace {

template <typename Q>
class WfQueueSequentialTest : public ::testing::Test {};

using QueueTypes = ::testing::Types<
    wf_queue_base<std::uint64_t>, wf_queue_opt1<std::uint64_t>,
    wf_queue_opt2<std::uint64_t>, wf_queue_opt<std::uint64_t>,
    wf_queue<std::uint64_t, help_all, cas_phase>,
    wf_queue_base<std::uint64_t, epoch_domain>,
    wf_queue_opt<std::uint64_t, epoch_domain>,
    wf_queue_base<std::uint64_t, leaky_domain>,
    wf_queue<std::uint64_t, help_one, fetch_add_phase, hp_domain,
             wf_options_scrub>,
    wf_queue<std::uint64_t, help_all, scan_max_phase, hp_domain,
             wf_options_no_cache>,
    wf_queue<std::uint64_t, help_all, scan_max_phase, hp_domain,
             wf_options_precheck>,
    wf_queue<std::uint64_t, help_chunk<2>, fetch_add_phase>,
    wf_queue<std::uint64_t, help_chunk<3>, scan_max_phase>,
    wf_queue<std::uint64_t, help_random, fetch_add_phase>,
    wf_queue_fps<std::uint64_t>>;
TYPED_TEST_SUITE(WfQueueSequentialTest, QueueTypes);

TYPED_TEST(WfQueueSequentialTest, StartsEmpty) {
  TypeParam q(4);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
  EXPECT_TRUE(q.empty_hint(0));
  EXPECT_EQ(q.unsafe_size(), 0u);
}

TYPED_TEST(WfQueueSequentialTest, SingleElementRoundTrip) {
  TypeParam q(4);
  q.enqueue(42u, 0);
  EXPECT_FALSE(q.empty_hint(0));
  EXPECT_EQ(q.unsafe_size(), 1u);
  auto v = q.dequeue(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42u);
  EXPECT_EQ(q.dequeue(0), std::nullopt);
}

TYPED_TEST(WfQueueSequentialTest, FifoOrderPreserved) {
  TypeParam q(2);
  for (std::uint64_t i = 0; i < 100; ++i) q.enqueue(i, 0);
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto v = q.dequeue(1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.dequeue(1), std::nullopt);
}

TYPED_TEST(WfQueueSequentialTest, InterleavedEnqDeq) {
  TypeParam q(1);
  std::uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    q.enqueue(next_in++, 0);
    q.enqueue(next_in++, 0);
    auto v = q.dequeue(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, next_out++);
  }
  EXPECT_EQ(q.unsafe_size(), next_in - next_out);
  while (next_out < next_in) {
    auto v = q.dequeue(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, next_out++);
  }
}

TYPED_TEST(WfQueueSequentialTest, EmptyAfterDrainRepeatedly) {
  TypeParam q(2);
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(q.dequeue(0), std::nullopt);
    q.enqueue(static_cast<std::uint64_t>(round), 1);
    auto v = q.dequeue(1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<std::uint64_t>(round));
    EXPECT_EQ(q.dequeue(0), std::nullopt);
  }
}

TYPED_TEST(WfQueueSequentialTest, ManyElementsSurviveDestruction) {
  // Destroying a non-empty queue must release every node (checked by the
  // allocation-counting test below and by ASan in sanitizer runs).
  TypeParam q(1);
  for (std::uint64_t i = 0; i < 1000; ++i) q.enqueue(i, 0);
  EXPECT_EQ(q.unsafe_size(), 1000u);
}

TYPED_TEST(WfQueueSequentialTest, DifferentTidsSequential) {
  TypeParam q(8);
  for (std::uint32_t t = 0; t < 8; ++t) {
    q.enqueue(t, t);
  }
  for (std::uint32_t t = 0; t < 8; ++t) {
    auto v = q.dequeue(7 - t);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, t);
  }
}

TEST(WfQueueMemory, LiveBytesBalanceExactly) {
  mem_counters mc;
  {
    wf_queue_base<std::uint64_t> q(4, &mc);
    for (std::uint64_t i = 0; i < 200; ++i) q.enqueue(i, 0);
    const auto peak = mc.live_bytes();
    EXPECT_GE(peak,
              static_cast<std::int64_t>(200 * sizeof(wf_node<std::uint64_t>)));
    for (std::uint64_t i = 0; i < 200; ++i) {
      ASSERT_TRUE(q.dequeue(1).has_value());
    }
    // All 200 nodes dequeued; live node memory is the sentinel plus nodes
    // still sitting in the reclaimer's retired lists, plus descriptors.
    EXPECT_GE(mc.live_objects(), 1);
  }
  // Counters were attached at construction: the balance sheet must close.
  EXPECT_EQ(mc.live_objects(), 0);
  EXPECT_EQ(mc.live_bytes(), 0);
}

TEST(WfQueueMemory, ReclaimerActuallyFrees) {
  wf_queue_base<std::uint64_t> q(2);
  const auto threshold = q.reclaimer().scan_threshold();
  for (std::uint64_t i = 0; i < threshold * 4; ++i) {
    q.enqueue(i, 0);
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  EXPECT_GT(q.reclaimer().freed_count(), 0u)
      << "hazard-pointer domain never reclaimed anything";
}

TEST(WfQueueDescCache, FailedInstallsAreRecycled) {
  // Sequential run: every descriptor install succeeds, so the cache stays
  // small; this test just pins the API behaviour.
  wf_queue_base<std::uint64_t> q(1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    q.enqueue(i, 0);
    ASSERT_TRUE(q.dequeue(0).has_value());
  }
  SUCCEED();
}

TEST(WfQueueTypes, WorksWithStrings) {
  wf_queue_base<std::string> q(2);
  q.enqueue("hello", 0);
  q.enqueue("world", 1);
  EXPECT_EQ(q.dequeue(0), std::optional<std::string>("hello"));
  EXPECT_EQ(q.dequeue(1), std::optional<std::string>("world"));
  EXPECT_EQ(q.dequeue(0), std::nullopt);
}

TEST(WfQueueTypes, WorksWithRegistryTid) {
  wf_queue_base<std::uint64_t> q(max_registered_threads);
  q.enqueue(7u);
  EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(7u));
}

}  // namespace
}  // namespace kpq
