// Tests for the sharded front-end: concept conformance, routing per
// policy, the work-stealing dequeue scan, per-shard counters, memory
// accounting flow-through, and a real-thread stress run validated with the
// per-shard FIFO partition of the whole-run checker.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "harness/workload.hpp"
#include "scale/sharded_queue.hpp"
#include "sync/spin_barrier.hpp"
#include "verify/fifo_checker.hpp"
#include "verify/history.hpp"

namespace kpq {
namespace {

using inner_q = wf_queue_opt<std::uint64_t>;
using sharded_wf = sharded_queue<inner_q>;

static_assert(mpmc_queue<sharded_wf>);
static_assert(mpmc_queue_autotid<sharded_wf>);
static_assert(bulk_mpmc_queue<sharded_wf>);
static_assert(mpmc_queue<sharded_queue<ms_queue<std::uint64_t>>>);

TEST(ShardedQueue, AffinityRoutesProducerToHomeShard) {
  sharded_wf q(/*shards=*/4, /*max_threads=*/8);
  q.enqueue(1, /*tid=*/0);  // 0 % 4 == 0
  q.enqueue(2, /*tid=*/5);  // 5 % 4 == 1
  q.enqueue(3, /*tid=*/6);  // 6 % 4 == 2
  EXPECT_EQ(q.shard(0).unsafe_size(), 1u);
  EXPECT_EQ(q.shard(1).unsafe_size(), 1u);
  EXPECT_EQ(q.shard(2).unsafe_size(), 1u);
  EXPECT_EQ(q.shard(3).unsafe_size(), 0u);
  EXPECT_EQ(q.unsafe_size(), 3u);
}

TEST(ShardedQueue, PerShardFifoForOneProducer) {
  sharded_wf q(4, 4);
  for (std::uint64_t i = 0; i < 100; ++i) q.enqueue(i, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(q.dequeue(1), std::optional<std::uint64_t>(i));
  }
  EXPECT_EQ(q.dequeue(1), std::nullopt);
}

TEST(ShardedQueue, DequeueScanStealsFromPeerShards) {
  sharded_wf q(2, 4);
  q.enqueue(42, 0);  // lands on shard 0
  // tid 1's home is shard 1 (empty) — the scan must wrap and steal.
  EXPECT_EQ(q.dequeue(1), std::optional<std::uint64_t>(42));
  const shard_stats s0 = q.shard_counters_snapshot(0);
  EXPECT_EQ(s0.dequeued, 1u);
  EXPECT_EQ(s0.stolen, 1u);
  EXPECT_DOUBLE_EQ(s0.steal_rate(), 1.0);
  // Home-shard hits are not steals.
  q.enqueue(7, 0);
  EXPECT_EQ(q.dequeue(0), std::optional<std::uint64_t>(7));
  EXPECT_EQ(q.shard_counters_snapshot(0).stolen, 1u);
}

TEST(ShardedQueue, EmptyScanVisitsEveryShardOnce) {
  sharded_wf q(8, 8);
  EXPECT_EQ(q.dequeue(3), std::nullopt);
  EXPECT_TRUE(q.empty_hint(3));
  EXPECT_EQ(q.shard_counters_snapshot(3).empty_scans, 1u);  // home of tid 3
  const shard_stats total = q.aggregate_counters();
  EXPECT_EQ(total.empty_scans, 1u);
  EXPECT_EQ(total.dequeued, 0u);
}

TEST(ShardedQueue, DepthCountersTrackLiveItems) {
  sharded_wf q(2, 2);
  for (std::uint64_t i = 0; i < 5; ++i) q.enqueue(i, 0);
  for (std::uint64_t i = 0; i < 3; ++i) q.enqueue(i, 1);
  (void)q.dequeue(0);
  (void)q.dequeue(0);
  EXPECT_EQ(q.shard_counters_snapshot(0).depth(), 3);
  EXPECT_EQ(q.shard_counters_snapshot(1).depth(), 3);
  EXPECT_EQ(q.aggregate_counters().depth(), 6);
  EXPECT_EQ(q.unsafe_size(), 6u);
}

TEST(ShardedQueue, RoundRobinSpreadsEnqueuesEvenly) {
  sharded_queue<inner_q, round_robin_shards> q(4, 2);
  for (std::uint64_t i = 0; i < 8; ++i) q.enqueue(i, 0);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(q.shard(s).unsafe_size(), 2u) << "shard " << s;
  }
}

TEST(ShardedQueue, KeyHashKeepsEqualKeysTogether) {
  // Values sharing value_tid (the default key) must land on one shard even
  // when enqueued by different threads.
  sharded_queue<inner_q, key_hash_shards<>> q(4, 4);
  q.enqueue(encode_value(/*key tid=*/7, 0), /*tid=*/0);
  q.enqueue(encode_value(7, 1), 1);
  q.enqueue(encode_value(7, 2), 2);
  std::uint32_t nonempty = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    if (q.shard(s).unsafe_size() > 0) {
      ++nonempty;
      EXPECT_EQ(q.shard(s).unsafe_size(), 3u);
    }
  }
  EXPECT_EQ(nonempty, 1u);
  // ... and per-key FIFO holds through the front-end.
  EXPECT_EQ(value_seq(*q.dequeue(3)), 0u);
  EXPECT_EQ(value_seq(*q.dequeue(3)), 1u);
  EXPECT_EQ(value_seq(*q.dequeue(3)), 2u);
}

TEST(ShardedQueue, BulkRoutesAsOneUnitAndCounts) {
  sharded_wf q(4, 4);
  std::vector<std::uint64_t> in{10, 11, 12, 13, 14, 15, 16, 17, 18, 19};
  q.enqueue_bulk(in.begin(), in.end(), /*tid=*/1);
  EXPECT_EQ(q.shard(1).unsafe_size(), 10u);  // whole batch on tid's shard
  shard_stats s1 = q.shard_counters_snapshot(1);
  EXPECT_EQ(s1.batch_ops, 1u);
  EXPECT_EQ(s1.batch_items, 10u);
  EXPECT_DOUBLE_EQ(s1.batch_fill(), 10.0);

  std::vector<std::uint64_t> out;
  EXPECT_EQ(q.dequeue_bulk(out, 6, 1), 6u);
  EXPECT_EQ(q.dequeue_bulk(out, 100, 1), 4u);
  EXPECT_EQ(out, in);  // batch FIFO preserved inside the shard
  EXPECT_EQ(q.dequeue_bulk(out, 1, 1), 0u);
}

TEST(ShardedQueue, BulkDequeueStealsAcrossShards) {
  sharded_wf q(2, 4);
  std::vector<std::uint64_t> a{1, 2}, b{3, 4};
  q.enqueue_bulk(a.begin(), a.end(), 0);  // shard 0
  q.enqueue_bulk(b.begin(), b.end(), 1);  // shard 1
  std::vector<std::uint64_t> out;
  EXPECT_EQ(q.dequeue_bulk(out, 10, 0), 4u);  // drains home, then steals
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(q.shard_counters_snapshot(1).stolen, 2u);
}

TEST(ShardedQueue, MemoryCountersFlowThroughToInnerQueues) {
  mem_counters mc;
  {
    sharded_wf q(4, 4, &mc);
    EXPECT_GT(mc.live_bytes(), 0);  // sentinels + initial descriptors
    const std::int64_t baseline = mc.live_bytes();
    for (std::uint64_t i = 0; i < 64; ++i) q.enqueue(i, i % 4);
    EXPECT_GT(mc.live_bytes(), baseline);
  }
  EXPECT_EQ(mc.live_bytes(), 0);  // destruction returns every byte
  EXPECT_EQ(mc.live_objects(), 0);
}

// Real-thread stress: per-shard FIFO and conservation. The affinity policy
// maps value_tid(v) % S to the shard a value lives on, so the recorded
// history can be partitioned per shard and each partition checked against
// full FIFO semantics; empty dequeues are checked against EVERY shard
// (an empty scan is only honest if each shard was empty when visited).
void sharded_stress(std::uint32_t shards, std::uint32_t threads,
                    std::uint64_t pairs) {
  sharded_wf q(shards, threads);
  history_recorder rec(threads);
  spin_barrier barrier(threads);
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      fast_rng rng = thread_stream(0xC0FFEE, t);
      barrier.arrive_and_wait();
      std::uint64_t seq = 0;
      for (std::uint64_t i = 0; i < pairs; ++i) {
        {
          auto s = rec.begin(t, op_kind::enq, encode_value(t, seq));
          q.enqueue(encode_value(t, seq), t);
          s.commit();
          ++seq;
        }
        if (rng.bernoulli(3, 4)) {  // deq 75%: leave a drain remainder
          auto s = rec.begin(t, op_kind::deq);
          auto v = q.dequeue(t);
          if (v) {
            s.set_value(*v);
          } else {
            s.set_empty();
          }
          s.commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Partition history and drain per shard; empty deqs go to all shards.
  std::vector<std::vector<op_event>> by_shard(shards);
  for (const op_event& e : rec.collect()) {
    if (e.kind == op_kind::deq && !e.ok) {
      for (auto& h : by_shard) h.push_back(e);
    } else {
      by_shard[value_tid(e.value) % shards].push_back(e);
    }
  }
  std::uint64_t drained_total = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::vector<std::uint64_t> drained;
    while (auto v = q.shard(s).dequeue(0)) drained.push_back(*v);
    drained_total += drained.size();
    auto r = fifo_checker::check(by_shard[s], drained);
    ASSERT_TRUE(r.ok) << "shard " << s << "/" << shards << ":\n"
                      << r.to_string();
  }
  const shard_stats total = q.aggregate_counters();
  EXPECT_EQ(total.enqueued, static_cast<std::uint64_t>(threads) * pairs);
  EXPECT_EQ(total.enqueued, total.dequeued + drained_total);
}

TEST(ShardedQueueStress, TwoShardsFourThreads) { sharded_stress(2, 4, 2000); }
TEST(ShardedQueueStress, FourShardsEightThreads) {
  sharded_stress(4, 8, 1200);
}
TEST(ShardedQueueStress, EightShardsSixThreads) {
  sharded_stress(8, 6, 1200);
}

}  // namespace
}  // namespace kpq
