// Unit tests for the three reclamation domains: protection semantics,
// deferred frees, threshold scanning, and concurrent churn safety.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "reclaim/epoch.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "reclaim/leaky.hpp"

namespace kpq {
namespace {

struct tracked {
  static std::atomic<int> live;
  int payload;
  explicit tracked(int p = 0) : payload(p) { live.fetch_add(1); }
  ~tracked() { live.fetch_sub(1); }
};
std::atomic<int> tracked::live{0};

void delete_tracked(void* /*ctx*/, void* p) { delete static_cast<tracked*>(p); }

class TrackedFixture : public ::testing::Test {
 protected:
  void SetUp() override { tracked::live.store(0); }
};

// ------------------------------------------------------------------ hazard

using HpFixture = TrackedFixture;

TEST_F(HpFixture, ProtectReturnsCurrentValue) {
  hp_domain d(2, 2);
  std::atomic<tracked*> src{new tracked(5)};
  auto g = d.enter(0);
  tracked* p = g.protect(0, src);
  EXPECT_EQ(p->payload, 5);
  EXPECT_EQ(d.announced(0, 0), p);
  g.clear(0);
  EXPECT_EQ(d.announced(0, 0), nullptr);
  delete src.load();
}

TEST_F(HpFixture, ProtectedObjectSurvivesRetire) {
  hp_domain d(2, 2, /*scan_threshold=*/1);  // scan on every retire
  std::atomic<tracked*> src{new tracked(1)};
  auto g0 = d.enter(0);
  tracked* p = g0.protect(0, src);

  // Thread 1 swaps the pointer out and retires the old one; the scan runs
  // immediately but must keep `p` alive because thread 0 announces it.
  src.store(new tracked(2));
  d.retire(1, p, &delete_tracked, nullptr);
  EXPECT_EQ(tracked::live.load(), 2) << "retired-but-protected object freed";
  EXPECT_EQ(p->payload, 1);  // still dereferenceable

  g0.clear(0);
  // Another retirement triggers a scan that can now free `p`.
  d.retire(1, src.exchange(nullptr), &delete_tracked, nullptr);
  EXPECT_EQ(tracked::live.load(), 0);
}

TEST_F(HpFixture, GuardDestructorClearsAllSlots) {
  hp_domain d(1, 3);
  std::atomic<tracked*> src{new tracked(9)};
  {
    auto g = d.enter(0);
    g.protect(0, src);
    g.protect(1, src);
    g.protect_raw(2, src.load());
  }
  for (std::uint32_t s = 0; s < 3; ++s) EXPECT_EQ(d.announced(0, s), nullptr);
  delete src.load();
}

TEST_F(HpFixture, DomainDestructorDrainsRetired) {
  {
    hp_domain d(1, 1, /*scan_threshold=*/1000);  // never scans
    for (int i = 0; i < 10; ++i) {
      d.retire(0, new tracked(i), &delete_tracked, nullptr);
    }
    EXPECT_EQ(tracked::live.load(), 10);
  }
  EXPECT_EQ(tracked::live.load(), 0);
}

TEST_F(HpFixture, ThresholdTriggersScan) {
  hp_domain d(1, 1, /*scan_threshold=*/8);
  for (int i = 0; i < 32; ++i) {
    d.retire(0, new tracked(i), &delete_tracked, nullptr);
  }
  EXPECT_GT(d.freed_count(), 0u);
  EXPECT_EQ(d.retired_count(), 32u);
  EXPECT_LT(tracked::live.load(), 32);
}

TEST_F(HpFixture, ProtectFollowsConcurrentSwaps) {
  // The validation loop must never return a value that was not in `src` at
  // announcement time. Churn the source from another thread and verify the
  // protected object is always dereferenceable with a sane payload.
  hp_domain d(2, 1, /*scan_threshold=*/4);
  std::atomic<tracked*> src{new tracked(0)};
  std::atomic<bool> stop{false};

  std::thread churner([&] {
    for (int i = 1; i < 4000; ++i) {
      tracked* fresh = new tracked(i);
      tracked* old = src.exchange(fresh);
      d.retire(1, old, &delete_tracked, nullptr);
    }
    stop.store(true);
  });

  std::uint64_t reads = 0;
  // Single-core schedulers may run the churner to completion first; insist
  // on a minimum number of protected reads either way.
  while (reads < 500 || !stop.load()) {
    auto g = d.enter(0);
    tracked* p = g.protect(0, src);
    // Dereference: ASan/valgrind would flag use-after-free instantly; the
    // payload bound checks heap sanity without them.
    ASSERT_GE(p->payload, 0);
    ASSERT_LT(p->payload, 4000);
    ++reads;
  }
  churner.join();
  EXPECT_GT(reads, 0u);
  delete src.exchange(nullptr);
}

// ------------------------------------------------------------------- epoch

using EpochFixture = TrackedFixture;

TEST_F(EpochFixture, RetireFreesAfterQuiescence) {
  epoch_domain d(2, 0, /*flush_threshold=*/1);
  for (int i = 0; i < 100; ++i) {
    d.retire(0, new tracked(i), &delete_tracked, nullptr);
  }
  // No guards active: epochs advance freely; most buckets must have drained.
  EXPECT_GT(d.freed_count(), 0u);
}

TEST_F(EpochFixture, ActiveGuardBlocksReclamation) {
  epoch_domain d(2, 0, /*flush_threshold=*/1);
  std::atomic<tracked*> src{new tracked(7)};
  auto g = d.enter(0);  // pins the current epoch
  tracked* p = g.protect(0, src);

  src.store(new tracked(8));
  for (int i = 0; i < 50; ++i) {
    d.retire(1, new tracked(100 + i), &delete_tracked, nullptr);
  }
  d.retire(1, p, &delete_tracked, nullptr);
  d.try_advance(1);
  d.try_advance(1);
  // p was retired at an epoch >= our pin; with the pin held the epoch
  // cannot advance two steps past it, so p must still be alive.
  EXPECT_EQ(p->payload, 7);
  delete src.exchange(nullptr);
}

TEST_F(EpochFixture, EpochAdvancesWhenAllActiveCaughtUp) {
  epoch_domain d(2, 0, /*flush_threshold=*/1);
  const std::uint64_t e0 = d.epoch();
  d.retire(0, new tracked(1), &delete_tracked, nullptr);
  d.retire(0, new tracked(2), &delete_tracked, nullptr);
  d.retire(0, new tracked(3), &delete_tracked, nullptr);
  EXPECT_GT(d.epoch(), e0);
}

TEST_F(EpochFixture, NestedGuardsUnpinOnlyAtOutermostExit) {
  epoch_domain d(1, 0, /*flush_threshold=*/1);
  {
    auto outer = d.enter(0);
    {
      auto inner = d.enter(0);
    }
    // Outer still active: retiring from a hypothetical second thread could
    // not advance 2 epochs — here we just check no crash and that exit is
    // clean.
    std::atomic<tracked*> src{new tracked(1)};
    tracked* p = outer.protect(0, src);
    EXPECT_EQ(p->payload, 1);
    delete src.load();
  }
  SUCCEED();
}

TEST_F(EpochFixture, ConcurrentChurnIsSafe) {
  epoch_domain d(2, 0, /*flush_threshold=*/8);
  std::atomic<tracked*> src{new tracked(0)};
  std::atomic<bool> stop{false};

  std::thread churner([&] {
    for (int i = 1; i < 3000; ++i) {
      tracked* fresh = new tracked(i);
      tracked* old = src.exchange(fresh);
      d.retire(1, old, &delete_tracked, nullptr);
    }
    stop.store(true);
  });

  while (!stop.load()) {
    auto g = d.enter(0);
    tracked* p = g.protect(0, src);
    ASSERT_GE(p->payload, 0);
    ASSERT_LT(p->payload, 3000);
  }
  churner.join();
  delete src.exchange(nullptr);
}

// ------------------------------------------------------------------- leaky

using LeakyFixture = TrackedFixture;

TEST_F(LeakyFixture, NothingFreedUntilDestruction) {
  {
    leaky_domain d(1, 0);
    for (int i = 0; i < 25; ++i) {
      d.retire(0, new tracked(i), &delete_tracked, nullptr);
    }
    EXPECT_EQ(tracked::live.load(), 25);
    EXPECT_EQ(d.freed_count(), 0u);
    EXPECT_EQ(d.retired_count(), 25u);
  }
  EXPECT_EQ(tracked::live.load(), 0);
}

TEST_F(LeakyFixture, ProtectIsPlainLoad) {
  leaky_domain d(1, 0);
  std::atomic<tracked*> src{new tracked(3)};
  auto g = d.enter(0);
  EXPECT_EQ(g.protect(0, src)->payload, 3);
  delete src.load();
}

}  // namespace
}  // namespace kpq
