// bounded_wf_queue: the hard memory ceiling and the three full-queue
// policies, exercised deterministically single-threaded and under real MPMC
// contention (the ceiling assertion sampled from every producer iteration),
// plus the block-policy shutdown drain mirroring blocking_adapter_test and
// the sharded-over-bounded composition.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "scale/sharded_queue.hpp"
#include "storage/bounded_wf_queue.hpp"

namespace kpq {
namespace {

using bq = bounded_wf_queue<std::uint64_t>;
using inner_q = bq::inner_type;

constexpr std::size_t kSeg = inner_q::storage_type::max_alloc_bytes;

/// The admission headroom the constructor computes — tests size ceilings as
/// "construction footprint + headroom + k segments".
std::size_t headroom_for(std::uint32_t n, const bounded_config& cfg) {
  return static_cast<std::size_t>(n) *
         (kSeg + cfg.desc_slack_per_thread * sizeof(inner_q::desc_type));
}

/// Construction footprint of a bounded queue for `n` threads (sentinel
/// segment + per-thread descriptors), measured on a throwaway instance.
std::size_t footprint_for(std::uint32_t n) {
  bounded_config big{.max_bytes = std::size_t{1} << 24};
  bq probe(n, big);
  return static_cast<std::size_t>(probe.live_bytes());
}

// --------------------------------------------------------------- reject

TEST(BoundedReject, CapsThenRecoversAfterDrain) {
  constexpr std::uint32_t n = 2;
  bounded_config cfg{.max_bytes = 0, .policy = full_policy::reject};
  cfg.max_bytes = footprint_for(n) + headroom_for(n, cfg) + 4 * kSeg;
  bq q(n, cfg);

  // Fill to rejection; the ceiling must hold at every step.
  std::uint64_t admitted = 0;
  while (q.try_enqueue(admitted, 0)) {
    ++admitted;
    ASSERT_LE(q.live_bytes(), static_cast<std::int64_t>(cfg.max_bytes));
    ASSERT_LT(admitted, 100000u) << "ceiling never reached";
  }
  EXPECT_GT(admitted, 0u);
  EXPECT_EQ(q.stats().admitted, admitted);
  EXPECT_EQ(q.stats().rejected, 1u);
  EXPECT_LE(q.live_bytes(), static_cast<std::int64_t>(cfg.max_bytes));

  // Drain in FIFO order; segment reclamation returns budget, so the queue
  // must accept again.
  for (std::uint64_t i = 0; i < admitted; ++i) {
    auto v = q.dequeue(1);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue(1).has_value());
  EXPECT_TRUE(q.try_enqueue(999, 0));
  EXPECT_LE(q.live_bytes(), static_cast<std::int64_t>(cfg.max_bytes));
}

TEST(BoundedReject, CeilingHoldsUnderMpmcContention) {
  constexpr std::uint32_t kProducers = 2;
  constexpr std::uint32_t n = kProducers + 1;
  bounded_config cfg{.max_bytes = 0, .policy = full_policy::reject};
  cfg.max_bytes = footprint_for(n) + headroom_for(n, cfg) + 8 * kSeg;
  bq q(n, cfg);

  constexpr std::uint64_t kAttempts = 20000;
  std::atomic<std::uint64_t> enq_ok{0}, violations{0};
  std::atomic<bool> producing{true};

  std::vector<std::thread> prod;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    prod.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kAttempts; ++i) {
        if (q.try_enqueue(i, p)) enq_ok.fetch_add(1);
        if (q.live_bytes() > static_cast<std::int64_t>(cfg.max_bytes)) {
          violations.fetch_add(1);
        }
      }
    });
  }
  std::thread cons([&] {
    while (producing.load(std::memory_order_relaxed)) {
      (void)q.dequeue(kProducers);
    }
  });
  for (auto& t : prod) t.join();
  producing.store(false);
  cons.join();
  while (q.dequeue(0).has_value()) {
  }

  EXPECT_EQ(violations.load(), 0u) << "live bytes exceeded the ceiling";
  EXPECT_GT(enq_ok.load(), 0u);
  const auto st = q.stats();
  EXPECT_EQ(st.admitted, enq_ok.load());
  EXPECT_EQ(st.admitted + st.rejected, kProducers * kAttempts);
}

// ---------------------------------------------------------------- block

TEST(BoundedBlock, ProducerBlocksUntilConsumerMakesRoom) {
  constexpr std::uint32_t n = 2;
  bounded_config cfg{.max_bytes = 0, .policy = full_policy::block};
  const std::size_t h = headroom_for(n, cfg);
  cfg.max_bytes = footprint_for(n) + h + 2 * kSeg;
  bq q(n, cfg);

  // Far more values than the ceiling can hold at once: the producer MUST
  // block at least once; the consumer's drain must release it.
  constexpr std::uint64_t kValues = 2000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kValues; ++i) {
      ASSERT_TRUE(q.try_enqueue(i, 0));
      ASSERT_LE(q.live_bytes(), static_cast<std::int64_t>(cfg.max_bytes));
    }
  });

  // Wait until the producer is actually wedged against the ceiling before
  // draining, so the blocking path is exercised for real.
  while (q.live_bytes() + static_cast<std::int64_t>(h) <=
         static_cast<std::int64_t>(cfg.max_bytes)) {
    std::this_thread::yield();
  }
  std::uint64_t expect = 0;
  while (expect < kValues) {
    if (auto v = q.dequeue(1)) {
      ASSERT_EQ(*v, expect);  // single producer: strict FIFO
      ++expect;
    }
  }
  producer.join();
  EXPECT_GE(q.stats().block_waits, 1u);
  EXPECT_EQ(q.stats().admitted, kValues);
  EXPECT_EQ(q.stats().rejected, 0u);
}

TEST(BoundedBlock, CloseUnblocksProducersAndDrains) {
  constexpr std::uint32_t n = 2;
  bounded_config cfg{.max_bytes = 0, .policy = full_policy::block};
  const std::size_t h = headroom_for(n, cfg);
  cfg.max_bytes = footprint_for(n) + h + 2 * kSeg;
  bq q(n, cfg);

  std::atomic<std::uint64_t> admitted{0};
  std::atomic<bool> got_false{false};
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < 100000; ++i) {
      if (!q.try_enqueue(i, 0)) {
        got_false.store(true);  // woken by close(), not by room
        break;
      }
      admitted.fetch_add(1);
    }
  });

  // Let it wedge against the ceiling, then shut down — the shutdown path
  // blocking_adapter_test checks for empty-waits, here for full-waits.
  while (q.live_bytes() + static_cast<std::int64_t>(h) <=
         static_cast<std::int64_t>(cfg.max_bytes)) {
    std::this_thread::yield();
  }
  q.close();
  producer.join();
  EXPECT_TRUE(got_false.load());
  EXPECT_TRUE(q.closed());

  // Every admitted element is still there, in FIFO order: close() affects
  // producers only.
  for (std::uint64_t i = 0; i < admitted.load(); ++i) {
    auto v = q.dequeue(1);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue(1).has_value());
}

// ----------------------------------------------------- overwrite_oldest

TEST(BoundedOverwrite, DropsOldestKeepsNewestSuffix) {
  constexpr std::uint32_t n = 1;
  bounded_config cfg{.max_bytes = 0,
                     .policy = full_policy::overwrite_oldest};
  cfg.max_bytes = footprint_for(n) + headroom_for(n, cfg) + 3 * kSeg;
  bq q(n, cfg);

  constexpr std::uint64_t kValues = 3000;
  for (std::uint64_t i = 0; i < kValues; ++i) {
    ASSERT_TRUE(q.try_enqueue(i, 0));
    ASSERT_LE(q.live_bytes(), static_cast<std::int64_t>(cfg.max_bytes));
  }
  const auto st = q.stats();
  EXPECT_EQ(st.admitted, kValues);
  EXPECT_GT(st.overwritten, 0u);
  EXPECT_EQ(st.rejected, 0u);

  // What remains must be the newest contiguous suffix: drops always come
  // from the head.
  std::vector<std::uint64_t> rest;
  while (auto v = q.dequeue(0)) rest.push_back(*v);
  ASSERT_FALSE(rest.empty());
  EXPECT_EQ(rest.size() + st.overwritten, kValues);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    ASSERT_EQ(rest[i], kValues - rest.size() + i);
  }
}

TEST(BoundedOverwrite, DegradesToRejectWhenEmptyButOverCeiling) {
  // Minimum legal ceiling: construction footprint + headroom exactly. Once
  // a second segment exists, live stays above the admission line even with
  // the queue EMPTY (spare/pending segments hold the bytes) — the policy
  // must drain, find nothing left to drop, and reject rather than exceed.
  constexpr std::uint32_t n = 1;
  bounded_config cfg{.max_bytes = 0,
                     .policy = full_policy::overwrite_oldest};
  cfg.max_bytes = footprint_for(n) + headroom_for(n, cfg);
  bq q(n, cfg);

  bool saw_reject = false;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const bool ok = q.try_enqueue(i, 0);
    ASSERT_LE(q.live_bytes(), static_cast<std::int64_t>(cfg.max_bytes));
    if (!ok) {
      saw_reject = true;
      break;
    }
  }
  ASSERT_TRUE(saw_reject) << "never hit the degradation path";
  const auto st = q.stats();
  EXPECT_GE(st.rejected, 1u);
  EXPECT_GT(st.overwritten, 0u);  // it drained before giving up
  EXPECT_FALSE(q.dequeue(0).has_value());  // and really is empty
}

// ------------------------------------------------ sharded-over-bounded

TEST(BoundedSharded, ComposesThroughTheFactoryConstructor) {
  constexpr std::uint32_t kShards = 2, n = 2;
  bounded_config cfg{.max_bytes = std::size_t{1} << 22,
                     .policy = full_policy::reject};
  sharded_queue<bq> q(kShards, n, [&](std::uint32_t) {
    return std::make_unique<bq>(n, cfg);
  });

  constexpr std::uint64_t kPerTid = 500;
  for (std::uint64_t i = 0; i < kPerTid; ++i) {
    q.enqueue(i, 0);
    q.enqueue(kPerTid + i, 1);
  }
  // Per-shard ceilings bound the TOTAL at kShards * max_bytes.
  std::int64_t total_live = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_LE(q.shard(s).live_bytes(),
              static_cast<std::int64_t>(cfg.max_bytes));
    total_live += q.shard(s).live_bytes();
  }
  EXPECT_LE(total_live, static_cast<std::int64_t>(kShards * cfg.max_bytes));

  std::uint64_t got = 0, sum = 0;
  while (auto v = q.dequeue(0)) {
    ++got;
    sum += *v;
  }
  EXPECT_EQ(got, 2 * kPerTid);
  EXPECT_EQ(sum, (2 * kPerTid) * (2 * kPerTid - 1) / 2);
  EXPECT_EQ(q.shard(0).stats().admitted + q.shard(1).stats().admitted,
            2 * kPerTid);
}

}  // namespace
}  // namespace kpq
