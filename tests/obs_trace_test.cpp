// Trace ring and trace domain: wrap-around exactness, concurrent writers on
// distinct rings, drain-at-quiescence, recorder policies, and the derived
// wait-freedom metrics over both synthetic and real (traced wf_queue)
// event streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/wf_queue.hpp"
#include "obs/trace_ring.hpp"
#include "obs/wf_metrics.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq::obs {
namespace {

TEST(ObsTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(trace_ring(2).capacity(), 2u);
  EXPECT_EQ(trace_ring(3).capacity(), 4u);
  EXPECT_EQ(trace_ring(1000).capacity(), 1024u);
  EXPECT_EQ(trace_ring(1024).capacity(), 1024u);
  EXPECT_GE(trace_ring(0).capacity(), 2u);  // degenerate sizes still usable
}

TEST(ObsTraceRing, DrainAtQuiescenceIsExact) {
  trace_ring ring(64);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.record(trace_kind::enq_publish, /*tid=*/1, /*phase=*/i, /*aux=*/i);
  }
  EXPECT_EQ(ring.written(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);

  std::vector<trace_event> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].phase, static_cast<std::int64_t>(i));
    EXPECT_EQ(out[i].aux, i);
    EXPECT_EQ(out[i].tid, 1u);
    EXPECT_EQ(out[i].kind, trace_kind::enq_publish);
    if (i > 0) {
      EXPECT_GE(out[i].ts, out[i - 1].ts);  // owner order = time order
    }
  }
}

TEST(ObsTraceRing, WrapAroundKeepsNewestAndCountsDropped) {
  trace_ring ring(8);  // capacity exactly 8
  const std::uint64_t total = 8 + 5;
  for (std::uint64_t i = 0; i < total; ++i) {
    ring.record(trace_kind::deq_publish, 0, static_cast<std::int64_t>(i), 0);
  }
  EXPECT_EQ(ring.written(), total);
  EXPECT_EQ(ring.dropped(), 5u);

  std::vector<trace_event> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);
  // Retained suffix: events 5..12, oldest first.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].phase, static_cast<std::int64_t>(5 + i));
  }
}

TEST(ObsTraceRing, ResetForgetsEverything) {
  trace_ring ring(8);
  ring.record(trace_kind::retire, 0, 0, 0);
  ring.reset();
  EXPECT_EQ(ring.written(), 0u);
  std::vector<trace_event> out;
  ring.drain(out);
  EXPECT_TRUE(out.empty());
}

TEST(ObsTraceDomain, ConcurrentWritersOnDistinctRingsLoseNothing) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kEvents = 5000;
  trace_domain domain(kThreads, /*capacity_per_thread=*/8192);

  spin_barrier barrier(kThreads);
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (std::uint32_t i = 0; i < kEvents; ++i) {
        domain.record(t, trace_kind::enq_publish, i, i);
      }
    });
  }
  for (auto& w : workers) w.join();

  std::uint64_t dropped = 0;
  const auto events = domain.drain_all(&dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kEvents);

  // Per-thread: exactly kEvents events, sequence numbers in order (drain_all
  // sorts by timestamp with a stable sort, so equal-tick events from one
  // ring keep their recording order).
  std::vector<std::uint32_t> next(kThreads, 0);
  std::vector<std::uint64_t> count(kThreads, 0);
  for (const trace_event& e : events) {
    ASSERT_LT(e.tid, kThreads);
    EXPECT_EQ(e.aux, next[e.tid]++);
    ++count[e.tid];
  }
  for (std::uint32_t t = 0; t < kThreads; ++t) EXPECT_EQ(count[t], kEvents);
}

TEST(ObsTraceDomain, DrainAllMergesSortedByTimestamp) {
  trace_domain domain(2, 64);
  domain.record(0, trace_kind::enq_publish, 1, 0);
  domain.record(1, trace_kind::deq_publish, 2, 0);
  domain.record(0, trace_kind::enq_complete, 1, 0);
  const auto events = domain.drain_all();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts, events[i - 1].ts);
  }
}

TEST(ObsTracePolicies, NoTraceIsDisabledAndInert) {
  static_assert(!no_trace::enabled);
  no_trace::record(0, trace_kind::retire, 0, 0);  // links, does nothing
#if defined(KPQ_TRACE)
  static_assert(default_trace::enabled);
#else
  static_assert(!default_trace::enabled);
#endif
}

TEST(ObsTracePolicies, RingTraceRecordsIntoGlobalDomain) {
  static_assert(ring_trace::enabled);
  global_trace().reset();
  ring_trace::record(3, trace_kind::help_start, 7, 1);
  ring_trace::record(3, trace_kind::help_finish, 7, 1);
  const auto events = global_trace().drain_all();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, trace_kind::help_start);
  EXPECT_EQ(events[0].tid, 3u);
  EXPECT_EQ(events[0].phase, 7);
  EXPECT_EQ(events[1].kind, trace_kind::help_finish);
  global_trace().reset();
}

// ------------------------------------------------------- derived metrics

TEST(ObsWfMetrics, AnalyzeSyntheticStream) {
  // Hand-built stream: two ops; op B completes while the frontier has moved
  // 2 phases past it; one helping episode of 100 ticks.
  std::vector<trace_event> ev;
  auto push = [&](std::uint64_t ts, trace_kind k, std::uint32_t tid,
                  std::int64_t phase, std::uint32_t aux) {
    trace_event e;
    e.ts = ts;
    e.kind = k;
    e.tid = tid;
    e.phase = phase;
    e.aux = aux;
    ev.push_back(e);
  };
  push(10, trace_kind::enq_publish, 0, 1, 0);
  push(20, trace_kind::deq_publish, 1, 2, 0);
  push(30, trace_kind::enq_publish, 2, 3, 0);
  push(40, trace_kind::help_start, 1, 1, 0);    // t1 helps t0's phase-1 op
  push(140, trace_kind::help_finish, 1, 1, 0);
  push(150, trace_kind::enq_complete, 0, 1, 0);  // lag = 3 - 1 = 2
  push(160, trace_kind::deq_complete, 1, 2, 1);  // lag = 1, hit
  push(170, trace_kind::retire, 1, 0, 0);

  const wf_trace_report r = analyze_trace(ev);
  EXPECT_EQ(r.enq_ops, 1u);
  EXPECT_EQ(r.deq_ops, 1u);
  EXPECT_EQ(r.empty_deqs, 0u);
  EXPECT_EQ(r.help_episodes, 1u);
  EXPECT_EQ(r.unmatched_helps, 0u);
  EXPECT_EQ(r.retires, 1u);
  EXPECT_EQ(r.max_phase_seen, 3);
  EXPECT_DOUBLE_EQ(r.helped_per_op(), 0.5);
  // 100-tick episode lands in the (64,128] bucket => upper bound 127.
  EXPECT_EQ(r.help_latency.quantile_upper_bound(1.0), 127u);
  // Lags 2 and 1: p100 upper bound covers lag 2 (bucket (1,2], bound 2...
  // log2 bucket of 2 is bucket 2 with upper bound 3).
  EXPECT_GE(r.phase_lag.quantile_upper_bound(1.0), 2u);
  EXPECT_EQ(r.phase_lag.total(), 2u);
}

TEST(ObsWfMetrics, UnmatchedHelpStartsAreCounted) {
  std::vector<trace_event> ev(1);
  ev[0].kind = trace_kind::help_start;
  ev[0].tid = 0;
  ev[0].ts = 5;
  const wf_trace_report r = analyze_trace(ev);
  EXPECT_EQ(r.help_episodes, 0u);
  EXPECT_EQ(r.unmatched_helps, 1u);
}

TEST(ObsWfMetrics, EmptyTraceYieldsAllZeroFiniteReport) {
  const wf_trace_report r = analyze_trace({});
  EXPECT_EQ(r.ops(), 0u);
  EXPECT_EQ(r.helped_per_op(), 0.0);  // n==0 guard: no NaN
  EXPECT_EQ(r.help_latency.quantile_upper_bound(0.99), 0u);
}

// ---------------------------------------------- traced queue, end to end

TEST(ObsTracedQueue, SingleThreadedCountsAreExact) {
  using Q = wf_queue<std::uint64_t, help_all, scan_max_phase, hp_domain,
                     wf_options_traced>;
  global_trace().reset();
  constexpr std::uint64_t kOps = 200;
  {
    Q q(2);
    for (std::uint64_t i = 0; i < kOps; ++i) {
      q.enqueue(i, 0);
      ASSERT_EQ(q.dequeue(0), std::optional<std::uint64_t>(i));
    }
    EXPECT_FALSE(q.dequeue(0).has_value());
  }
  std::uint64_t dropped = 0;
  const auto events = global_trace().drain_all(&dropped);
  const wf_trace_report r = analyze_trace(events, dropped);
  EXPECT_EQ(r.enq_ops, kOps);
  EXPECT_EQ(r.deq_ops, kOps + 1);
  EXPECT_EQ(r.empty_deqs, 1u);
  EXPECT_EQ(r.help_episodes, 0u);  // nobody to help single-threaded
  EXPECT_EQ(r.dropped_events, 0u);
  // Every dequeued node is eventually retired by the head swing.
  EXPECT_EQ(r.retires, kOps);
  global_trace().reset();
}

TEST(ObsTracedQueue, ConcurrentRunProducesConsistentTrace) {
  using Q = wf_queue<std::uint64_t, help_one, fetch_add_phase, hp_domain,
                     wf_options_traced>;
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kIters = 2000;
  global_trace().reset();
  {
    Q q(kThreads);
    spin_barrier barrier(kThreads);
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        barrier.arrive_and_wait();
        for (std::uint64_t i = 0; i < kIters; ++i) {
          q.enqueue(i, t);
          (void)q.dequeue(t);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  std::uint64_t dropped = 0;
  const auto events = global_trace().drain_all(&dropped);
  const wf_trace_report r = analyze_trace(events, dropped, kThreads);
  if (dropped == 0) {
    EXPECT_EQ(r.enq_ops, kThreads * kIters);
    EXPECT_EQ(r.deq_ops, kThreads * kIters);
  } else {
    EXPECT_GT(r.ops(), 0u);  // wrap: still a consistent suffix
  }
  // Phase lag was recorded for every completion seen.
  EXPECT_EQ(r.phase_lag.total(), r.ops());
  // The dense-id overloads were never used: tids stay < kThreads.
  for (const trace_event& e : events) EXPECT_LT(e.tid, kThreads);
  global_trace().reset();
}

}  // namespace
}  // namespace kpq::obs
