// Shape regressions: miniature versions of the paper's experiments whose
// *qualitative* outcomes are stable enough to assert in CI. Absolute
// timings are hardware-dependent; these invariants are not:
//
//   * Figure 10's asymptote: the per-node space ratio approaches
//     sizeof(wf_node)/sizeof(ms_node) = 1.5 as the queue grows;
//   * Figure 7/9's ordering: the lock-free queue completes the pairs
//     workload faster than the base wait-free queue at oversubscription
//     (the paper's universal observation outside the CentOS anomaly), and
//     the fully-optimized variant does not lose to the base variant by any
//     meaningful margin;
//   * fps ordering: the fast-path/slow-path queue lands between LF and the
//     announce-always variants.
//
// Timing-based checks use generous margins (2x) so scheduler noise on
// loaded CI machines cannot flip them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/ms_queue.hpp"
#include "core/wf_queue.hpp"
#include "core/wf_queue_fps.hpp"
#include "harness/mem_tracker.hpp"
#include "harness/timing.hpp"
#include "harness/workload.hpp"
#include "sync/spin_barrier.hpp"

namespace kpq {
namespace {

template <typename Q>
double pairs_seconds_once(std::uint32_t threads, std::uint64_t iters) {
  Q q(threads);
  spin_barrier barrier(threads + 1);
  std::vector<std::thread> workers;
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < iters; ++i) {
        q.enqueue(encode_value(tid, i), tid);
        (void)q.dequeue(tid);
      }
    });
  }
  barrier.arrive_and_wait();
  stopwatch sw;
  for (auto& w : workers) w.join();
  return sw.elapsed_s();
}

/// Best-of-3: the minimum is the standard noise-robust estimator for
/// timing comparisons on shared machines.
template <typename Q>
double pairs_seconds(std::uint32_t threads, std::uint64_t iters) {
  double best = pairs_seconds_once<Q>(threads, iters);
  for (int r = 0; r < 2; ++r) {
    best = std::min(best, pairs_seconds_once<Q>(threads, iters));
  }
  return best;
}

TEST(ShapeRegression, Figure10SpaceRatioApproachesOnePointFive) {
  // Deterministic: counts bytes, not time. 50k elements is deep into the
  // node-dominated regime.
  constexpr std::uint64_t kSize = 50000;
  mem_counters lf_mc, wf_mc;
  {
    ms_queue<std::uint64_t> lf(2, &lf_mc);
    for (std::uint64_t i = 0; i < kSize; ++i) lf.enqueue(i, 0);
    wf_queue_base<std::uint64_t> wf(2, &wf_mc);
    for (std::uint64_t i = 0; i < kSize; ++i) wf.enqueue(i, 0);

    const double ratio = static_cast<double>(wf_mc.live_bytes()) /
                         static_cast<double>(lf_mc.live_bytes());
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 1.7);
  }
  EXPECT_EQ(lf_mc.live_bytes(), 0);
  EXPECT_EQ(wf_mc.live_bytes(), 0);
}

TEST(ShapeRegression, NodeSizesExplainThePaperAsymptote) {
  // The paper attributes the 1.5x to the enqTid/deqTid fields; pin the
  // layouts so a future field addition is a conscious decision.
  EXPECT_EQ(sizeof(ms_queue<std::uint64_t>::node), 16u);
  EXPECT_EQ(sizeof(wf_node<std::uint64_t>), 24u);
}

TEST(ShapeRegression, LockFreeBeatsBaseWaitFreeOnPairs) {
  const double lf = pairs_seconds<ms_queue<std::uint64_t>>(8, 3000);
  const double base_wf = pairs_seconds<wf_queue_base<std::uint64_t>>(8, 3000);
  EXPECT_LT(lf * 2.0, base_wf)
      << "LF should beat base WF by far more than 2x at oversubscription";
}

TEST(ShapeRegression, OptimizedVariantDoesNotLoseToBase) {
  // At 12 threads the scan/helping overhead separates the variants; allow
  // the optimized one up to 1.3x of base to absorb noise (it is typically
  // ~0.6-0.9x).
  const double base_wf =
      pairs_seconds<wf_queue_base<std::uint64_t>>(12, 5000);
  const double opt_wf = pairs_seconds<wf_queue_opt<std::uint64_t>>(12, 5000);
  EXPECT_LT(opt_wf, base_wf * 1.3);
}

TEST(ShapeRegression, FpsLandsBetweenLfAndAnnounceAlways) {
  const double fps = pairs_seconds<wf_queue_fps<std::uint64_t>>(8, 3000);
  const double opt_wf = pairs_seconds<wf_queue_opt<std::uint64_t>>(8, 3000);
  EXPECT_LT(fps, opt_wf)
      << "the fast path should beat announce-on-every-operation";
}

}  // namespace
}  // namespace kpq
