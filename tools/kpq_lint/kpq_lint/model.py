"""Findings and the per-run configuration shared by every rule."""

from __future__ import annotations

import dataclasses
import hashlib
from typing import List, Optional


@dataclasses.dataclass
class Finding:
    rule: str        # "R1".."R4"
    path: str        # repo-relative, '/'-separated
    line: int
    col: int
    message: str
    fixit: str = ""  # human-readable fix-it hint

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching: rule + file + the access
        line's whitespace-normalized text. Survives re-numbering; collides
        only for identical violations on identical lines (then a count in
        the baseline entry covers it)."""
        return _fingerprint(self.rule, self.path, self.norm_line)

    norm_line: str = ""

    def to_json(self) -> dict:
        d = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.fixit:
            d["fixit"] = self.fixit
        return d

    def render(self) -> str:
        s = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.fixit:
            s += f"\n    fix-it: {self.fixit}"
        return s


def _fingerprint(rule: str, path: str, norm_line: str) -> str:
    h = hashlib.sha1()
    h.update(f"{rule}|{path}|{norm_line}".encode())
    return h.hexdigest()[:16]


def normalize_line(text: str) -> str:
    return " ".join(text.split())


@dataclasses.dataclass
class Config:
    """Which dirs each rule applies to (repo-relative prefixes)."""

    # R1a (explicit order required) — all first-party concurrent code.
    order_dirs: tuple = ("src/",)
    # R1b (kpq-order justification required on non-seq_cst accesses).
    annotate_dirs: tuple = ("src/core/", "src/reclaim/", "src/sync/",
                            "src/async/")
    # R2 wait-free hot paths. src/sync is the sanctioned blocking site and
    # is deliberately absent.
    pure_dirs: tuple = ("src/core/", "src/scale/", "src/storage/")
    # R3 hazard discipline: where nodes loaded from shared atomics live.
    hazard_dirs: tuple = ("src/core/", "src/storage/")
    # R4 hub discipline applies everywhere (a lock held across co_await is
    # a bug no matter the layer).
    hub_dirs: tuple = ("src/",)

    # Pointer-atomic member names treated as shared node sources for R3
    # even when their declaration is in another header.
    known_ptr_atomics: tuple = ("head_", "tail_", "next")


def in_dirs(path: str, prefixes) -> bool:
    return any(path.startswith(p) for p in prefixes)


@dataclasses.dataclass
class RunResult:
    findings: List[Finding]
    files_scanned: int
    files_from_cache: int
    frontend: str  # "token" | "libclang+token"
    error: Optional[str] = None
