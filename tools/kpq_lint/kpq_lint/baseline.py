"""Suppression baseline: checked-in findings that are tolerated, each with a
written justification. Policy (docs/STATIC_ANALYSIS.md): the baseline may
only shrink — a stale entry (its finding no longer fires) is itself an
error, so fixing a suppressed finding forces deleting its entry in the same
commit.

Format (tools/kpq_lint/baseline.json):

    {
      "version": 1,
      "entries": [
        {
          "rule": "R2",
          "path": "src/...",
          "fingerprint": "<16 hex chars from a findings --format json run>",
          "count": 1,
          "justification": "why this finding is tolerated"
        }
      ]
    }
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .model import Finding


class BaselineError(Exception):
    pass


def load(path: str) -> List[dict]:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if data.get("version") != 1:
        raise BaselineError(f"{path}: unsupported baseline version")
    entries = data.get("entries", [])
    for e in entries:
        for key in ("rule", "path", "fingerprint", "justification"):
            if not e.get(key):
                raise BaselineError(
                    f"{path}: baseline entry missing required `{key}` "
                    f"(every suppression needs a written justification): {e}"
                )
        e.setdefault("count", 1)
    return entries


def apply(
    findings: List[Finding], entries: List[dict]
) -> Tuple[List[Finding], List[dict]]:
    """Returns (unsuppressed findings, stale entries)."""
    budget: Dict[str, int] = {}
    for e in entries:
        budget[e["fingerprint"]] = budget.get(e["fingerprint"], 0) + int(
            e["count"]
        )
    remaining: List[Finding] = []
    used: Dict[str, int] = {}
    for f in findings:
        fp = f.fingerprint
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            used[fp] = used.get(fp, 0) + 1
        else:
            remaining.append(f)
    stale = [
        e
        for e in entries
        if used.get(e["fingerprint"], 0) == 0
    ]
    return remaining, stale


def render_stale(stale: List[dict]) -> str:
    lines = [
        "stale baseline entries (their findings no longer fire). The "
        "baseline must only shrink: delete these entries:",
    ]
    for e in stale:
        lines.append(
            f"  - {e['rule']} {e['path']} fingerprint={e['fingerprint']} "
            f"({e['justification']})"
        )
    return "\n".join(lines)
