"""Optional libclang (clang.cindex) supplement.

When python3-clang + libclang are installed, this front-end parses each TU
from compile_commands.json and adds the one class of finding the token
front-end cannot see precisely: *implicit* operator-form accesses on
std::atomic objects reached through arbitrary expressions (the token rules
only catch operators applied to atomics declared in the same file). All
other rules stay on the token front-end either way, so results are stable
across environments; this supplement can only add R1 findings.

The CI container and the dev image this repo targets do not ship libclang,
so availability is probed at runtime and the caller falls back silently
(reported in the run summary as frontend=token).
"""

from __future__ import annotations

from typing import List, Optional

from .model import Config, Finding, in_dirs, normalize_line


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    try:
        clang.cindex.Index.create()
    except Exception:  # libclang.so missing or incompatible
        return False
    return True


def analyze_tu(
    source: str,
    args: List[str],
    repo_root: str,
    cfg: Config,
) -> Optional[List[Finding]]:
    """R1 implicit-access findings for one translation unit, or None when
    libclang cannot parse it."""
    import clang.cindex as ci

    try:
        index = ci.Index.create()
        tu = index.parse(source, args=args)
    except Exception:
        return None

    findings: List[Finding] = []
    seen = set()

    def is_atomic_type(t) -> bool:
        name = t.get_canonical().spelling
        return name.startswith("std::atomic<") or name.startswith(
            "std::__atomic_base<"
        )

    def visit(node):
        # Operator-form accesses lower to member operator calls on the
        # atomic; an explicit .load()/.store() lowers to CXXMemberCallExpr
        # whose callee name we can whitelist.
        if node.kind in (
            ci.CursorKind.CXX_OPERATOR_CALL_EXPR,
            ci.CursorKind.BINARY_OPERATOR,
            ci.CursorKind.UNARY_OPERATOR,
        ):
            for child in node.get_children():
                if child.type is not None and is_atomic_type(child.type):
                    loc = node.location
                    if loc.file is None:
                        break
                    path = _rel(loc.file.name, repo_root)
                    if path is None or not in_dirs(path, cfg.order_dirs):
                        break
                    key = (path, loc.line, loc.column)
                    if key in seen:
                        break
                    seen.add(key)
                    findings.append(
                        Finding(
                            rule="R1",
                            path=path,
                            line=loc.line,
                            col=loc.column,
                            message=(
                                "operator-form access on a std::atomic is "
                                "an implicit seq_cst operation (libclang)"
                            ),
                            fixit=(
                                "use load/store/fetch_* with an explicit "
                                "memory_order"
                            ),
                            norm_line=normalize_line(_line_of(loc)),
                        )
                    )
                    break
        for child in node.get_children():
            visit(child)

    def _line_of(loc) -> str:
        try:
            with open(loc.file.name, encoding="utf-8") as f:
                return f.read().splitlines()[loc.line - 1]
        except (OSError, IndexError):
            return ""

    visit(tu.cursor)
    return findings


def _rel(path: str, repo_root: str) -> Optional[str]:
    import os

    p = os.path.realpath(path)
    root = os.path.realpath(repo_root)
    if not p.startswith(root + os.sep):
        return None
    return os.path.relpath(p, root).replace(os.sep, "/")
