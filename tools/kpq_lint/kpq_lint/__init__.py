"""kpq-lint: project-specific concurrency static analysis for the KP queue.

Rules (docs/STATIC_ANALYSIS.md has the full grammar and policy):

  R1 explicit-order   every std::atomic access in src/ names an explicit
                      memory_order, and every non-seq_cst access in the
                      annotated dirs carries a `kpq-order:` justification
                      comment naming its pairing site.
  R2 wait-free purity no blocking primitives or unannotated unbounded loops
                      inside the wait-free hot-path dirs (src/core, src/scale,
                      src/storage); src/sync is the sanctioned blocking site.
  R3 hazard discipline a raw pointer loaded from a shared pointer-atomic must
                      flow through hazard protect()/protect_raw() before it
                      is dereferenced in the same scope, or carry a
                      `kpq-hazard:` justification.
  R4 hub discipline   no lock held across a co_await / coroutine resume /
                      frame destroy (the PR 8 two-phase-notify shape).

Front-ends: libclang (clang.cindex) when importable — adds precise detection
of implicit (operator-form) atomic accesses — with a self-contained token
lexer as the always-available fallback. The container this repo builds in
ships no libclang, so the token front-end is the reference implementation
and the fixture suite pins its behaviour.
"""

__version__ = "1.0.0"

RULE_IDS = ("R1", "R2", "R3", "R4")

RULE_TITLES = {
    "R1": "explicit-order",
    "R2": "wait-free purity",
    "R3": "hazard discipline",
    "R4": "hub discipline",
}
