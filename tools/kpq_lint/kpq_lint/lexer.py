"""A small C++ lexer: good enough to reason about token adjacency.

Not a preprocessor and not a parser. It understands line/block comments,
character/string literals (including raw strings), and splits everything
else into identifier / number / punctuation tokens with line:col positions.
Comments are not tokens; they are collected per-line so rules can look up
`kpq-*:` annotations next to an access.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

# Longest-match punctuation table (C++ operators the rules care to keep
# whole; anything else falls through as single characters).
_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)

IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
IDENT_CONT = IDENT_START | frozenset("0123456789")


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "punct" | "string" | "char"
    text: str
    line: int  # 1-based
    col: int   # 1-based


class LexedFile:
    """Token stream plus the per-line comment map for one source file."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.lines = text.splitlines()
        self.tokens: List[Token] = []
        # line -> concatenated comment text starting on that line.
        self.comments: Dict[int, str] = {}
        self._lex(text)

    # -- comment-adjacency helpers -------------------------------------

    def comment_for(self, line: int, lookback: int = 4) -> str:
        """Comment text attached to `line`: the trailing comment on the line
        itself plus any run of immediately preceding comment-only lines
        (up to `lookback`). This is where `kpq-*:` annotations may live."""
        parts = []
        probe = line - 1
        steps = 0
        while probe >= 1 and steps < lookback and self._comment_only(probe):
            parts.insert(0, self.comments.get(probe, ""))
            probe -= 1
            steps += 1
        if line in self.comments:
            parts.append(self.comments[line])
        return "\n".join(parts)

    def _comment_only(self, line: int) -> bool:
        if line not in self.comments:
            return False
        return not any(t.line == line for t in self.tokens)

    # -- the lexer ------------------------------------------------------

    def _add_comment(self, line: int, text: str) -> None:
        if line in self.comments:
            self.comments[line] += "\n" + text
        else:
            self.comments[line] = text

    def _lex(self, text: str) -> None:  # kpq-lint itself is not linted :)
        i, n = 0, len(text)
        line, col = 1, 1
        toks = self.tokens

        def advance(k: int) -> None:
            nonlocal i, line, col
            for _ in range(k):
                if i < n and text[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1

        while i < n:
            c = text[i]
            if c in " \t\r\n":
                advance(1)
                continue
            # Line comment.
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                start = i
                start_line = line
                while i < n and text[i] != "\n":
                    advance(1)
                self._add_comment(start_line, text[start:i])
                continue
            # Block comment (attached to each line it spans).
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                start = i
                start_line = line
                advance(2)
                while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                    advance(1)
                advance(2 if i + 1 < n else n - i)
                for ln, chunk in enumerate(text[start:i].split("\n")):
                    self._add_comment(start_line + ln, chunk)
                continue
            # Raw string literal R"delim( ... )delim".
            if c == "R" and i + 1 < n and text[i + 1] == '"':
                j = i + 2
                while j < n and text[j] not in '("':
                    j += 1
                delim = text[i + 2 : j]
                closer = ")" + delim + '"'
                end = text.find(closer, j)
                end = (end + len(closer)) if end != -1 else n
                toks.append(Token("string", text[i:end], line, col))
                advance(end - i)
                continue
            # String / char literal.
            if c in "\"'":
                quote = c
                start = i
                start_line, start_col = line, col
                advance(1)
                while i < n and text[i] != quote:
                    advance(2 if text[i] == "\\" else 1)
                advance(1)
                toks.append(
                    Token(
                        "string" if quote == '"' else "char",
                        text[start:i],
                        start_line,
                        start_col,
                    )
                )
                continue
            # Identifier / keyword.
            if c in IDENT_START:
                start = i
                start_col = col
                while i < n and text[i] in IDENT_CONT:
                    advance(1)
                toks.append(Token("ident", text[start:i], line, start_col))
                continue
            # Number (coarse: consumes digit/alpha/dot/quote-separator runs).
            if c.isdigit():
                start = i
                start_col = col
                while i < n and (text[i] in IDENT_CONT or text[i] in ".'"):
                    advance(1)
                toks.append(Token("number", text[start:i], line, start_col))
                continue
            # Punctuation, longest match first.
            matched = None
            for table in (_PUNCT3, _PUNCT2):
                for p in table:
                    if text.startswith(p, i):
                        matched = p
                        break
                if matched:
                    break
            if matched is None:
                matched = c
            toks.append(Token("punct", matched, line, col))
            advance(len(matched))
