"""kpq-lint command line driver.

    python3 -m kpq_lint --repo . --build-dir build
    python3 -m kpq_lint --format json src/core/wf_queue.hpp

Walks compile_commands.json (the documented build contract: configure with
CMAKE_EXPORT_COMPILE_COMMANDS=ON, which the top-level CMakeLists does
unconditionally) to find the project's translation units, adds the header
set under src/ (headers carry almost all of this header-only library's
code), runs R1-R4 on each file, subtracts the checked-in baseline, and
exits non-zero on any unsuppressed or stale finding.

Exit codes: 0 clean · 1 findings/stale baseline · 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import glob
import hashlib
import json
import os
import sys
from typing import Dict, List, Optional

from . import __version__, baseline as baseline_mod
from .model import Config, Finding, RunResult
from .rules import analyze_file

CACHE_VERSION = 3  # bump when rules change shape


def _eprint(*args) -> None:
    print(*args, file=sys.stderr)


def discover_files(
    repo: str, build_dir: Optional[str], explicit: List[str]
) -> List[str]:
    """Repo-relative paths to analyze."""
    if explicit:
        out = []
        for p in explicit:
            ap = os.path.join(repo, p) if not os.path.isabs(p) else p
            if not os.path.isfile(ap):
                raise FileNotFoundError(p)
            out.append(os.path.relpath(ap, repo).replace(os.sep, "/"))
        return sorted(set(out))

    files = set()
    cc_path = (
        os.path.join(build_dir, "compile_commands.json") if build_dir else None
    )
    if cc_path and os.path.isfile(cc_path):
        with open(cc_path, encoding="utf-8") as f:
            for entry in json.load(f):
                src = entry.get("file", "")
                if not os.path.isabs(src):
                    src = os.path.join(entry.get("directory", ""), src)
                src = os.path.realpath(src)
                rel = os.path.relpath(src, os.path.realpath(repo))
                if rel.startswith(".."):
                    continue
                rel = rel.replace(os.sep, "/")
                if rel.startswith("src/"):
                    files.add(rel)
    elif cc_path:
        _eprint(
            f"kpq-lint: {cc_path} not found — falling back to globbing src/ "
            "(configure the build to refresh the compile_commands contract)"
        )
    for pattern in ("src/**/*.hpp", "src/**/*.cpp", "src/**/*.h"):
        for p in glob.glob(os.path.join(repo, pattern), recursive=True):
            files.add(os.path.relpath(p, repo).replace(os.sep, "/"))
    return sorted(files)


def _sha1(text: str) -> str:
    return hashlib.sha1(text.encode()).hexdigest()


class Cache:
    """Per-file result cache keyed on content hash + rule version. Makes the
    CI job (and pre-commit runs) incremental: an unchanged file is never
    re-lexed."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self.data: Dict[str, dict] = {}
        self.hits = 0
        if path and os.path.isfile(path):
            try:
                with open(path, encoding="utf-8") as f:
                    raw = json.load(f)
                if raw.get("cache_version") == CACHE_VERSION and raw.get(
                    "lint_version"
                ) == __version__:
                    self.data = raw.get("files", {})
            except (OSError, ValueError):
                self.data = {}

    def get(self, rel: str, digest: str) -> Optional[List[Finding]]:
        entry = self.data.get(rel)
        if not entry or entry.get("sha1") != digest:
            return None
        self.hits += 1
        return [
            Finding(
                rule=d["rule"],
                path=d["path"],
                line=d["line"],
                col=d["col"],
                message=d["message"],
                fixit=d.get("fixit", ""),
                norm_line=d.get("norm_line", ""),
            )
            for d in entry["findings"]
        ]

    def put(self, rel: str, digest: str, findings: List[Finding]) -> None:
        self.data[rel] = {
            "sha1": digest,
            "findings": [
                {**f.to_json(), "norm_line": f.norm_line} for f in findings
            ],
        }

    def save(self) -> None:
        if not self.path:
            return
        try:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as f:
                json.dump(
                    {
                        "cache_version": CACHE_VERSION,
                        "lint_version": __version__,
                        "files": self.data,
                    },
                    f,
                )
        except OSError as e:
            _eprint(f"kpq-lint: cache write failed ({e}); continuing")


def run(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="kpq-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--repo", default=".", help="repository root")
    ap.add_argument(
        "--build-dir",
        default=None,
        help="build tree holding compile_commands.json (default: <repo>/build)",
    )
    ap.add_argument(
        "--baseline",
        default=None,
        help="suppression baseline (default: tools/kpq_lint/baseline.json)",
    )
    ap.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    ap.add_argument(
        "--no-cache", action="store_true", help="disable the parse cache"
    )
    ap.add_argument(
        "--allow-stale",
        action="store_true",
        help="do not fail on stale baseline entries (local iteration only; "
        "CI enforces shrink-only)",
    )
    ap.add_argument(
        "--no-libclang",
        action="store_true",
        help="skip the libclang supplement even if installed",
    )
    ap.add_argument("--version", action="version", version=__version__)
    ap.add_argument(
        "paths", nargs="*", help="restrict to these files (repo-relative)"
    )
    args = ap.parse_args(argv)

    repo = os.path.realpath(args.repo)
    build_dir = args.build_dir or os.path.join(repo, "build")
    baseline_path = args.baseline or os.path.join(
        repo, "tools", "kpq_lint", "baseline.json"
    )
    cfg = Config()

    try:
        files = discover_files(repo, build_dir, args.paths)
    except FileNotFoundError as e:
        _eprint(f"kpq-lint: no such file: {e}")
        return 2
    if not files:
        _eprint("kpq-lint: nothing to analyze (no src/ files found)")
        return 2

    cache = Cache(
        None
        if args.no_cache
        else os.path.join(build_dir, "kpq_lint_cache.json")
    )

    findings: List[Finding] = []
    for rel in files:
        try:
            with open(os.path.join(repo, rel), encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            _eprint(f"kpq-lint: cannot read {rel}: {e}")
            return 2
        digest = _sha1(text)
        cached = cache.get(rel, digest)
        if cached is not None:
            findings.extend(cached)
            continue
        file_findings = analyze_file(rel, text, cfg)
        cache.put(rel, digest, file_findings)
        findings.extend(file_findings)

    frontend = "token"
    if not args.no_libclang:
        from . import clang_frontend

        if clang_frontend.available():
            frontend = "libclang+token"
            extra = _run_libclang(repo, build_dir, files, cfg)
            known = {(f.path, f.line, f.col) for f in findings}
            findings.extend(
                f for f in extra if (f.path, f.line, f.col) not in known
            )

    cache.save()

    entries: List[dict] = []
    if os.path.isfile(baseline_path):
        try:
            entries = baseline_mod.load(baseline_path)
        except (baseline_mod.BaselineError, OSError, ValueError) as e:
            _eprint(f"kpq-lint: {e}")
            return 2
    remaining, stale = baseline_mod.apply(findings, entries)
    remaining.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    result = RunResult(
        findings=remaining,
        files_scanned=len(files),
        files_from_cache=cache.hits,
        frontend=frontend,
    )

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": __version__,
                    "frontend": frontend,
                    "files_scanned": result.files_scanned,
                    "files_from_cache": result.files_from_cache,
                    "findings": [f.to_json() for f in remaining],
                    "stale_baseline": stale,
                },
                indent=2,
            )
        )
    else:
        for f in remaining:
            print(f.render())
        if stale and not args.allow_stale:
            print(baseline_mod.render_stale(stale))
        per_rule: Dict[str, int] = {}
        for f in remaining:
            per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
        summary = ", ".join(
            f"{r}: {per_rule[r]}" for r in sorted(per_rule)
        ) or "clean"
        _eprint(
            f"kpq-lint: {len(remaining)} finding(s) [{summary}] over "
            f"{result.files_scanned} files "
            f"({result.files_from_cache} cached, frontend={frontend}, "
            f"{len(entries)} baseline entries, {len(stale)} stale)"
        )

    if remaining:
        return 1
    if stale and not args.allow_stale:
        return 1
    return 0


def _run_libclang(
    repo: str, build_dir: str, files: List[str], cfg: Config
) -> List[Finding]:
    from . import clang_frontend

    cc_path = os.path.join(build_dir, "compile_commands.json")
    out: List[Finding] = []
    if not os.path.isfile(cc_path):
        return out
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    wanted = set(files)
    for entry in entries:
        src = entry.get("file", "")
        rel = os.path.relpath(
            os.path.realpath(src), os.path.realpath(repo)
        ).replace(os.sep, "/")
        if rel not in wanted:
            continue
        raw_args = entry.get("arguments") or entry.get("command", "").split()
        # Drop the compiler, -c/-o pairs; keep -I/-D/-std flags for the parse.
        args = [
            a
            for a in raw_args[1:]
            if a.startswith(("-I", "-D", "-std", "-isystem", "-f"))
        ]
        tu_findings = clang_frontend.analyze_tu(src, args, repo, cfg)
        if tu_findings:
            out.extend(tu_findings)
    return out


def main() -> None:
    sys.exit(run(sys.argv[1:]))
